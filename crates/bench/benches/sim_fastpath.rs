//! Criterion benchmarks of the evaluate-phase simulation fast path.
//!
//! Compares the uncached (`SimCachePolicy::Off`) simulation path against
//! the cached default for the two surfaces the orchestrator's evaluate
//! phase drives: single `RealNetwork::run` queries and
//! `SharedTestbed::run_batch` rounds. Criterion's iteration loop replays
//! the identical workload, so the cached runs measure the warm path —
//! the same regime the fleet bench's `sim_fastpath` section reports
//! (cold-vs-warm, with hit counters) in `BENCH_orchestrator.json`. Every
//! policy is bit-identical by construction; see the netsim property
//! tests for the asserted comparison.

use atlas_netsim::{RealNetwork, Scenario, SharedTestbed, SimCachePolicy, SliceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn jobs(traffic: u32, n: u64) -> Vec<(SliceConfig, Scenario)> {
    (0..n)
        .map(|i| {
            let config = SliceConfig {
                bandwidth_ul: 10.0 + (i % 3) as f64,
                bandwidth_dl: 5.0 + (i % 2) as f64,
                mcs_offset_ul: 0.0,
                mcs_offset_dl: 0.0,
                backhaul_bw: 20.0,
                cpu_ratio: 0.8,
            };
            let scenario = Scenario::default_with_seed(500 + i)
                .with_duration(2.0)
                .with_traffic(traffic);
            (config, scenario)
        })
        .collect()
}

fn sim_fastpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_fastpath");
    for traffic in [5u32, 20] {
        let (config, scenario) = jobs(traffic, 1).pop().unwrap();
        group.bench_with_input(
            BenchmarkId::new("run_uncached", traffic),
            &traffic,
            |b, _| {
                let network = RealNetwork::prototype().with_cache_policy(SimCachePolicy::Off);
                b.iter(|| black_box(network.run(&config, &scenario).frames_completed))
            },
        );
        group.bench_with_input(BenchmarkId::new("run_cached", traffic), &traffic, |b, _| {
            // Memoize so the replayed query is served from the sim memo
            // after the first iteration (the default RealNetwork policy,
            // Measurement, caches only the carrier measurement).
            let network = RealNetwork::prototype().with_cache_policy(SimCachePolicy::Memoize);
            b.iter(|| black_box(network.run(&config, &scenario).frames_completed))
        });
        group.bench_with_input(
            BenchmarkId::new("run_batch_uncached", traffic),
            &traffic,
            |b, &traffic| {
                let testbed = SharedTestbed::new(
                    RealNetwork::prototype().with_cache_policy(SimCachePolicy::Off),
                );
                let batch = jobs(traffic, 8);
                b.iter(|| black_box(testbed.run_batch(&batch).len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("run_batch_cached", traffic),
            &traffic,
            |b, &traffic| {
                let testbed = SharedTestbed::new(
                    RealNetwork::prototype().with_cache_policy(SimCachePolicy::Memoize),
                );
                let batch = jobs(traffic, 8);
                b.iter(|| black_box(testbed.run_batch(&batch).len()))
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sim_fastpath
);
criterion_main!(benches);
