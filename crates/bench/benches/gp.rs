//! Criterion benchmarks of the incremental GP hot path.
//!
//! Atlas's online loop (stage 3) and the GP-EI/VirtualEdge baselines feed
//! the GP one observation per step. The seed implementation refit from
//! scratch — 35 × O(n³) per step with the hyper-parameter grid — while the
//! incremental `observe` extends every grid factor by one bordering row in
//! O(n²). These benches quantify that gap and the per-point vs batched
//! prediction cost; `src/bin/gp_bench.rs` emits the same comparison as
//! `BENCH_gp.json` for the performance trajectory.

use atlas_bayesopt::SearchSpace;
use atlas_gp::{GaussianProcess, GpConfig, ScoringPrecision};
use atlas_math::linalg::{
    l2_distance, Matrix, PackedCholesky, DEFAULT_CHOL_BLOCK, DEFAULT_COL_TILE, DEFAULT_ROW_BLOCK,
};
use atlas_math::rng::seeded_rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn dataset(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = seeded_rng(7);
    let space = SearchSpace::unit(dim);
    let xs = space.sample_n(n, &mut rng);
    let ys = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() / dim as f64)
        .collect();
    (xs, ys)
}

fn add_observation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_add_observation");
    for n in [50usize, 100, 200] {
        let (xs, ys) = dataset(n, 6);
        // The seed path: absorbing the nth observation meant a full refit
        // of all n points (hyper-parameter grid included).
        group.bench_with_input(BenchmarkId::new("full_refit", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = GaussianProcess::default_matern();
                gp.fit(&xs, &ys).unwrap();
                black_box(gp.len())
            })
        });
        // The incremental path: extend a GP already holding n−1 points.
        // The per-iteration clone is an O(n²) memcpy billed against the
        // incremental side, so the reported ratio is conservative.
        let mut warm = GaussianProcess::default_matern();
        warm.fit(&xs[..n - 1], &ys[..n - 1]).unwrap();
        group.bench_with_input(BenchmarkId::new("incremental_observe", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = warm.clone();
                gp.observe(xs[n - 1].clone(), ys[n - 1]).unwrap();
                black_box(gp.len())
            })
        });
    }
    group.finish();
}

fn windowed_observe(c: &mut Criterion) {
    use atlas_gp::{GpConfig, WindowPolicy};
    // The long-horizon steady state: a full sliding window, where every
    // observe is an in-place evict (Cholesky row-deletion downdate) plus
    // the usual bordering append across all 35 grid factors — constant in
    // the slice's age, unlike the unbounded path at the same history size.
    let cap = 128usize;
    let (xs, ys) = dataset(cap + 1, 6);
    let mut warm = GaussianProcess::new(GpConfig {
        window: WindowPolicy::SlidingWindow { capacity: cap },
        ..GpConfig::default()
    });
    warm.fit(&xs[..cap], &ys[..cap]).unwrap();
    let mut unbounded = GaussianProcess::default_matern();
    unbounded.fit(&xs[..cap], &ys[..cap]).unwrap();
    let mut group = c.benchmark_group("gp_windowed_observe");
    group.bench_function(BenchmarkId::new("shift_at_capacity", cap), |b| {
        b.iter(|| {
            let mut gp = warm.clone();
            gp.observe(xs[cap].clone(), ys[cap]).unwrap();
            black_box(gp.len())
        })
    });
    group.bench_function(BenchmarkId::new("unbounded_append", cap), |b| {
        b.iter(|| {
            let mut gp = unbounded.clone();
            gp.observe(xs[cap].clone(), ys[cap]).unwrap();
            black_box(gp.len())
        })
    });
    group.finish();
}

fn predict_batch(c: &mut Criterion) {
    let (xs, ys) = dataset(200, 6);
    let mut gp = GaussianProcess::default_matern();
    gp.fit(&xs, &ys).unwrap();
    let mut rng = seeded_rng(9);
    let candidates = SearchSpace::unit(6).sample_n(2000, &mut rng);
    let mut group = c.benchmark_group("gp_predict_2000_candidates");
    group.bench_function("per_point", |b| {
        b.iter(|| {
            let sum: f64 = candidates.iter().map(|x| gp.predict(x).0).sum();
            black_box(sum)
        })
    });
    group.bench_function("batched_multi_rhs", |b| {
        b.iter(|| black_box(gp.predict_batch(&candidates).len()))
    });
    group.bench_function("batched_parallel", |b| {
        b.iter(|| black_box(gp.predict_batch_par(&candidates).len()))
    });
    group.finish();
}

/// Kernel-shaped SPD system over a seeded unit-cube dataset — the matrix
/// structure every GP hot loop factors and solves against.
fn kernel_system(n: usize) -> (Vec<Vec<f64>>, Matrix) {
    let (xs, _) = dataset(n, 6);
    let mut k = Matrix::from_fn(n, n, |i, j| (-l2_distance(&xs[i], &xs[j])).exp());
    k.add_diagonal(1e-3);
    (xs, k)
}

fn blocked_cholesky(c: &mut Criterion) {
    // The tentpole factorisation kernels: right-looking blocked Cholesky
    // vs the scalar kernel it replaced, bit-identical by construction
    // (the blocking is pure scheduling — see the linalg property tests).
    let n = 400usize;
    let (_, k) = kernel_system(n);
    let mut group = c.benchmark_group("blocked_cholesky");
    group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
        b.iter(|| black_box(k.cholesky_scalar().unwrap().rows()))
    });
    group.bench_with_input(
        BenchmarkId::new(format!("blocked_b{DEFAULT_CHOL_BLOCK}"), n),
        &n,
        |b, _| b.iter(|| black_box(k.cholesky_blocked(DEFAULT_CHOL_BLOCK).unwrap().rows())),
    );
    group.bench_with_input(BenchmarkId::new("packed_blocked", n), &n, |b, _| {
        b.iter(|| black_box(PackedCholesky::cholesky(&k).unwrap().order()))
    });
    group.finish();
}

fn blocked_forward_solve(c: &mut Criterion) {
    // The stage-sized multi-RHS forward solve (400 × 2000 — the
    // acquisition scorer's shape) through the row-blocked kernel at the
    // calibrated defaults, against the column-tiled-only sweep.
    let n = 400usize;
    let m = 2000usize;
    let (xs, k) = kernel_system(n);
    let l = k.cholesky().unwrap();
    let mut rng = seeded_rng(9);
    let candidates = SearchSpace::unit(6).sample_n(m, &mut rng);
    let rhs = Matrix::from_fn(n, m, |i, j| (-l2_distance(&xs[i], &candidates[j])).exp());
    let mut group = c.benchmark_group("blocked_forward_solve");
    group.bench_function(
        BenchmarkId::new("col_tiled_only", format!("{n}x{m}")),
        |b| {
            b.iter(|| {
                black_box(
                    l.solve_lower_triangular_multi_tiled(&rhs, DEFAULT_COL_TILE)
                        .unwrap()
                        .rows(),
                )
            })
        },
    );
    group.bench_function(BenchmarkId::new("row_blocked", format!("{n}x{m}")), |b| {
        b.iter(|| {
            black_box(
                l.solve_lower_triangular_multi_blocked(&rhs, DEFAULT_COL_TILE, DEFAULT_ROW_BLOCK)
                    .unwrap()
                    .rows(),
            )
        })
    });
    group.finish();
}

fn batched_append_rows(c: &mut Criterion) {
    // Batched bordering appends: one `append_rows` call amortising the
    // shared prefix solve across 16 rows vs 16 sequential `append_row`
    // calls (bit-identical factors either way).
    let n = 400usize;
    let k = 16usize;
    let base_n = n - k;
    let (_, full) = kernel_system(n);
    let base = {
        let sub = Matrix::from_fn(base_n, base_n, |i, j| full[(i, j)]);
        PackedCholesky::cholesky(&sub).unwrap()
    };
    let rows: Vec<Vec<f64>> = (base_n..n)
        .map(|r| (0..=r).map(|j| full[(r, j)]).collect())
        .collect();
    let mut group = c.benchmark_group("batched_append_rows");
    group.bench_function(BenchmarkId::new("sequential", k), |b| {
        b.iter(|| {
            let mut f = base.clone();
            for row in &rows {
                f.append_row(row).unwrap();
            }
            black_box(f.order())
        })
    });
    group.bench_function(BenchmarkId::new("batched", k), |b| {
        b.iter(|| {
            let mut f = base.clone();
            f.append_rows(&rows).unwrap();
            black_box(f.order())
        })
    });
    group.finish();
}

fn gp_elastic_grid(c: &mut Criterion) {
    use atlas_gp::GridMaintenance;
    // The elastic hyper-parameter grid's steady state: a warm GP at n = 400
    // absorbing one more observation, full maintenance (35 live factors)
    // vs a hot set of 8. `refresh_every` is set beyond the iteration count
    // so the timed loop measures the pure hot-set observe; the amortised
    // refresh cost is quantified by the `grid_maintenance` section of
    // `BENCH_gp.json`.
    let n = 400usize;
    let (xs, ys) = dataset(n + 1, 6);
    let arm = |grid| {
        let mut gp = GaussianProcess::new(GpConfig {
            grid_maintenance: grid,
            ..GpConfig::default()
        });
        gp.fit(&xs[..n], &ys[..n]).unwrap();
        gp
    };
    let full = arm(GridMaintenance::Full);
    let elastic = arm(GridMaintenance::Elastic {
        hot_set: 8,
        refresh_every: usize::MAX,
    });
    let mut group = c.benchmark_group("gp_elastic_grid");
    group.bench_function(BenchmarkId::new("full_observe", n), |b| {
        b.iter(|| {
            let mut gp = full.clone();
            gp.observe(xs[n].clone(), ys[n]).unwrap();
            black_box(gp.len())
        })
    });
    group.bench_function(BenchmarkId::new("elastic_hot8_observe", n), |b| {
        b.iter(|| {
            let mut gp = elastic.clone();
            gp.observe(xs[n].clone(), ys[n]).unwrap();
            black_box(gp.len())
        })
    });
    group.finish();
}

fn gp_inducing(c: &mut Criterion) {
    use atlas_gp::{InducingSelection, SurrogateBasis, WindowPolicy};
    // The inducing-point sparse basis' steady state: one observation folded
    // into the m×m information factor, vs the windowed exact path's
    // downdate + append at its capacity, vs the unbounded exact append at
    // the same history size. A single hyper-parameter candidate keeps the
    // per-iteration warm-state clone cheap, and `refresh_every` sits beyond
    // the iteration count so the timed loop measures the pure fold; the
    // amortised refresh cost is quantified by the `inducing` section of
    // `BENCH_gp.json`.
    let n = 1024usize;
    let m = 128usize;
    let cap = 256usize;
    let (xs, ys) = dataset(n + 1, 6);
    let arm = |window, basis| {
        let mut gp = GaussianProcess::new(GpConfig {
            optimize_hyperparameters: false,
            refit_every: usize::MAX,
            window,
            basis,
            ..GpConfig::default()
        });
        gp.fit(&xs[..n], &ys[..n]).unwrap();
        gp
    };
    let sparse = arm(
        WindowPolicy::Unbounded,
        SurrogateBasis::Inducing {
            m,
            selection: InducingSelection::GreedyVariance,
            refresh_every: usize::MAX,
        },
    );
    assert!(sparse.basis_active());
    let windowed = arm(
        WindowPolicy::SlidingWindow { capacity: cap },
        SurrogateBasis::Exact,
    );
    let unbounded = arm(WindowPolicy::Unbounded, SurrogateBasis::Exact);
    let mut group = c.benchmark_group("gp_inducing");
    group.bench_function(BenchmarkId::new(format!("sparse_fold_m{m}"), n), |b| {
        b.iter(|| {
            let mut gp = sparse.clone();
            gp.observe(xs[n].clone(), ys[n]).unwrap();
            black_box(gp.len())
        })
    });
    group.bench_function(BenchmarkId::new(format!("windowed_cap{cap}"), n), |b| {
        b.iter(|| {
            let mut gp = windowed.clone();
            gp.observe(xs[n].clone(), ys[n]).unwrap();
            black_box(gp.len())
        })
    });
    group.bench_function(BenchmarkId::new("unbounded_append", n), |b| {
        b.iter(|| {
            let mut gp = unbounded.clone();
            gp.observe(xs[n].clone(), ys[n]).unwrap();
            black_box(gp.len())
        })
    });
    group.finish();
}

fn mixed_precision_ranking(c: &mut Criterion) {
    // Opt-in f32 scoring shadow vs the exact f64 batched predictor on the
    // acquisition-ranking path. `recheck_every` is set beyond the
    // iteration count so the timed loop never pays the f64 drift recheck.
    let (xs, ys) = dataset(200, 6);
    let mut gp = GaussianProcess::new(GpConfig {
        scoring_precision: ScoringPrecision::MixedF32 {
            recheck_every: usize::MAX,
            top_k: 10,
        },
        ..GpConfig::default()
    });
    gp.fit(&xs, &ys).unwrap();
    let mut rng = seeded_rng(9);
    let candidates = SearchSpace::unit(6).sample_n(2000, &mut rng);
    let mut group = c.benchmark_group("gp_ranking_2000_candidates");
    group.bench_function("exact_f64", |b| {
        b.iter(|| black_box(gp.predict_batch_par(&candidates).len()))
    });
    group.bench_function("mixed_f32", |b| {
        b.iter(|| black_box(gp.predict_batch_ranking(&candidates).len()))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = add_observation_scaling, windowed_observe, predict_batch, blocked_cholesky,
        blocked_forward_solve, batched_append_rows, mixed_precision_ranking, gp_elastic_grid,
        gp_inducing
);
criterion_main!(benches);
