//! Criterion benchmarks of the incremental GP hot path.
//!
//! Atlas's online loop (stage 3) and the GP-EI/VirtualEdge baselines feed
//! the GP one observation per step. The seed implementation refit from
//! scratch — 35 × O(n³) per step with the hyper-parameter grid — while the
//! incremental `observe` extends every grid factor by one bordering row in
//! O(n²). These benches quantify that gap and the per-point vs batched
//! prediction cost; `src/bin/gp_bench.rs` emits the same comparison as
//! `BENCH_gp.json` for the performance trajectory.

use atlas_bayesopt::SearchSpace;
use atlas_gp::GaussianProcess;
use atlas_math::rng::seeded_rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn dataset(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = seeded_rng(7);
    let space = SearchSpace::unit(dim);
    let xs = space.sample_n(n, &mut rng);
    let ys = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() / dim as f64)
        .collect();
    (xs, ys)
}

fn add_observation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_add_observation");
    for n in [50usize, 100, 200] {
        let (xs, ys) = dataset(n, 6);
        // The seed path: absorbing the nth observation meant a full refit
        // of all n points (hyper-parameter grid included).
        group.bench_with_input(BenchmarkId::new("full_refit", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = GaussianProcess::default_matern();
                gp.fit(&xs, &ys).unwrap();
                black_box(gp.len())
            })
        });
        // The incremental path: extend a GP already holding n−1 points.
        // The per-iteration clone is an O(n²) memcpy billed against the
        // incremental side, so the reported ratio is conservative.
        let mut warm = GaussianProcess::default_matern();
        warm.fit(&xs[..n - 1], &ys[..n - 1]).unwrap();
        group.bench_with_input(BenchmarkId::new("incremental_observe", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = warm.clone();
                gp.observe(xs[n - 1].clone(), ys[n - 1]).unwrap();
                black_box(gp.len())
            })
        });
    }
    group.finish();
}

fn windowed_observe(c: &mut Criterion) {
    use atlas_gp::{GpConfig, WindowPolicy};
    // The long-horizon steady state: a full sliding window, where every
    // observe is an in-place evict (Cholesky row-deletion downdate) plus
    // the usual bordering append across all 35 grid factors — constant in
    // the slice's age, unlike the unbounded path at the same history size.
    let cap = 128usize;
    let (xs, ys) = dataset(cap + 1, 6);
    let mut warm = GaussianProcess::new(GpConfig {
        window: WindowPolicy::SlidingWindow { capacity: cap },
        ..GpConfig::default()
    });
    warm.fit(&xs[..cap], &ys[..cap]).unwrap();
    let mut unbounded = GaussianProcess::default_matern();
    unbounded.fit(&xs[..cap], &ys[..cap]).unwrap();
    let mut group = c.benchmark_group("gp_windowed_observe");
    group.bench_function(BenchmarkId::new("shift_at_capacity", cap), |b| {
        b.iter(|| {
            let mut gp = warm.clone();
            gp.observe(xs[cap].clone(), ys[cap]).unwrap();
            black_box(gp.len())
        })
    });
    group.bench_function(BenchmarkId::new("unbounded_append", cap), |b| {
        b.iter(|| {
            let mut gp = unbounded.clone();
            gp.observe(xs[cap].clone(), ys[cap]).unwrap();
            black_box(gp.len())
        })
    });
    group.finish();
}

fn predict_batch(c: &mut Criterion) {
    let (xs, ys) = dataset(200, 6);
    let mut gp = GaussianProcess::default_matern();
    gp.fit(&xs, &ys).unwrap();
    let mut rng = seeded_rng(9);
    let candidates = SearchSpace::unit(6).sample_n(2000, &mut rng);
    let mut group = c.benchmark_group("gp_predict_2000_candidates");
    group.bench_function("per_point", |b| {
        b.iter(|| {
            let sum: f64 = candidates.iter().map(|x| gp.predict(x).0).sum();
            black_box(sum)
        })
    });
    group.bench_function("batched_multi_rhs", |b| {
        b.iter(|| black_box(gp.predict_batch(&candidates).len()))
    });
    group.bench_function("batched_parallel", |b| {
        b.iter(|| black_box(gp.predict_batch_par(&candidates).len()))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = add_observation_scaling, windowed_observe, predict_batch
);
criterion_main!(benches);
