//! Criterion micro-benchmarks of the Atlas building blocks.
//!
//! These quantify the costs the paper discusses in Sec. 7.3 (computation
//! time per iteration of each stage) and the design choices DESIGN.md calls
//! out for ablation: GP vs BNN surrogate scaling, single-draw Thompson
//! sampling vs full posterior prediction, simulator query cost, and the
//! KL-divergence discrepancy metric.

use atlas::env::{Environment, SimulatorEnv, Sla};
use atlas_bayesopt::{Acquisition, SearchSpace};
use atlas_gp::GaussianProcess;
use atlas_math::rng::seeded_rng;
use atlas_math::stats;
use atlas_netsim::{RealNetwork, Scenario, Simulator, SliceConfig};
use atlas_nn::{Bnn, BnnConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn simulator_query(c: &mut Criterion) {
    let sim = Simulator::with_original_params();
    let real = RealNetwork::prototype();
    let cfg = SliceConfig::default_generous();
    let mut group = c.benchmark_group("simulator_query");
    for duration in [5.0, 15.0, 60.0] {
        let scenario = Scenario::default_with_seed(1).with_duration(duration);
        group.bench_with_input(
            BenchmarkId::new("offline_simulator", duration as u64),
            &scenario,
            |b, s| b.iter(|| black_box(sim.run(&cfg, s).frames_completed)),
        );
        group.bench_with_input(
            BenchmarkId::new("emulated_testbed", duration as u64),
            &scenario,
            |b, s| b.iter(|| black_box(real.run(&cfg, s).frames_completed)),
        );
    }
    group.finish();
}

fn kl_divergence(c: &mut Criterion) {
    let sim = Simulator::with_original_params();
    let real = RealNetwork::prototype();
    let cfg = SliceConfig::default_generous();
    let scenario = Scenario::default_with_seed(2).with_duration(30.0);
    let a = sim.run(&cfg, &scenario).latencies_ms;
    let b = real.run(&cfg, &scenario).latencies_ms;
    c.bench_function("kl_divergence_empirical", |bench| {
        bench.iter(|| black_box(stats::kl_divergence(&b, &a).unwrap()))
    });
}

fn surrogate_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("surrogate_fit");
    for n in [50usize, 150, 300] {
        let mut rng = seeded_rng(3);
        let space = SearchSpace::unit(6);
        let xs = space.sample_n(n, &mut rng);
        let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>() / 6.0).collect();
        group.bench_with_input(BenchmarkId::new("gp", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = GaussianProcess::default_matern();
                gp.fit(&xs, &ys).unwrap();
                black_box(gp.predict(&[0.5; 6]))
            })
        });
        group.bench_with_input(BenchmarkId::new("bnn_10_epochs", n), &n, |b, _| {
            b.iter(|| {
                let mut bnn = Bnn::new(
                    6,
                    BnnConfig {
                        hidden: [32, 32, 0, 0],
                        ..BnnConfig::default()
                    },
                    &mut rng,
                );
                bnn.fit_epochs(&xs, &ys, 10, &mut rng);
                black_box(bnn.predict_mean(&[0.5; 6]))
            })
        });
    }
    group.finish();
}

fn thompson_vs_predictive(c: &mut Criterion) {
    let mut rng = seeded_rng(4);
    let space = SearchSpace::unit(6);
    let xs = space.sample_n(200, &mut rng);
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>() / 6.0).collect();
    let mut bnn = Bnn::new(
        6,
        BnnConfig {
            hidden: [32, 32, 0, 0],
            ..BnnConfig::default()
        },
        &mut rng,
    );
    bnn.fit_epochs(&xs, &ys, 30, &mut rng);
    let candidates = space.sample_n(2000, &mut rng);

    let mut group = c.benchmark_group("acquisition_over_2000_candidates");
    group.bench_function("single_draw_thompson", |b| {
        b.iter(|| {
            let f = bnn.thompson_sampler(&mut rng);
            let best = candidates
                .iter()
                .map(|x| f(x))
                .fold(f64::INFINITY, f64::min);
            black_box(best)
        })
    });
    group.bench_function("monte_carlo_mean_std_8_draws", |b| {
        b.iter(|| {
            let best = candidates
                .iter()
                .map(|x| bnn.predict_with_uncertainty(x, 8, &mut rng).0)
                .fold(f64::INFINITY, f64::min);
            black_box(best)
        })
    });
    group.finish();
}

fn acquisition_functions(c: &mut Criterion) {
    let mut rng = seeded_rng(5);
    let acqs = [
        ("ei", Acquisition::ExpectedImprovement),
        ("pi", Acquisition::ProbabilityOfImprovement),
        ("gp_ucb", Acquisition::GpUcb { delta: 0.1, dim: 6 }),
        ("crgp_ucb", Acquisition::conservative_default()),
    ];
    let mut group = c.benchmark_group("acquisition_score_10k");
    for (name, acq) in acqs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut total = 0.0;
                for i in 0..10_000usize {
                    let mean = (i % 100) as f64 / 100.0;
                    let std = 0.1 + (i % 7) as f64 * 0.01;
                    total += acq.score(mean, std, 0.5, i + 1, &mut rng);
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn end_to_end_query(c: &mut Criterion) {
    // The cost of one "query" as seen by the stages: connectivity floor,
    // simulator run and QoE reduction.
    let env = SimulatorEnv::new(Simulator::with_original_params());
    let sla = Sla::paper_default();
    let scenario = Scenario::default_with_seed(6).with_duration(15.0);
    let cfg = SliceConfig::from_vec(&[10.0, 5.0, 0.0, 0.0, 10.0, 0.6]);
    c.bench_function("stage_query_qoe", |b| {
        b.iter(|| black_box(env.query(&cfg, &scenario, &sla).qoe))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = simulator_query,
        kl_divergence,
        surrogate_scaling,
        thompson_vs_predictive,
        acquisition_functions,
        end_to_end_query
);
criterion_main!(benches);
