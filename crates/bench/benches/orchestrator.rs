//! Criterion benchmarks of the multi-slice orchestrator.
//!
//! Compares N sequential single-slice `OnlineLearner::run` calls against
//! the orchestrated run over a shared testbed (which is bit-identical by
//! construction — see `orchestrator_bench` for the asserted comparison and
//! the committed `BENCH_orchestrator.json` trajectory point).

use atlas::env::{RealEnv, Sla};
use atlas::{OnlineLearner, Scenario, Simulator, Stage3Config};
use atlas_netsim::{RealNetwork, SharedTestbed};
use atlas_orchestrator::{Orchestrator, SliceSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn fleet(n: u64) -> Vec<SliceSpec> {
    (0..n)
        .map(|i| {
            let config = Stage3Config {
                iterations: 2,
                offline_updates: 1,
                candidates: 60,
                duration_s: 2.0,
                ..Stage3Config::default()
            };
            let learner = OnlineLearner::without_offline(
                config,
                Sla::paper_default(),
                Simulator::with_original_params(),
            );
            let scenario = Scenario::default_with_seed(i).with_duration(2.0);
            SliceSpec::new(format!("slice-{i}"), learner, scenario, 4000 + 17 * i)
        })
        .collect()
}

fn multi_slice(c: &mut Criterion) {
    let network = RealNetwork::prototype();
    let mut group = c.benchmark_group("multi_slice_online_loops");
    for n in [2u64, 4] {
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            let real = RealEnv::new(network);
            b.iter(|| {
                let total: usize = fleet(n)
                    .iter()
                    .map(|s| s.learner.run(&real, &s.scenario, s.seed).history.len())
                    .sum();
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("orchestrated", n), &n, |b, &n| {
            let orchestrator = Orchestrator::new(SharedTestbed::new(network)).with_threads(2);
            b.iter(|| black_box(orchestrator.run(fleet(n)).total_queries))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = multi_slice
);
criterion_main!(benches);
