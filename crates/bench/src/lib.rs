//! # atlas-bench
//!
//! Benchmark harness of the Atlas reproduction: the [`experiments`] module
//! regenerates every table and figure of the paper's evaluation section
//! (Sec. 8), and the Criterion benches under `benches/` measure the cost of
//! the individual building blocks (simulator step rate, GP/BNN fitting,
//! acquisition maximisation, KL estimation).
//!
//! Run a single experiment with
//! `cargo run --release -p atlas-bench --bin experiments -- fig8`
//! or the full sweep with `-- all` (results are also written as CSV files
//! under `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod output;
