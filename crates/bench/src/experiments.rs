//! Regeneration of every table and figure of the paper's evaluation
//! (Sec. 2 motivation + Sec. 8).
//!
//! Each experiment prints an aligned table to stdout and writes the same
//! data as `results/<id>.csv`. Absolute numbers differ from the paper
//! (our substrate is a simulator, not the authors' hardware testbed) but
//! the comparisons — who wins, approximate factors, crossovers — are
//! preserved; see EXPERIMENTS.md for the side-by-side record.
//!
//! The default settings are scaled down so that the full sweep finishes on
//! a laptop CPU; pass `--paper-scale` to use the paper's iteration counts.

use crate::output::Table;
use atlas::baselines::{
    oracle_reference, run_gp_ei_baseline, run_virtual_edge, BaselineConfig, Dlda,
};
use atlas::env::{collect_latencies, Environment, RealEnv, SimulatorEnv};
use atlas::regret::average_regret;
use atlas::stage2::OfflineStrategy;
use atlas::{
    Acquisition, OfflineTrainer, OnlineLearner, OnlineModel, RealNetwork, Scenario, SimParams,
    Simulator, SimulatorCalibration, Sla, SliceConfig, Stage1Config, Stage2Config, Stage3Config,
    SurrogateKind,
};
use atlas_math::stats;
use atlas_nn::BnnConfig;

/// Global experiment settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settings {
    /// Use the paper's full iteration counts (much slower).
    pub paper_scale: bool,
    /// Base seed for every experiment.
    pub seed: u64,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            paper_scale: false,
            seed: 2022,
        }
    }
}

impl Settings {
    fn duration(&self) -> f64 {
        if self.paper_scale {
            60.0
        } else {
            12.0
        }
    }

    fn stage1(&self) -> Stage1Config {
        if self.paper_scale {
            Stage1Config {
                iterations: 500,
                warmup: 100,
                parallel: 16,
                candidates: 10_000,
                duration_s: 60.0,
                bnn: BnnConfig::paper_scale(),
                ..Stage1Config::default()
            }
        } else {
            Stage1Config {
                iterations: 60,
                warmup: 15,
                parallel: 4,
                candidates: 1000,
                duration_s: self.duration(),
                train_epochs_per_iter: 6,
                ..Stage1Config::default()
            }
        }
    }

    fn stage2(&self) -> Stage2Config {
        if self.paper_scale {
            Stage2Config {
                iterations: 1000,
                warmup: 100,
                parallel: 16,
                candidates: 10_000,
                duration_s: 60.0,
                bnn: BnnConfig::paper_scale(),
                ..Stage2Config::default()
            }
        } else {
            Stage2Config {
                iterations: 80,
                warmup: 20,
                parallel: 4,
                candidates: 1000,
                duration_s: self.duration(),
                train_epochs_per_iter: 6,
                ..Stage2Config::default()
            }
        }
    }

    fn stage3(&self) -> Stage3Config {
        if self.paper_scale {
            Stage3Config {
                iterations: 100,
                offline_updates: 20,
                candidates: 10_000,
                duration_s: 60.0,
                ..Stage3Config::default()
            }
        } else {
            Stage3Config {
                iterations: 40,
                offline_updates: 5,
                candidates: 800,
                duration_s: self.duration(),
                ..Stage3Config::default()
            }
        }
    }

    fn baseline(&self) -> BaselineConfig {
        BaselineConfig {
            iterations: self.stage3().iterations,
            candidates: 1000,
            duration_s: self.duration(),
            ..BaselineConfig::default()
        }
    }

    fn scenario(&self) -> Scenario {
        Scenario::default_with_seed(self.seed).with_duration(self.duration())
    }
}

/// The configuration deployed while collecting the online collection `D_r`
/// (Sec. 4.1): the same moderately provisioned slice used throughout the
/// motivation experiments.
fn deployed_config() -> SliceConfig {
    SliceConfig::from_vec(&[10.0, 5.0, 0.0, 0.0, 10.0, 0.8])
}

fn real_collection(settings: &Settings, traffic: u32) -> Vec<f64> {
    let real = RealEnv::new(RealNetwork::prototype());
    collect_latencies(
        &real,
        &deployed_config(),
        &settings
            .scenario()
            .with_traffic(traffic)
            .with_seed(settings.seed + 77),
    )
}

fn finish(table: &Table, id: &str) {
    table.print();
    match table.write_csv(id) {
        Ok(path) => println!("wrote {}\n", path.display()),
        Err(err) => println!("(could not write CSV: {err})\n"),
    }
}

/// All experiment identifiers, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "table1", "fig2", "fig3", "fig4", "fig5", "fig8", "table4", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
        "table5", "fig22", "fig23", "fig24", "fig25", "fig26",
    ]
}

/// Runs one experiment by identifier.
pub fn run(id: &str, settings: &Settings) -> Result<(), String> {
    match id {
        "table1" => table1(settings),
        "fig2" => fig2(settings),
        "fig3" => fig3(settings),
        "fig4" => fig4(settings),
        "fig5" => fig5(settings),
        "fig8" => fig8(settings),
        "table4" => table4(settings),
        "fig9" => fig9(settings),
        "fig10" => fig10(settings),
        "fig11" => fig11(settings),
        "fig12" => fig12(settings),
        "fig13" => fig13(settings),
        "fig14" => fig14(settings),
        "fig15" => fig15(settings),
        "fig16" => fig16(settings),
        "fig17" => fig17(settings),
        "fig18" => fig18(settings),
        "fig19" => fig19(settings),
        "fig20" => fig20_21_table5(settings, "fig20"),
        "fig21" => fig20_21_table5(settings, "fig21"),
        "table5" => fig20_21_table5(settings, "table5"),
        "fig22" => fig22(settings),
        "fig23" => fig23(settings),
        "fig24" => fig24(settings),
        "fig25" => fig25_26(settings, true),
        "fig26" => fig25_26(settings, false),
        other => return Err(format!("unknown experiment id '{other}'")),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Motivation (Sec. 2)
// ---------------------------------------------------------------------------

fn table1(settings: &Settings) {
    let sim = Simulator::with_original_params();
    let real = RealNetwork::prototype();
    let scenario = settings.scenario();
    let cfg = SliceConfig::default_generous();
    let a = sim.run(&cfg, &scenario);
    let b = real.run(&cfg, &scenario);
    let mut t = Table::new(
        "Table 1: network performance comparison (10 MHz LTE)",
        &["metric", "simulator", "real network"],
    );
    t.add_row(vec![
        "Average Ping Delay (ms)".into(),
        format!("{:.1}", a.ping_delay_ms),
        format!("{:.1}", b.ping_delay_ms),
    ]);
    t.add_row(vec![
        "UL Throughput (Mbps)".into(),
        format!("{:.2}", a.ul_throughput_mbps),
        format!("{:.2}", b.ul_throughput_mbps),
    ]);
    t.add_row(vec![
        "DL Throughput (Mbps)".into(),
        format!("{:.2}", a.dl_throughput_mbps),
        format!("{:.2}", b.dl_throughput_mbps),
    ]);
    t.add_row(vec![
        "UL Packet Error Rate".into(),
        format!("{:.2e}", a.ul_per),
        format!("{:.2e}", b.ul_per),
    ]);
    t.add_row(vec![
        "DL Packet Error Rate".into(),
        format!("{:.2e}", a.dl_per),
        format!("{:.2e}", b.dl_per),
    ]);
    finish(&t, "table1");
}

fn latency_cdf_rows(label: &str, latencies: &[f64], t: &mut Table) {
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        t.add_row(vec![
            label.into(),
            format!("{q:.2}"),
            format!("{:.1}", stats::quantile(latencies, q).unwrap_or(0.0)),
        ]);
    }
}

fn fig2(settings: &Settings) {
    let sim = Simulator::with_original_params();
    let real = RealNetwork::prototype();
    let scenario = settings.scenario();
    let cfg = deployed_config();
    let a = sim.run(&cfg, &scenario);
    let b = real.run(&cfg, &scenario);
    let mut t = Table::new(
        "Fig 2: end-to-end latency CDF under one slice user (quantiles, ms)",
        &["system", "quantile", "latency_ms"],
    );
    latency_cdf_rows("simulator", &a.latencies_ms, &mut t);
    latency_cdf_rows("real", &b.latencies_ms, &mut t);
    finish(&t, "fig2");
}

fn fig3(settings: &Settings) {
    let sim = Simulator::with_original_params();
    let real = RealNetwork::prototype();
    let cfg = deployed_config();
    let mut t = Table::new(
        "Fig 3: end-to-end latency under different user traffic",
        &[
            "traffic",
            "sim_mean_ms",
            "sim_std_ms",
            "real_mean_ms",
            "real_std_ms",
        ],
    );
    for traffic in 1..=4u32 {
        let scenario = settings.scenario().with_traffic(traffic);
        let a = sim.run(&cfg, &scenario);
        let b = real.run(&cfg, &scenario);
        t.add_row(vec![
            traffic.to_string(),
            format!("{:.1}", a.mean_latency_ms()),
            format!("{:.1}", stats::std_dev(&a.latencies_ms)),
            format!("{:.1}", b.mean_latency_ms()),
            format!("{:.1}", stats::std_dev(&b.latencies_ms)),
        ]);
    }
    finish(&t, "fig3");
}

fn resource_grid() -> Vec<f64> {
    vec![0.1, 0.3, 0.5, 0.7, 0.9]
}

fn grid_config(cpu: f64, ul_bw: f64) -> SliceConfig {
    SliceConfig {
        bandwidth_ul: ul_bw * 50.0,
        bandwidth_dl: 10.0,
        mcs_offset_ul: 0.0,
        mcs_offset_dl: 0.0,
        backhaul_bw: 20.0,
        cpu_ratio: cpu,
    }
}

fn fig4(settings: &Settings) {
    let sim = Simulator::with_original_params();
    let real = RealNetwork::prototype();
    let mut t = Table::new(
        "Fig 4: KL-divergence heatmap over (CPU, UL bandwidth) usage",
        &["cpu_usage", "ul_bw_usage", "kl_divergence"],
    );
    for cpu in resource_grid() {
        for ul in resource_grid() {
            let cfg = grid_config(cpu, ul);
            let scenario = settings.scenario();
            let a = sim.run(&cfg.with_connectivity_floor(), &scenario);
            let b = real.run(&cfg.with_connectivity_floor(), &scenario);
            let kl = stats::kl_divergence(&b.latencies_ms, &a.latencies_ms).unwrap_or(f64::NAN);
            t.add_row(vec![
                format!("{:.0}", cpu * 100.0),
                format!("{:.0}", ul * 100.0),
                format!("{kl:.2}"),
            ]);
        }
    }
    finish(&t, "fig4");
}

fn footprint_table(title: &str, series: &[(&str, Vec<(f64, f64)>)]) -> Table {
    let mut t = Table::new(title, &["method", "iteration", "resource_usage", "qoe"]);
    for (name, history) in series {
        for (i, (usage, qoe)) in history.iter().enumerate() {
            t.add_row(vec![
                (*name).into(),
                i.to_string(),
                format!("{:.3}", usage),
                format!("{:.3}", qoe),
            ]);
        }
    }
    t
}

fn fig5(settings: &Settings) {
    // Motivation: footprint of two state-of-the-art online learners; most
    // explored actions violate the QoE requirement.
    let real = RealEnv::new(RealNetwork::prototype());
    let sim_env = SimulatorEnv::new(Simulator::with_original_params());
    let sla = Sla::paper_default();
    let scenario = settings.scenario();
    let base_cfg = settings.baseline();

    let bo = run_gp_ei_baseline(&real, &sla, &scenario, &base_cfg, settings.seed);
    let mut dlda = Dlda::train_offline(
        &sim_env,
        &sla,
        &scenario,
        3,
        settings.duration(),
        settings.seed,
    );
    let dlda_hist = dlda.run_online(&real, &sla, &scenario, &base_cfg, settings.seed + 1);

    let series = vec![
        (
            "BO",
            bo.iter().map(|o| (o.usage, o.qoe)).collect::<Vec<_>>(),
        ),
        (
            "DLDA",
            dlda_hist
                .iter()
                .map(|o| (o.usage, o.qoe))
                .collect::<Vec<_>>(),
        ),
    ];
    let t = footprint_table(
        "Fig 5: footprint of online learning methods (QoE threshold 0.9)",
        &series,
    );
    finish(&t, "fig5");
    let violations: usize = series
        .iter()
        .flat_map(|(_, h)| h.iter())
        .filter(|(_, q)| *q < sla.qoe_target)
        .count();
    let total: usize = series.iter().map(|(_, h)| h.len()).sum();
    println!("SLA violations during exploration: {violations}/{total}\n");
}

// ---------------------------------------------------------------------------
// Stage 1: learning-based simulator (Sec. 8.1)
// ---------------------------------------------------------------------------

fn run_stage1(
    settings: &Settings,
    surrogate: SurrogateKind,
    alpha: f64,
    parallel: usize,
    iterations: Option<usize>,
) -> atlas::Stage1Result {
    let mut cfg = settings.stage1();
    cfg.surrogate = surrogate;
    cfg.alpha = alpha;
    cfg.parallel = parallel;
    if let Some(n) = iterations {
        cfg.iterations = n;
    }
    let calib = SimulatorCalibration::new(cfg);
    let real_latencies = real_collection(settings, 1);
    calib.run(
        &real_latencies,
        &deployed_config(),
        &settings.scenario(),
        settings.seed + 11,
    )
}

fn fig8(settings: &Settings) {
    let ours = run_stage1(
        settings,
        SurrogateKind::Bnn,
        7.0,
        settings.stage1().parallel,
        None,
    );
    let gp = run_stage1(
        settings,
        SurrogateKind::Gp,
        7.0,
        settings.stage1().parallel,
        None,
    );
    let mut t = Table::new(
        "Fig 8: stage-1 searching progress (avg weighted discrepancy per iteration)",
        &["iteration", "ours_bnn", "gp_baseline"],
    );
    for (a, b) in ours.history.iter().zip(gp.history.iter()) {
        t.add_row(vec![
            a.iteration.to_string(),
            format!("{:.3}", a.avg_weighted_discrepancy),
            format!("{:.3}", b.avg_weighted_discrepancy),
        ]);
    }
    finish(&t, "fig8");
    println!(
        "best weighted discrepancy: ours {:.3}, GP {:.3}\n",
        ours.best_weighted, gp.best_weighted
    );
}

fn table4(settings: &Settings) {
    let real_latencies = real_collection(settings, 1);
    let calib = SimulatorCalibration::new(settings.stage1());
    let original = calib.evaluate(
        &SimParams::original(),
        &real_latencies,
        &deployed_config(),
        &settings.scenario(),
        settings.seed,
    );
    let gp = run_stage1(
        settings,
        SurrogateKind::Gp,
        7.0,
        settings.stage1().parallel,
        None,
    );
    let ours = run_stage1(
        settings,
        SurrogateKind::Bnn,
        7.0,
        settings.stage1().parallel,
        None,
    );
    let mut t = Table::new(
        "Table 4: details of the offline learning-based simulator",
        &[
            "method",
            "sim_to_real_discrepancy",
            "parameter_distance",
            "best_parameters",
        ],
    );
    let fmt_params = |p: &SimParams| {
        p.to_vec()
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    t.add_row(vec![
        "Original Simulator".into(),
        format!("{:.2}", original.discrepancy),
        "0.00".into(),
        fmt_params(&SimParams::original()),
    ]);
    t.add_row(vec![
        "Aug. Simulator, GP".into(),
        format!("{:.2}", gp.best_discrepancy),
        format!("{:.2}", gp.best_distance),
        fmt_params(&gp.best_params),
    ]);
    t.add_row(vec![
        "Aug. Simulator, Ours".into(),
        format!("{:.2}", ours.best_discrepancy),
        format!("{:.2}", ours.best_distance),
        fmt_params(&ours.best_params),
    ]);
    finish(&t, "table4");
}

fn fig9(settings: &Settings) {
    let gp = run_stage1(
        settings,
        SurrogateKind::Gp,
        7.0,
        settings.stage1().parallel,
        None,
    );
    let ours = run_stage1(
        settings,
        SurrogateKind::Bnn,
        7.0,
        settings.stage1().parallel,
        None,
    );
    let scenario = settings.scenario();
    let cfg = deployed_config();
    let real = RealNetwork::prototype().run(&cfg, &scenario);
    let sim_gp = Simulator::new(gp.best_params).run(&cfg, &scenario);
    let sim_ours = Simulator::new(ours.best_params).run(&cfg, &scenario);
    let mut t = Table::new(
        "Fig 9: latency CDF under calibrated simulators (quantiles, ms)",
        &["system", "quantile", "latency_ms"],
    );
    latency_cdf_rows("simulator_gp", &sim_gp.latencies_ms, &mut t);
    latency_cdf_rows("simulator_ours", &sim_ours.latencies_ms, &mut t);
    latency_cdf_rows("real_system", &real.latencies_ms, &mut t);
    finish(&t, "fig9");
}

fn fig10(settings: &Settings) {
    let ours = run_stage1(
        settings,
        SurrogateKind::Bnn,
        7.0,
        settings.stage1().parallel,
        None,
    );
    let sim = Simulator::new(ours.best_params);
    let real = RealNetwork::prototype();
    let cfg = deployed_config();
    let mut t = Table::new(
        "Fig 10: sim-to-real discrepancy under user mobility (calibrated simulator)",
        &["user_bs_distance", "kl_divergence"],
    );
    let mut cases: Vec<(String, Scenario)> = [1.0, 3.0, 5.0, 7.0, 10.0]
        .iter()
        .map(|d| (format!("{d}"), settings.scenario().with_distance(*d)))
        .collect();
    cases.push((
        "random".into(),
        Scenario {
            mobility: atlas::Mobility::RandomWalk {
                max_distance_m: 10.0,
            },
            ..settings.scenario()
        },
    ));
    for (label, scenario) in cases {
        let a = sim.run(&cfg, &scenario);
        let b = real.run(&cfg, &scenario);
        let kl = stats::kl_divergence(&b.latencies_ms, &a.latencies_ms).unwrap_or(f64::NAN);
        t.add_row(vec![label, format!("{kl:.2}")]);
    }
    finish(&t, "fig10");
}

fn fig11(settings: &Settings) {
    let real = RealNetwork::prototype();
    let cfg = deployed_config();
    let mut t = Table::new(
        "Fig 11: slice latency under extra mobile users (isolation)",
        &["extra_users", "mean_latency_ms", "p95_latency_ms"],
    );
    for extra in 0..=2u32 {
        let scenario = Scenario {
            extra_background_users: extra,
            ..settings.scenario()
        };
        let trace = real.run(&cfg, &scenario);
        t.add_row(vec![
            extra.to_string(),
            format!("{:.1}", trace.mean_latency_ms()),
            format!(
                "{:.1}",
                stats::quantile(&trace.latencies_ms, 0.95).unwrap_or(0.0)
            ),
        ]);
    }
    finish(&t, "fig11");
}

fn fig12(settings: &Settings) {
    let mut t = Table::new(
        "Fig 12: Pareto boundary of the augmented simulator (alpha sweep)",
        &["alpha", "sim_to_real_discrepancy", "parameter_distance"],
    );
    for alpha in [1.0, 3.0, 7.0, 15.0, 30.0] {
        let result = run_stage1(
            settings,
            SurrogateKind::Bnn,
            alpha,
            settings.stage1().parallel,
            Some(settings.stage1().iterations / 2),
        );
        t.add_row(vec![
            format!("{alpha}"),
            format!("{:.3}", result.best_discrepancy),
            format!("{:.3}", result.best_distance),
        ]);
    }
    finish(&t, "fig12");
}

fn fig13(settings: &Settings) {
    let mut t = Table::new(
        "Fig 13: stage-1 searching progress with parallel queries",
        &["parallel", "iteration", "avg_weighted_discrepancy"],
    );
    for parallel in [1usize, 2, 4, 8] {
        let result = run_stage1(
            settings,
            SurrogateKind::Bnn,
            7.0,
            parallel,
            Some(settings.stage1().iterations / 2),
        );
        for h in &result.history {
            t.add_row(vec![
                parallel.to_string(),
                h.iteration.to_string(),
                format!("{:.3}", h.avg_weighted_discrepancy),
            ]);
        }
    }
    finish(&t, "fig13");
}

fn fig14(settings: &Settings) {
    let ours = run_stage1(
        settings,
        SurrogateKind::Bnn,
        7.0,
        settings.stage1().parallel,
        None,
    );
    let original = Simulator::with_original_params();
    let calibrated = Simulator::new(ours.best_params);
    let real = RealNetwork::prototype();
    let cfg = deployed_config();
    let mut t = Table::new(
        "Fig 14: sim-to-real discrepancy under user traffic (original vs calibrated)",
        &[
            "traffic",
            "original_simulator",
            "calibrated_ours",
            "reduction_pct",
        ],
    );
    for traffic in 1..=4u32 {
        let scenario = settings.scenario().with_traffic(traffic);
        let target = real.run(&cfg, &scenario);
        let kl_orig = stats::kl_divergence(
            &target.latencies_ms,
            &original.run(&cfg, &scenario).latencies_ms,
        )
        .unwrap_or(f64::NAN);
        let kl_ours = stats::kl_divergence(
            &target.latencies_ms,
            &calibrated.run(&cfg, &scenario).latencies_ms,
        )
        .unwrap_or(f64::NAN);
        let reduction = (1.0 - kl_ours / kl_orig) * 100.0;
        t.add_row(vec![
            traffic.to_string(),
            format!("{kl_orig:.2}"),
            format!("{kl_ours:.2}"),
            format!("{reduction:.1}"),
        ]);
    }
    finish(&t, "fig14");
}

fn fig15(settings: &Settings) {
    let ours = run_stage1(
        settings,
        SurrogateKind::Bnn,
        7.0,
        settings.stage1().parallel,
        None,
    );
    let original = Simulator::with_original_params();
    let calibrated = Simulator::new(ours.best_params);
    let real = RealNetwork::prototype();
    let mut t = Table::new(
        "Fig 15: discrepancy reduction (1.0 = 100%) under resource configurations",
        &["cpu_usage", "ul_bw_usage", "reduction"],
    );
    for cpu in resource_grid() {
        for ul in resource_grid() {
            let cfg = grid_config(cpu, ul).with_connectivity_floor();
            let scenario = settings.scenario();
            let target = real.run(&cfg, &scenario);
            let kl_orig = stats::kl_divergence(
                &target.latencies_ms,
                &original.run(&cfg, &scenario).latencies_ms,
            )
            .unwrap_or(f64::NAN);
            let kl_ours = stats::kl_divergence(
                &target.latencies_ms,
                &calibrated.run(&cfg, &scenario).latencies_ms,
            )
            .unwrap_or(f64::NAN);
            let reduction = 1.0 - kl_ours / kl_orig.max(1e-9);
            t.add_row(vec![
                format!("{:.0}", cpu * 100.0),
                format!("{:.0}", ul * 100.0),
                format!("{reduction:.2}"),
            ]);
        }
    }
    finish(&t, "fig15");
}

// ---------------------------------------------------------------------------
// Stage 2: offline training (Sec. 8.2)
// ---------------------------------------------------------------------------

fn augmented_simulator(settings: &Settings) -> Simulator {
    let ours = run_stage1(
        settings,
        SurrogateKind::Bnn,
        7.0,
        settings.stage1().parallel,
        None,
    );
    Simulator::new(ours.best_params)
}

fn fig16(settings: &Settings) {
    let sim_env = SimulatorEnv::new(augmented_simulator(settings));
    let trainer = OfflineTrainer::new(settings.stage2(), Sla::paper_default());
    let result = trainer.run(&sim_env, &settings.scenario(), settings.seed + 23);
    let mut t = Table::new(
        "Fig 16: offline training progress (ours)",
        &["iteration", "avg_resource_usage", "avg_qoe", "multiplier"],
    );
    for h in &result.history {
        t.add_row(vec![
            h.iteration.to_string(),
            format!("{:.3}", h.avg_usage),
            format!("{:.3}", h.avg_qoe),
            format!("{:.3}", h.multiplier),
        ]);
    }
    finish(&t, "fig16");
    println!(
        "best offline configuration: usage {:.1}% qoe {:.3} ({:?})\n",
        result.best_usage * 100.0,
        result.best_qoe,
        result.best_config
    );
}

fn offline_methods() -> Vec<(&'static str, OfflineStrategy)> {
    vec![
        ("Ours", OfflineStrategy::ParallelThompson),
        (
            "GP-EI",
            OfflineStrategy::GpAcquisition(Acquisition::ExpectedImprovement),
        ),
        (
            "GP-PI",
            OfflineStrategy::GpAcquisition(Acquisition::ProbabilityOfImprovement),
        ),
        (
            "GP-UCB",
            OfflineStrategy::GpAcquisition(Acquisition::GpUcb {
                delta: 0.1,
                dim: SliceConfig::DIM,
            }),
        ),
    ]
}

fn fig17(settings: &Settings) {
    let simulator = augmented_simulator(settings);
    let sim_env = SimulatorEnv::new(simulator);
    let sla = Sla::paper_default();
    let mut t = Table::new(
        "Fig 17: offline policies of different methods (E = 0.9, Y = 300 ms)",
        &["method", "resource_usage_pct", "qoe"],
    );
    for (name, strategy) in offline_methods() {
        let mut cfg = settings.stage2();
        cfg.strategy = strategy;
        let trainer = OfflineTrainer::new(cfg, sla);
        let result = trainer.run(&sim_env, &settings.scenario(), settings.seed + 31);
        t.add_row(vec![
            name.into(),
            format!("{:.2}", result.best_usage * 100.0),
            format!("{:.3}", result.best_qoe),
        ]);
    }
    // DLDA offline policy: grid-trained DNN picks its cheapest predicted
    // feasible configuration, evaluated in the simulator.
    let dlda = Dlda::train_offline(
        &sim_env,
        &sla,
        &settings.scenario(),
        3,
        settings.duration(),
        settings.seed,
    );
    let chosen = dlda.select_config(&sla, 1, 5000, settings.seed + 5);
    let sample = sim_env.query(&chosen, &settings.scenario(), &sla);
    t.add_row(vec![
        "DLDA".into(),
        format!("{:.2}", sample.usage * 100.0),
        format!("{:.3}", sample.qoe),
    ]);
    finish(&t, "fig17");
}

fn fig18(settings: &Settings) {
    let simulator = augmented_simulator(settings);
    let sim_env = SimulatorEnv::new(simulator);
    let mut t = Table::new(
        "Fig 18: offline Pareto boundary under different availability E",
        &[
            "method",
            "qoe_requirement",
            "avg_resource_usage_pct",
            "achieved_qoe",
        ],
    );
    for e in [0.7, 0.8, 0.9, 0.95] {
        let sla = Sla::new(300.0, e);
        for (name, strategy) in [
            ("Ours", OfflineStrategy::ParallelThompson),
            (
                "GP-EI",
                OfflineStrategy::GpAcquisition(Acquisition::ExpectedImprovement),
            ),
        ] {
            let mut cfg = settings.stage2();
            cfg.strategy = strategy;
            cfg.iterations = (cfg.iterations / 2).max(20);
            let trainer = OfflineTrainer::new(cfg, sla);
            let result = trainer.run(&sim_env, &settings.scenario(), settings.seed + 37);
            t.add_row(vec![
                name.into(),
                format!("{e:.2}"),
                format!("{:.2}", result.best_usage * 100.0),
                format!("{:.3}", result.best_qoe),
            ]);
        }
        // DLDA at this requirement.
        let dlda = Dlda::train_offline(
            &sim_env,
            &sla,
            &settings.scenario(),
            3,
            settings.duration(),
            settings.seed,
        );
        let chosen = dlda.select_config(&sla, 1, 5000, settings.seed + 7);
        let sample = sim_env.query(&chosen, &settings.scenario(), &sla);
        t.add_row(vec![
            "DLDA".into(),
            format!("{e:.2}"),
            format!("{:.2}", sample.usage * 100.0),
            format!("{:.3}", sample.qoe),
        ]);
    }
    finish(&t, "fig18");
}

fn fig19(settings: &Settings) {
    let simulator = augmented_simulator(settings);
    let sim_env = SimulatorEnv::new(simulator);
    let mut t = Table::new(
        "Fig 19: average resource usage under different latency thresholds",
        &["threshold_ms", "ours_usage_pct", "dlda_usage_pct"],
    );
    for y in [300.0, 400.0, 500.0] {
        let sla = Sla::new(y, 0.9);
        let mut cfg = settings.stage2();
        cfg.iterations = (cfg.iterations / 2).max(20);
        let trainer = OfflineTrainer::new(cfg, sla);
        let ours = trainer.run(&sim_env, &settings.scenario(), settings.seed + 41);
        let dlda = Dlda::train_offline(
            &sim_env,
            &sla,
            &settings.scenario(),
            3,
            settings.duration(),
            settings.seed,
        );
        let chosen = dlda.select_config(&sla, 1, 5000, settings.seed + 9);
        let dlda_sample = sim_env.query(&chosen, &settings.scenario(), &sla);
        t.add_row(vec![
            format!("{y:.0}"),
            format!("{:.2}", ours.best_usage * 100.0),
            format!("{:.2}", dlda_sample.usage * 100.0),
        ]);
    }
    finish(&t, "fig19");
}

// ---------------------------------------------------------------------------
// Stage 3: online learning (Sec. 8.3)
// ---------------------------------------------------------------------------

struct OnlineComparison {
    names: Vec<&'static str>,
    histories: Vec<Vec<(f64, f64)>>,
    reference: (f64, f64),
    offline_queries: Vec<usize>,
}

fn online_comparison(settings: &Settings, traffic: u32, threshold_ms: f64) -> OnlineComparison {
    let sla = Sla::new(threshold_ms, 0.9);
    let scenario = settings.scenario().with_traffic(traffic);
    let real_net = RealNetwork::prototype();
    let real = RealEnv::new(real_net);
    let simulator = augmented_simulator(settings);
    let sim_env = SimulatorEnv::new(simulator);

    // Offline stage 2 for Atlas.
    let trainer = OfflineTrainer::new(settings.stage2(), sla);
    let offline = trainer.run(&sim_env, &scenario, settings.seed + 53);

    // Ours.
    let stage3 = settings.stage3();
    let learner = OnlineLearner::new(stage3, sla, simulator, &offline);
    let ours = learner.run(&real, &scenario, settings.seed + 61);

    // Baselines.
    let base_cfg = settings.baseline();
    let baseline = run_gp_ei_baseline(&real, &sla, &scenario, &base_cfg, settings.seed + 63);
    let virtual_edge = run_virtual_edge(&real, &sla, &scenario, &base_cfg, settings.seed + 67);
    let mut dlda = Dlda::train_offline(
        &sim_env,
        &sla,
        &scenario,
        3,
        settings.duration(),
        settings.seed + 69,
    );
    let dlda_hist = dlda.run_online(&real, &sla, &scenario, &base_cfg, settings.seed + 71);

    // Oracle reference policy for the regret metrics.
    let reference = oracle_reference(
        &real,
        &sla,
        &scenario,
        if settings.paper_scale { 300 } else { 80 },
        settings.duration(),
        settings.seed + 73,
    );

    OnlineComparison {
        names: vec!["Baseline", "VirtualEdge", "DLDA", "Ours"],
        histories: vec![
            baseline.iter().map(|o| (o.usage, o.qoe)).collect(),
            virtual_edge.iter().map(|o| (o.usage, o.qoe)).collect(),
            dlda_hist.iter().map(|o| (o.usage, o.qoe)).collect(),
            ours.history.iter().map(|o| (o.usage, o.qoe)).collect(),
        ],
        reference,
        offline_queries: vec![0, 0, 0, stage3.offline_updates * stage3.iterations],
    }
}

fn fig20_21_table5(settings: &Settings, which: &str) {
    let cmp = online_comparison(settings, 1, 300.0);
    match which {
        "fig20" => {
            let mut t = Table::new(
                "Fig 20: online training progress — average resource usage (%)",
                &["iteration", "Baseline", "VirtualEdge", "DLDA", "Ours"],
            );
            let n = cmp.histories[0].len();
            for i in 0..n {
                let mut row = vec![i.to_string()];
                for h in &cmp.histories {
                    let avg: f64 =
                        h[..=i].iter().map(|(u, _)| u).sum::<f64>() / (i + 1) as f64 * 100.0;
                    row.push(format!("{avg:.2}"));
                }
                t.add_row(row);
            }
            finish(&t, "fig20");
        }
        "fig21" => {
            let mut t = Table::new(
                "Fig 21: online training progress — average QoE",
                &["iteration", "Baseline", "VirtualEdge", "DLDA", "Ours"],
            );
            let n = cmp.histories[0].len();
            for i in 0..n {
                let mut row = vec![i.to_string()];
                for h in &cmp.histories {
                    let avg: f64 = h[..=i].iter().map(|(_, q)| q).sum::<f64>() / (i + 1) as f64;
                    row.push(format!("{avg:.3}"));
                }
                t.add_row(row);
            }
            finish(&t, "fig21");
        }
        _ => {
            let mut t = Table::new(
                "Table 5: online learning under different methods",
                &[
                    "method",
                    "avg_usage_regret_pct",
                    "avg_qoe_regret",
                    "offline_queries",
                ],
            );
            for (i, name) in cmp.names.iter().enumerate() {
                let (u, q) = average_regret(&cmp.histories[i], cmp.reference.0, cmp.reference.1);
                t.add_row(vec![
                    (*name).into(),
                    format!("{:.2}", u * 100.0),
                    format!("{q:.3}"),
                    cmp.offline_queries[i].to_string(),
                ]);
            }
            println!(
                "reference policy: usage {:.2}% qoe {:.3}",
                cmp.reference.0 * 100.0,
                cmp.reference.1
            );
            finish(&t, "table5");
        }
    }
}

fn fig22(settings: &Settings) {
    let sla = Sla::paper_default();
    let scenario = settings.scenario();
    let real = RealEnv::new(RealNetwork::prototype());
    let simulator = augmented_simulator(settings);
    let sim_env = SimulatorEnv::new(simulator);
    let trainer = OfflineTrainer::new(settings.stage2(), sla);
    let offline = trainer.run(&sim_env, &scenario, settings.seed + 81);

    let acquisitions: Vec<(&str, Acquisition)> = vec![
        ("PI", Acquisition::ProbabilityOfImprovement),
        ("EI", Acquisition::ExpectedImprovement),
        (
            "GP-UCB",
            Acquisition::GpUcb {
                delta: 0.1,
                dim: SliceConfig::DIM,
            },
        ),
        ("Ours (cRGP-UCB)", Acquisition::conservative_default()),
    ];
    let mut series = Vec::new();
    for (name, acq) in &acquisitions {
        let mut cfg = settings.stage3();
        cfg.acquisition = *acq;
        let learner = OnlineLearner::new(cfg, sla, simulator, &offline);
        let result = learner.run(&real, &scenario, settings.seed + 83);
        series.push((
            *name,
            result
                .history
                .iter()
                .map(|o| (o.usage, o.qoe))
                .collect::<Vec<_>>(),
        ));
    }
    let t = footprint_table(
        "Fig 22: online footprint under different acquisition functions",
        &series,
    );
    finish(&t, "fig22");
}

fn fig23(settings: &Settings) {
    let sla = Sla::paper_default();
    let scenario = settings.scenario();
    let real = RealEnv::new(RealNetwork::prototype());
    let simulator = augmented_simulator(settings);
    let sim_env = SimulatorEnv::new(simulator);
    let trainer = OfflineTrainer::new(settings.stage2(), sla);
    let offline = trainer.run(&sim_env, &scenario, settings.seed + 91);
    let reference = oracle_reference(
        &real,
        &sla,
        &scenario,
        if settings.paper_scale { 300 } else { 80 },
        settings.duration(),
        settings.seed + 93,
    );

    let variants: Vec<(&str, OnlineModel, bool)> = vec![
        ("Ours", OnlineModel::GpResidual, true),
        ("BNN", OnlineModel::BnnResidual, true),
        ("BNN-Cont'd", OnlineModel::BnnContinued, true),
        ("No Offline Acc.", OnlineModel::GpResidual, false),
    ];
    let mut t = Table::new(
        "Fig 23: online models ablation (average regrets)",
        &["variant", "avg_usage_regret_pct", "avg_qoe_regret"],
    );
    for (name, model, acceleration) in variants {
        let mut cfg = settings.stage3();
        cfg.online_model = model;
        cfg.offline_acceleration = acceleration;
        let learner = OnlineLearner::new(cfg, sla, simulator, &offline);
        let result = learner.run(&real, &scenario, settings.seed + 97);
        let (u, q) = average_regret(&result.usage_qoe_history(), reference.0, reference.1);
        t.add_row(vec![
            name.into(),
            format!("{:.2}", u * 100.0),
            format!("{q:.3}"),
        ]);
    }
    finish(&t, "fig23");
}

fn fig24(settings: &Settings) {
    use atlas::pipeline::{run_atlas, AtlasConfig};
    let real = RealNetwork::prototype();
    let scenario = settings.scenario();
    let base = AtlasConfig {
        stage1: settings.stage1(),
        stage2: settings.stage2(),
        stage3: settings.stage3(),
        sla: Sla::paper_default(),
        deployed_config: deployed_config(),
        ..AtlasConfig::default()
    };
    let variants: Vec<(&str, AtlasConfig)> = vec![
        ("Ours", base),
        (
            "No stage 1",
            AtlasConfig {
                skip_stage1: true,
                ..base
            },
        ),
        (
            "No stage 2",
            AtlasConfig {
                skip_stage2: true,
                ..base
            },
        ),
        (
            "No stage 3",
            AtlasConfig {
                skip_stage3: true,
                ..base
            },
        ),
    ];
    let mut series = Vec::new();
    for (name, cfg) in &variants {
        let outcome = run_atlas(&real, &scenario, cfg, settings.seed + 101);
        series.push((
            *name,
            outcome
                .stage3
                .history
                .iter()
                .map(|o| (o.usage, o.qoe))
                .collect::<Vec<_>>(),
        ));
    }
    let t = footprint_table("Fig 24: impact of individual Atlas components", &series);
    finish(&t, "fig24");
}

fn fig25_26(settings: &Settings, qoe_regret: bool) {
    let mut t = Table::new(
        if qoe_regret {
            "Fig 25: average QoE regret under different user traffic (Y = 500 ms)"
        } else {
            "Fig 26: average usage regret (%) under different user traffic (Y = 500 ms)"
        },
        &["traffic", "Baseline", "VirtualEdge", "DLDA", "Ours"],
    );
    for traffic in 2..=4u32 {
        let cmp = online_comparison(settings, traffic, 500.0);
        let mut row = vec![traffic.to_string()];
        for h in &cmp.histories {
            let (u, q) = average_regret(h, cmp.reference.0, cmp.reference.1);
            row.push(if qoe_regret {
                format!("{q:.3}")
            } else {
                format!("{:.2}", u * 100.0)
            });
        }
        t.add_row(row);
    }
    finish(&t, if qoe_regret { "fig25" } else { "fig26" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_is_dispatchable() {
        // Only check the dispatcher wiring (not the experiments themselves,
        // which are exercised by the harness): an unknown id must error.
        assert!(run("not-an-experiment", &Settings::default()).is_err());
        assert_eq!(all_ids().len(), 26);
        for id in all_ids() {
            // The match arms exist for every id (compile-time guarantee is
            // enough; we just check no id is empty).
            assert!(!id.is_empty());
        }
    }

    #[test]
    fn settings_scale_with_paper_flag() {
        let quick = Settings::default();
        let paper = Settings {
            paper_scale: true,
            ..Settings::default()
        };
        assert!(paper.stage1().iterations > quick.stage1().iterations);
        assert!(paper.stage2().iterations > quick.stage2().iterations);
        assert!(paper.duration() > quick.duration());
    }

    #[test]
    fn deployed_config_is_moderately_provisioned() {
        let usage = deployed_config().resource_usage();
        assert!(usage > 0.05 && usage < 0.5);
    }
}
