//! GP hot-path benchmark emitting `BENCH_gp.json`.
//!
//! Measures the cost of absorbing one online observation into the GP at
//! several training-set sizes, comparing the seed's full-refit path
//! (`GaussianProcess::fit` on all n points, hyper-parameter grid included)
//! against the incremental `GaussianProcess::observe`, plus the per-point
//! vs batched prediction cost over a stage-sized candidate set. Results go
//! to `BENCH_gp.json` (override with `--out <path>`) as one point on the
//! repository's performance trajectory; CI runs it with `--quick`.
//!
//! ```text
//! cargo run --release -p atlas-bench --bin gp_bench -- [--quick] [--out BENCH_gp.json]
//! ```

use atlas_bayesopt::SearchSpace;
use atlas_gp::{
    GaussianProcess, GpConfig, GridMaintenance, ScoringPrecision, WindowPolicy,
    GRID_PAR_MIN_CANDIDATES, GRID_PAR_MIN_N, PREDICT_PAR_MIN_CHUNK,
};
use atlas_math::linalg::{
    l2_distance, Matrix, PackedCholesky, DEFAULT_CHOL_BLOCK, DEFAULT_COL_TILE, DEFAULT_ROW_BLOCK,
};
use atlas_math::rng::seeded_rng;
use std::fmt::Write as _;
use std::time::Instant;

const DIM: usize = 6;

fn dataset(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = seeded_rng(7);
    let space = SearchSpace::unit(DIM);
    let xs = space.sample_n(n, &mut rng);
    let ys = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() / DIM as f64)
        .collect();
    (xs, ys)
}

/// Median of a set of timing samples (milliseconds).
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    median(
        (0..reps.max(1))
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    )
}

struct SizePoint {
    n: usize,
    full_refit_ms: f64,
    incremental_ms: f64,
}

impl SizePoint {
    fn speedup(&self) -> f64 {
        self.full_refit_ms / self.incremental_ms
    }
}

/// Least-squares slope of `ln t` against `ln n` — the measured scaling
/// exponent (≈3 for the cubic full refit, ≈2 for the incremental path).
fn scaling_exponent(points: &[SizePoint], t: impl Fn(&SizePoint) -> f64) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|p| ((p.n as f64).ln(), t(p).ln()))
        .collect();
    let mean_x = logs.iter().map(|(x, _)| x).sum::<f64>() / logs.len() as f64;
    let mean_y = logs.iter().map(|(_, y)| y).sum::<f64>() / logs.len() as f64;
    let cov: f64 = logs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let var: f64 = logs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    cov / var
}

/// The pre-blocking multi-RHS forward sweep, frozen verbatim from the
/// column-tiled implementation this repository shipped before the
/// row-blocked kernels landed. It lives in the bench binary so the
/// `blocked_kernels` section always measures against the code the
/// blocking actually replaced — benchmarking the new helper at
/// `row_block = 1` instead would overstate the speedup, because the
/// jammed inner loops degenerate badly at that width.
fn pre_blocking_solve_lower_multi_tiled(l: &Matrix, b: &Matrix, tile: usize) -> Matrix {
    let n = l.rows();
    let m = b.cols();
    let tile = tile.max(1);
    let mut x = b.clone();
    let ldata = l.as_slice();
    let mut c0 = 0;
    while c0 < m {
        let c1 = (c0 + tile).min(m);
        for i in 0..n {
            let (solved, rest) = x.as_mut_slice().split_at_mut(i * m);
            let row_i = &mut rest[c0..c1];
            for (j, xj) in solved.chunks_exact(m).enumerate() {
                let lij = ldata[i * n + j];
                for (xi, xv) in row_i.iter_mut().zip(&xj[c0..c1]) {
                    *xi -= lij * *xv;
                }
            }
            let d = ldata[i * n + i];
            for xi in row_i.iter_mut() {
                *xi /= d;
            }
        }
        c0 = c1;
    }
    x
}

/// Kernel-shaped SPD system over a seeded unit-cube dataset: the exact
/// matrix structure every GP hot loop factors and solves against.
fn kernel_system(n: usize) -> (Vec<Vec<f64>>, Matrix) {
    let (xs, _) = dataset(n);
    let mut k = Matrix::from_fn(n, n, |i, j| (-l2_distance(&xs[i], &xs[j])).exp());
    k.add_diagonal(1e-3);
    (xs, k)
}

/// Indices of the `k` largest predictive means, returned sorted so two
/// rankings can be compared as membership sets (ties may legitimately
/// swap order between precisions).
fn top_k_indices(preds: &[(f64, f64)], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..preds.len()).collect();
    idx.sort_by(|&a, &b| {
        preds[b]
            .0
            .partial_cmp(&preds[a].0)
            .expect("finite predictions")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_gp.json")
        .to_string();
    let reps = if quick { 3 } else { 9 };
    let sizes: &[usize] = if quick {
        &[50, 100, 200]
    } else {
        &[50, 100, 200, 400]
    };

    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let (xs, ys) = dataset(n);
        let full_refit_ms = median_ms(reps, || {
            let mut gp = GaussianProcess::default_matern();
            gp.fit(&xs, &ys).unwrap();
        });
        let mut warm = GaussianProcess::default_matern();
        warm.fit(&xs[..n - 1], &ys[..n - 1]).unwrap();
        // Time only the observe call; the clone restoring the warm state
        // happens outside the timed region.
        let incremental_ms = median(
            (0..reps)
                .map(|_| {
                    let mut gp = warm.clone();
                    let input = xs[n - 1].clone();
                    let start = Instant::now();
                    gp.observe(input, ys[n - 1]).unwrap();
                    start.elapsed().as_secs_f64() * 1e3
                })
                .collect(),
        );
        let point = SizePoint {
            n,
            full_refit_ms,
            incremental_ms,
        };
        println!(
            "n = {:>4}: full refit {:>9.3} ms, incremental observe {:>8.3} ms, speedup {:>6.1}x",
            n,
            point.full_refit_ms,
            point.incremental_ms,
            point.speedup()
        );
        points.push(point);
    }

    // Batched prediction at the largest measured size.
    let n = *sizes.last().expect("at least one size");
    let (xs, ys) = dataset(n);
    let mut gp = GaussianProcess::default_matern();
    gp.fit(&xs, &ys).unwrap();
    let mut rng = seeded_rng(9);
    let candidates = SearchSpace::unit(DIM).sample_n(2000, &mut rng);
    let per_point_ms = median_ms(reps, || {
        let _: f64 = candidates.iter().map(|x| gp.predict(x).0).sum();
    });
    let batched_ms = median_ms(reps, || {
        let _ = gp.predict_batch_par(&candidates);
    });
    println!(
        "predict 2000 candidates @ n = {n}: per-point {per_point_ms:.3} ms, batched {batched_ms:.3} ms"
    );

    // ---- column-tile calibration (cache-resident multi-RHS solve) -------
    // An n×n kernel-shaped SPD system with a stage-sized RHS block: the
    // exact memory shape of `predict_batch`'s forward solve. Every tile
    // width gives bit-identical results, so the sweep is purely a
    // performance calibration of `DEFAULT_COL_TILE`.
    let mut k = Matrix::from_fn(n, n, |i, j| (-l2_distance(&xs[i], &xs[j])).exp());
    k.add_diagonal(1e-3);
    let packed = PackedCholesky::cholesky(&k).expect("SPD kernel system");
    let rhs = Matrix::from_fn(n, candidates.len(), |i, j| {
        (-l2_distance(&xs[i], &candidates[j])).exp()
    });
    let tile_points: Vec<(usize, f64)> = [8, 16, 32, 64, 128, 256, candidates.len()]
        .into_iter()
        .map(|tile| {
            let ms = median_ms(reps, || {
                let _ = packed.solve_lower_multi_tiled(&rhs, tile).unwrap();
            });
            println!(
                "multi-RHS solve n = {n}, m = {}: tile {tile:>5} -> {ms:.3} ms",
                candidates.len()
            );
            (tile, ms)
        })
        .collect();
    // The tile this sweep actually favoured, recorded next to the chosen
    // default so the committed JSON never silently contradicts the
    // constant it exists to calibrate (on the 1-CPU benchmark container
    // the 64-256 band wanders by ~10% run to run; see the ROADMAP
    // re-calibration item before moving `DEFAULT_COL_TILE`).
    let measured_best_tile = tile_points
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite timings"))
        .expect("non-empty sweep")
        .0;

    // ---- blocked dense-kernel calibration -------------------------------
    // Right-looking blocked Cholesky vs the scalar kernel it replaced, on
    // kernel-shaped SPD systems. Every block width factors bit-identically
    // to `cholesky_scalar` (the blocking is pure scheduling), so the sweep
    // is a performance calibration of `DEFAULT_CHOL_BLOCK`; the scalar
    // kernel stays in-tree precisely so this speedup keeps an honest
    // baseline. n = 400 is always swept — CI's quick mode asserts the
    // blocked kernel is no slower than scalar there.
    let chol_sizes: &[usize] = if quick { &[400] } else { &[200, 400, 800] };
    let chol_blocks: [usize; 6] = [8, 16, 24, 32, 48, 64];
    struct CholPoint {
        n: usize,
        scalar_ms: f64,
        blocked: Vec<(usize, f64)>,
    }
    let chol_points: Vec<CholPoint> = chol_sizes
        .iter()
        .map(|&cn| {
            let (_, ck) = kernel_system(cn);
            let scalar_ms = median_ms(reps, || {
                let _ = ck.cholesky_scalar().unwrap();
            });
            let blocked: Vec<(usize, f64)> = chol_blocks
                .iter()
                .map(|&block| {
                    let ms = median_ms(reps, || {
                        let _ = ck.cholesky_blocked(block).unwrap();
                    });
                    println!(
                        "cholesky n = {cn}: block {block:>2} -> {ms:>8.3} ms \
                         (scalar {scalar_ms:.3} ms, {:.2}x)",
                        scalar_ms / ms
                    );
                    (block, ms)
                })
                .collect();
            CholPoint {
                n: cn,
                scalar_ms,
                blocked,
            }
        })
        .collect();
    let default_block_ms = |p: &CholPoint| {
        p.blocked
            .iter()
            .find(|(b, _)| *b == DEFAULT_CHOL_BLOCK)
            .expect("default block is in the sweep")
            .1
    };
    let chol_400 = chol_points
        .iter()
        .find(|p| p.n == 400)
        .expect("n = 400 is always swept");
    let chol_speedup_400 = chol_400.scalar_ms / default_block_ms(chol_400);
    let chol_best_block_400 = chol_400
        .blocked
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite timings"))
        .expect("non-empty sweep")
        .0;

    // Row-blocked multi-RHS forward solve vs the pre-blocking column-tiled
    // sweep (frozen verbatim above) at its shipped tile of 64, on the
    // stage-sized 400 × 2000 shape the acquisition scorer solves.
    let solve_n = 400usize;
    let (sxs, sk) = kernel_system(solve_n);
    let sl = sk.cholesky().expect("SPD kernel system");
    let srhs = Matrix::from_fn(solve_n, candidates.len(), |i, j| {
        (-l2_distance(&sxs[i], &candidates[j])).exp()
    });
    let pre_blocking_ms = median_ms(reps, || {
        let _ = pre_blocking_solve_lower_multi_tiled(&sl, &srhs, 64);
    });
    println!(
        "forward solve {solve_n} x {}: pre-blocking tile 64 -> {pre_blocking_ms:.3} ms",
        candidates.len()
    );
    let solve_points: Vec<(usize, usize, f64)> = [64usize, 128, 256]
        .into_iter()
        .flat_map(|col_tile| {
            [8usize, 16, 32, 64]
                .into_iter()
                .map(move |row_block| (col_tile, row_block))
        })
        .map(|(col_tile, row_block)| {
            let ms = median_ms(reps, || {
                let _ = sl
                    .solve_lower_triangular_multi_blocked(&srhs, col_tile, row_block)
                    .unwrap();
            });
            println!(
                "forward solve {solve_n} x {}: tile {col_tile:>3}, row block {row_block:>2} \
                 -> {ms:>7.3} ms ({:.2}x vs pre-blocking)",
                candidates.len(),
                pre_blocking_ms / ms
            );
            (col_tile, row_block, ms)
        })
        .collect();
    let chosen_solve_ms = solve_points
        .iter()
        .find(|(t, r, _)| *t == DEFAULT_COL_TILE && *r == DEFAULT_ROW_BLOCK)
        .expect("chosen defaults are in the sweep")
        .2;
    let solve_speedup = pre_blocking_ms / chosen_solve_ms;
    let solve_best = solve_points
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite timings"))
        .expect("non-empty sweep");

    // Batched bordering appends: one `append_rows` call amortising the
    // shared n-prefix solve across k rows vs the k sequential
    // `append_row` calls it replaces (bit-identical factors either way).
    let append_k = 16usize;
    let append_base = solve_n - append_k;
    let base_packed = {
        let sub = Matrix::from_fn(append_base, append_base, |i, j| sk[(i, j)]);
        PackedCholesky::cholesky(&sub).expect("SPD principal submatrix")
    };
    let border_rows: Vec<Vec<f64>> = (append_base..solve_n)
        .map(|r| (0..=r).map(|j| sk[(r, j)]).collect())
        .collect();
    let append_seq_ms = median_ms(reps, || {
        let mut f = base_packed.clone();
        for row in &border_rows {
            f.append_row(row).unwrap();
        }
    });
    let append_batched_ms = median_ms(reps, || {
        let mut f = base_packed.clone();
        f.append_rows(&border_rows).unwrap();
    });
    println!(
        "append {append_k} rows @ n = {append_base}: sequential {append_seq_ms:.3} ms, \
         batched {append_batched_ms:.3} ms ({:.2}x)",
        append_seq_ms / append_batched_ms
    );

    // ---- mixed-precision scoring ----------------------------------------
    // `predict_batch_ranking` under `ScoringPrecision::MixedF32` (the f32
    // shadow factor) vs the exact f64 batched path on the same model.
    // `recheck_every` is set beyond the rep count so the timed loop never
    // pays the f64 drift recheck; agreement is measured directly instead
    // by comparing the top-k membership of the two rankings.
    let scoring_top_k = 10usize;
    let mut gp_mixed = GaussianProcess::new(GpConfig {
        scoring_precision: ScoringPrecision::MixedF32 {
            recheck_every: 1_000_000,
            top_k: scoring_top_k,
        },
        ..GpConfig::default()
    });
    gp_mixed.fit(&xs, &ys).unwrap();
    let fast_preds = gp_mixed.predict_batch_ranking(&candidates);
    let exact_preds = gp_mixed.predict_batch_par(&candidates);
    let exact_top = top_k_indices(&exact_preds, scoring_top_k);
    let top_k_agreement = top_k_indices(&fast_preds, scoring_top_k)
        .iter()
        .filter(|i| exact_top.contains(i))
        .count();
    let mixed_f32_ms = median_ms(reps, || {
        let _ = gp_mixed.predict_batch_ranking(&candidates);
    });
    let exact_f64_ms = median_ms(reps, || {
        let _ = gp_mixed.predict_batch_par(&candidates);
    });
    let scoring_speedup = exact_f64_ms / mixed_f32_ms;
    println!(
        "scoring 2000 candidates @ n = {n}: exact f64 {exact_f64_ms:.3} ms, mixed f32 \
         {mixed_f32_ms:.3} ms ({scoring_speedup:.2}x), top-{scoring_top_k} agreement \
         {top_k_agreement}/{scoring_top_k}, demoted {}",
        gp_mixed.scoring_demoted()
    );

    // ---- thread-threshold calibration -----------------------------------
    // `predict_batch_par` with pinned worker counts (its internal shape,
    // reproduced so the thread count can be swept); the merged output is
    // identical for every count, so only the timing varies.
    let available = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let thread_points: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let ms = median_ms(reps, || {
                let _ = atlas_math::parallel::par_chunks_map(
                    &candidates,
                    PREDICT_PAR_MIN_CHUNK,
                    Some(threads),
                    |_, chunk| gp.predict_batch(chunk),
                );
            });
            println!(
                "predict_batch_par 2000 candidates @ n = {n}: {threads} threads -> {ms:.3} ms"
            );
            (threads, ms)
        })
        .collect();

    // ---- long-horizon window calibration --------------------------------
    // Per-observe latency and resident factor bytes, windowed vs unbounded,
    // at slice ages far beyond anything the n² sections above touch. A
    // single-candidate GP (hyper-parameter refinement off) keeps the
    // unbounded warm-up fit at n = 5000 tractable; the 35-candidate grid
    // multiplies both arms' cost and bytes uniformly, so the windowed vs
    // unbounded *shape* — flat vs quadratic — is unchanged.
    let (lh_sizes, lh_cap): (&[usize], usize) = if quick {
        (&[256, 512, 1024], 128)
    } else {
        (&[1000, 2000, 5000], 512)
    };
    let lh_config = |window| GpConfig {
        optimize_hyperparameters: false,
        window,
        ..GpConfig::default()
    };
    let n_max = *lh_sizes.last().expect("at least one size");
    let (lh_xs, lh_ys) = dataset(n_max);
    // Windowed arm: stream every observation through one sliding-window GP
    // and take the median per-observe time over the 31 observations before
    // each checkpoint (the window includes the amortised periodic rebuilds,
    // which are also capacity-bounded).
    let mut windowed =
        GaussianProcess::new(lh_config(WindowPolicy::SlidingWindow { capacity: lh_cap }));
    let mut observe_ms = Vec::with_capacity(n_max);
    for (x, y) in lh_xs.iter().zip(&lh_ys) {
        let input = x.clone();
        let start = Instant::now();
        windowed.observe(input, *y).unwrap();
        observe_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    assert_eq!(windowed.len(), lh_cap, "window must plateau at capacity");
    let windowed_bytes = windowed.factor_bytes();
    let windowed_at = |n: usize| median(observe_ms[n - 31..n].to_vec());
    // Unbounded arm: warm-fit at n−1 (cheap with one candidate), then time
    // the n-th observe on a clone, exactly like the n² section above.
    let lh_points: Vec<(usize, f64, usize, f64, usize)> = lh_sizes
        .iter()
        .map(|&n| {
            let mut warm = GaussianProcess::new(lh_config(WindowPolicy::Unbounded));
            warm.fit(&lh_xs[..n - 1], &lh_ys[..n - 1]).unwrap();
            let unbounded_ms = median(
                (0..reps)
                    .map(|_| {
                        let mut gp = warm.clone();
                        let input = lh_xs[n - 1].clone();
                        let start = Instant::now();
                        gp.observe(input, lh_ys[n - 1]).unwrap();
                        start.elapsed().as_secs_f64() * 1e3
                    })
                    .collect(),
            );
            let unbounded_bytes = {
                let mut gp = warm.clone();
                gp.observe(lh_xs[n - 1].clone(), lh_ys[n - 1]).unwrap();
                gp.factor_bytes()
            };
            let w_ms = windowed_at(n);
            println!(
                "long horizon n = {n:>5} (cap {lh_cap}): windowed observe {w_ms:>7.3} ms \
                 ({windowed_bytes} factor bytes), unbounded observe {unbounded_ms:>8.3} ms \
                 ({unbounded_bytes} factor bytes)"
            );
            (n, w_ms, windowed_bytes, unbounded_ms, unbounded_bytes)
        })
        .collect();
    let flatness = lh_points.last().unwrap().1 / lh_points.first().unwrap().1;
    println!(
        "windowed per-observe flatness across n = {}..{}: {flatness:.2}x \
         (1.0 = perfectly flat)",
        lh_sizes.first().unwrap(),
        n_max
    );

    // ---- elastic hyper-parameter grid -----------------------------------
    // Amortised per-observe cost and resident factor bytes, Full vs
    // Elastic, at fleet-realistic model sizes. A sliding window at capacity
    // n keeps both arms at a constant size, so the stream's amortised mean
    // is a clean per-observe figure: each evicting observe costs the hot
    // candidates an O(n²) downdate + append, and every `refresh_every`
    // factor mutations the elastic arm pays the tournament's cold rebuilds
    // (27 × n³/6 at hot_set = 8) — which is exactly the trade the sweep
    // quantifies. hot_set = 35 spans the whole grid, so that arm *is* the
    // Full baseline (bit-for-bit — the property suite pins this).
    let gm_sizes: &[usize] = &[200, 400];
    let gm_hot_sets: &[usize] = if quick { &[8, 35] } else { &[4, 8, 16, 35] };
    let gm_refresh = 256usize;
    let gm_stream = 288usize;
    let gm_n_max = *gm_sizes.last().unwrap();
    let (gm_xs, gm_ys) = dataset(gm_n_max + gm_stream);
    let gm_points: Vec<(usize, usize, f64, usize, usize)> = gm_sizes
        .iter()
        .flat_map(|&n| gm_hot_sets.iter().map(move |&hot_set| (n, hot_set)))
        .map(|(n, hot_set)| {
            let mut gp = GaussianProcess::new(GpConfig {
                window: WindowPolicy::SlidingWindow { capacity: n },
                grid_maintenance: GridMaintenance::Elastic {
                    hot_set,
                    refresh_every: gm_refresh,
                },
                refit_every: 10_000,
                ..GpConfig::default()
            });
            gp.fit(&gm_xs[..n], &gm_ys[..n]).unwrap();
            let start = Instant::now();
            for i in n..n + gm_stream {
                gp.observe(gm_xs[i].clone(), gm_ys[i]).unwrap();
            }
            let per_observe_ms = start.elapsed().as_secs_f64() * 1e3 / gm_stream as f64;
            let bytes = gp.factor_bytes();
            let refreshes = gp.grid_stats().refreshes;
            println!(
                "elastic grid n = {n:>3}, hot_set = {hot_set:>2}: observe {per_observe_ms:>7.3} ms \
                 amortised over {gm_stream} ({bytes:>8} factor bytes, {refreshes} refreshes)"
            );
            (n, hot_set, per_observe_ms, bytes, refreshes)
        })
        .collect();
    let gm_at = |n: usize, hot: usize| {
        gm_points
            .iter()
            .find(|p| p.0 == n && p.1 == hot)
            .expect("swept point")
    };
    let gm_speedup = gm_at(gm_n_max, 35).2 / gm_at(gm_n_max, 8).2;
    let gm_memory_reduction = gm_at(gm_n_max, 35).3 as f64 / gm_at(gm_n_max, 8).3 as f64;
    println!(
        "elastic grid at n = {gm_n_max}, hot_set = 8: {gm_speedup:.2}x observe speedup, \
         {gm_memory_reduction:.2}x factor-memory reduction vs the full grid"
    );
    // Selection agreement at refresh points, measured untimed under an
    // unbounded window (where hot appends and cold rebuilds are both
    // bit-exact against full maintenance, so agreement is the designed
    // invariant, not a tolerance): stream observations into an elastic and
    // a full-maintenance GP in lockstep and compare the selected kernel at
    // every tournament refresh.
    let gm_agreement: Vec<(usize, usize, usize)> = gm_sizes
        .iter()
        .map(|&n| {
            let mut elastic = GaussianProcess::new(GpConfig {
                grid_maintenance: GridMaintenance::Elastic {
                    hot_set: 8,
                    refresh_every: 16,
                },
                refit_every: 10_000,
                ..GpConfig::default()
            });
            let mut full = GaussianProcess::new(GpConfig {
                refit_every: 10_000,
                ..GpConfig::default()
            });
            elastic.fit(&gm_xs[..n], &gm_ys[..n]).unwrap();
            full.fit(&gm_xs[..n], &gm_ys[..n]).unwrap();
            let (mut refresh_points, mut agreed) = (0, 0);
            for i in n..n + 96 {
                let before = elastic.grid_stats().refreshes;
                elastic.observe(gm_xs[i].clone(), gm_ys[i]).unwrap();
                full.observe(gm_xs[i].clone(), gm_ys[i]).unwrap();
                if elastic.grid_stats().refreshes > before {
                    refresh_points += 1;
                    if elastic.kernel() == full.kernel() {
                        agreed += 1;
                    }
                }
            }
            println!(
                "elastic grid selection agreement at n = {n}: {agreed}/{refresh_points} \
                 refresh points"
            );
            (n, refresh_points, agreed)
        })
        .collect();

    let speedup_largest = points.last().expect("non-empty").speedup();
    let full_exp = scaling_exponent(&points, |p| p.full_refit_ms);
    let inc_exp = scaling_exponent(&points, |p| p.incremental_ms);
    println!(
        "scaling exponents: full refit ~n^{full_exp:.2}, incremental ~n^{inc_exp:.2}; \
         speedup at n = {n}: {speedup_largest:.1}x"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"gp_observe_hot_path\",\n");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p atlas-bench --bin gp_bench{}\",",
        if quick { " -- --quick" } else { "" }
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"dim\": {DIM},");
    let _ = writeln!(json, "  \"reps_per_point\": {reps},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"full_refit_ms\": {:.4}, \"incremental_observe_ms\": {:.4}, \"speedup\": {:.2}}}{}",
            p.n,
            p.full_refit_ms,
            p.incremental_ms,
            p.speedup(),
            comma
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"predict_2000_candidates\": {{\"n\": {n}, \"per_point_ms\": {per_point_ms:.4}, \"batched_ms\": {batched_ms:.4}}},"
    );
    // Column-tile calibration of the multi-RHS triangular solve.
    json.push_str("  \"col_tile_calibration\": {\n");
    let _ = writeln!(json, "    \"n\": {n}, \"rhs_cols\": {},", candidates.len());
    json.push_str("    \"points\": [\n");
    for (i, (tile, ms)) in tile_points.iter().enumerate() {
        let comma = if i + 1 < tile_points.len() { "," } else { "" };
        let _ = writeln!(json, "      {{\"tile\": {tile}, \"ms\": {ms:.4}}}{comma}");
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"measured_best_tile\": {measured_best_tile},");
    let _ = writeln!(json, "    \"chosen_default_col_tile\": {DEFAULT_COL_TILE}");
    json.push_str("  },\n");
    // Blocked dense-kernel calibration: the tentpole speedups, each against
    // the exact pre-blocking code path (scalar Cholesky; the frozen
    // column-tiled forward sweep), plus the batched-append amortisation.
    json.push_str("  \"blocked_kernels\": {\n");
    json.push_str(
        "    \"note\": \"1-CPU benchmark container; timings wander ~10-15% run to run — \
         re-run the sweeps on a multi-core box before moving the defaults\",\n",
    );
    json.push_str("    \"cholesky\": {\n");
    json.push_str("      \"points\": [\n");
    for (i, p) in chol_points.iter().enumerate() {
        let comma = if i + 1 < chol_points.len() { "," } else { "" };
        let _ = write!(
            json,
            "        {{\"n\": {}, \"scalar_ms\": {:.4}, \"blocked\": [",
            p.n, p.scalar_ms
        );
        for (j, (block, ms)) in p.blocked.iter().enumerate() {
            let bcomma = if j + 1 < p.blocked.len() { ", " } else { "" };
            let _ = write!(json, "{{\"block\": {block}, \"ms\": {ms:.4}}}{bcomma}");
        }
        let _ = writeln!(
            json,
            "], \"speedup_at_default_block\": {:.2}}}{comma}",
            p.scalar_ms / default_block_ms(p)
        );
    }
    json.push_str("      ],\n");
    let _ = writeln!(
        json,
        "      \"measured_best_block_at_n400\": {chol_best_block_400},"
    );
    let _ = writeln!(
        json,
        "      \"chosen_default_chol_block\": {DEFAULT_CHOL_BLOCK},"
    );
    let _ = writeln!(json, "      \"speedup_at_n400\": {chol_speedup_400:.2}");
    json.push_str("    },\n");
    json.push_str("    \"multi_rhs_forward_solve\": {\n");
    let _ = writeln!(
        json,
        "      \"n\": {solve_n}, \"rhs_cols\": {},",
        candidates.len()
    );
    let _ = writeln!(
        json,
        "      \"pre_blocking_tile64_ms\": {pre_blocking_ms:.4},"
    );
    json.push_str("      \"points\": [\n");
    for (i, (col_tile, row_block, ms)) in solve_points.iter().enumerate() {
        let comma = if i + 1 < solve_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "        {{\"col_tile\": {col_tile}, \"row_block\": {row_block}, \"ms\": {ms:.4}}}{comma}"
        );
    }
    json.push_str("      ],\n");
    let _ = writeln!(
        json,
        "      \"measured_best\": {{\"col_tile\": {}, \"row_block\": {}}},",
        solve_best.0, solve_best.1
    );
    let _ = writeln!(
        json,
        "      \"chosen\": {{\"col_tile\": {DEFAULT_COL_TILE}, \"row_block\": {DEFAULT_ROW_BLOCK}}},"
    );
    let _ = writeln!(
        json,
        "      \"speedup_vs_pre_blocking\": {solve_speedup:.2}"
    );
    json.push_str("    },\n");
    let _ = writeln!(
        json,
        "    \"append_rows\": {{\"base_n\": {append_base}, \"k\": {append_k}, \
         \"sequential_ms\": {append_seq_ms:.4}, \"batched_ms\": {append_batched_ms:.4}, \
         \"speedup\": {:.2}}}",
        append_seq_ms / append_batched_ms
    );
    json.push_str("  },\n");
    // Mixed-precision scoring: opt-in f32 ranking shadow vs the exact f64
    // batched predictor, with its measured top-k ranking agreement.
    json.push_str("  \"scoring_precision\": {\n");
    let _ = writeln!(
        json,
        "    \"n\": {n}, \"candidates\": {}, \"top_k\": {scoring_top_k},",
        candidates.len()
    );
    let _ = writeln!(json, "    \"exact_f64_ms\": {exact_f64_ms:.4},");
    let _ = writeln!(json, "    \"mixed_f32_ms\": {mixed_f32_ms:.4},");
    let _ = writeln!(json, "    \"speedup\": {scoring_speedup:.2},");
    let _ = writeln!(
        json,
        "    \"top_k_agreement\": {top_k_agreement}, \"demoted\": {}",
        gp_mixed.scoring_demoted()
    );
    json.push_str("  },\n");
    // Thread-parallel threshold calibration.
    json.push_str("  \"thread_calibration\": {\n");
    let _ = writeln!(json, "    \"available_parallelism\": {available},");
    let _ = writeln!(
        json,
        "    \"predict_batch_par\": {{\"n\": {n}, \"candidates\": {}, \"min_chunk\": {PREDICT_PAR_MIN_CHUNK}, \"points\": [",
        candidates.len()
    );
    for (i, (threads, ms)) in thread_points.iter().enumerate() {
        let comma = if i + 1 < thread_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"threads\": {threads}, \"ms\": {ms:.4}}}{comma}"
        );
    }
    json.push_str("    ]},\n");
    let _ = writeln!(
        json,
        "    \"chosen\": {{\"predict_par_min_chunk\": {PREDICT_PAR_MIN_CHUNK}, \"grid_par_min_candidates\": {GRID_PAR_MIN_CANDIDATES}, \"grid_par_min_n\": {GRID_PAR_MIN_N}}}"
    );
    json.push_str("  },\n");
    // Long-horizon sliding-window calibration: per-observe latency must be
    // flat in the total number of observations, and factor memory must
    // plateau at O(cap²/2) per candidate.
    json.push_str("  \"long_horizon\": {\n");
    let _ = writeln!(json, "    \"window_capacity\": {lh_cap},");
    json.push_str(
        "    \"note\": \"single hyper-parameter candidate; the default 35-candidate grid \
         scales both arms' cost and bytes uniformly\",\n",
    );
    json.push_str("    \"points\": [\n");
    for (i, (n, w_ms, w_bytes, u_ms, u_bytes)) in lh_points.iter().enumerate() {
        let comma = if i + 1 < lh_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"n\": {n}, \"windowed_observe_ms\": {w_ms:.4}, \
             \"windowed_factor_bytes\": {w_bytes}, \"unbounded_observe_ms\": {u_ms:.4}, \
             \"unbounded_factor_bytes\": {u_bytes}}}{comma}"
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"windowed_flatness\": {flatness:.3}");
    json.push_str("  },\n");
    // Elastic hyper-parameter grid: amortised observe cost + resident
    // factor bytes across the hot-set sweep, and the refresh-point
    // selection-agreement audit.
    json.push_str("  \"grid_maintenance\": {\n");
    let _ = writeln!(json, "    \"refresh_every\": {gm_refresh},");
    let _ = writeln!(json, "    \"stream_observes\": {gm_stream},");
    json.push_str(
        "    \"note\": \"sliding window at capacity n keeps both arms at constant size; \
         hot_set 35 spans the grid and is the Full baseline\",\n",
    );
    json.push_str("    \"points\": [\n");
    for (i, (n, hot_set, ms, bytes, refreshes)) in gm_points.iter().enumerate() {
        let comma = if i + 1 < gm_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"n\": {n}, \"hot_set\": {hot_set}, \"per_observe_ms\": {ms:.4}, \
             \"factor_bytes\": {bytes}, \"refreshes\": {refreshes}}}{comma}"
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(
        json,
        "    \"observe_speedup_hot8_at_n{gm_n_max}\": {gm_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "    \"factor_memory_reduction_hot8_at_n{gm_n_max}\": {gm_memory_reduction:.2},"
    );
    json.push_str("    \"selection_agreement\": [\n");
    for (i, (n, refresh_points, agreed)) in gm_agreement.iter().enumerate() {
        let comma = if i + 1 < gm_agreement.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"n\": {n}, \"refresh_points\": {refresh_points}, \"agreed\": {agreed}}}{comma}"
        );
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"speedup_at_largest_n\": {speedup_largest:.2},");
    let _ = writeln!(json, "  \"full_refit_scaling_exponent\": {full_exp:.3},");
    let _ = writeln!(json, "  \"incremental_scaling_exponent\": {inc_exp:.3}");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");

    // The blocked Cholesky accelerated the full-refit *baseline* of this
    // ratio (every grid candidate's factorisation), so the incremental
    // advantage is structurally smaller than it was against the scalar
    // kernel — especially at quick mode's n = 200, where the refit's
    // cubic term has less room to dominate. The elastic-grid rebuild path
    // shrank the baseline again (the refit now reuses the cached distance
    // triangle instead of re-evaluating every pairwise distance per
    // candidate: ~11.9x became ~8.4x at n = 400 with the incremental side
    // untouched), so the full-mode floor is recalibrated below it.
    let min_observe_speedup = if quick { 6.0 } else { 7.0 };
    assert!(
        speedup_largest >= min_observe_speedup,
        "incremental observe must be >= {min_observe_speedup}x faster than the full refit \
         at n = {n} (measured {speedup_largest:.1}x)"
    );
    assert!(
        flatness <= 2.5,
        "windowed per-observe time must be flat in the total observation \
         count (measured {flatness:.2}x across n = {}..{n_max})",
        lh_sizes.first().unwrap()
    );
    // CI smoke for the blocked kernels: the measured headroom is ~2x, so
    // even on a noisy shared runner the blocked factorisation must never
    // lose to the scalar kernel it replaced.
    assert!(
        default_block_ms(chol_400) <= chol_400.scalar_ms,
        "blocked Cholesky (block = {DEFAULT_CHOL_BLOCK}) must be no slower than the \
         scalar kernel at n = 400 (blocked {:.3} ms vs scalar {:.3} ms)",
        default_block_ms(chol_400),
        chol_400.scalar_ms
    );
    // CI smoke for the elastic grid: even on a noisy runner the hot-set-8
    // arm (4.4x fewer live factors, refresh amortised over 256 mutations)
    // must never lose to full maintenance at n = 400, and tournament
    // refreshes must agree with full-grid selection at every refresh point
    // (the unbounded-window audit is bit-exact by construction). The
    // calibrated speedup/memory gates run in full mode only.
    assert!(
        gm_at(gm_n_max, 8).2 <= gm_at(gm_n_max, 35).2,
        "elastic observe (hot_set = 8) must not lose to the full grid at n = {gm_n_max} \
         (elastic {:.3} ms vs full {:.3} ms)",
        gm_at(gm_n_max, 8).2,
        gm_at(gm_n_max, 35).2
    );
    for (n, refresh_points, agreed) in &gm_agreement {
        assert!(
            *refresh_points > 0 && agreed == refresh_points,
            "tournament refresh must agree with full-grid selection at every refresh \
             point (n = {n}: {agreed}/{refresh_points})"
        );
    }
    if !quick {
        assert!(
            gm_speedup >= 2.0,
            "elastic observe (hot_set = 8) must be >= 2x faster than the full grid \
             at n = {gm_n_max} (measured {gm_speedup:.2}x)"
        );
        assert!(
            gm_memory_reduction >= 3.0,
            "elastic factor memory (hot_set = 8) must be >= 3x below the full grid \
             at n = {gm_n_max} (measured {gm_memory_reduction:.2}x)"
        );
    }
}
