//! GP hot-path benchmark emitting `BENCH_gp.json`.
//!
//! Measures the cost of absorbing one online observation into the GP at
//! several training-set sizes, comparing the seed's full-refit path
//! (`GaussianProcess::fit` on all n points, hyper-parameter grid included)
//! against the incremental `GaussianProcess::observe`, plus the per-point
//! vs batched prediction cost over a stage-sized candidate set. Results go
//! to `BENCH_gp.json` (override with `--out <path>`) as one point on the
//! repository's performance trajectory; CI runs it with `--quick`.
//!
//! ```text
//! cargo run --release -p atlas-bench --bin gp_bench -- [--quick] [--out BENCH_gp.json]
//! ```

use atlas_bayesopt::SearchSpace;
use atlas_gp::{
    GaussianProcess, GpConfig, WindowPolicy, GRID_PAR_MIN_CANDIDATES, GRID_PAR_MIN_N,
    PREDICT_PAR_MIN_CHUNK,
};
use atlas_math::linalg::{l2_distance, Matrix, PackedCholesky, DEFAULT_COL_TILE};
use atlas_math::rng::seeded_rng;
use std::fmt::Write as _;
use std::time::Instant;

const DIM: usize = 6;

fn dataset(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = seeded_rng(7);
    let space = SearchSpace::unit(DIM);
    let xs = space.sample_n(n, &mut rng);
    let ys = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() / DIM as f64)
        .collect();
    (xs, ys)
}

/// Median of a set of timing samples (milliseconds).
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    median(
        (0..reps.max(1))
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    )
}

struct SizePoint {
    n: usize,
    full_refit_ms: f64,
    incremental_ms: f64,
}

impl SizePoint {
    fn speedup(&self) -> f64 {
        self.full_refit_ms / self.incremental_ms
    }
}

/// Least-squares slope of `ln t` against `ln n` — the measured scaling
/// exponent (≈3 for the cubic full refit, ≈2 for the incremental path).
fn scaling_exponent(points: &[SizePoint], t: impl Fn(&SizePoint) -> f64) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|p| ((p.n as f64).ln(), t(p).ln()))
        .collect();
    let mean_x = logs.iter().map(|(x, _)| x).sum::<f64>() / logs.len() as f64;
    let mean_y = logs.iter().map(|(_, y)| y).sum::<f64>() / logs.len() as f64;
    let cov: f64 = logs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let var: f64 = logs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    cov / var
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_gp.json")
        .to_string();
    let reps = if quick { 3 } else { 9 };
    let sizes: &[usize] = if quick {
        &[50, 100, 200]
    } else {
        &[50, 100, 200, 400]
    };

    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let (xs, ys) = dataset(n);
        let full_refit_ms = median_ms(reps, || {
            let mut gp = GaussianProcess::default_matern();
            gp.fit(&xs, &ys).unwrap();
        });
        let mut warm = GaussianProcess::default_matern();
        warm.fit(&xs[..n - 1], &ys[..n - 1]).unwrap();
        // Time only the observe call; the clone restoring the warm state
        // happens outside the timed region.
        let incremental_ms = median(
            (0..reps)
                .map(|_| {
                    let mut gp = warm.clone();
                    let input = xs[n - 1].clone();
                    let start = Instant::now();
                    gp.observe(input, ys[n - 1]).unwrap();
                    start.elapsed().as_secs_f64() * 1e3
                })
                .collect(),
        );
        let point = SizePoint {
            n,
            full_refit_ms,
            incremental_ms,
        };
        println!(
            "n = {:>4}: full refit {:>9.3} ms, incremental observe {:>8.3} ms, speedup {:>6.1}x",
            n,
            point.full_refit_ms,
            point.incremental_ms,
            point.speedup()
        );
        points.push(point);
    }

    // Batched prediction at the largest measured size.
    let n = *sizes.last().expect("at least one size");
    let (xs, ys) = dataset(n);
    let mut gp = GaussianProcess::default_matern();
    gp.fit(&xs, &ys).unwrap();
    let mut rng = seeded_rng(9);
    let candidates = SearchSpace::unit(DIM).sample_n(2000, &mut rng);
    let per_point_ms = median_ms(reps, || {
        let _: f64 = candidates.iter().map(|x| gp.predict(x).0).sum();
    });
    let batched_ms = median_ms(reps, || {
        let _ = gp.predict_batch_par(&candidates);
    });
    println!(
        "predict 2000 candidates @ n = {n}: per-point {per_point_ms:.3} ms, batched {batched_ms:.3} ms"
    );

    // ---- column-tile calibration (cache-resident multi-RHS solve) -------
    // An n×n kernel-shaped SPD system with a stage-sized RHS block: the
    // exact memory shape of `predict_batch`'s forward solve. Every tile
    // width gives bit-identical results, so the sweep is purely a
    // performance calibration of `DEFAULT_COL_TILE`.
    let mut k = Matrix::from_fn(n, n, |i, j| (-l2_distance(&xs[i], &xs[j])).exp());
    k.add_diagonal(1e-3);
    let packed = PackedCholesky::cholesky(&k).expect("SPD kernel system");
    let rhs = Matrix::from_fn(n, candidates.len(), |i, j| {
        (-l2_distance(&xs[i], &candidates[j])).exp()
    });
    let tile_points: Vec<(usize, f64)> = [8, 16, 32, 64, 128, 256, candidates.len()]
        .into_iter()
        .map(|tile| {
            let ms = median_ms(reps, || {
                let _ = packed.solve_lower_multi_tiled(&rhs, tile).unwrap();
            });
            println!(
                "multi-RHS solve n = {n}, m = {}: tile {tile:>5} -> {ms:.3} ms",
                candidates.len()
            );
            (tile, ms)
        })
        .collect();
    // The tile this sweep actually favoured, recorded next to the chosen
    // default so the committed JSON never silently contradicts the
    // constant it exists to calibrate (on the 1-CPU benchmark container
    // the 64-256 band wanders by ~10% run to run; see the ROADMAP
    // re-calibration item before moving `DEFAULT_COL_TILE`).
    let measured_best_tile = tile_points
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite timings"))
        .expect("non-empty sweep")
        .0;

    // ---- thread-threshold calibration -----------------------------------
    // `predict_batch_par` with pinned worker counts (its internal shape,
    // reproduced so the thread count can be swept); the merged output is
    // identical for every count, so only the timing varies.
    let available = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let thread_points: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let ms = median_ms(reps, || {
                let _ = atlas_math::parallel::par_chunks_map(
                    &candidates,
                    PREDICT_PAR_MIN_CHUNK,
                    Some(threads),
                    |_, chunk| gp.predict_batch(chunk),
                );
            });
            println!(
                "predict_batch_par 2000 candidates @ n = {n}: {threads} threads -> {ms:.3} ms"
            );
            (threads, ms)
        })
        .collect();

    // ---- long-horizon window calibration --------------------------------
    // Per-observe latency and resident factor bytes, windowed vs unbounded,
    // at slice ages far beyond anything the n² sections above touch. A
    // single-candidate GP (hyper-parameter refinement off) keeps the
    // unbounded warm-up fit at n = 5000 tractable; the 35-candidate grid
    // multiplies both arms' cost and bytes uniformly, so the windowed vs
    // unbounded *shape* — flat vs quadratic — is unchanged.
    let (lh_sizes, lh_cap): (&[usize], usize) = if quick {
        (&[256, 512, 1024], 128)
    } else {
        (&[1000, 2000, 5000], 512)
    };
    let lh_config = |window| GpConfig {
        optimize_hyperparameters: false,
        window,
        ..GpConfig::default()
    };
    let n_max = *lh_sizes.last().expect("at least one size");
    let (lh_xs, lh_ys) = dataset(n_max);
    // Windowed arm: stream every observation through one sliding-window GP
    // and take the median per-observe time over the 31 observations before
    // each checkpoint (the window includes the amortised periodic rebuilds,
    // which are also capacity-bounded).
    let mut windowed =
        GaussianProcess::new(lh_config(WindowPolicy::SlidingWindow { capacity: lh_cap }));
    let mut observe_ms = Vec::with_capacity(n_max);
    for (x, y) in lh_xs.iter().zip(&lh_ys) {
        let input = x.clone();
        let start = Instant::now();
        windowed.observe(input, *y).unwrap();
        observe_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    assert_eq!(windowed.len(), lh_cap, "window must plateau at capacity");
    let windowed_bytes = windowed.factor_bytes();
    let windowed_at = |n: usize| median(observe_ms[n - 31..n].to_vec());
    // Unbounded arm: warm-fit at n−1 (cheap with one candidate), then time
    // the n-th observe on a clone, exactly like the n² section above.
    let lh_points: Vec<(usize, f64, usize, f64, usize)> = lh_sizes
        .iter()
        .map(|&n| {
            let mut warm = GaussianProcess::new(lh_config(WindowPolicy::Unbounded));
            warm.fit(&lh_xs[..n - 1], &lh_ys[..n - 1]).unwrap();
            let unbounded_ms = median(
                (0..reps)
                    .map(|_| {
                        let mut gp = warm.clone();
                        let input = lh_xs[n - 1].clone();
                        let start = Instant::now();
                        gp.observe(input, lh_ys[n - 1]).unwrap();
                        start.elapsed().as_secs_f64() * 1e3
                    })
                    .collect(),
            );
            let unbounded_bytes = {
                let mut gp = warm.clone();
                gp.observe(lh_xs[n - 1].clone(), lh_ys[n - 1]).unwrap();
                gp.factor_bytes()
            };
            let w_ms = windowed_at(n);
            println!(
                "long horizon n = {n:>5} (cap {lh_cap}): windowed observe {w_ms:>7.3} ms \
                 ({windowed_bytes} factor bytes), unbounded observe {unbounded_ms:>8.3} ms \
                 ({unbounded_bytes} factor bytes)"
            );
            (n, w_ms, windowed_bytes, unbounded_ms, unbounded_bytes)
        })
        .collect();
    let flatness = lh_points.last().unwrap().1 / lh_points.first().unwrap().1;
    println!(
        "windowed per-observe flatness across n = {}..{}: {flatness:.2}x \
         (1.0 = perfectly flat)",
        lh_sizes.first().unwrap(),
        n_max
    );

    let speedup_largest = points.last().expect("non-empty").speedup();
    let full_exp = scaling_exponent(&points, |p| p.full_refit_ms);
    let inc_exp = scaling_exponent(&points, |p| p.incremental_ms);
    println!(
        "scaling exponents: full refit ~n^{full_exp:.2}, incremental ~n^{inc_exp:.2}; \
         speedup at n = {n}: {speedup_largest:.1}x"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"gp_observe_hot_path\",\n");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p atlas-bench --bin gp_bench{}\",",
        if quick { " -- --quick" } else { "" }
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"dim\": {DIM},");
    let _ = writeln!(json, "  \"reps_per_point\": {reps},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"full_refit_ms\": {:.4}, \"incremental_observe_ms\": {:.4}, \"speedup\": {:.2}}}{}",
            p.n,
            p.full_refit_ms,
            p.incremental_ms,
            p.speedup(),
            comma
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"predict_2000_candidates\": {{\"n\": {n}, \"per_point_ms\": {per_point_ms:.4}, \"batched_ms\": {batched_ms:.4}}},"
    );
    // Column-tile calibration of the multi-RHS triangular solve.
    json.push_str("  \"col_tile_calibration\": {\n");
    let _ = writeln!(json, "    \"n\": {n}, \"rhs_cols\": {},", candidates.len());
    json.push_str("    \"points\": [\n");
    for (i, (tile, ms)) in tile_points.iter().enumerate() {
        let comma = if i + 1 < tile_points.len() { "," } else { "" };
        let _ = writeln!(json, "      {{\"tile\": {tile}, \"ms\": {ms:.4}}}{comma}");
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"measured_best_tile\": {measured_best_tile},");
    let _ = writeln!(json, "    \"chosen_default_col_tile\": {DEFAULT_COL_TILE}");
    json.push_str("  },\n");
    // Thread-parallel threshold calibration.
    json.push_str("  \"thread_calibration\": {\n");
    let _ = writeln!(json, "    \"available_parallelism\": {available},");
    let _ = writeln!(
        json,
        "    \"predict_batch_par\": {{\"n\": {n}, \"candidates\": {}, \"min_chunk\": {PREDICT_PAR_MIN_CHUNK}, \"points\": [",
        candidates.len()
    );
    for (i, (threads, ms)) in thread_points.iter().enumerate() {
        let comma = if i + 1 < thread_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"threads\": {threads}, \"ms\": {ms:.4}}}{comma}"
        );
    }
    json.push_str("    ]},\n");
    let _ = writeln!(
        json,
        "    \"chosen\": {{\"predict_par_min_chunk\": {PREDICT_PAR_MIN_CHUNK}, \"grid_par_min_candidates\": {GRID_PAR_MIN_CANDIDATES}, \"grid_par_min_n\": {GRID_PAR_MIN_N}}}"
    );
    json.push_str("  },\n");
    // Long-horizon sliding-window calibration: per-observe latency must be
    // flat in the total number of observations, and factor memory must
    // plateau at O(cap²/2) per candidate.
    json.push_str("  \"long_horizon\": {\n");
    let _ = writeln!(json, "    \"window_capacity\": {lh_cap},");
    json.push_str(
        "    \"note\": \"single hyper-parameter candidate; the default 35-candidate grid \
         scales both arms' cost and bytes uniformly\",\n",
    );
    json.push_str("    \"points\": [\n");
    for (i, (n, w_ms, w_bytes, u_ms, u_bytes)) in lh_points.iter().enumerate() {
        let comma = if i + 1 < lh_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"n\": {n}, \"windowed_observe_ms\": {w_ms:.4}, \
             \"windowed_factor_bytes\": {w_bytes}, \"unbounded_observe_ms\": {u_ms:.4}, \
             \"unbounded_factor_bytes\": {u_bytes}}}{comma}"
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"windowed_flatness\": {flatness:.3}");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"speedup_at_largest_n\": {speedup_largest:.2},");
    let _ = writeln!(json, "  \"full_refit_scaling_exponent\": {full_exp:.3},");
    let _ = writeln!(json, "  \"incremental_scaling_exponent\": {inc_exp:.3}");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");

    assert!(
        speedup_largest >= 10.0,
        "incremental observe must be >= 10x faster than the full refit at \
         n = {n} (measured {speedup_largest:.1}x)"
    );
    assert!(
        flatness <= 2.5,
        "windowed per-observe time must be flat in the total observation \
         count (measured {flatness:.2}x across n = {}..{n_max})",
        lh_sizes.first().unwrap()
    );
}
