//! GP hot-path benchmark emitting `BENCH_gp.json`.
//!
//! Measures the cost of absorbing one online observation into the GP at
//! several training-set sizes, comparing the seed's full-refit path
//! (`GaussianProcess::fit` on all n points, hyper-parameter grid included)
//! against the incremental `GaussianProcess::observe`, plus the per-point
//! vs batched prediction cost over a stage-sized candidate set. Results go
//! to `BENCH_gp.json` (override with `--out <path>`) as one point on the
//! repository's performance trajectory; CI runs it with `--quick`.
//!
//! ```text
//! cargo run --release -p atlas-bench --bin gp_bench -- [--quick] [--out BENCH_gp.json]
//! ```

use atlas_bayesopt::SearchSpace;
use atlas_gp::{
    GaussianProcess, GpConfig, GridMaintenance, InducingSelection, ScoringPrecision,
    SurrogateBasis, WindowPolicy, DEFAULT_INDUCING_M, DEFAULT_INDUCING_REFRESH,
    GRID_PAR_MIN_CANDIDATES, GRID_PAR_MIN_N, PREDICT_PAR_MIN_CHUNK,
};
use atlas_math::linalg::{
    l2_distance, Matrix, PackedCholesky, DEFAULT_CHOL_BLOCK, DEFAULT_COL_TILE, DEFAULT_ROW_BLOCK,
};
use atlas_math::rng::seeded_rng;
use std::fmt::Write as _;
use std::time::Instant;

const DIM: usize = 6;

fn dataset(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = seeded_rng(7);
    let space = SearchSpace::unit(DIM);
    let xs = space.sample_n(n, &mut rng);
    let ys = xs
        .iter()
        .map(|x| x.iter().sum::<f64>() / DIM as f64)
        .collect();
    (xs, ys)
}

/// Median of a set of timing samples (milliseconds).
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    median(
        (0..reps.max(1))
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect(),
    )
}

struct SizePoint {
    n: usize,
    full_refit_ms: f64,
    incremental_ms: f64,
}

impl SizePoint {
    fn speedup(&self) -> f64 {
        self.full_refit_ms / self.incremental_ms
    }
}

/// Least-squares slope of `ln t` against `ln n` — the measured scaling
/// exponent (≈3 for the cubic full refit, ≈2 for the incremental path).
fn scaling_exponent(points: &[SizePoint], t: impl Fn(&SizePoint) -> f64) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|p| ((p.n as f64).ln(), t(p).ln()))
        .collect();
    let mean_x = logs.iter().map(|(x, _)| x).sum::<f64>() / logs.len() as f64;
    let mean_y = logs.iter().map(|(_, y)| y).sum::<f64>() / logs.len() as f64;
    let cov: f64 = logs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let var: f64 = logs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    cov / var
}

/// The pre-blocking multi-RHS forward sweep, frozen verbatim from the
/// column-tiled implementation this repository shipped before the
/// row-blocked kernels landed. It lives in the bench binary so the
/// `blocked_kernels` section always measures against the code the
/// blocking actually replaced — benchmarking the new helper at
/// `row_block = 1` instead would overstate the speedup, because the
/// jammed inner loops degenerate badly at that width.
fn pre_blocking_solve_lower_multi_tiled(l: &Matrix, b: &Matrix, tile: usize) -> Matrix {
    let n = l.rows();
    let m = b.cols();
    let tile = tile.max(1);
    let mut x = b.clone();
    let ldata = l.as_slice();
    let mut c0 = 0;
    while c0 < m {
        let c1 = (c0 + tile).min(m);
        for i in 0..n {
            let (solved, rest) = x.as_mut_slice().split_at_mut(i * m);
            let row_i = &mut rest[c0..c1];
            for (j, xj) in solved.chunks_exact(m).enumerate() {
                let lij = ldata[i * n + j];
                for (xi, xv) in row_i.iter_mut().zip(&xj[c0..c1]) {
                    *xi -= lij * *xv;
                }
            }
            let d = ldata[i * n + i];
            for xi in row_i.iter_mut() {
                *xi /= d;
            }
        }
        c0 = c1;
    }
    x
}

/// Kernel-shaped SPD system over a seeded unit-cube dataset: the exact
/// matrix structure every GP hot loop factors and solves against.
fn kernel_system(n: usize) -> (Vec<Vec<f64>>, Matrix) {
    let (xs, _) = dataset(n);
    let mut k = Matrix::from_fn(n, n, |i, j| (-l2_distance(&xs[i], &xs[j])).exp());
    k.add_diagonal(1e-3);
    (xs, k)
}

/// Indices of the `k` largest predictive means, returned sorted so two
/// rankings can be compared as membership sets (ties may legitimately
/// swap order between precisions).
fn top_k_indices(preds: &[(f64, f64)], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..preds.len()).collect();
    idx.sort_by(|&a, &b| {
        preds[b]
            .0
            .partial_cmp(&preds[a].0)
            .expect("finite predictions")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_gp.json")
        .to_string();
    let reps = if quick { 3 } else { 9 };
    let sizes: &[usize] = if quick {
        &[50, 100, 200]
    } else {
        &[50, 100, 200, 400]
    };

    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let (xs, ys) = dataset(n);
        let full_refit_ms = median_ms(reps, || {
            let mut gp = GaussianProcess::default_matern();
            gp.fit(&xs, &ys).unwrap();
        });
        let mut warm = GaussianProcess::default_matern();
        warm.fit(&xs[..n - 1], &ys[..n - 1]).unwrap();
        // Time only the observe call; the clone restoring the warm state
        // happens outside the timed region.
        let incremental_ms = median(
            (0..reps)
                .map(|_| {
                    let mut gp = warm.clone();
                    let input = xs[n - 1].clone();
                    let start = Instant::now();
                    gp.observe(input, ys[n - 1]).unwrap();
                    start.elapsed().as_secs_f64() * 1e3
                })
                .collect(),
        );
        let point = SizePoint {
            n,
            full_refit_ms,
            incremental_ms,
        };
        println!(
            "n = {:>4}: full refit {:>9.3} ms, incremental observe {:>8.3} ms, speedup {:>6.1}x",
            n,
            point.full_refit_ms,
            point.incremental_ms,
            point.speedup()
        );
        points.push(point);
    }

    // Batched prediction at the largest measured size.
    let n = *sizes.last().expect("at least one size");
    let (xs, ys) = dataset(n);
    let mut gp = GaussianProcess::default_matern();
    gp.fit(&xs, &ys).unwrap();
    let mut rng = seeded_rng(9);
    let candidates = SearchSpace::unit(DIM).sample_n(2000, &mut rng);
    let per_point_ms = median_ms(reps, || {
        let _: f64 = candidates.iter().map(|x| gp.predict(x).0).sum();
    });
    let batched_ms = median_ms(reps, || {
        let _ = gp.predict_batch_par(&candidates);
    });
    println!(
        "predict 2000 candidates @ n = {n}: per-point {per_point_ms:.3} ms, batched {batched_ms:.3} ms"
    );

    // ---- column-tile calibration (cache-resident multi-RHS solve) -------
    // An n×n kernel-shaped SPD system with a stage-sized RHS block: the
    // exact memory shape of `predict_batch`'s forward solve. Every tile
    // width gives bit-identical results, so the sweep is purely a
    // performance calibration of `DEFAULT_COL_TILE`.
    let mut k = Matrix::from_fn(n, n, |i, j| (-l2_distance(&xs[i], &xs[j])).exp());
    k.add_diagonal(1e-3);
    let packed = PackedCholesky::cholesky(&k).expect("SPD kernel system");
    let rhs = Matrix::from_fn(n, candidates.len(), |i, j| {
        (-l2_distance(&xs[i], &candidates[j])).exp()
    });
    let tile_points: Vec<(usize, f64)> = [8, 16, 32, 64, 128, 256, candidates.len()]
        .into_iter()
        .map(|tile| {
            let ms = median_ms(reps, || {
                let _ = packed.solve_lower_multi_tiled(&rhs, tile).unwrap();
            });
            println!(
                "multi-RHS solve n = {n}, m = {}: tile {tile:>5} -> {ms:.3} ms",
                candidates.len()
            );
            (tile, ms)
        })
        .collect();
    // The tile this sweep actually favoured, recorded next to the chosen
    // default so the committed JSON never silently contradicts the
    // constant it exists to calibrate (on the 1-CPU benchmark container
    // the 64-256 band wanders by ~10% run to run; see the ROADMAP
    // re-calibration item before moving `DEFAULT_COL_TILE`).
    let measured_best_tile = tile_points
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite timings"))
        .expect("non-empty sweep")
        .0;

    // ---- blocked dense-kernel calibration -------------------------------
    // Right-looking blocked Cholesky vs the scalar kernel it replaced, on
    // kernel-shaped SPD systems. Every block width factors bit-identically
    // to `cholesky_scalar` (the blocking is pure scheduling), so the sweep
    // is a performance calibration of `DEFAULT_CHOL_BLOCK`; the scalar
    // kernel stays in-tree precisely so this speedup keeps an honest
    // baseline. n = 400 is always swept — CI's quick mode asserts the
    // blocked kernel is no slower than scalar there.
    let chol_sizes: &[usize] = if quick { &[400] } else { &[200, 400, 800] };
    let chol_blocks: [usize; 6] = [8, 16, 24, 32, 48, 64];
    struct CholPoint {
        n: usize,
        scalar_ms: f64,
        blocked: Vec<(usize, f64)>,
    }
    let chol_points: Vec<CholPoint> = chol_sizes
        .iter()
        .map(|&cn| {
            let (_, ck) = kernel_system(cn);
            let scalar_ms = median_ms(reps, || {
                let _ = ck.cholesky_scalar().unwrap();
            });
            let blocked: Vec<(usize, f64)> = chol_blocks
                .iter()
                .map(|&block| {
                    let ms = median_ms(reps, || {
                        let _ = ck.cholesky_blocked(block).unwrap();
                    });
                    println!(
                        "cholesky n = {cn}: block {block:>2} -> {ms:>8.3} ms \
                         (scalar {scalar_ms:.3} ms, {:.2}x)",
                        scalar_ms / ms
                    );
                    (block, ms)
                })
                .collect();
            CholPoint {
                n: cn,
                scalar_ms,
                blocked,
            }
        })
        .collect();
    let default_block_ms = |p: &CholPoint| {
        p.blocked
            .iter()
            .find(|(b, _)| *b == DEFAULT_CHOL_BLOCK)
            .expect("default block is in the sweep")
            .1
    };
    let chol_400 = chol_points
        .iter()
        .find(|p| p.n == 400)
        .expect("n = 400 is always swept");
    let chol_speedup_400 = chol_400.scalar_ms / default_block_ms(chol_400);
    let chol_best_block_400 = chol_400
        .blocked
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite timings"))
        .expect("non-empty sweep")
        .0;

    // Row-blocked multi-RHS forward solve vs the pre-blocking column-tiled
    // sweep (frozen verbatim above) at its shipped tile of 64, on the
    // stage-sized 400 × 2000 shape the acquisition scorer solves.
    let solve_n = 400usize;
    let (sxs, sk) = kernel_system(solve_n);
    let sl = sk.cholesky().expect("SPD kernel system");
    let srhs = Matrix::from_fn(solve_n, candidates.len(), |i, j| {
        (-l2_distance(&sxs[i], &candidates[j])).exp()
    });
    let pre_blocking_ms = median_ms(reps, || {
        let _ = pre_blocking_solve_lower_multi_tiled(&sl, &srhs, 64);
    });
    println!(
        "forward solve {solve_n} x {}: pre-blocking tile 64 -> {pre_blocking_ms:.3} ms",
        candidates.len()
    );
    let solve_points: Vec<(usize, usize, f64)> = [64usize, 128, 256]
        .into_iter()
        .flat_map(|col_tile| {
            [8usize, 16, 32, 64]
                .into_iter()
                .map(move |row_block| (col_tile, row_block))
        })
        .map(|(col_tile, row_block)| {
            let ms = median_ms(reps, || {
                let _ = sl
                    .solve_lower_triangular_multi_blocked(&srhs, col_tile, row_block)
                    .unwrap();
            });
            println!(
                "forward solve {solve_n} x {}: tile {col_tile:>3}, row block {row_block:>2} \
                 -> {ms:>7.3} ms ({:.2}x vs pre-blocking)",
                candidates.len(),
                pre_blocking_ms / ms
            );
            (col_tile, row_block, ms)
        })
        .collect();
    let chosen_solve_ms = solve_points
        .iter()
        .find(|(t, r, _)| *t == DEFAULT_COL_TILE && *r == DEFAULT_ROW_BLOCK)
        .expect("chosen defaults are in the sweep")
        .2;
    let solve_speedup = pre_blocking_ms / chosen_solve_ms;
    let solve_best = solve_points
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite timings"))
        .expect("non-empty sweep");

    // Batched bordering appends: one `append_rows` call amortising the
    // shared n-prefix solve across k rows vs the k sequential
    // `append_row` calls it replaces (bit-identical factors either way).
    let append_k = 16usize;
    let append_base = solve_n - append_k;
    let base_packed = {
        let sub = Matrix::from_fn(append_base, append_base, |i, j| sk[(i, j)]);
        PackedCholesky::cholesky(&sub).expect("SPD principal submatrix")
    };
    let border_rows: Vec<Vec<f64>> = (append_base..solve_n)
        .map(|r| (0..=r).map(|j| sk[(r, j)]).collect())
        .collect();
    let append_seq_ms = median_ms(reps, || {
        let mut f = base_packed.clone();
        for row in &border_rows {
            f.append_row(row).unwrap();
        }
    });
    let append_batched_ms = median_ms(reps, || {
        let mut f = base_packed.clone();
        f.append_rows(&border_rows).unwrap();
    });
    println!(
        "append {append_k} rows @ n = {append_base}: sequential {append_seq_ms:.3} ms, \
         batched {append_batched_ms:.3} ms ({:.2}x)",
        append_seq_ms / append_batched_ms
    );

    // ---- mixed-precision scoring ----------------------------------------
    // `predict_batch_ranking` under `ScoringPrecision::MixedF32` (the f32
    // shadow factor) vs the exact f64 batched path on the same model.
    // `recheck_every` is set beyond the rep count so the timed loop never
    // pays the f64 drift recheck; agreement is measured directly instead
    // by comparing the top-k membership of the two rankings.
    let scoring_top_k = 10usize;
    let mut gp_mixed = GaussianProcess::new(GpConfig {
        scoring_precision: ScoringPrecision::MixedF32 {
            recheck_every: 1_000_000,
            top_k: scoring_top_k,
        },
        ..GpConfig::default()
    });
    gp_mixed.fit(&xs, &ys).unwrap();
    let fast_preds = gp_mixed.predict_batch_ranking(&candidates);
    let exact_preds = gp_mixed.predict_batch_par(&candidates);
    let exact_top = top_k_indices(&exact_preds, scoring_top_k);
    let top_k_agreement = top_k_indices(&fast_preds, scoring_top_k)
        .iter()
        .filter(|i| exact_top.contains(i))
        .count();
    let mixed_f32_ms = median_ms(reps, || {
        let _ = gp_mixed.predict_batch_ranking(&candidates);
    });
    let exact_f64_ms = median_ms(reps, || {
        let _ = gp_mixed.predict_batch_par(&candidates);
    });
    let scoring_speedup = exact_f64_ms / mixed_f32_ms;
    println!(
        "scoring 2000 candidates @ n = {n}: exact f64 {exact_f64_ms:.3} ms, mixed f32 \
         {mixed_f32_ms:.3} ms ({scoring_speedup:.2}x), top-{scoring_top_k} agreement \
         {top_k_agreement}/{scoring_top_k}, demoted {}",
        gp_mixed.scoring_demoted()
    );

    // ---- thread-threshold calibration -----------------------------------
    // `predict_batch_par` with pinned worker counts (its internal shape,
    // reproduced so the thread count can be swept); the merged output is
    // identical for every count, so only the timing varies.
    let available = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let thread_points: Vec<(usize, f64)> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let ms = median_ms(reps, || {
                let _ = atlas_math::parallel::par_chunks_map(
                    &candidates,
                    PREDICT_PAR_MIN_CHUNK,
                    Some(threads),
                    |_, chunk| gp.predict_batch(chunk),
                );
            });
            println!(
                "predict_batch_par 2000 candidates @ n = {n}: {threads} threads -> {ms:.3} ms"
            );
            (threads, ms)
        })
        .collect();

    // ---- long-horizon window calibration --------------------------------
    // Per-observe latency and resident factor bytes, windowed vs unbounded,
    // at slice ages far beyond anything the n² sections above touch. A
    // single-candidate GP (hyper-parameter refinement off) keeps the
    // unbounded warm-up fit at n = 5000 tractable; the 35-candidate grid
    // multiplies both arms' cost and bytes uniformly, so the windowed vs
    // unbounded *shape* — flat vs quadratic — is unchanged.
    let (lh_sizes, lh_cap): (&[usize], usize) = if quick {
        (&[256, 512, 1024], 128)
    } else {
        (&[1000, 2000, 5000], 512)
    };
    let lh_config = |window| GpConfig {
        optimize_hyperparameters: false,
        window,
        ..GpConfig::default()
    };
    let n_max = *lh_sizes.last().expect("at least one size");
    let (lh_xs, lh_ys) = dataset(n_max);
    // Windowed arm: stream every observation through one sliding-window GP
    // and take the median per-observe time over the 31 observations before
    // each checkpoint (the window includes the amortised periodic rebuilds,
    // which are also capacity-bounded).
    let mut windowed =
        GaussianProcess::new(lh_config(WindowPolicy::SlidingWindow { capacity: lh_cap }));
    let mut observe_ms = Vec::with_capacity(n_max);
    for (x, y) in lh_xs.iter().zip(&lh_ys) {
        let input = x.clone();
        let start = Instant::now();
        windowed.observe(input, *y).unwrap();
        observe_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    assert_eq!(windowed.len(), lh_cap, "window must plateau at capacity");
    let windowed_bytes = windowed.factor_bytes();
    let windowed_at = |n: usize| median(observe_ms[n - 31..n].to_vec());
    // Unbounded arm: warm-fit at n−1 (cheap with one candidate), then time
    // the n-th observe on a clone, exactly like the n² section above.
    let lh_points: Vec<(usize, f64, usize, f64, usize)> = lh_sizes
        .iter()
        .map(|&n| {
            let mut warm = GaussianProcess::new(lh_config(WindowPolicy::Unbounded));
            warm.fit(&lh_xs[..n - 1], &lh_ys[..n - 1]).unwrap();
            let unbounded_ms = median(
                (0..reps)
                    .map(|_| {
                        let mut gp = warm.clone();
                        let input = lh_xs[n - 1].clone();
                        let start = Instant::now();
                        gp.observe(input, lh_ys[n - 1]).unwrap();
                        start.elapsed().as_secs_f64() * 1e3
                    })
                    .collect(),
            );
            let unbounded_bytes = {
                let mut gp = warm.clone();
                gp.observe(lh_xs[n - 1].clone(), lh_ys[n - 1]).unwrap();
                gp.factor_bytes()
            };
            let w_ms = windowed_at(n);
            println!(
                "long horizon n = {n:>5} (cap {lh_cap}): windowed observe {w_ms:>7.3} ms \
                 ({windowed_bytes} factor bytes), unbounded observe {unbounded_ms:>8.3} ms \
                 ({unbounded_bytes} factor bytes)"
            );
            (n, w_ms, windowed_bytes, unbounded_ms, unbounded_bytes)
        })
        .collect();
    let flatness = lh_points.last().unwrap().1 / lh_points.first().unwrap().1;
    println!(
        "windowed per-observe flatness across n = {}..{}: {flatness:.2}x \
         (1.0 = perfectly flat)",
        lh_sizes.first().unwrap(),
        n_max
    );

    // ---- elastic hyper-parameter grid -----------------------------------
    // Amortised per-observe cost and resident factor bytes, Full vs
    // Elastic, at fleet-realistic model sizes. A sliding window at capacity
    // n keeps both arms at a constant size, so the stream's amortised mean
    // is a clean per-observe figure: each evicting observe costs the hot
    // candidates an O(n²) downdate + append, and every `refresh_every`
    // factor mutations the elastic arm pays the tournament's cold rebuilds
    // (27 × n³/6 at hot_set = 8) — which is exactly the trade the sweep
    // quantifies. hot_set = 35 spans the whole grid, so that arm *is* the
    // Full baseline (bit-for-bit — the property suite pins this).
    let gm_sizes: &[usize] = &[200, 400];
    let gm_hot_sets: &[usize] = if quick { &[8, 35] } else { &[4, 8, 16, 35] };
    let gm_refresh = 256usize;
    let gm_stream = 288usize;
    let gm_n_max = *gm_sizes.last().unwrap();
    let (gm_xs, gm_ys) = dataset(gm_n_max + gm_stream);
    let gm_points: Vec<(usize, usize, f64, usize, usize)> = gm_sizes
        .iter()
        .flat_map(|&n| gm_hot_sets.iter().map(move |&hot_set| (n, hot_set)))
        .map(|(n, hot_set)| {
            let mut gp = GaussianProcess::new(GpConfig {
                window: WindowPolicy::SlidingWindow { capacity: n },
                grid_maintenance: GridMaintenance::Elastic {
                    hot_set,
                    refresh_every: gm_refresh,
                },
                refit_every: 10_000,
                ..GpConfig::default()
            });
            gp.fit(&gm_xs[..n], &gm_ys[..n]).unwrap();
            let start = Instant::now();
            for i in n..n + gm_stream {
                gp.observe(gm_xs[i].clone(), gm_ys[i]).unwrap();
            }
            let per_observe_ms = start.elapsed().as_secs_f64() * 1e3 / gm_stream as f64;
            let bytes = gp.factor_bytes();
            let refreshes = gp.grid_stats().refreshes;
            println!(
                "elastic grid n = {n:>3}, hot_set = {hot_set:>2}: observe {per_observe_ms:>7.3} ms \
                 amortised over {gm_stream} ({bytes:>8} factor bytes, {refreshes} refreshes)"
            );
            (n, hot_set, per_observe_ms, bytes, refreshes)
        })
        .collect();
    let gm_at = |n: usize, hot: usize| {
        gm_points
            .iter()
            .find(|p| p.0 == n && p.1 == hot)
            .expect("swept point")
    };
    let gm_speedup = gm_at(gm_n_max, 35).2 / gm_at(gm_n_max, 8).2;
    let gm_memory_reduction = gm_at(gm_n_max, 35).3 as f64 / gm_at(gm_n_max, 8).3 as f64;
    println!(
        "elastic grid at n = {gm_n_max}, hot_set = 8: {gm_speedup:.2}x observe speedup, \
         {gm_memory_reduction:.2}x factor-memory reduction vs the full grid"
    );
    // Selection agreement at refresh points, measured untimed under an
    // unbounded window (where hot appends and cold rebuilds are both
    // bit-exact against full maintenance, so agreement is the designed
    // invariant, not a tolerance): stream observations into an elastic and
    // a full-maintenance GP in lockstep and compare the selected kernel at
    // every tournament refresh.
    let gm_agreement: Vec<(usize, usize, usize)> = gm_sizes
        .iter()
        .map(|&n| {
            let mut elastic = GaussianProcess::new(GpConfig {
                grid_maintenance: GridMaintenance::Elastic {
                    hot_set: 8,
                    refresh_every: 16,
                },
                refit_every: 10_000,
                ..GpConfig::default()
            });
            let mut full = GaussianProcess::new(GpConfig {
                refit_every: 10_000,
                ..GpConfig::default()
            });
            elastic.fit(&gm_xs[..n], &gm_ys[..n]).unwrap();
            full.fit(&gm_xs[..n], &gm_ys[..n]).unwrap();
            let (mut refresh_points, mut agreed) = (0, 0);
            for i in n..n + 96 {
                let before = elastic.grid_stats().refreshes;
                elastic.observe(gm_xs[i].clone(), gm_ys[i]).unwrap();
                full.observe(gm_xs[i].clone(), gm_ys[i]).unwrap();
                if elastic.grid_stats().refreshes > before {
                    refresh_points += 1;
                    if elastic.kernel() == full.kernel() {
                        agreed += 1;
                    }
                }
            }
            println!(
                "elastic grid selection agreement at n = {n}: {agreed}/{refresh_points} \
                 refresh points"
            );
            (n, refresh_points, agreed)
        })
        .collect();

    // ---- inducing-point sparse surrogate --------------------------------
    // The opt-in SoR basis: per-observe cost folds into an m×m information
    // state regardless of how many points the window retains. Both arms run
    // a single hyper-parameter candidate with the numerical backstop pushed
    // out of reach (refit_every = 10 000, like the elastic sweep), so the
    // sparse arm's only rebuilds are its own refresh cadence and the
    // windowed arm pays no periodic refits — the comparison isolates the
    // steady-state fold costs. Amortised figures time the final `tail`
    // observes, with `tail` a multiple of the refresh cadence so every arm
    // pays exactly `tail / refresh_every` basis rebuilds in the timed
    // window regardless of phase.
    let ind_m = DEFAULT_INDUCING_M;
    let ind_refresh = DEFAULT_INDUCING_REFRESH;
    let ind_tail = 512usize;
    let head_n = 2000usize;
    let ind_full_n = 5000usize;
    let (ind_xs, ind_ys) = dataset(if quick { head_n } else { ind_full_n });
    let ind_config = |basis: SurrogateBasis, window: WindowPolicy| GpConfig {
        optimize_hyperparameters: false,
        refit_every: 10_000,
        window,
        basis,
        ..GpConfig::default()
    };
    let sparse_basis = |m: usize, refresh_every: usize| SurrogateBasis::Inducing {
        m,
        selection: InducingSelection::GreedyVariance,
        refresh_every,
    };
    // Fit on the first 64 points, stream the rest, and time the final
    // `tail` observes: (amortised per-observe ms, factor bytes, the GP).
    let stream = |config: GpConfig, n: usize, tail: usize| {
        let mut gp = GaussianProcess::new(config);
        gp.fit(&ind_xs[..64], &ind_ys[..64]).unwrap();
        for i in 64..n - tail {
            gp.observe(ind_xs[i].clone(), ind_ys[i]).unwrap();
        }
        let start = Instant::now();
        for i in n - tail..n {
            gp.observe(ind_xs[i].clone(), ind_ys[i]).unwrap();
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / tail as f64;
        let bytes = gp.factor_bytes();
        (ms, bytes, gp)
    };
    // Head-to-head at n = 2000: the CI gate. A sparse basis at the default
    // m = 256 folds into a 256² information state while a 512-capacity
    // sliding window pays a 512² downdate + append per evicting observe, so
    // even with the refresh rebuilds amortised in, inducing must never lose
    // to the windowed exact path here.
    let (head_sparse_ms, head_sparse_bytes, head_gp) = stream(
        ind_config(sparse_basis(ind_m, ind_refresh), WindowPolicy::Unbounded),
        head_n,
        ind_tail,
    );
    assert!(
        head_gp.basis_active() && head_gp.inducing_len() == ind_m,
        "the sparse path must be active at n = {head_n} with m = {ind_m}"
    );
    let head_cap = 512usize;
    let (head_win_ms, head_win_bytes, _) = stream(
        ind_config(
            SurrogateBasis::Exact,
            WindowPolicy::SlidingWindow { capacity: head_cap },
        ),
        head_n,
        ind_tail,
    );
    println!(
        "inducing n = {head_n}, m = {ind_m}: sparse observe {head_sparse_ms:.3} ms \
         ({head_sparse_bytes} factor bytes), windowed cap {head_cap} observe \
         {head_win_ms:.3} ms ({head_win_bytes} factor bytes)"
    );
    // Full mode: the calibrated gates at n = 5000 against the unbounded
    // exact GP the long-horizon section already measured (same
    // single-candidate shape; its timed observe never hits a rebuild).
    let ind_full = (!quick).then(|| {
        let (s_ms, s_bytes, gp) = stream(
            ind_config(sparse_basis(ind_m, ind_refresh), WindowPolicy::Unbounded),
            ind_full_n,
            ind_tail,
        );
        assert!(gp.basis_active() && gp.len() == ind_full_n);
        let lh = lh_points
            .iter()
            .find(|p| p.0 == ind_full_n)
            .expect("full mode sweeps n = 5000");
        println!(
            "inducing n = {ind_full_n}, m = {ind_m}: sparse observe {s_ms:.3} ms \
             ({s_bytes} factor bytes), unbounded exact observe {:.3} ms ({} factor bytes) \
             -> {:.1}x observe, {:.1}x memory",
            lh.3,
            lh.4,
            lh.3 / s_ms,
            lh.4 as f64 / s_bytes as f64
        );
        (s_ms, s_bytes, lh.3, lh.4)
    });
    // Budget and cadence sweeps at a fixed stream length, each arm scored
    // by amortised per-observe cost and by posterior fidelity: RMSE of the
    // predictive mean against the exact unbounded GP on a held-out probe
    // set (the arms retain the same data, so the gap is purely the SoR
    // approximation). "Measured best" is the cheapest arm whose RMSE stays
    // within 2x of the sweep's most faithful arm.
    let sweep_n = if quick { 1024 } else { head_n };
    let mut probe_rng = seeded_rng(11);
    let probe = SearchSpace::unit(DIM).sample_n(256, &mut probe_rng);
    let mut exact_ref_gp =
        GaussianProcess::new(ind_config(SurrogateBasis::Exact, WindowPolicy::Unbounded));
    exact_ref_gp
        .fit(&ind_xs[..sweep_n], &ind_ys[..sweep_n])
        .unwrap();
    let ref_preds = exact_ref_gp.predict_batch(&probe);
    let rmse_vs_ref = |gp: &GaussianProcess| {
        let preds = gp.predict_batch(&probe);
        (preds
            .iter()
            .zip(&ref_preds)
            .map(|(a, b)| (a.0 - b.0).powi(2))
            .sum::<f64>()
            / probe.len() as f64)
            .sqrt()
    };
    let m_values: &[usize] = if quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512]
    };
    let m_sweep: Vec<(usize, f64, usize, f64)> = m_values
        .iter()
        .map(|&m| {
            let tail = ind_refresh.max(256);
            let (ms, bytes, gp) = stream(
                ind_config(sparse_basis(m, ind_refresh), WindowPolicy::Unbounded),
                sweep_n,
                tail,
            );
            let rmse = rmse_vs_ref(&gp);
            println!(
                "inducing m sweep n = {sweep_n}, m = {m:>3}: observe {ms:>7.3} ms \
                 ({bytes:>7} factor bytes, probe rmse {rmse:.2e})"
            );
            (m, ms, bytes, rmse)
        })
        .collect();
    let m_best_rmse = m_sweep.iter().map(|p| p.3).fold(f64::INFINITY, f64::min);
    let measured_best_m = m_sweep
        .iter()
        .find(|p| p.3 <= m_best_rmse * 2.0)
        .expect("non-empty sweep")
        .0;
    let refresh_values: &[usize] = if quick {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024]
    };
    let refresh_sweep: Vec<(usize, f64, f64)> = refresh_values
        .iter()
        .map(|&refresh| {
            let tail = refresh.max(256);
            let (ms, _, gp) = stream(
                ind_config(sparse_basis(ind_m, refresh), WindowPolicy::Unbounded),
                sweep_n,
                tail,
            );
            let rmse = rmse_vs_ref(&gp);
            println!(
                "inducing refresh sweep n = {sweep_n}, refresh = {refresh:>4}: observe \
                 {ms:>7.3} ms (probe rmse {rmse:.2e})"
            );
            (refresh, ms, rmse)
        })
        .collect();
    let refresh_best_rmse = refresh_sweep
        .iter()
        .map(|p| p.2)
        .fold(f64::INFINITY, f64::min);
    let measured_best_refresh = refresh_sweep
        .iter()
        .filter(|p| p.2 <= refresh_best_rmse * 2.0)
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite timings"))
        .expect("non-empty sweep")
        .0;
    // Selection agreement at rebuild points: with m >= n the basis never
    // activates, so every cadence rebuild runs the exact tournament — the
    // selected kernel (and every prediction in between) must match the
    // plain exact GP bit for bit. This is the designed invariant the
    // property suite pins; the bench audits it on the full 35-candidate
    // grid under the production refit cadence.
    let ind_agreement: Vec<(usize, usize, usize)> = [128usize, 256]
        .iter()
        .map(|&n| {
            let cadence = 16usize;
            let roomy = GpConfig {
                refit_every: cadence,
                basis: sparse_basis(1 << 20, cadence),
                ..GpConfig::default()
            };
            let exact = GpConfig {
                refit_every: cadence,
                ..GpConfig::default()
            };
            let mut roomy_gp = GaussianProcess::new(roomy);
            let mut exact_gp = GaussianProcess::new(exact);
            roomy_gp.fit(&ind_xs[..n], &ind_ys[..n]).unwrap();
            exact_gp.fit(&ind_xs[..n], &ind_ys[..n]).unwrap();
            let (mut rebuild_points, mut agreed) = (0, 0);
            for i in n..n + 3 * cadence {
                roomy_gp.observe(ind_xs[i].clone(), ind_ys[i]).unwrap();
                exact_gp.observe(ind_xs[i].clone(), ind_ys[i]).unwrap();
                if (i - n + 1) % cadence == 0 {
                    rebuild_points += 1;
                    let bit_equal = roomy_gp.kernel() == exact_gp.kernel()
                        && roomy_gp.predict(&probe[0]) == exact_gp.predict(&probe[0]);
                    if bit_equal {
                        agreed += 1;
                    }
                }
            }
            assert!(
                !roomy_gp.basis_active(),
                "m >= n must keep the exact path active"
            );
            println!(
                "inducing selection agreement at n = {n}: {agreed}/{rebuild_points} \
                 rebuild points"
            );
            (n, rebuild_points, agreed)
        })
        .collect();

    let speedup_largest = points.last().expect("non-empty").speedup();
    let full_exp = scaling_exponent(&points, |p| p.full_refit_ms);
    let inc_exp = scaling_exponent(&points, |p| p.incremental_ms);
    println!(
        "scaling exponents: full refit ~n^{full_exp:.2}, incremental ~n^{inc_exp:.2}; \
         speedup at n = {n}: {speedup_largest:.1}x"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"gp_observe_hot_path\",\n");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p atlas-bench --bin gp_bench{}\",",
        if quick { " -- --quick" } else { "" }
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"dim\": {DIM},");
    let _ = writeln!(json, "  \"reps_per_point\": {reps},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"full_refit_ms\": {:.4}, \"incremental_observe_ms\": {:.4}, \"speedup\": {:.2}}}{}",
            p.n,
            p.full_refit_ms,
            p.incremental_ms,
            p.speedup(),
            comma
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"predict_2000_candidates\": {{\"n\": {n}, \"per_point_ms\": {per_point_ms:.4}, \"batched_ms\": {batched_ms:.4}}},"
    );
    // Column-tile calibration of the multi-RHS triangular solve.
    json.push_str("  \"col_tile_calibration\": {\n");
    let _ = writeln!(json, "    \"n\": {n}, \"rhs_cols\": {},", candidates.len());
    json.push_str("    \"points\": [\n");
    for (i, (tile, ms)) in tile_points.iter().enumerate() {
        let comma = if i + 1 < tile_points.len() { "," } else { "" };
        let _ = writeln!(json, "      {{\"tile\": {tile}, \"ms\": {ms:.4}}}{comma}");
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"measured_best_tile\": {measured_best_tile},");
    let _ = writeln!(json, "    \"chosen_default_col_tile\": {DEFAULT_COL_TILE}");
    json.push_str("  },\n");
    // Blocked dense-kernel calibration: the tentpole speedups, each against
    // the exact pre-blocking code path (scalar Cholesky; the frozen
    // column-tiled forward sweep), plus the batched-append amortisation.
    json.push_str("  \"blocked_kernels\": {\n");
    json.push_str(
        "    \"note\": \"1-CPU benchmark container; timings wander ~10-15% run to run — \
         re-run the sweeps on a multi-core box before moving the defaults\",\n",
    );
    json.push_str("    \"cholesky\": {\n");
    json.push_str("      \"points\": [\n");
    for (i, p) in chol_points.iter().enumerate() {
        let comma = if i + 1 < chol_points.len() { "," } else { "" };
        let _ = write!(
            json,
            "        {{\"n\": {}, \"scalar_ms\": {:.4}, \"blocked\": [",
            p.n, p.scalar_ms
        );
        for (j, (block, ms)) in p.blocked.iter().enumerate() {
            let bcomma = if j + 1 < p.blocked.len() { ", " } else { "" };
            let _ = write!(json, "{{\"block\": {block}, \"ms\": {ms:.4}}}{bcomma}");
        }
        let _ = writeln!(
            json,
            "], \"speedup_at_default_block\": {:.2}}}{comma}",
            p.scalar_ms / default_block_ms(p)
        );
    }
    json.push_str("      ],\n");
    let _ = writeln!(
        json,
        "      \"measured_best_block_at_n400\": {chol_best_block_400},"
    );
    let _ = writeln!(
        json,
        "      \"chosen_default_chol_block\": {DEFAULT_CHOL_BLOCK},"
    );
    let _ = writeln!(json, "      \"speedup_at_n400\": {chol_speedup_400:.2}");
    json.push_str("    },\n");
    json.push_str("    \"multi_rhs_forward_solve\": {\n");
    let _ = writeln!(
        json,
        "      \"n\": {solve_n}, \"rhs_cols\": {},",
        candidates.len()
    );
    let _ = writeln!(
        json,
        "      \"pre_blocking_tile64_ms\": {pre_blocking_ms:.4},"
    );
    json.push_str("      \"points\": [\n");
    for (i, (col_tile, row_block, ms)) in solve_points.iter().enumerate() {
        let comma = if i + 1 < solve_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "        {{\"col_tile\": {col_tile}, \"row_block\": {row_block}, \"ms\": {ms:.4}}}{comma}"
        );
    }
    json.push_str("      ],\n");
    let _ = writeln!(
        json,
        "      \"measured_best\": {{\"col_tile\": {}, \"row_block\": {}}},",
        solve_best.0, solve_best.1
    );
    let _ = writeln!(
        json,
        "      \"chosen\": {{\"col_tile\": {DEFAULT_COL_TILE}, \"row_block\": {DEFAULT_ROW_BLOCK}}},"
    );
    let _ = writeln!(
        json,
        "      \"speedup_vs_pre_blocking\": {solve_speedup:.2}"
    );
    json.push_str("    },\n");
    let _ = writeln!(
        json,
        "    \"append_rows\": {{\"base_n\": {append_base}, \"k\": {append_k}, \
         \"sequential_ms\": {append_seq_ms:.4}, \"batched_ms\": {append_batched_ms:.4}, \
         \"speedup\": {:.2}}}",
        append_seq_ms / append_batched_ms
    );
    json.push_str("  },\n");
    // Mixed-precision scoring: opt-in f32 ranking shadow vs the exact f64
    // batched predictor, with its measured top-k ranking agreement.
    json.push_str("  \"scoring_precision\": {\n");
    let _ = writeln!(
        json,
        "    \"n\": {n}, \"candidates\": {}, \"top_k\": {scoring_top_k},",
        candidates.len()
    );
    let _ = writeln!(json, "    \"exact_f64_ms\": {exact_f64_ms:.4},");
    let _ = writeln!(json, "    \"mixed_f32_ms\": {mixed_f32_ms:.4},");
    let _ = writeln!(json, "    \"speedup\": {scoring_speedup:.2},");
    let _ = writeln!(
        json,
        "    \"top_k_agreement\": {top_k_agreement}, \"demoted\": {}",
        gp_mixed.scoring_demoted()
    );
    json.push_str("  },\n");
    // Thread-parallel threshold calibration.
    json.push_str("  \"thread_calibration\": {\n");
    let _ = writeln!(json, "    \"available_parallelism\": {available},");
    let _ = writeln!(
        json,
        "    \"predict_batch_par\": {{\"n\": {n}, \"candidates\": {}, \"min_chunk\": {PREDICT_PAR_MIN_CHUNK}, \"points\": [",
        candidates.len()
    );
    for (i, (threads, ms)) in thread_points.iter().enumerate() {
        let comma = if i + 1 < thread_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"threads\": {threads}, \"ms\": {ms:.4}}}{comma}"
        );
    }
    json.push_str("    ]},\n");
    let _ = writeln!(
        json,
        "    \"chosen\": {{\"predict_par_min_chunk\": {PREDICT_PAR_MIN_CHUNK}, \"grid_par_min_candidates\": {GRID_PAR_MIN_CANDIDATES}, \"grid_par_min_n\": {GRID_PAR_MIN_N}}}"
    );
    json.push_str("  },\n");
    // Long-horizon sliding-window calibration: per-observe latency must be
    // flat in the total number of observations, and factor memory must
    // plateau at O(cap²/2) per candidate.
    json.push_str("  \"long_horizon\": {\n");
    let _ = writeln!(json, "    \"window_capacity\": {lh_cap},");
    json.push_str(
        "    \"note\": \"single hyper-parameter candidate; the default 35-candidate grid \
         scales both arms' cost and bytes uniformly\",\n",
    );
    json.push_str("    \"points\": [\n");
    for (i, (n, w_ms, w_bytes, u_ms, u_bytes)) in lh_points.iter().enumerate() {
        let comma = if i + 1 < lh_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"n\": {n}, \"windowed_observe_ms\": {w_ms:.4}, \
             \"windowed_factor_bytes\": {w_bytes}, \"unbounded_observe_ms\": {u_ms:.4}, \
             \"unbounded_factor_bytes\": {u_bytes}}}{comma}"
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"windowed_flatness\": {flatness:.3}");
    json.push_str("  },\n");
    // Elastic hyper-parameter grid: amortised observe cost + resident
    // factor bytes across the hot-set sweep, and the refresh-point
    // selection-agreement audit.
    json.push_str("  \"grid_maintenance\": {\n");
    let _ = writeln!(json, "    \"refresh_every\": {gm_refresh},");
    let _ = writeln!(json, "    \"stream_observes\": {gm_stream},");
    json.push_str(
        "    \"note\": \"sliding window at capacity n keeps both arms at constant size; \
         hot_set 35 spans the grid and is the Full baseline\",\n",
    );
    json.push_str("    \"points\": [\n");
    for (i, (n, hot_set, ms, bytes, refreshes)) in gm_points.iter().enumerate() {
        let comma = if i + 1 < gm_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"n\": {n}, \"hot_set\": {hot_set}, \"per_observe_ms\": {ms:.4}, \
             \"factor_bytes\": {bytes}, \"refreshes\": {refreshes}}}{comma}"
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(
        json,
        "    \"observe_speedup_hot8_at_n{gm_n_max}\": {gm_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "    \"factor_memory_reduction_hot8_at_n{gm_n_max}\": {gm_memory_reduction:.2},"
    );
    json.push_str("    \"selection_agreement\": [\n");
    for (i, (n, refresh_points, agreed)) in gm_agreement.iter().enumerate() {
        let comma = if i + 1 < gm_agreement.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"n\": {n}, \"refresh_points\": {refresh_points}, \"agreed\": {agreed}}}{comma}"
        );
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    // Inducing-point sparse surrogate: the head-to-head CI gate, the
    // full-mode calibrated gates vs the unbounded exact GP, the basis /
    // cadence sweeps, and the m >= n rebuild-point agreement audit.
    json.push_str("  \"inducing\": {\n");
    json.push_str(
        "    \"note\": \"single hyper-parameter candidate, refit_every 10000 in every \
         arm so only the sparse refresh cadence rebuilds; timed tail is a multiple of \
         the cadence; 1-CPU benchmark container — re-run the sweeps on a multi-core \
         box before moving DEFAULT_INDUCING_M / DEFAULT_INDUCING_REFRESH\",\n",
    );
    let _ = writeln!(
        json,
        "    \"never_loses\": {{\"n\": {head_n}, \"m\": {ind_m}, \"refresh_every\": \
         {ind_refresh}, \"window_capacity\": {head_cap}, \"sparse_observe_ms\": \
         {head_sparse_ms:.4}, \"sparse_factor_bytes\": {head_sparse_bytes}, \
         \"windowed_observe_ms\": {head_win_ms:.4}, \"windowed_factor_bytes\": \
         {head_win_bytes}}},"
    );
    if let Some((s_ms, s_bytes, u_ms, u_bytes)) = ind_full {
        let _ = writeln!(
            json,
            "    \"vs_unbounded_exact\": {{\"n\": {ind_full_n}, \"m\": {ind_m}, \
             \"sparse_observe_ms\": {s_ms:.4}, \"sparse_factor_bytes\": {s_bytes}, \
             \"unbounded_observe_ms\": {u_ms:.4}, \"unbounded_factor_bytes\": {u_bytes}, \
             \"observe_speedup\": {:.2}, \"factor_memory_reduction\": {:.2}}},",
            u_ms / s_ms,
            u_bytes as f64 / s_bytes as f64
        );
    }
    let _ = writeln!(json, "    \"m_sweep\": {{\"n\": {sweep_n},");
    json.push_str("      \"points\": [\n");
    for (i, (m, ms, bytes, rmse)) in m_sweep.iter().enumerate() {
        let comma = if i + 1 < m_sweep.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "        {{\"m\": {m}, \"per_observe_ms\": {ms:.4}, \"factor_bytes\": \
             {bytes}, \"probe_rmse\": {rmse:.6e}}}{comma}"
        );
    }
    json.push_str("      ],\n");
    let _ = writeln!(json, "      \"measured_best_m\": {measured_best_m},");
    let _ = writeln!(json, "      \"chosen_default_m\": {DEFAULT_INDUCING_M}");
    json.push_str("    },\n");
    let _ = writeln!(
        json,
        "    \"refresh_sweep\": {{\"n\": {sweep_n}, \"m\": {ind_m},"
    );
    json.push_str("      \"points\": [\n");
    for (i, (refresh, ms, rmse)) in refresh_sweep.iter().enumerate() {
        let comma = if i + 1 < refresh_sweep.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "        {{\"refresh_every\": {refresh}, \"per_observe_ms\": {ms:.4}, \
             \"probe_rmse\": {rmse:.6e}}}{comma}"
        );
    }
    json.push_str("      ],\n");
    let _ = writeln!(
        json,
        "      \"measured_best_refresh\": {measured_best_refresh},"
    );
    let _ = writeln!(
        json,
        "      \"chosen_default_refresh\": {DEFAULT_INDUCING_REFRESH}"
    );
    json.push_str("    },\n");
    json.push_str("    \"selection_agreement\": [\n");
    for (i, (n, rebuild_points, agreed)) in ind_agreement.iter().enumerate() {
        let comma = if i + 1 < ind_agreement.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"n\": {n}, \"rebuild_points\": {rebuild_points}, \"agreed\": {agreed}}}{comma}"
        );
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"speedup_at_largest_n\": {speedup_largest:.2},");
    let _ = writeln!(json, "  \"full_refit_scaling_exponent\": {full_exp:.3},");
    let _ = writeln!(json, "  \"incremental_scaling_exponent\": {inc_exp:.3}");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");

    // The blocked Cholesky accelerated the full-refit *baseline* of this
    // ratio (every grid candidate's factorisation), so the incremental
    // advantage is structurally smaller than it was against the scalar
    // kernel — especially at quick mode's n = 200, where the refit's
    // cubic term has less room to dominate. The elastic-grid rebuild path
    // shrank the baseline again (the refit now reuses the cached distance
    // triangle instead of re-evaluating every pairwise distance per
    // candidate: ~11.9x became ~8.4x at n = 400 with the incremental side
    // untouched), so the full-mode floor is recalibrated below it.
    let min_observe_speedup = if quick { 6.0 } else { 7.0 };
    assert!(
        speedup_largest >= min_observe_speedup,
        "incremental observe must be >= {min_observe_speedup}x faster than the full refit \
         at n = {n} (measured {speedup_largest:.1}x)"
    );
    assert!(
        flatness <= 2.5,
        "windowed per-observe time must be flat in the total observation \
         count (measured {flatness:.2}x across n = {}..{n_max})",
        lh_sizes.first().unwrap()
    );
    // CI smoke for the blocked kernels: the measured headroom is ~2x, so
    // even on a noisy shared runner the blocked factorisation must never
    // lose to the scalar kernel it replaced.
    assert!(
        default_block_ms(chol_400) <= chol_400.scalar_ms,
        "blocked Cholesky (block = {DEFAULT_CHOL_BLOCK}) must be no slower than the \
         scalar kernel at n = 400 (blocked {:.3} ms vs scalar {:.3} ms)",
        default_block_ms(chol_400),
        chol_400.scalar_ms
    );
    // CI smoke for the elastic grid: even on a noisy runner the hot-set-8
    // arm (4.4x fewer live factors, refresh amortised over 256 mutations)
    // must never lose to full maintenance at n = 400, and tournament
    // refreshes must agree with full-grid selection at every refresh point
    // (the unbounded-window audit is bit-exact by construction). The
    // calibrated speedup/memory gates run in full mode only.
    assert!(
        gm_at(gm_n_max, 8).2 <= gm_at(gm_n_max, 35).2,
        "elastic observe (hot_set = 8) must not lose to the full grid at n = {gm_n_max} \
         (elastic {:.3} ms vs full {:.3} ms)",
        gm_at(gm_n_max, 8).2,
        gm_at(gm_n_max, 35).2
    );
    for (n, refresh_points, agreed) in &gm_agreement {
        assert!(
            *refresh_points > 0 && agreed == refresh_points,
            "tournament refresh must agree with full-grid selection at every refresh \
             point (n = {n}: {agreed}/{refresh_points})"
        );
    }
    if !quick {
        assert!(
            gm_speedup >= 2.0,
            "elastic observe (hot_set = 8) must be >= 2x faster than the full grid \
             at n = {gm_n_max} (measured {gm_speedup:.2}x)"
        );
        assert!(
            gm_memory_reduction >= 3.0,
            "elastic factor memory (hot_set = 8) must be >= 3x below the full grid \
             at n = {gm_n_max} (measured {gm_memory_reduction:.2}x)"
        );
    }
    // CI smoke for the inducing basis: folding into a 256² information
    // state (refresh rebuilds amortised in) must never lose to the
    // 512-capacity sliding window's 512² downdate + append, in time or in
    // resident factor bytes, at n = 2000.
    assert!(
        head_sparse_ms <= head_win_ms,
        "inducing observe (m = {ind_m}) must not lose to the windowed exact path \
         (cap {head_cap}) at n = {head_n} (sparse {head_sparse_ms:.3} ms vs windowed \
         {head_win_ms:.3} ms)"
    );
    assert!(
        head_sparse_bytes < head_win_bytes,
        "inducing factor memory (m = {ind_m}) must stay below the windowed exact \
         path's (cap {head_cap}): {head_sparse_bytes} vs {head_win_bytes} bytes"
    );
    // The m >= n audit is bit-exact by construction, so it gates both
    // modes: every rebuild point must reproduce exact-GP selection.
    for (n, rebuild_points, agreed) in &ind_agreement {
        assert!(
            *rebuild_points > 0 && agreed == rebuild_points,
            "an inducing basis with m >= n must reproduce exact-GP selection at \
             every rebuild point (n = {n}: {agreed}/{rebuild_points})"
        );
    }
    // The calibrated full-mode gates: the sparse fold at n = 5000 against
    // the unbounded exact GP's quadratic observe and 100 MB factor.
    if let Some((s_ms, s_bytes, u_ms, u_bytes)) = ind_full {
        let observe_speedup = u_ms / s_ms;
        let memory_reduction = u_bytes as f64 / s_bytes as f64;
        assert!(
            observe_speedup >= 5.0,
            "inducing observe (m = {ind_m}) must be >= 5x faster than the unbounded \
             exact GP at n = {ind_full_n} (measured {observe_speedup:.2}x)"
        );
        assert!(
            memory_reduction >= 10.0,
            "inducing factor memory (m = {ind_m}) must be >= 10x below the unbounded \
             exact GP at n = {ind_full_n} (measured {memory_reduction:.2}x)"
        );
    }
}
