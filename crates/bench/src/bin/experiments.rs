//! Command-line entry point of the experiment harness.
//!
//! ```text
//! experiments <id>... [--paper-scale] [--seed N]
//! experiments all     [--paper-scale] [--seed N]
//! experiments list
//! ```
//!
//! Every experiment prints an aligned table and writes `results/<id>.csv`.

use atlas_bench::experiments::{all_ids, run, Settings};
use std::process::ExitCode;

fn usage() {
    eprintln!("usage: experiments <id>... | all | list  [--paper-scale] [--seed N]");
    eprintln!("known experiment ids:");
    for id in all_ids() {
        eprintln!("  {id}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    let mut settings = Settings::default();
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper-scale" => settings.paper_scale = true,
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(seed) => settings.seed = seed,
                None => {
                    eprintln!("--seed requires an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "list" => {
                for id in all_ids() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(all_ids().iter().map(|s| s.to_string())),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                usage();
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }

    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    for id in &ids {
        println!("### running {id} ###");
        let started = std::time::Instant::now();
        if let Err(err) = run(id, &settings) {
            eprintln!("error: {err}");
            usage();
            return ExitCode::FAILURE;
        }
        println!(
            "### {id} finished in {:.1}s ###\n",
            started.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
