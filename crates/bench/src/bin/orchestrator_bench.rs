//! Multi-slice orchestrator throughput benchmark emitting
//! `BENCH_orchestrator.json`.
//!
//! Sections:
//!
//! 1. **fleets** — a fixed fleet of concurrent stage-3 slice sessions
//!    against one shared emulated testbed: wall-clock of (a) the
//!    sequential baseline — one `OnlineLearner::run` per slice — vs (b)
//!    the orchestrated run at several scheduler thread counts. Before any
//!    timing is reported, the orchestrated fleet is checked **bit-for-bit**
//!    against the sequential results (co-scheduling must be a pure
//!    performance transform).
//! 2. **sim_batching** — the offline-acceleration *simulator* queries
//!    (they outnumber testbed queries `offline_updates`-to-1 per round)
//!    routed through the shared `QueryScheduler` batch path vs evaluated
//!    inline per session; both modes are asserted bit-identical first.
//! 3. **churn** — elastic fleets (deterministic Poisson-ish
//!    arrivals/departures through `FleetRun::admit`/`retire`) at three
//!    budget tightness levels, asserted deterministic across scheduler
//!    thread counts, reporting rejected admissions and the
//!    granted-vs-requested usage gap.
//! 4. **sharding** — an operator-scale fleet (1000 slices in full mode)
//!    partitioned across fixed worker shards
//!    (`Orchestrator::with_shards`): per-round wall-clock at several shard
//!    counts, asserted **bit-identical** to the unsharded run first (the
//!    determinism smoke CI relies on), plus a sweep calibrating the
//!    scheduler's `EVAL_PAR_MIN_CHUNK` fan-out threshold.
//! 5. **sim_fastpath** — the evaluate-phase caches (scenario-keyed
//!    measurement cache, workspace reuse, sim memoization, batch dedup):
//!    an uncached (`SimCachePolicy::Off`) fleet vs a cold cached run vs a
//!    warm replay of the identical fleet, all asserted byte-identical,
//!    with honest process-wide hit/miss counters — plus the per-session
//!    replay path where the memo shines.
//!
//! ```text
//! cargo run --release -p atlas-bench --bin orchestrator_bench -- [--quick] [--out BENCH_orchestrator.json]
//! ```

use atlas::env::{Environment, RealEnv, Sla};
use atlas::{
    OnlineLearner, Scenario, Simulator, SliceConfig, SliceQuery, Stage3Config, Stage3Result,
};
use atlas_netsim::{RealNetwork, ResourceBudget, SharedTestbed, SimCachePolicy, SimCacheStats};
use atlas_orchestrator::{
    AcceptAll, AdmissionPolicy, ChurnConfig, ChurnWorkload, HeadroomThreshold, Orchestrator,
    SliceSpec, EVAL_PAR_MIN_CHUNK,
};
use std::fmt::Write as _;
use std::time::Instant;

/// A heterogeneous fleet of `n` slices: traffic, distance, SLA and seeds
/// differ per slice, as they would across an operator's tenants.
fn fleet(n: u64, iterations: usize, duration_s: f64) -> Vec<SliceSpec> {
    (0..n)
        .map(|i| {
            let sla = Sla::new(250.0 + 25.0 * (i % 3) as f64, 0.85 + 0.02 * (i % 2) as f64);
            let config = Stage3Config {
                iterations,
                offline_updates: 2,
                candidates: 200,
                duration_s,
                ..Stage3Config::default()
            };
            let learner =
                OnlineLearner::without_offline(config, sla, Simulator::with_original_params());
            let scenario = Scenario::default_with_seed(i)
                .with_duration(duration_s)
                .with_traffic(1 + (i as u32) % 3)
                .with_distance(1.0 + 2.0 * (i % 5) as f64);
            SliceSpec::new(format!("slice-{i}"), learner, scenario, 4000 + 17 * i)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_orchestrator.json")
        .to_string();
    let fleet_sizes: &[u64] = if quick { &[8] } else { &[2, 4, 8, 16] };
    let iterations = if quick { 2 } else { 5 };
    let duration_s = if quick { 2.0 } else { 30.0 };
    let thread_counts = [1usize, 2, 4, 8];
    let network = RealNetwork::prototype();
    // The sim caches are process-wide, so an A-vs-B section timed with them
    // on would hand whichever run goes second a warm-cache advantage. The
    // co-scheduling comparisons below (sequential vs orchestrated, inline
    // vs batched) therefore run uncached; the caches get their own honest
    // section (sim_fastpath) further down.
    let network_off = RealNetwork::prototype().with_cache_policy(SimCachePolicy::Off);
    let fleet_off = |n: u64, iterations: usize, duration_s: f64| -> Vec<SliceSpec> {
        fleet(n, iterations, duration_s)
            .into_iter()
            .map(|s| s.with_sim_cache_policy(SimCachePolicy::Off))
            .collect()
    };

    struct FleetPoint {
        slices: u64,
        total_queries: usize,
        sequential_ms: f64,
        sequential_qps: f64,
        orchestrated: Vec<(usize, f64, f64)>,
    }

    let mut fleet_points = Vec::with_capacity(fleet_sizes.len());
    for &slices in fleet_sizes {
        // ---- sequential baseline: N independent single-slice runs -------
        let specs = fleet_off(slices, iterations, duration_s);
        let real = RealEnv::new(network_off);
        let start = Instant::now();
        let sequential: Vec<Stage3Result> = specs
            .iter()
            .map(|s| s.learner.run(&real, &s.scenario, s.seed))
            .collect();
        let sequential_ms = start.elapsed().as_secs_f64() * 1e3;
        let total_queries: usize = sequential.iter().map(|r| r.history.len()).sum();
        let sequential_qps = total_queries as f64 / (sequential_ms / 1e3);
        println!(
            "sequential: {slices} slices x {iterations} iters = {total_queries} queries in \
             {sequential_ms:.0} ms ({sequential_qps:.2} queries/s)"
        );

        // ---- orchestrated runs at several scheduler thread counts --------
        let mut orchestrated = Vec::with_capacity(thread_counts.len());
        for threads in thread_counts {
            let orchestrator =
                Orchestrator::new(SharedTestbed::new(network_off)).with_threads(threads);
            let start = Instant::now();
            let report = orchestrator.run(fleet_off(slices, iterations, duration_s));
            let ms = start.elapsed().as_secs_f64() * 1e3;
            // Hard acceptance check: orchestration must be bit-identical
            // to the sequential single-slice runs on the same seeds.
            assert_eq!(report.slices.len(), slices as usize);
            for (slice, expected) in report.slices.iter().zip(&sequential) {
                assert_eq!(
                    &slice.result, expected,
                    "orchestrated slice {} diverged from its sequential run (threads = {threads})",
                    slice.name
                );
            }
            let qps = report.total_queries as f64 / (ms / 1e3);
            println!(
                "orchestrated ({slices} slices, {threads} threads): {} queries in {ms:.0} ms \
                 ({qps:.2} queries/s), fleet SLA-viol {:.1}%, usage {:.1}%",
                report.total_queries,
                report.sla_violation_rate * 100.0,
                report.mean_usage * 100.0,
            );
            orchestrated.push((threads, ms, qps));
        }
        fleet_points.push(FleetPoint {
            slices,
            total_queries,
            sequential_ms,
            sequential_qps,
            orchestrated,
        });
    }

    let best_qps = fleet_points
        .iter()
        .flat_map(|f| f.orchestrated.iter().map(|p| p.2))
        .fold(f64::MIN, f64::max);

    // ---- sim-query batching: inline (per-session) vs batched across the
    // fleet over the shared scheduler. Bit-identity asserted first.
    let sim_slices: u64 = 8;
    let sim_threads = 4;
    println!();
    let sim_fleet = fleet_off(sim_slices, iterations, duration_s);
    // Each round also runs `offline_updates` simulator queries per slice;
    // read the factor off the fleet's own config so the reported
    // queries/s can never drift from what `fleet()` actually runs.
    let offline_updates = sim_fleet[0].learner.config().offline_updates;
    let inline_orch = Orchestrator::new(SharedTestbed::new(network_off))
        .with_threads(sim_threads)
        .with_sim_batching(false);
    let start = Instant::now();
    let inline_report = inline_orch.run(sim_fleet);
    let inline_ms = start.elapsed().as_secs_f64() * 1e3;
    let batched_orch = Orchestrator::new(SharedTestbed::new(network_off))
        .with_threads(sim_threads)
        .with_sim_batching(true);
    let start = Instant::now();
    let batched_report = batched_orch.run(fleet_off(sim_slices, iterations, duration_s));
    let batched_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        batched_report, inline_report,
        "sim-query batching must be a pure performance transform"
    );
    // Simulator + real-network queries together.
    let round_queries = inline_report.total_queries * (1 + offline_updates);
    let inline_qps = round_queries as f64 / (inline_ms / 1e3);
    let batched_qps = round_queries as f64 / (batched_ms / 1e3);
    println!(
        "sim batching ({sim_slices} slices, {sim_threads} threads): inline {inline_ms:.0} ms \
         ({inline_qps:.2} q/s) -> batched {batched_ms:.0} ms ({batched_qps:.2} q/s), bit-identical"
    );

    // ---- churn: elastic fleets x budget tightness, determinism asserted
    // across scheduler thread counts.
    let churn_caps: &[usize] = if quick { &[8] } else { &[4, 8, 16] };
    let tightness: &[(&str, f64)] = &[("unlimited", f64::INFINITY), ("1.0x", 1.0), ("0.5x", 0.5)];
    struct ChurnPoint {
        cap: usize,
        tightness: &'static str,
        slices_reported: usize,
        rounds: usize,
        total_queries: usize,
        rejected: usize,
        grant_gap: f64,
        ms: f64,
        qps: f64,
    }
    let mut churn_points: Vec<ChurnPoint> = Vec::new();
    for &cap in churn_caps {
        let config = if quick {
            ChurnConfig::quick(42)
        } else {
            ChurnConfig::bench(42, cap)
        };
        let workload = ChurnWorkload::generate(&config);
        // Record the cap the workload actually enforces (quick mode uses
        // ChurnConfig::quick's own cap regardless of the sweep value).
        let cap = workload.max_concurrent;
        for (label, factor) in tightness {
            let budget = if factor.is_finite() {
                Some(ResourceBudget::carrier_default().scaled(*factor))
            } else {
                None
            };
            let run_at = |threads: usize| {
                let testbed = match budget {
                    Some(b) => SharedTestbed::new(network).with_budget(b),
                    None => SharedTestbed::new(network),
                };
                let orchestrator = Orchestrator::new(testbed).with_threads(threads);
                let policy: Box<dyn AdmissionPolicy> = match budget {
                    Some(_) => Box::new(HeadroomThreshold { max_occupancy: 1.5 }),
                    None => Box::new(AcceptAll),
                };
                workload.drive(&orchestrator, policy)
            };
            let start = Instant::now();
            let (report, rounds) = run_at(4);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            // Churned, contended fleets must stay deterministic across
            // scheduler thread counts.
            let (single, single_rounds) = run_at(1);
            assert_eq!(single, report, "churn diverged across thread counts");
            assert_eq!(single_rounds, rounds);
            if budget.is_none() {
                assert_eq!(report.mean_grant_gap, 0.0);
                assert_eq!(report.rejected_admissions, 0);
            }
            let qps = report.total_queries as f64 / (ms / 1e3);
            println!(
                "churn (cap {cap}, budget {label}): {} slices, {} rounds, {} queries in \
                 {ms:.0} ms ({qps:.2} q/s), rejected {}, grant gap {:.2}%",
                report.slices.len(),
                report.rounds,
                report.total_queries,
                report.rejected_admissions,
                report.mean_grant_gap * 100.0,
            );
            churn_points.push(ChurnPoint {
                cap,
                tightness: label,
                slices_reported: report.slices.len(),
                rounds: report.rounds,
                total_queries: report.total_queries,
                rejected: report.rejected_admissions,
                grant_gap: report.mean_grant_gap,
                ms,
                qps,
            });
        }
    }

    // ---- sharding: an operator-scale fleet partitioned across fixed
    // worker shards. Bit-identity vs the unsharded run is asserted before
    // any timing is reported — in quick mode this is the CI determinism
    // smoke.
    let shard_slices: u64 = if quick { 96 } else { 1000 };
    let shard_iterations = if quick { 1 } else { 2 };
    let shard_duration_s = 2.0;
    let shard_counts = [1usize, 2, 4, 8];
    println!();
    struct ShardPoint {
        shards: usize,
        ms: f64,
        per_round_ms: f64,
        qps: f64,
        /// Per-round phase breakdown (model-update/suggest vs grant vs
        /// evaluate vs observe/model-fit), from
        /// [`FleetRun::phase_breakdown`]. The wall fields are the
        /// critical path (max across shards per round); the `_cpu`
        /// fields are the per-shard sums.
        suggest_ms_per_round: f64,
        grant_ms_per_round: f64,
        evaluate_ms_per_round: f64,
        observe_ms_per_round: f64,
        evaluate_cpu_ms_per_round: f64,
        observe_cpu_ms_per_round: f64,
    }
    let mut shard_points: Vec<ShardPoint> = Vec::with_capacity(shard_counts.len());
    let mut shard_reference = None;
    // One untimed warm-up run: the four timed runs below replay the same
    // fleet against the production (cached) path, so without this the
    // first shard count would pay every process-wide cache miss and the
    // comparison would mostly measure cache warm-up rather than sharding.
    {
        let orchestrator = Orchestrator::new(SharedTestbed::new(network)).with_threads(4);
        let mut fleet_run = orchestrator.begin();
        for spec in fleet(shard_slices, shard_iterations, shard_duration_s) {
            fleet_run.admit(spec).expect("bench slices admit");
        }
        while fleet_run.step().is_some() {}
        let _ = fleet_run.finish();
    }
    for shards in shard_counts {
        let orchestrator = Orchestrator::new(SharedTestbed::new(network))
            .with_threads(4)
            .with_shards(shards);
        // Drive the fleet through the steppable API (rather than
        // `Orchestrator::run`) so the per-phase timings are readable
        // before `finish` consumes the run. The sequence of operations is
        // identical.
        let start = Instant::now();
        let mut fleet_run = orchestrator.begin();
        for spec in fleet(shard_slices, shard_iterations, shard_duration_s) {
            fleet_run.admit(spec).expect("bench slices admit");
        }
        while fleet_run.step().is_some() {}
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let phases = fleet_run.phase_breakdown();
        let report = fleet_run.finish();
        match &shard_reference {
            None => shard_reference = Some(report.clone()),
            Some(reference) => assert_eq!(
                &report, reference,
                "sharding must be a pure performance transform (shards = {shards})"
            ),
        }
        let rounds = report.rounds.max(1) as f64;
        let per_round_ms = ms / rounds;
        let qps = report.total_queries as f64 / (ms / 1e3);
        println!(
            "sharding ({shard_slices} slices, {shards} shards): {} queries over {} rounds in \
             {ms:.0} ms ({per_round_ms:.1} ms/round: {:.1} suggest + {:.2} grant + {:.1} \
             evaluate + {:.1} observe, {qps:.2} q/s){}",
            report.total_queries,
            report.rounds,
            phases.suggest_ms / rounds,
            phases.grant_ms / rounds,
            phases.evaluate_ms / rounds,
            phases.observe_ms / rounds,
            if shards == 1 {
                ""
            } else {
                ", bit-identical to unsharded"
            },
        );
        shard_points.push(ShardPoint {
            shards,
            ms,
            per_round_ms,
            qps,
            suggest_ms_per_round: phases.suggest_ms / rounds,
            grant_ms_per_round: phases.grant_ms / rounds,
            evaluate_ms_per_round: phases.evaluate_ms / rounds,
            observe_ms_per_round: phases.observe_ms / rounds,
            evaluate_cpu_ms_per_round: phases.evaluate_cpu_ms / rounds,
            observe_cpu_ms_per_round: phases.observe_cpu_ms / rounds,
        });
    }
    // The wall (critical-path) evaluate figure must not be the per-shard
    // sum: at any shard count it stays comparable to the unsharded round.
    {
        let unsharded_eval = shard_points[0].evaluate_ms_per_round;
        for p in &shard_points {
            assert!(
                p.evaluate_ms_per_round <= p.evaluate_cpu_ms_per_round + 1e-9,
                "critical path cannot exceed the CPU sum (shards = {})",
                p.shards
            );
            assert!(
                p.evaluate_ms_per_round <= unsharded_eval * 1.2,
                "sharded evaluate wall time looks summed, not maxed: {} ms/round at {} shards \
                 vs {} ms/round unsharded",
                p.evaluate_ms_per_round,
                p.shards,
                unsharded_eval
            );
        }
    }
    let unsharded_ms = shard_points[0].ms;
    let best_sharded_ms = shard_points
        .iter()
        .skip(1)
        .map(|p| p.ms)
        .fold(f64::MAX, f64::min);
    let shard_speedup = unsharded_ms / best_sharded_ms;
    println!("sharding: best speedup vs unsharded {shard_speedup:.2}x");

    // ---- sim fast path: the evaluate-phase caches (scenario-keyed
    // measurement cache, workspace reuse, memoization, batch dedup).
    // Per-query seeds are unique within a run, so the caches pay off on
    // *replayed* workloads: we time the uncached path (SimCachePolicy::Off),
    // a cold cached run, and a warm cached re-run of the identical fleet —
    // all three asserted byte-identical before any timing is reported.
    let fastpath_sizes: &[u64] = if quick { &[16] } else { &[16, 1000] };
    let fastpath_iterations = 2;
    let fastpath_duration_s = 2.0;
    let fastpath_threads = 4;
    println!();
    struct CachePoint {
        ms: f64,
        evaluate_ms_per_round: f64,
        qps: f64,
    }
    struct FastpathPoint {
        slices: u64,
        rounds: usize,
        off: CachePoint,
        cold: CachePoint,
        warm: CachePoint,
        warm_evaluate_speedup: f64,
        warm_total_speedup: f64,
        warm_stats: SimCacheStats,
    }
    // Seed space disjoint from every other section so the cold cached run
    // really is cold (the caches are process-wide).
    let fastpath_fleet = |n: u64, cache: SimCachePolicy| -> Vec<SliceSpec> {
        (0..n)
            .map(|i| {
                let sla = Sla::new(250.0 + 25.0 * (i % 3) as f64, 0.85 + 0.02 * (i % 2) as f64);
                let config = Stage3Config {
                    iterations: fastpath_iterations,
                    offline_updates: 2,
                    candidates: 200,
                    duration_s: fastpath_duration_s,
                    ..Stage3Config::default()
                };
                let learner = OnlineLearner::without_offline(
                    config,
                    sla,
                    Simulator::with_original_params().with_cache_policy(cache),
                );
                let scenario = Scenario::default_with_seed(30_000 + i)
                    .with_duration(fastpath_duration_s)
                    .with_traffic(1 + (i as u32) % 3)
                    .with_distance(1.0 + 2.0 * (i % 5) as f64);
                SliceSpec::new(format!("fast-{i}"), learner, scenario, 90_000 + 17 * i)
            })
            .collect()
    };
    let run_fastpath = |n: u64, cache: SimCachePolicy| {
        let net = match cache {
            SimCachePolicy::Off => RealNetwork::prototype().with_cache_policy(SimCachePolicy::Off),
            _ => RealNetwork::prototype(),
        };
        let orchestrator =
            Orchestrator::new(SharedTestbed::new(net)).with_threads(fastpath_threads);
        let start = Instant::now();
        let mut fleet_run = orchestrator.begin();
        for spec in fastpath_fleet(n, cache) {
            fleet_run.admit(spec).expect("fastpath slices admit");
        }
        while fleet_run.step().is_some() {}
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let phases = fleet_run.phase_breakdown();
        let stats = fleet_run.sim_cache_stats();
        let report = fleet_run.finish();
        (report, ms, phases, stats)
    };
    let mut fastpath_points: Vec<FastpathPoint> = Vec::with_capacity(fastpath_sizes.len());
    for &slices in fastpath_sizes {
        let (off_report, off_ms, off_phases, _) = run_fastpath(slices, SimCachePolicy::Off);
        let (cold_report, cold_ms, cold_phases, cold_stats) =
            run_fastpath(slices, SimCachePolicy::Memoize);
        let (warm_report, warm_ms, warm_phases, warm_stats) =
            run_fastpath(slices, SimCachePolicy::Memoize);
        // Hard acceptance check: every cache layer is a pure performance
        // transform.
        assert_eq!(
            cold_report, off_report,
            "cold cached fleet diverged from the uncached path ({slices} slices)"
        );
        assert_eq!(
            warm_report, off_report,
            "warm cached fleet diverged from the uncached path ({slices} slices)"
        );
        let rounds = off_report.rounds.max(1) as f64;
        let point = |report: &atlas_orchestrator::FleetReport,
                     ms: f64,
                     phases: &atlas_orchestrator::PhaseBreakdown| CachePoint {
            ms,
            evaluate_ms_per_round: phases.evaluate_ms / rounds,
            qps: report.total_queries as f64 / (ms / 1e3),
        };
        let off = point(&off_report, off_ms, &off_phases);
        let cold = point(&cold_report, cold_ms, &cold_phases);
        let warm = point(&warm_report, warm_ms, &warm_phases);
        // The cold run misses every cache; the warm replay must be served.
        assert!(cold_stats.measurement_misses > 0, "cold run saw no misses");
        assert!(
            warm_stats.memo_hits > 0,
            "warm replay never hit the sim memo"
        );
        assert!(
            warm_stats.measurement_hit_rate() >= 0.9,
            "warm replay measurement hit rate {:.3} below floor ({}/{} hits/misses)",
            warm_stats.measurement_hit_rate(),
            warm_stats.measurement_hits,
            warm_stats.measurement_misses
        );
        // Cached-never-loses: the warm evaluate phase must not regress
        // past timing noise.
        assert!(
            warm.evaluate_ms_per_round <= off.evaluate_ms_per_round * 1.10,
            "warm cached evaluate {} ms/round lost to uncached {} ms/round",
            warm.evaluate_ms_per_round,
            off.evaluate_ms_per_round
        );
        let warm_evaluate_speedup =
            off.evaluate_ms_per_round / warm.evaluate_ms_per_round.max(1e-9);
        let warm_total_speedup = off.ms / warm.ms.max(1e-9);
        println!(
            "sim fastpath ({slices} slices): off {:.0} ms ({:.1} eval ms/round) -> cold {:.0} ms \
             ({:.1}) -> warm {:.0} ms ({:.1}), warm evaluate speedup {warm_evaluate_speedup:.2}x, \
             total {warm_total_speedup:.2}x, warm hits: {} measurement / {} memo",
            off.ms,
            off.evaluate_ms_per_round,
            cold.ms,
            cold.evaluate_ms_per_round,
            warm.ms,
            warm.evaluate_ms_per_round,
            warm_stats.measurement_hits,
            warm_stats.memo_hits,
        );
        fastpath_points.push(FastpathPoint {
            slices,
            rounds: off_report.rounds,
            off,
            cold,
            warm,
            warm_evaluate_speedup,
            warm_total_speedup,
            warm_stats,
        });
    }

    // Per-session sim path: one slice's identical offline query replayed —
    // the memo's best case, reported alongside the fleet-level numbers.
    let session_reps: usize = if quick { 20 } else { 200 };
    let session_config = SliceConfig::default_generous();
    let session_scenario = Scenario::default_with_seed(31_077)
        .with_duration(fastpath_duration_s)
        .with_traffic(3);
    let session_sim = Simulator::with_original_params();
    let session_off = session_sim.with_cache_policy(SimCachePolicy::Off);
    let start = Instant::now();
    let mut session_trace = session_off.run(&session_config, &session_scenario);
    for _ in 1..session_reps {
        session_trace = session_off.run(&session_config, &session_scenario);
    }
    let session_off_ms = start.elapsed().as_secs_f64() * 1e3;
    let warm_once = session_sim.run(&session_config, &session_scenario);
    assert_eq!(warm_once, session_trace, "cached sim diverged");
    let start = Instant::now();
    for _ in 0..session_reps {
        session_trace = session_sim.run(&session_config, &session_scenario);
    }
    let session_warm_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(warm_once, session_trace, "warm sim replay diverged");
    let session_speedup = session_off_ms / session_warm_ms.max(1e-9);
    assert!(
        session_warm_ms <= session_off_ms * 1.10,
        "warm per-session sim path lost to uncached"
    );
    println!(
        "sim fastpath (per-session, {session_reps} identical queries): uncached \
         {session_off_ms:.1} ms -> warm {session_warm_ms:.1} ms ({session_speedup:.1}x)"
    );

    // ---- EVAL_PAR_MIN_CHUNK sweep: time the raw evaluation fan-out at
    // several min-chunk floors over one round-sized batch of real queries.
    let sweep_n: u64 = if quick { 64 } else { 512 };
    let sweep_threads = 4;
    let sweep_queries: Vec<SliceQuery> = fleet(sweep_n, 1, shard_duration_s)
        .iter()
        .map(|s| {
            let mut session = s.learner.begin(&s.scenario, s.seed);
            session.suggest().expect("fresh session suggests")
        })
        .collect();
    let sweep_env = SharedTestbed::new(network);
    let sweep_jobs: Vec<(SliceConfig, SliceQuery)> = sweep_queries
        .iter()
        .map(|q| (q.config.with_connectivity_floor(), *q))
        .collect();
    let mut chunk_points: Vec<(usize, f64, f64)> = Vec::new();
    let mut chunk_reference = None;
    // Untimed warm-up pass so every min-chunk setting runs equally warm
    // against the process-wide caches.
    for (config, q) in &sweep_jobs {
        let _ = sweep_env.query(config, &q.scenario, &q.sla);
    }
    for min_chunk in [1usize, 2, 4, 8, 16] {
        let start = Instant::now();
        let samples = atlas_math::parallel::par_chunks_map(
            &sweep_jobs,
            min_chunk,
            Some(sweep_threads),
            |_, chunk| {
                chunk
                    .iter()
                    .map(|(config, q)| sweep_env.query(config, &q.scenario, &q.sla))
                    .collect::<Vec<_>>()
            },
        );
        let ms = start.elapsed().as_secs_f64() * 1e3;
        match &chunk_reference {
            None => chunk_reference = Some(samples),
            Some(reference) => assert_eq!(&samples, reference, "min_chunk must not change results"),
        }
        let qps = sweep_n as f64 / (ms / 1e3);
        println!(
            "min-chunk sweep ({sweep_n} queries, {sweep_threads} threads, min_chunk \
             {min_chunk}): {ms:.1} ms ({qps:.2} q/s)"
        );
        chunk_points.push((min_chunk, ms, qps));
    }
    println!("min-chunk sweep: EVAL_PAR_MIN_CHUNK = {EVAL_PAR_MIN_CHUNK} (chosen)");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"multi_slice_orchestrator\",\n");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p atlas-bench --bin orchestrator_bench{}\",",
        if quick { " -- --quick" } else { "" }
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    );
    let _ = writeln!(json, "  \"iterations_per_slice\": {iterations},");
    let _ = writeln!(json, "  \"query_duration_s\": {duration_s},");
    json.push_str("  \"fleets\": [\n");
    for (fi, f) in fleet_points.iter().enumerate() {
        let _ = writeln!(json, "    {{\"slices\": {},", f.slices);
        let _ = writeln!(json, "     \"total_queries\": {},", f.total_queries);
        let _ = writeln!(
            json,
            "     \"sequential\": {{\"ms\": {:.1}, \"queries_per_s\": {:.3}}},",
            f.sequential_ms, f.sequential_qps
        );
        json.push_str("     \"orchestrated\": [\n");
        for (i, (threads, ms, qps)) in f.orchestrated.iter().enumerate() {
            let comma = if i + 1 < f.orchestrated.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                json,
                "       {{\"threads\": {threads}, \"ms\": {ms:.1}, \"queries_per_s\": {qps:.3}}}{comma}"
            );
        }
        let comma = if fi + 1 < fleet_points.len() { "," } else { "" };
        let _ = writeln!(json, "     ]}}{comma}");
    }
    json.push_str("  ],\n");
    json.push_str("  \"sim_batching\": {\n");
    let _ = writeln!(json, "    \"slices\": {sim_slices},");
    let _ = writeln!(json, "    \"threads\": {sim_threads},");
    let _ = writeln!(
        json,
        "    \"offline_updates_per_iteration\": {offline_updates},"
    );
    let _ = writeln!(
        json,
        "    \"inline\": {{\"ms\": {inline_ms:.1}, \"queries_per_s\": {inline_qps:.3}}},"
    );
    let _ = writeln!(
        json,
        "    \"batched\": {{\"ms\": {batched_ms:.1}, \"queries_per_s\": {batched_qps:.3}}},"
    );
    json.push_str("    \"bit_identical\": true\n");
    json.push_str("  },\n");
    json.push_str("  \"churn\": [\n");
    for (i, p) in churn_points.iter().enumerate() {
        let comma = if i + 1 < churn_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"max_concurrent\": {}, \"budget_tightness\": \"{}\", \
             \"slices_reported\": {}, \"rounds\": {}, \"total_queries\": {}, \
             \"rejected_admissions\": {}, \"mean_grant_gap\": {:.4}, \"ms\": {:.1}, \
             \"queries_per_s\": {:.3}}}{comma}",
            p.cap,
            p.tightness,
            p.slices_reported,
            p.rounds,
            p.total_queries,
            p.rejected,
            p.grant_gap,
            p.ms,
            p.qps,
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"sharding\": {\n");
    let _ = writeln!(json, "    \"slices\": {shard_slices},");
    let _ = writeln!(json, "    \"iterations_per_slice\": {shard_iterations},");
    let _ = writeln!(json, "    \"threads\": 4,");
    json.push_str("    \"bit_identical_across_shard_counts\": true,\n");
    json.push_str("    \"runs\": [\n");
    for (i, p) in shard_points.iter().enumerate() {
        let comma = if i + 1 < shard_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"shards\": {}, \"ms\": {:.1}, \"per_round_ms\": {:.2}, \
             \"phase_ms_per_round\": {{\"suggest\": {:.2}, \"grant\": {:.3}, \
             \"evaluate\": {:.2}, \"observe\": {:.2}, \"evaluate_cpu\": {:.2}, \
             \"observe_cpu\": {:.2}}}, \"queries_per_s\": {:.3}}}{comma}",
            p.shards,
            p.ms,
            p.per_round_ms,
            p.suggest_ms_per_round,
            p.grant_ms_per_round,
            p.evaluate_ms_per_round,
            p.observe_ms_per_round,
            p.evaluate_cpu_ms_per_round,
            p.observe_cpu_ms_per_round,
            p.qps,
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(
        json,
        "    \"best_speedup_vs_unsharded\": {shard_speedup:.3},"
    );
    json.push_str("    \"eval_par_min_chunk\": {\n");
    let _ = writeln!(json, "      \"chosen\": {EVAL_PAR_MIN_CHUNK},");
    let _ = writeln!(json, "      \"sweep_queries\": {sweep_n},");
    json.push_str("      \"sweep\": [\n");
    for (i, (min_chunk, ms, qps)) in chunk_points.iter().enumerate() {
        let comma = if i + 1 < chunk_points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "        {{\"min_chunk\": {min_chunk}, \"ms\": {ms:.1}, \
             \"queries_per_s\": {qps:.3}}}{comma}"
        );
    }
    json.push_str("      ]\n");
    json.push_str("    },\n");
    json.push_str(
        "    \"note\": \"timings from a single-CPU container where scoped-thread fan-out is \
         a wash; shards are asserted bit-identical, so re-running this bench on a multi-core \
         host recalibrates the shard count and EVAL_PAR_MIN_CHUNK with no correctness risk; \
         phase_ms_per_round wall figures are the per-round critical path (max across shards), \
         the _cpu figures the per-shard sums\"\n",
    );
    json.push_str("  },\n");
    json.push_str("  \"sim_fastpath\": {\n");
    let _ = writeln!(json, "    \"threads\": {fastpath_threads},");
    let _ = writeln!(json, "    \"iterations_per_slice\": {fastpath_iterations},");
    let _ = writeln!(json, "    \"query_duration_s\": {fastpath_duration_s},");
    json.push_str("    \"bit_identical_across_cache_policies\": true,\n");
    json.push_str("    \"runs\": [\n");
    for (i, p) in fastpath_points.iter().enumerate() {
        let comma = if i + 1 < fastpath_points.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "      {{\"slices\": {}, \"rounds\": {},",
            p.slices, p.rounds
        );
        for (label, cp, trailing) in [
            ("off", &p.off, ","),
            ("cached_cold", &p.cold, ","),
            ("cached_warm", &p.warm, ","),
        ] {
            let _ = writeln!(
                json,
                "       \"{label}\": {{\"ms\": {:.1}, \"evaluate_ms_per_round\": {:.2}, \
                 \"queries_per_s\": {:.3}}}{trailing}",
                cp.ms, cp.evaluate_ms_per_round, cp.qps
            );
        }
        let _ = writeln!(
            json,
            "       \"warm_evaluate_speedup_vs_off\": {:.3},",
            p.warm_evaluate_speedup
        );
        let _ = writeln!(
            json,
            "       \"warm_total_speedup_vs_off\": {:.3},",
            p.warm_total_speedup
        );
        let _ = writeln!(
            json,
            "       \"warm_cache_stats\": {{\"measurement_hits\": {}, \
             \"measurement_misses\": {}, \"memo_hits\": {}, \"memo_misses\": {}, \
             \"batch_dedup_hits\": {}, \"measurement_hit_rate\": {:.4}}}}}{comma}",
            p.warm_stats.measurement_hits,
            p.warm_stats.measurement_misses,
            p.warm_stats.memo_hits,
            p.warm_stats.memo_misses,
            p.warm_stats.batch_dedup_hits,
            p.warm_stats.measurement_hit_rate(),
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(
        json,
        "    \"per_session_replay\": {{\"queries\": {session_reps}, \"off_ms\": \
         {session_off_ms:.1}, \"warm_ms\": {session_warm_ms:.1}, \"speedup\": \
         {session_speedup:.3}}},"
    );
    json.push_str(
        "    \"note\": \"per-query seeds are unique within a run, so the caches pay off on \
         replayed workloads (warm re-runs of an identical fleet, in-process replays); every \
         policy is asserted byte-identical to SimCachePolicy::Off before timing\"\n",
    );
    json.push_str("  },\n");
    json.push_str("  \"deterministic_across_thread_counts\": true,\n");
    json.push_str("  \"bit_identical_to_sequential\": true,\n");
    let _ = writeln!(json, "  \"best_queries_per_s\": {best_qps:.3}");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
