//! Multi-slice orchestrator throughput benchmark emitting
//! `BENCH_orchestrator.json`.
//!
//! Runs a fleet of concurrent stage-3 slice sessions against one shared
//! emulated testbed and compares the wall-clock cost of (a) the sequential
//! baseline — one `OnlineLearner::run` per slice — with (b) the
//! orchestrated run at several scheduler thread counts. Before any timing
//! is reported, the orchestrated fleet is checked **bit-for-bit** against
//! the sequential results (the acceptance property of the orchestrator:
//! co-scheduling must be a pure performance transform).
//!
//! ```text
//! cargo run --release -p atlas-bench --bin orchestrator_bench -- [--quick] [--out BENCH_orchestrator.json]
//! ```

use atlas::env::{RealEnv, Sla};
use atlas::{OnlineLearner, Scenario, Simulator, Stage3Config, Stage3Result};
use atlas_netsim::{RealNetwork, SharedTestbed};
use atlas_orchestrator::{Orchestrator, SliceSpec};
use std::fmt::Write as _;
use std::time::Instant;

/// A heterogeneous fleet of `n` slices: traffic, distance, SLA and seeds
/// differ per slice, as they would across an operator's tenants.
fn fleet(n: u64, iterations: usize, duration_s: f64) -> Vec<SliceSpec> {
    (0..n)
        .map(|i| {
            let sla = Sla::new(250.0 + 25.0 * (i % 3) as f64, 0.85 + 0.02 * (i % 2) as f64);
            let config = Stage3Config {
                iterations,
                offline_updates: 2,
                candidates: 200,
                duration_s,
                ..Stage3Config::default()
            };
            let learner =
                OnlineLearner::without_offline(config, sla, Simulator::with_original_params());
            let scenario = Scenario::default_with_seed(i)
                .with_duration(duration_s)
                .with_traffic(1 + (i as u32) % 3)
                .with_distance(1.0 + 2.0 * (i % 5) as f64);
            SliceSpec::new(format!("slice-{i}"), learner, scenario, 4000 + 17 * i)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_orchestrator.json")
        .to_string();
    let fleet_sizes: &[u64] = if quick { &[8] } else { &[2, 4, 8, 16] };
    let iterations = if quick { 2 } else { 5 };
    let duration_s = if quick { 2.0 } else { 30.0 };
    let thread_counts = [1usize, 2, 4, 8];
    let network = RealNetwork::prototype();

    struct FleetPoint {
        slices: u64,
        total_queries: usize,
        sequential_ms: f64,
        sequential_qps: f64,
        orchestrated: Vec<(usize, f64, f64)>,
    }

    let mut fleet_points = Vec::with_capacity(fleet_sizes.len());
    for &slices in fleet_sizes {
        // ---- sequential baseline: N independent single-slice runs -------
        let specs = fleet(slices, iterations, duration_s);
        let real = RealEnv::new(network);
        let start = Instant::now();
        let sequential: Vec<Stage3Result> = specs
            .iter()
            .map(|s| s.learner.run(&real, &s.scenario, s.seed))
            .collect();
        let sequential_ms = start.elapsed().as_secs_f64() * 1e3;
        let total_queries: usize = sequential.iter().map(|r| r.history.len()).sum();
        let sequential_qps = total_queries as f64 / (sequential_ms / 1e3);
        println!(
            "sequential: {slices} slices x {iterations} iters = {total_queries} queries in \
             {sequential_ms:.0} ms ({sequential_qps:.2} queries/s)"
        );

        // ---- orchestrated runs at several scheduler thread counts --------
        let mut orchestrated = Vec::with_capacity(thread_counts.len());
        for threads in thread_counts {
            let orchestrator = Orchestrator::new(SharedTestbed::new(network)).with_threads(threads);
            let start = Instant::now();
            let report = orchestrator.run(fleet(slices, iterations, duration_s));
            let ms = start.elapsed().as_secs_f64() * 1e3;
            // Hard acceptance check: orchestration must be bit-identical
            // to the sequential single-slice runs on the same seeds.
            assert_eq!(report.slices.len(), slices as usize);
            for (slice, expected) in report.slices.iter().zip(&sequential) {
                assert_eq!(
                    &slice.result, expected,
                    "orchestrated slice {} diverged from its sequential run (threads = {threads})",
                    slice.name
                );
            }
            let qps = report.total_queries as f64 / (ms / 1e3);
            println!(
                "orchestrated ({slices} slices, {threads} threads): {} queries in {ms:.0} ms \
                 ({qps:.2} queries/s), fleet SLA-viol {:.1}%, usage {:.1}%",
                report.total_queries,
                report.sla_violation_rate * 100.0,
                report.mean_usage * 100.0,
            );
            orchestrated.push((threads, ms, qps));
        }
        fleet_points.push(FleetPoint {
            slices,
            total_queries,
            sequential_ms,
            sequential_qps,
            orchestrated,
        });
    }

    let best_qps = fleet_points
        .iter()
        .flat_map(|f| f.orchestrated.iter().map(|p| p.2))
        .fold(f64::MIN, f64::max);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"multi_slice_orchestrator\",\n");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p atlas-bench --bin orchestrator_bench{}\",",
        if quick { " -- --quick" } else { "" }
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    );
    let _ = writeln!(json, "  \"iterations_per_slice\": {iterations},");
    let _ = writeln!(json, "  \"query_duration_s\": {duration_s},");
    json.push_str("  \"fleets\": [\n");
    for (fi, f) in fleet_points.iter().enumerate() {
        let _ = writeln!(json, "    {{\"slices\": {},", f.slices);
        let _ = writeln!(json, "     \"total_queries\": {},", f.total_queries);
        let _ = writeln!(
            json,
            "     \"sequential\": {{\"ms\": {:.1}, \"queries_per_s\": {:.3}}},",
            f.sequential_ms, f.sequential_qps
        );
        json.push_str("     \"orchestrated\": [\n");
        for (i, (threads, ms, qps)) in f.orchestrated.iter().enumerate() {
            let comma = if i + 1 < f.orchestrated.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                json,
                "       {{\"threads\": {threads}, \"ms\": {ms:.1}, \"queries_per_s\": {qps:.3}}}{comma}"
            );
        }
        let comma = if fi + 1 < fleet_points.len() { "," } else { "" };
        let _ = writeln!(json, "     ]}}{comma}");
    }
    json.push_str("  ],\n");
    json.push_str("  \"bit_identical_to_sequential\": true,\n");
    let _ = writeln!(json, "  \"best_queries_per_s\": {best_qps:.3}");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
