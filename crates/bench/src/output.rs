//! Plain-text table printing and CSV output for the experiment harness.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple result table that prints aligned columns to stdout and can be
/// persisted as CSV under `results/`.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (values are stringified by the caller).
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Convenience for rows of floats with a fixed precision.
    pub fn add_float_row(&mut self, label: &str, values: &[f64], precision: usize) {
        let mut row = vec![label.to_string()];
        row.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.add_row(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned plain-text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut file = fs::File::create(&path)?;
        writeln!(file, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(file, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Directory experiment CSVs are written to (`results/` next to the
/// workspace root, or the current directory as a fallback).
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_counts_rows() {
        let mut t = Table::new("demo", &["metric", "value"]);
        assert!(t.is_empty());
        t.add_row(vec!["latency".into(), "34.5".into()]);
        t.add_float_row("throughput", &[19.87], 2);
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("latency"));
        assert!(text.contains("19.87"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }
}
