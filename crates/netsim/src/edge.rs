//! Edge-computing model.
//!
//! The prototype runs the slice's edge server (an ORB feature-extraction
//! service) in a Docker container whose CPU share is controlled with
//! `docker update`. The simulator models the server as a single FIFO
//! compute queue whose per-frame service time is drawn from a log-normal
//! distribution matched to the measured statistics reported in the paper
//! (81 ms mean, 35 ms standard deviation at full CPU), scaled inversely by
//! the configured CPU ratio, plus an additive `compute_time` simulation
//! parameter.

use atlas_math::dist::LogNormal;
use rand::Rng;

/// Mean per-frame compute time at `cpu_ratio = 1.0`, in ms (from the paper).
pub const BASE_COMPUTE_MEAN_MS: f64 = 81.0;
/// Standard deviation of the per-frame compute time at full CPU, in ms.
pub const BASE_COMPUTE_STD_MS: f64 = 35.0;
/// Smallest effective CPU ratio; Docker's scheduler never starves a
/// container completely, and dividing by zero would be unphysical.
pub const MIN_CPU_RATIO: f64 = 0.05;

/// The slice's edge compute server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeServer {
    /// CPU share in `[MIN_CPU_RATIO, 1.0]`.
    pub cpu_ratio: f64,
    /// Additive per-frame compute time in ms (simulation parameter).
    pub extra_compute_ms: f64,
    /// Heavy-tail multiplier: probability that a frame hits a slow path
    /// (garbage collection, container contention) taking `tail_factor`
    /// times longer. Zero in the idealised simulator, non-zero in the
    /// emulated real network.
    pub tail_probability: f64,
    /// Slow-path multiplier.
    pub tail_factor: f64,
    /// Mean of the base compute-time distribution at full CPU, in ms.
    pub base_mean_ms: f64,
    /// Standard deviation of the base compute-time distribution, in ms.
    pub base_std_ms: f64,
}

impl EdgeServer {
    /// Creates an edge server with the paper's measured compute-time
    /// distribution.
    pub fn new(cpu_ratio: f64, extra_compute_ms: f64) -> Self {
        Self {
            cpu_ratio: cpu_ratio.clamp(MIN_CPU_RATIO, 1.0),
            extra_compute_ms: extra_compute_ms.max(0.0),
            tail_probability: 0.0,
            tail_factor: 1.0,
            base_mean_ms: BASE_COMPUTE_MEAN_MS,
            base_std_ms: BASE_COMPUTE_STD_MS,
        }
    }

    /// Returns a copy with a heavy-tail slow path enabled (used by the
    /// emulated real network).
    pub fn with_heavy_tail(mut self, probability: f64, factor: f64) -> Self {
        self.tail_probability = probability.clamp(0.0, 1.0);
        self.tail_factor = factor.max(1.0);
        self
    }

    /// Mean service time in ms.
    pub fn mean_service_ms(&self) -> f64 {
        let tail_boost = 1.0 + self.tail_probability * (self.tail_factor - 1.0);
        self.base_mean_ms / self.cpu_ratio * tail_boost + self.extra_compute_ms
    }

    /// Samples one frame's compute time in ms.
    pub fn service_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let dist = LogNormal::from_mean_std(self.base_mean_ms, self.base_std_ms)
            .expect("base compute distribution parameters are valid");
        let mut t = dist.sample(rng) / self.cpu_ratio;
        if self.tail_probability > 0.0 && rng.random::<f64>() < self.tail_probability {
            t *= self.tail_factor;
        }
        t + self.extra_compute_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;
    use atlas_math::stats;

    #[test]
    fn cpu_ratio_is_clamped() {
        assert_eq!(EdgeServer::new(0.0, 0.0).cpu_ratio, MIN_CPU_RATIO);
        assert_eq!(EdgeServer::new(2.0, 0.0).cpu_ratio, 1.0);
        assert_eq!(EdgeServer::new(0.5, -3.0).extra_compute_ms, 0.0);
    }

    #[test]
    fn mean_service_scales_inversely_with_cpu() {
        let full = EdgeServer::new(1.0, 0.0);
        let half = EdgeServer::new(0.5, 0.0);
        assert!((full.mean_service_ms() - BASE_COMPUTE_MEAN_MS).abs() < 1e-9);
        assert!((half.mean_service_ms() - 2.0 * BASE_COMPUTE_MEAN_MS).abs() < 1e-9);
    }

    #[test]
    fn sampled_service_matches_configured_mean() {
        let mut rng = seeded_rng(1);
        let server = EdgeServer::new(0.8, 5.0);
        let samples: Vec<f64> = (0..20_000).map(|_| server.service_ms(&mut rng)).collect();
        let expected = BASE_COMPUTE_MEAN_MS / 0.8 + 5.0;
        assert!((stats::mean(&samples) - expected).abs() < 2.0);
        assert!(samples.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn extra_compute_time_shifts_the_distribution() {
        let mut rng = seeded_rng(2);
        let base = EdgeServer::new(1.0, 0.0);
        let shifted = EdgeServer::new(1.0, 20.0);
        let a: Vec<f64> = (0..5000).map(|_| base.service_ms(&mut rng)).collect();
        let b: Vec<f64> = (0..5000).map(|_| shifted.service_ms(&mut rng)).collect();
        assert!((stats::mean(&b) - stats::mean(&a) - 20.0).abs() < 3.0);
    }

    #[test]
    fn heavy_tail_increases_high_quantiles() {
        let mut rng = seeded_rng(3);
        let calm = EdgeServer::new(1.0, 0.0);
        let heavy = EdgeServer::new(1.0, 0.0).with_heavy_tail(0.1, 3.0);
        let a: Vec<f64> = (0..10_000).map(|_| calm.service_ms(&mut rng)).collect();
        let b: Vec<f64> = (0..10_000).map(|_| heavy.service_ms(&mut rng)).collect();
        let p99_a = stats::quantile(&a, 0.99).unwrap();
        let p99_b = stats::quantile(&b, 0.99).unwrap();
        assert!(p99_b > p99_a * 1.5, "p99 {p99_b} vs {p99_a}");
        assert!(heavy.mean_service_ms() > calm.mean_service_ms());
    }
}
