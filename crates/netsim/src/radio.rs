//! Radio-access-network model.
//!
//! Models the LTE link between the UE and the eNB at the granularity Atlas
//! needs: a log-distance pathloss model (the NS-3/LENA
//! `LogDistancePropagationLossModel`), receiver noise figures, an SNR→MCS
//! link-adaptation table, a BLER waterfall with HARQ retransmissions, and a
//! per-TTI PRB-quota scheduler that converts a slice's PRB allocation and
//! MCS offset into frame transmission times and residual packet error
//! rates.

use atlas_math::dist::standard_normal_sample;
use rand::Rng;

/// Duration of one LTE transmission time interval, in milliseconds.
pub const TTI_MS: f64 = 1.0;
/// Number of resource elements usable for data per PRB per TTI
/// (12 subcarriers × 14 symbols, minus reference/control overhead).
pub const DATA_RE_PER_PRB: f64 = 138.0;
/// Maximum number of HARQ transmission attempts per transport block.
pub const MAX_HARQ_ATTEMPTS: u32 = 4;
/// Thermal noise power spectral density in dBm/Hz.
pub const THERMAL_NOISE_DBM_HZ: f64 = -174.0;
/// Bandwidth of one PRB in Hz (12 × 15 kHz subcarriers).
pub const PRB_BANDWIDTH_HZ: f64 = 180_000.0;

/// Log-distance pathloss model (matches NS-3's
/// `LogDistancePropagationLossModel`):
/// `PL(d) = reference_loss + 10 · exponent · log10(d / reference_distance)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistancePathloss {
    /// Pathloss at the reference distance, in dB.
    pub reference_loss_db: f64,
    /// Pathloss exponent (≈2 free space, ≈3–3.5 indoor).
    pub exponent: f64,
    /// Reference distance in metres.
    pub reference_distance_m: f64,
}

impl LogDistancePathloss {
    /// The NS-3 default parameterisation (reference loss 38.57 dB at 1 m,
    /// exponent 3.0) reported in Table 4 of the paper.
    pub fn ns3_default() -> Self {
        Self {
            reference_loss_db: 38.57,
            exponent: 3.0,
            reference_distance_m: 1.0,
        }
    }

    /// Pathloss in dB at distance `d` metres.
    pub fn loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(self.reference_distance_m);
        self.reference_loss_db + 10.0 * self.exponent * (d / self.reference_distance_m).log10()
    }
}

/// Direction of a radio link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// UE → eNB.
    Uplink,
    /// eNB → UE.
    Downlink,
}

/// Effective per-PRB uplink transmit power after implementation losses
/// (USRP front-end without a power amplifier, cabling, antenna mismatch),
/// in dBm. The absolute value is a model constant; what matters is that the
/// resulting SNR places 1–10 m operation inside the link-adaptation region.
pub const UL_TX_POWER_DBM: f64 = -51.0;
/// Effective per-PRB downlink transmit power after implementation losses,
/// in dBm.
pub const DL_TX_POWER_DBM: f64 = -44.0;

/// Physical-layer environment of one radio link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioEnvironment {
    /// Pathloss model.
    pub pathloss: LogDistancePathloss,
    /// Effective per-PRB transmit power in dBm (see [`UL_TX_POWER_DBM`]).
    pub tx_power_dbm: f64,
    /// Receiver noise figure in dB.
    pub noise_figure_db: f64,
    /// Log-normal shadow-fading standard deviation in dB (0 = none; the
    /// NS-3 setup in the paper uses no fading model, the real prototype
    /// exhibits some).
    pub shadow_fading_std_db: f64,
    /// Extra interference margin in dB subtracted from the SNR (models
    /// uncontrolled interference in the real deployment).
    pub interference_margin_db: f64,
}

impl RadioEnvironment {
    /// Default uplink environment with the given pathloss/noise settings.
    pub fn uplink(pathloss: LogDistancePathloss, noise_figure_db: f64) -> Self {
        Self {
            pathloss,
            tx_power_dbm: UL_TX_POWER_DBM,
            noise_figure_db,
            shadow_fading_std_db: 0.0,
            interference_margin_db: 0.0,
        }
    }

    /// Default downlink environment with the given pathloss/noise settings.
    pub fn downlink(pathloss: LogDistancePathloss, noise_figure_db: f64) -> Self {
        Self {
            pathloss,
            tx_power_dbm: DL_TX_POWER_DBM,
            noise_figure_db,
            shadow_fading_std_db: 0.0,
            interference_margin_db: 0.0,
        }
    }

    /// Mean SNR in dB for a user at `distance_m`, over the bandwidth of a
    /// single PRB (link adaptation in LTE is per-PRB to first order).
    pub fn mean_snr_db(&self, distance_m: f64) -> f64 {
        let noise_dbm =
            THERMAL_NOISE_DBM_HZ + 10.0 * PRB_BANDWIDTH_HZ.log10() + self.noise_figure_db;
        self.tx_power_dbm
            - self.pathloss.loss_db(distance_m)
            - noise_dbm
            - self.interference_margin_db
    }

    /// Samples an instantaneous SNR including shadow fading.
    pub fn sample_snr_db<R: Rng + ?Sized>(&self, distance_m: f64, rng: &mut R) -> f64 {
        let fading = if self.shadow_fading_std_db > 0.0 {
            self.shadow_fading_std_db * standard_normal_sample(rng)
        } else {
            0.0
        };
        self.mean_snr_db(distance_m) + fading
    }
}

/// Number of MCS indices modelled (LTE uses 0..=28).
pub const NUM_MCS: usize = 29;

/// Spectral efficiency (information bits per resource element) of each MCS
/// index, following the LTE CQI/MCS efficiency ladder (QPSK → 64-QAM).
pub const MCS_EFFICIENCY: [f64; NUM_MCS] = [
    0.15, 0.19, 0.23, 0.31, 0.38, 0.49, 0.60, 0.74, 0.88, 1.03, 1.18, 1.33, 1.48, 1.70, 1.91, 2.16,
    2.41, 2.57, 2.73, 3.03, 3.32, 3.61, 3.90, 4.21, 4.52, 4.82, 5.12, 5.33, 5.55,
];

/// SNR (dB) required to operate each MCS index at roughly 10 % BLER.
/// Approximated as a linear ramp from −6 dB (MCS 0) to 22 dB (MCS 28),
/// which is the usual shape of link-level LTE curves.
pub fn required_snr_db(mcs: usize) -> f64 {
    let mcs = mcs.min(NUM_MCS - 1) as f64;
    -6.0 + mcs * (28.0 / (NUM_MCS as f64 - 1.0))
}

/// Selects the highest MCS whose required SNR does not exceed the measured
/// SNR (classic inner-loop link adaptation), then applies the slice's MCS
/// offset as a robustness back-off.
pub fn select_mcs(snr_db: f64, mcs_offset: f64) -> usize {
    let mut mcs = 0usize;
    for i in 0..NUM_MCS {
        if required_snr_db(i) <= snr_db {
            mcs = i;
        } else {
            break;
        }
    }
    let offset = mcs_offset.round().clamp(0.0, 28.0) as usize;
    mcs.saturating_sub(offset)
}

/// Block error rate of one HARQ transmission attempt at the given SNR and
/// MCS: a sigmoid "waterfall" centred slightly below the MCS's required
/// SNR, which is the standard abstraction used by system-level simulators
/// (c.f. the BLER-mapping abstraction the paper cites).
pub fn bler(snr_db: f64, mcs: usize) -> f64 {
    let threshold = required_snr_db(mcs) - 1.0;
    let steepness = 0.8;
    let x = (snr_db - threshold) / steepness;
    (1.0 / (1.0 + x.exp())).clamp(1e-5, 1.0)
}

/// Transport-block capacity in bits for a given PRB count and MCS over one
/// TTI.
pub fn bits_per_tti(prbs: f64, mcs: usize) -> f64 {
    let eff = MCS_EFFICIENCY[mcs.min(NUM_MCS - 1)];
    (prbs.max(0.0) * DATA_RE_PER_PRB * eff).floor()
}

/// Outcome of transmitting one application frame over the radio link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmissionOutcome {
    /// Air-time spent transmitting the frame, in milliseconds (includes
    /// HARQ retransmissions).
    pub duration_ms: f64,
    /// Number of transport blocks sent.
    pub blocks: u32,
    /// Number of transport blocks whose first transmission failed.
    pub first_tx_errors: u32,
    /// Number of transport blocks lost after exhausting HARQ attempts.
    pub residual_errors: u32,
}

/// One direction of the slice's radio link with its PRB quota and MCS
/// offset applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioLink {
    /// Physical environment.
    pub env: RadioEnvironment,
    /// PRBs allocated to the slice in this direction.
    pub prbs: f64,
    /// MCS offset applied by the slice configuration.
    pub mcs_offset: f64,
}

impl RadioLink {
    /// Creates a radio link; PRBs below one are raised to one so a
    /// configured-but-tiny allocation still provides basic connectivity
    /// (the FlexRAN controller in the prototype does the same).
    pub fn new(env: RadioEnvironment, prbs: f64, mcs_offset: f64) -> Self {
        Self {
            env,
            prbs: prbs.max(1.0),
            mcs_offset,
        }
    }

    /// Transmits a frame of `frame_bits` for a user at `distance_m`,
    /// simulating per-TTI transport blocks with HARQ.
    pub fn transmit<R: Rng + ?Sized>(
        &self,
        frame_bits: f64,
        distance_m: f64,
        rng: &mut R,
    ) -> TransmissionOutcome {
        let mut remaining = frame_bits.max(0.0);
        let mut duration_ms = 0.0;
        let mut blocks = 0u32;
        let mut first_tx_errors = 0u32;
        let mut residual_errors = 0u32;

        // Outer-loop link adaptation: the MCS is chosen from the long-term
        // (mean) SNR; individual transmissions then succeed or fail based
        // on the instantaneous SNR (mean + shadow fading), which is how
        // fading and interference degrade a real link whose CQI reports lag
        // behind the channel.
        let mean_snr = self.env.mean_snr_db(distance_m);
        let mcs = select_mcs(mean_snr, self.mcs_offset);
        let tb_bits = bits_per_tti(self.prbs, mcs).max(1.0);

        // Guard against pathological zero-capacity configurations: even at
        // MCS 0 with one PRB the loop terminates, but cap the air time at
        // ten seconds per frame to keep runaway configurations bounded.
        let max_duration_ms = 10_000.0;

        while remaining > 0.0 && duration_ms < max_duration_ms {
            let snr = self.env.sample_snr_db(distance_m, rng);
            let p_err = bler(snr, mcs);
            blocks += 1;

            // HARQ: retransmit the same transport block until it decodes or
            // attempts are exhausted. Each attempt costs one TTI (plus the
            // HARQ round-trip is folded into subsequent TTIs of the same
            // frame, which is accurate enough at this abstraction level).
            let mut attempt = 1;
            let mut decoded = false;
            // The air-time cap applies within a block too: without this a
            // block straddling the cap could overshoot by a full HARQ round
            // (MAX_HARQ_ATTEMPTS TTIs) instead of at most one TTI.
            while attempt <= MAX_HARQ_ATTEMPTS && duration_ms < max_duration_ms {
                duration_ms += TTI_MS;
                // Retransmissions combine soft information; model this as a
                // halving of the error probability per extra attempt.
                let p = p_err / f64::from(1u32 << (attempt - 1));
                if rng.random::<f64>() >= p {
                    decoded = true;
                    break;
                }
                if attempt == 1 {
                    first_tx_errors += 1;
                }
                attempt += 1;
            }
            if !decoded {
                residual_errors += 1;
            }
            remaining -= tb_bits;
        }

        TransmissionOutcome {
            duration_ms,
            blocks,
            first_tx_errors,
            residual_errors,
        }
    }

    /// Saturation throughput in Mbps (full-buffer, long-run average),
    /// obtained by simulating `ttis` TTIs of back-to-back transmission.
    pub fn saturation_throughput_mbps<R: Rng + ?Sized>(
        &self,
        distance_m: f64,
        ttis: u32,
        rng: &mut R,
    ) -> (f64, f64) {
        let mut delivered_bits = 0.0;
        let mut errors = 0u32;
        let mut blocks = 0u32;
        let mean_snr = self.env.mean_snr_db(distance_m);
        let mcs = select_mcs(mean_snr, self.mcs_offset);
        let tb_bits = bits_per_tti(self.prbs, mcs);
        for _ in 0..ttis {
            let snr = self.env.sample_snr_db(distance_m, rng);
            let p_err = bler(snr, mcs);
            blocks += 1;
            if rng.random::<f64>() >= p_err {
                delivered_bits += tb_bits;
            } else {
                errors += 1;
                // First retransmission usually succeeds; it consumes the
                // next TTI implicitly by lowering the average.
            }
        }
        let seconds = f64::from(ttis) * TTI_MS / 1000.0;
        let throughput = delivered_bits / seconds / 1e6;
        let per = f64::from(errors) / f64::from(blocks.max(1));
        (throughput, per)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;

    fn ul_env() -> RadioEnvironment {
        RadioEnvironment::uplink(LogDistancePathloss::ns3_default(), 5.0)
    }

    #[test]
    fn pathloss_grows_with_distance() {
        let pl = LogDistancePathloss::ns3_default();
        assert!((pl.loss_db(1.0) - 38.57).abs() < 1e-9);
        assert!(pl.loss_db(10.0) > pl.loss_db(5.0));
        assert!(pl.loss_db(5.0) > pl.loss_db(1.0));
        // 10x distance with exponent 3 adds 30 dB.
        assert!((pl.loss_db(10.0) - pl.loss_db(1.0) - 30.0).abs() < 1e-9);
        // Below the reference distance the loss saturates.
        assert_eq!(pl.loss_db(0.1), pl.loss_db(1.0));
    }

    #[test]
    fn snr_decreases_with_distance_and_noise() {
        let env = ul_env();
        assert!(env.mean_snr_db(1.0) > env.mean_snr_db(10.0));
        let mut noisy = env;
        noisy.noise_figure_db = 12.0;
        assert!(noisy.mean_snr_db(1.0) < env.mean_snr_db(1.0));
        let mut interfered = env;
        interfered.interference_margin_db = 6.0;
        assert!((env.mean_snr_db(1.0) - interfered.mean_snr_db(1.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn snr_at_one_metre_supports_the_top_mcs() {
        // A UE one metre from the antenna should see an excellent link that
        // selects the highest MCS.
        let env = ul_env();
        assert!(env.mean_snr_db(1.0) > 22.0, "snr {}", env.mean_snr_db(1.0));
        assert_eq!(select_mcs(env.mean_snr_db(1.0), 0.0), NUM_MCS - 1);
    }

    #[test]
    fn mcs_selection_is_monotone_in_snr() {
        let mut prev = 0;
        for snr in (-10..40).map(f64::from) {
            let mcs = select_mcs(snr, 0.0);
            assert!(mcs >= prev);
            prev = mcs;
        }
        assert_eq!(select_mcs(-20.0, 0.0), 0);
        assert_eq!(select_mcs(100.0, 0.0), NUM_MCS - 1);
    }

    #[test]
    fn mcs_offset_reduces_selected_mcs() {
        let high = select_mcs(20.0, 0.0);
        let backed_off = select_mcs(20.0, 5.0);
        assert_eq!(backed_off, high.saturating_sub(5));
        assert_eq!(select_mcs(20.0, 100.0), 0);
    }

    #[test]
    fn efficiency_table_is_increasing() {
        for w in MCS_EFFICIENCY.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(MCS_EFFICIENCY.len(), NUM_MCS);
    }

    #[test]
    fn bler_waterfall_behaviour() {
        // Far above threshold: tiny error rate. Far below: certain error.
        assert!(bler(30.0, 10) < 1e-3);
        assert!(bler(-10.0, 10) > 0.99);
        // Higher MCS needs more SNR, so at a fixed SNR its BLER is larger.
        assert!(bler(10.0, 20) > bler(10.0, 5));
    }

    #[test]
    fn bits_per_tti_scales_with_prbs_and_mcs() {
        assert!(bits_per_tti(10.0, 20) > bits_per_tti(5.0, 20));
        assert!(bits_per_tti(10.0, 20) > bits_per_tti(10.0, 5));
        assert_eq!(bits_per_tti(0.0, 20), 0.0);
    }

    #[test]
    fn transmission_duration_scales_inversely_with_prbs() {
        let mut rng = seeded_rng(1);
        let frame_bits = 120_000.0;
        let small = RadioLink::new(ul_env(), 5.0, 0.0).transmit(frame_bits, 1.0, &mut rng);
        let large = RadioLink::new(ul_env(), 25.0, 0.0).transmit(frame_bits, 1.0, &mut rng);
        assert!(small.duration_ms > large.duration_ms * 2.0);
        assert!(large.duration_ms >= TTI_MS);
    }

    #[test]
    fn mcs_offset_slows_down_transmission() {
        let mut rng = seeded_rng(2);
        let frame_bits = 120_000.0;
        let fast = RadioLink::new(ul_env(), 10.0, 0.0).transmit(frame_bits, 1.0, &mut rng);
        let slow = RadioLink::new(ul_env(), 10.0, 8.0).transmit(frame_bits, 1.0, &mut rng);
        assert!(slow.duration_ms > fast.duration_ms);
    }

    #[test]
    fn distance_slows_down_transmission() {
        let mut rng = seeded_rng(3);
        let frame_bits = 120_000.0;
        let near = RadioLink::new(ul_env(), 10.0, 0.0).transmit(frame_bits, 1.0, &mut rng);
        let far = RadioLink::new(ul_env(), 10.0, 0.0).transmit(frame_bits, 40.0, &mut rng);
        assert!(far.duration_ms >= near.duration_ms);
    }

    #[test]
    fn transmission_terminates_even_with_tiny_allocation() {
        let mut rng = seeded_rng(4);
        let out = RadioLink::new(ul_env(), 0.0, 10.0).transmit(1_000_000.0, 100.0, &mut rng);
        assert!(out.duration_ms <= 10_000.0 + TTI_MS);
    }

    #[test]
    fn saturation_throughput_is_reasonable_for_full_carrier() {
        let mut rng = seeded_rng(5);
        let link = RadioLink::new(ul_env(), 50.0, 0.0);
        let (mbps, per) = link.saturation_throughput_mbps(1.0, 2000, &mut rng);
        // A 10 MHz carrier at high SNR should land in the tens of Mbps.
        assert!(mbps > 10.0 && mbps < 60.0, "throughput {mbps}");
        assert!((0.0..0.2).contains(&per), "per {per}");
    }

    #[test]
    fn fading_increases_error_rate() {
        let mut rng = seeded_rng(6);
        let calm = RadioLink::new(ul_env(), 50.0, 0.0);
        let mut faded_env = ul_env();
        faded_env.shadow_fading_std_db = 6.0;
        // Operate at moderate SNR where fading pushes below the waterfall.
        let (_, per_calm) = calm.saturation_throughput_mbps(6.0, 3000, &mut rng);
        let faded = RadioLink::new(faded_env, 50.0, 0.0);
        let (_, per_faded) = faded.saturation_throughput_mbps(6.0, 3000, &mut rng);
        assert!(per_faded > per_calm, "faded {per_faded} vs calm {per_calm}");
    }
}
