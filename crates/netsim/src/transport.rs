//! Transport-network (backhaul) model.
//!
//! The prototype enforces per-slice transport bandwidth with OpenFlow
//! meters on an SDN switch. At the abstraction level Atlas needs this is a
//! rate-limited point-to-point link with a propagation/processing delay:
//! serialisation time is `bits / rate`, plus a fixed per-packet delay, plus
//! (in the emulated real network) a small per-packet jitter that the NS-3
//! model does not capture.

use atlas_math::dist::standard_normal_sample;
use rand::Rng;

/// A rate-limited backhaul link between the eNB and the core/edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackhaulLink {
    /// Effective bandwidth available to the slice, in Mbps.
    pub bandwidth_mbps: f64,
    /// One-way fixed delay in milliseconds (switch + kernel + propagation).
    pub delay_ms: f64,
    /// Standard deviation of per-packet delay jitter in milliseconds.
    pub jitter_std_ms: f64,
}

impl BackhaulLink {
    /// Creates a link; bandwidth below 0.1 Mbps is clamped up so that a
    /// zero-bandwidth configuration still drains (the OpenFlow meter in the
    /// prototype behaves the same way for its lowest band).
    pub fn new(bandwidth_mbps: f64, delay_ms: f64) -> Self {
        Self {
            bandwidth_mbps: bandwidth_mbps.max(0.1),
            delay_ms: delay_ms.max(0.0),
            jitter_std_ms: 0.0,
        }
    }

    /// Returns a copy with per-packet jitter enabled.
    pub fn with_jitter(mut self, jitter_std_ms: f64) -> Self {
        self.jitter_std_ms = jitter_std_ms.max(0.0);
        self
    }

    /// Serialisation time of a burst of `bits`, in milliseconds.
    pub fn serialization_ms(&self, bits: f64) -> f64 {
        bits.max(0.0) / (self.bandwidth_mbps * 1e6) * 1000.0
    }

    /// Total one-way transfer time of a burst of `bits`, in milliseconds
    /// (serialisation + fixed delay + jitter).
    pub fn transfer_ms<R: Rng + ?Sized>(&self, bits: f64, rng: &mut R) -> f64 {
        let jitter = if self.jitter_std_ms > 0.0 {
            (self.jitter_std_ms * standard_normal_sample(rng)).max(-self.delay_ms)
        } else {
            0.0
        };
        (self.serialization_ms(bits) + self.delay_ms + jitter).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;
    use atlas_math::stats;

    #[test]
    fn serialization_time_scales_with_size_and_rate() {
        let slow = BackhaulLink::new(1.0, 0.0);
        let fast = BackhaulLink::new(10.0, 0.0);
        assert!((slow.serialization_ms(1e6) - 1000.0).abs() < 1e-9);
        assert!((fast.serialization_ms(1e6) - 100.0).abs() < 1e-9);
        assert_eq!(fast.serialization_ms(0.0), 0.0);
    }

    #[test]
    fn zero_bandwidth_is_clamped() {
        let link = BackhaulLink::new(0.0, 1.0);
        assert!(link.serialization_ms(1e5).is_finite());
        assert!(link.bandwidth_mbps >= 0.1);
    }

    #[test]
    fn transfer_includes_fixed_delay() {
        let mut rng = seeded_rng(1);
        let link = BackhaulLink::new(100.0, 5.0);
        let t = link.transfer_ms(1e5, &mut rng);
        assert!((t - (1.0 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn jitter_spreads_transfer_times_but_keeps_them_nonnegative() {
        let mut rng = seeded_rng(2);
        let link = BackhaulLink::new(100.0, 2.0).with_jitter(1.5);
        let times: Vec<f64> = (0..2000).map(|_| link.transfer_ms(1e4, &mut rng)).collect();
        assert!(times.iter().all(|t| *t >= 0.0));
        assert!(stats::std_dev(&times) > 0.5);
        // Mean stays near serialisation + delay.
        assert!((stats::mean(&times) - (0.1 + 2.0)).abs() < 0.2);
    }
}
