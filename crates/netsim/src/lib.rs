//! # atlas-netsim
//!
//! A from-scratch, discrete-event end-to-end network-slicing simulator: the
//! substrate the Atlas reproduction trains and evaluates against. It stands
//! in for both the NS-3 simulator and the hardware testbed of the paper
//! (*Atlas: Automate Online Service Configuration in Network Slicing*,
//! CoNEXT 2022).
//!
//! ## What is modelled
//!
//! * **RAN** — log-distance pathloss, receiver noise figures, SNR→MCS link
//!   adaptation, a BLER waterfall with HARQ, and a per-TTI PRB quota per
//!   slice ([`radio`]).
//! * **Transport network** — a rate-limited backhaul link with fixed delay
//!   and optional jitter, standing in for the OpenFlow-metered SDN switch
//!   ([`transport`]).
//! * **Core / edge network** — per-packet core processing plus a FIFO edge
//!   compute server whose speed follows the configured Docker CPU ratio
//!   ([`edge`]).
//! * **Application** — the paper's frame-offloading app with bounded
//!   on-the-fly frames emulating 1–4 users ([`app`]).
//!
//! Two facades expose the same engine:
//!
//! * [`Simulator`] — behaviour controlled by the public 7-dim simulation
//!   parameters of Table 3 (this is what stage 1 calibrates and stages 2–3
//!   query offline), and
//! * [`RealNetwork`] — the emulated testbed with a hidden ground-truth
//!   environment that the simulation parameters can only partially match,
//!   reproducing the paper's sim-to-real discrepancy.
//!
//! ```
//! use atlas_netsim::{RealNetwork, Scenario, Simulator, SliceConfig};
//!
//! let config = SliceConfig::default_generous();
//! let scenario = Scenario::default_with_seed(7).with_duration(5.0);
//! let sim = Simulator::with_original_params().run(&config, &scenario);
//! let real = RealNetwork::prototype().run(&config, &scenario);
//! // The testbed is slower than the idealised simulator.
//! assert!(real.mean_latency_ms() > sim.mean_latency_ms());
//! ```
//!
//! ## Simulator fast path
//!
//! Evaluate-phase queries run through deterministic caches ([`cache`]): a
//! scenario-keyed carrier-saturation measurement cache, reusable
//! zero-allocation simulation workspaces, and (for the [`Simulator`]) full
//! memoization of exact query repeats. All layers are pure performance
//! transforms — [`SimCachePolicy::Off`] pins the historical uncached path
//! and produces bit-identical results:
//!
//! ```
//! use atlas_netsim::{Scenario, SimCachePolicy, Simulator, SliceConfig};
//!
//! let config = SliceConfig::default_generous();
//! let scenario = Scenario::default_with_seed(11).with_duration(2.0);
//! let cached = Simulator::with_original_params(); // Memoize by default
//! let uncached = cached.with_cache_policy(SimCachePolicy::Off);
//! let warm = cached.run(&config, &scenario); // fills the caches
//! assert_eq!(cached.run(&config, &scenario), warm); // served from the memo
//! assert_eq!(uncached.run(&config, &scenario), warm); // bit-identical
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod budget;
pub mod cache;
pub mod config;
pub mod edge;
pub mod engine;
pub mod network;
pub mod radio;
pub mod testbed;
pub mod transport;

pub use budget::{
    ContentionPolicy, GrantFractions, MaxMinFair, ProportionalFair, ResourceBudget, RESOURCE_DIMS,
};
pub use cache::{sim_cache_stats, SimCachePolicy, SimCacheStats, SimMemo};
pub use config::{Mobility, Scenario, SimParams, SliceConfig};
pub use network::{LatencyBreakdown, LinkEnvironment, SimWorkspace, Simulator, TraceSummary};
pub use testbed::{RealNetwork, RealWorldProfile, SharedTestbed};
