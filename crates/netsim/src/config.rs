//! Configuration and simulation-parameter spaces.
//!
//! * [`SliceConfig`] is the 6-dimensional *network configuration* action of
//!   Table 2 in the paper — the knobs the Atlas policy controls (RAN PRBs,
//!   MCS offsets, transport bandwidth, edge CPU ratio).
//! * [`SimParams`] is the 7-dimensional *simulation parameter* vector of
//!   Table 3 — the knobs the learning-based-simulator stage searches to
//!   reduce the sim-to-real discrepancy.
//!
//! Both types convert to/from plain `Vec<f64>` so they can be optimised by
//! the Bayesian-optimisation framework, and both know their box bounds.

use atlas_math::linalg::l2_distance;

/// Total number of physical resource blocks in a 10 MHz LTE carrier.
pub const TOTAL_PRBS: f64 = 50.0;
/// Maximum MCS offset (Table 2).
pub const MAX_MCS_OFFSET: f64 = 10.0;
/// Maximum configurable transport (backhaul) bandwidth in Mbps (Table 2).
pub const MAX_BACKHAUL_MBPS: f64 = 100.0;

/// The 6-dimensional network configuration of a slice (Table 2).
///
/// | field | meaning | range |
/// |---|---|---|
/// | `bandwidth_ul` | maximum uplink PRBs | [0, 50] |
/// | `bandwidth_dl` | maximum downlink PRBs | [0, 50] |
/// | `mcs_offset_ul` | uplink MCS offset | [0, 10] |
/// | `mcs_offset_dl` | downlink MCS offset | [0, 10] |
/// | `backhaul_bw` | transport bandwidth (Mbps) | [0, 100] |
/// | `cpu_ratio` | CPU ratio of the edge container | [0, 1] |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceConfig {
    /// Maximum uplink PRBs allocated to the slice.
    pub bandwidth_ul: f64,
    /// Maximum downlink PRBs allocated to the slice.
    pub bandwidth_dl: f64,
    /// Uplink MCS offset (robustness margin; reduces the selected MCS).
    pub mcs_offset_ul: f64,
    /// Downlink MCS offset.
    pub mcs_offset_dl: f64,
    /// Transport-network bandwidth in Mbps enforced by the SDN switch.
    pub backhaul_bw: f64,
    /// CPU share of the slice's edge (Docker) container, in `[0, 1]`.
    pub cpu_ratio: f64,
}

impl SliceConfig {
    /// Dimensionality of the configuration space.
    pub const DIM: usize = 6;

    /// Upper bound of every dimension (the `A` vector in Eq. 7).
    pub fn max() -> [f64; Self::DIM] {
        [
            TOTAL_PRBS,
            TOTAL_PRBS,
            MAX_MCS_OFFSET,
            MAX_MCS_OFFSET,
            MAX_BACKHAUL_MBPS,
            1.0,
        ]
    }

    /// Lower bound of every dimension.
    pub fn min() -> [f64; Self::DIM] {
        [0.0; Self::DIM]
    }

    /// A generous default configuration (used for motivation experiments
    /// where the slice is not resource-constrained).
    pub fn default_generous() -> Self {
        Self {
            bandwidth_ul: 25.0,
            bandwidth_dl: 25.0,
            mcs_offset_ul: 0.0,
            mcs_offset_dl: 0.0,
            backhaul_bw: 50.0,
            cpu_ratio: 0.9,
        }
    }

    /// Converts to a plain vector in Table 2 order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.bandwidth_ul,
            self.bandwidth_dl,
            self.mcs_offset_ul,
            self.mcs_offset_dl,
            self.backhaul_bw,
            self.cpu_ratio,
        ]
    }

    /// Builds a configuration from a plain vector (Table 2 order), clamping
    /// every value into its valid range.
    pub fn from_vec(v: &[f64]) -> Self {
        assert_eq!(v.len(), Self::DIM, "SliceConfig requires 6 values");
        let max = Self::max();
        let clamp = |i: usize| v[i].clamp(0.0, max[i]);
        Self {
            bandwidth_ul: clamp(0),
            bandwidth_dl: clamp(1),
            mcs_offset_ul: clamp(2),
            mcs_offset_dl: clamp(3),
            backhaul_bw: clamp(4),
            cpu_ratio: clamp(5),
        }
    }

    /// Builds a configuration from values normalised to the unit cube
    /// (each dimension in `[0, 1]` scaled by its Table 2 range).
    pub fn from_unit(v: &[f64]) -> Self {
        assert_eq!(v.len(), Self::DIM, "SliceConfig requires 6 values");
        let max = Self::max();
        let scaled: Vec<f64> = v
            .iter()
            .zip(max.iter())
            .map(|(x, m)| x.clamp(0.0, 1.0) * m)
            .collect();
        Self::from_vec(&scaled)
    }

    /// Normalises the configuration to the unit cube.
    pub fn to_unit(&self) -> Vec<f64> {
        let max = Self::max();
        self.to_vec()
            .iter()
            .zip(max.iter())
            .map(|(v, m)| if *m > 0.0 { v / m } else { 0.0 })
            .collect()
    }

    /// Resource usage `F(a) = |a / A|_1 / dim` in `[0, 1]` (Sec. 5.1).
    ///
    /// This is the objective the offline and online stages minimise; it
    /// combines heterogeneous resources by normalising each dimension by
    /// its maximum and averaging.
    pub fn resource_usage(&self) -> f64 {
        let unit = self.to_unit();
        unit.iter().sum::<f64>() / Self::DIM as f64
    }

    /// Enforces the paper's minimum connectivity allocation (6 UL PRBs and
    /// 3 DL PRBs, Sec. 8.2) and returns the adjusted configuration.
    pub fn with_connectivity_floor(mut self) -> Self {
        self.bandwidth_ul = self.bandwidth_ul.max(6.0);
        self.bandwidth_dl = self.bandwidth_dl.max(3.0);
        self
    }
}

/// The 7-dimensional simulation-parameter vector of the learning-based
/// simulator (Table 3).
///
/// | field | meaning |
/// |---|---|
/// | `baseline_loss` | reference loss of the log-distance pathloss model (dB) |
/// | `enb_noise_figure` | eNB receiver noise figure (dB) — affects uplink |
/// | `ue_noise_figure` | UE receiver noise figure (dB) — affects downlink |
/// | `backhaul_bw` | additional transport bandwidth (Mbps) |
/// | `backhaul_delay` | additional transport delay (ms) |
/// | `compute_time` | additional edge compute time (ms) |
/// | `loading_time` | additional loading time at the UE (ms) |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Reference loss of the log-distance pathloss model, in dB.
    pub baseline_loss: f64,
    /// eNB receiver noise figure in dB (uplink).
    pub enb_noise_figure: f64,
    /// UE receiver noise figure in dB (downlink).
    pub ue_noise_figure: f64,
    /// Additional transport bandwidth in Mbps.
    pub backhaul_bw: f64,
    /// Additional transport delay in ms.
    pub backhaul_delay: f64,
    /// Additional edge compute time in ms.
    pub compute_time: f64,
    /// Additional loading time at the UE in ms.
    pub loading_time: f64,
}

impl SimParams {
    /// Dimensionality of the simulation-parameter space.
    pub const DIM: usize = 7;

    /// The original (specification-derived) simulation parameters `x̂` the
    /// paper reports for the NS-3 default configuration: reference loss
    /// 38.57 dB, eNB noise figure 5 dB, UE noise figure 9 dB, and no
    /// additional delays.
    pub fn original() -> Self {
        Self {
            baseline_loss: 38.57,
            enb_noise_figure: 5.0,
            ue_noise_figure: 9.0,
            backhaul_bw: 0.0,
            backhaul_delay: 0.0,
            compute_time: 0.0,
            loading_time: 0.0,
        }
    }

    /// Lower bounds of the search space used by stage 1.
    pub fn lower_bounds() -> [f64; Self::DIM] {
        [30.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
    }

    /// Upper bounds of the search space used by stage 1. The additive delay
    /// knobs are deliberately generous: the calibration must be able to
    /// absorb the protocol/implementation overheads of a real deployment
    /// that the idealised simulator does not model.
    pub fn upper_bounds() -> [f64; Self::DIM] {
        [50.0, 10.0, 15.0, 10.0, 20.0, 30.0, 30.0]
    }

    /// Converts to a plain vector in Table 3 order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.baseline_loss,
            self.enb_noise_figure,
            self.ue_noise_figure,
            self.backhaul_bw,
            self.backhaul_delay,
            self.compute_time,
            self.loading_time,
        ]
    }

    /// Builds parameters from a plain vector (Table 3 order), clamping into
    /// the search bounds.
    pub fn from_vec(v: &[f64]) -> Self {
        assert_eq!(v.len(), Self::DIM, "SimParams requires 7 values");
        let lo = Self::lower_bounds();
        let hi = Self::upper_bounds();
        let clamp = |i: usize| v[i].clamp(lo[i], hi[i]);
        Self {
            baseline_loss: clamp(0),
            enb_noise_figure: clamp(1),
            ue_noise_figure: clamp(2),
            backhaul_bw: clamp(3),
            backhaul_delay: clamp(4),
            compute_time: clamp(5),
            loading_time: clamp(6),
        }
    }

    /// The *parameter distance* `|x − x̂|₂` of Eq. 2, computed on
    /// range-normalised values and averaged per dimension, so that a
    /// full-range change of one parameter contributes `1/DIM`. This keeps
    /// the distance on the same small scale the paper reports (Table 4
    /// distances of ~0.1) and makes the `α = 7` weighting meaningful.
    pub fn distance_from(&self, reference: &SimParams) -> f64 {
        let lo = Self::lower_bounds();
        let hi = Self::upper_bounds();
        let norm = |p: &SimParams| -> Vec<f64> {
            p.to_vec()
                .iter()
                .enumerate()
                .map(|(i, v)| (v - lo[i]) / (hi[i] - lo[i]))
                .collect()
        };
        l2_distance(&norm(self), &norm(reference)) / Self::DIM as f64
    }
}

impl Default for SimParams {
    fn default() -> Self {
        Self::original()
    }
}

/// User mobility model for a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mobility {
    /// Users remain at a fixed distance from the eNB.
    Stationary,
    /// Users random-walk between 1 m and `max_distance_m` every frame
    /// (used for the "random" point of Fig. 10).
    RandomWalk {
        /// Maximum distance reached by the walk, in metres.
        max_distance_m: f64,
    },
}

/// A workload scenario: everything about the environment that is *not* a
/// configuration knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// User traffic intensity — the number of concurrently outstanding
    /// frames (the paper emulates 1–4 users by bounding on-the-fly frames).
    pub traffic: u32,
    /// Line-of-sight distance between the UE(s) and the eNB in metres.
    pub user_distance_m: f64,
    /// Mobility model.
    pub mobility: Mobility,
    /// Simulated duration in seconds (the paper uses 60 s per query).
    pub duration_s: f64,
    /// Number of extra background users attached to *other* slices
    /// (isolation experiment, Fig. 11).
    pub extra_background_users: u32,
    /// RNG seed for the run.
    pub seed: u64,
}

impl Scenario {
    /// The paper's default measurement scenario: one user, 1 m away,
    /// stationary, 60-second collection.
    pub fn default_with_seed(seed: u64) -> Self {
        Self {
            traffic: 1,
            user_distance_m: 1.0,
            mobility: Mobility::Stationary,
            duration_s: 60.0,
            extra_background_users: 0,
            seed,
        }
    }

    /// Returns a copy with a different traffic intensity.
    pub fn with_traffic(mut self, traffic: u32) -> Self {
        self.traffic = traffic;
        self
    }

    /// Returns a copy with a different user distance.
    pub fn with_distance(mut self, metres: f64) -> Self {
        self.user_distance_m = metres;
        self
    }

    /// Returns a copy with a different duration.
    pub fn with_duration(mut self, seconds: f64) -> Self {
        self.duration_s = seconds;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for Scenario {
    fn default() -> Self {
        Self::default_with_seed(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_config_roundtrips_through_vec() {
        let c = SliceConfig {
            bandwidth_ul: 9.0,
            bandwidth_dl: 3.0,
            mcs_offset_ul: 0.0,
            mcs_offset_dl: 0.0,
            backhaul_bw: 6.2,
            cpu_ratio: 0.8,
        };
        assert_eq!(SliceConfig::from_vec(&c.to_vec()), c);
    }

    #[test]
    fn slice_config_clamps_out_of_range_values() {
        let c = SliceConfig::from_vec(&[100.0, -5.0, 20.0, 3.0, 500.0, 2.0]);
        assert_eq!(c.bandwidth_ul, 50.0);
        assert_eq!(c.bandwidth_dl, 0.0);
        assert_eq!(c.mcs_offset_ul, 10.0);
        assert_eq!(c.backhaul_bw, 100.0);
        assert_eq!(c.cpu_ratio, 1.0);
    }

    #[test]
    fn resource_usage_matches_l1_definition() {
        // The paper's best configuration for user traffic 1 (Sec. 8.2).
        let c = SliceConfig {
            bandwidth_ul: 9.0,
            bandwidth_dl: 3.0,
            mcs_offset_ul: 0.0,
            mcs_offset_dl: 0.0,
            backhaul_bw: 6.2,
            cpu_ratio: 0.8,
        };
        let expected = (9.0 / 50.0 + 3.0 / 50.0 + 0.0 + 0.0 + 6.2 / 100.0 + 0.8) / 6.0;
        assert!((c.resource_usage() - expected).abs() < 1e-12);
        // Full allocation uses 100 %.
        let full = SliceConfig::from_vec(&SliceConfig::max());
        assert!((full.resource_usage() - 1.0).abs() < 1e-12);
        // Empty allocation uses 0 %.
        let empty = SliceConfig::from_vec(&[0.0; 6]);
        assert_eq!(empty.resource_usage(), 0.0);
    }

    #[test]
    fn unit_cube_mapping_roundtrips() {
        let c = SliceConfig {
            bandwidth_ul: 25.0,
            bandwidth_dl: 10.0,
            mcs_offset_ul: 5.0,
            mcs_offset_dl: 2.0,
            backhaul_bw: 30.0,
            cpu_ratio: 0.5,
        };
        let unit = c.to_unit();
        assert!(unit.iter().all(|v| (0.0..=1.0).contains(v)));
        let back = SliceConfig::from_unit(&unit);
        for (a, b) in back.to_vec().iter().zip(c.to_vec().iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn connectivity_floor_is_enforced() {
        let c = SliceConfig::from_vec(&[0.0, 0.0, 0.0, 0.0, 5.0, 0.1]).with_connectivity_floor();
        assert_eq!(c.bandwidth_ul, 6.0);
        assert_eq!(c.bandwidth_dl, 3.0);
        // Does not reduce larger allocations.
        let big = SliceConfig::default_generous().with_connectivity_floor();
        assert_eq!(big.bandwidth_ul, 25.0);
    }

    #[test]
    fn sim_params_original_matches_paper_defaults() {
        let p = SimParams::original();
        assert!((p.baseline_loss - 38.57).abs() < 1e-9);
        assert_eq!(p.enb_noise_figure, 5.0);
        assert_eq!(p.ue_noise_figure, 9.0);
        assert_eq!(p.backhaul_delay, 0.0);
        assert_eq!(p.distance_from(&SimParams::original()), 0.0);
    }

    #[test]
    fn sim_params_roundtrip_and_clamp() {
        let p = SimParams::from_vec(&[40.0, 2.0, 8.0, 5.0, 3.0, 2.0, 1.0]);
        assert_eq!(SimParams::from_vec(&p.to_vec()), p);
        let clamped = SimParams::from_vec(&[10.0, 50.0, -3.0, 100.0, 100.0, 100.0, 100.0]);
        assert_eq!(clamped.baseline_loss, 30.0);
        assert_eq!(clamped.enb_noise_figure, 10.0);
        assert_eq!(clamped.ue_noise_figure, 0.0);
        assert_eq!(clamped.backhaul_bw, 10.0);
    }

    #[test]
    fn parameter_distance_grows_with_deviation() {
        let orig = SimParams::original();
        let mut near = orig;
        near.compute_time = 1.0;
        let mut far = orig;
        far.compute_time = 8.0;
        far.backhaul_delay = 8.0;
        assert!(near.distance_from(&orig) > 0.0);
        assert!(far.distance_from(&orig) > near.distance_from(&orig));
    }

    #[test]
    fn scenario_builders() {
        let s = Scenario::default_with_seed(7)
            .with_traffic(3)
            .with_distance(5.0)
            .with_duration(10.0)
            .with_seed(9);
        assert_eq!(s.traffic, 3);
        assert_eq!(s.user_distance_m, 5.0);
        assert_eq!(s.duration_s, 10.0);
        assert_eq!(s.seed, 9);
        assert_eq!(s.extra_background_users, 0);
    }
}
