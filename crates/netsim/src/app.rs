//! Slice application model.
//!
//! The paper's slice application is an Android app that continuously
//! offloads camera frames (540p) to the edge server, which runs ORB
//! feature extraction and returns the result. Congestion control is
//! implemented by bounding the number of on-the-fly frames; the
//! experiments emulate `k` users by allowing `k` outstanding frames.
//!
//! The traffic statistics below match the measurements reported in
//! Sec. 7.2 of the paper (uplink transmission size 28.8 kb mean, 9.9 kb
//! standard deviation).

use atlas_math::dist::LogNormal;
use rand::Rng;

/// Mean uplink frame size in bits (28.8 kb, Sec. 7.2).
pub const UL_FRAME_MEAN_BITS: f64 = 28_800.0;
/// Standard deviation of the uplink frame size in bits (9.9 kb).
pub const UL_FRAME_STD_BITS: f64 = 9_900.0;
/// Downlink result size in bits (ORB descriptors are a few kilobytes).
pub const DL_RESULT_MEAN_BITS: f64 = 16_000.0;
/// Standard deviation of the downlink result size in bits.
pub const DL_RESULT_STD_BITS: f64 = 4_000.0;
/// Client-side frame encode/decode ("loading") time at the UE in ms.
pub const BASE_LOADING_MEAN_MS: f64 = 12.0;
/// Standard deviation of the loading time in ms.
pub const BASE_LOADING_STD_MS: f64 = 4.0;

/// Generates the frame-offloading workload of one slice user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameSource {
    /// Additional loading time at the UE in ms (simulation parameter).
    pub extra_loading_ms: f64,
    /// Multiplier on the uplink frame size (1.0 = paper statistics).
    pub ul_scale: f64,
}

impl FrameSource {
    /// Creates a frame source with the paper's traffic statistics.
    pub fn new(extra_loading_ms: f64) -> Self {
        Self {
            extra_loading_ms: extra_loading_ms.max(0.0),
            ul_scale: 1.0,
        }
    }

    /// Samples the size of one uplink frame in bits.
    pub fn ul_frame_bits<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let dist = LogNormal::from_mean_std(UL_FRAME_MEAN_BITS, UL_FRAME_STD_BITS)
            .expect("frame size distribution parameters are valid");
        (dist.sample(rng) * self.ul_scale).max(1_000.0)
    }

    /// Samples the size of one downlink result in bits.
    pub fn dl_result_bits<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let dist = LogNormal::from_mean_std(DL_RESULT_MEAN_BITS, DL_RESULT_STD_BITS)
            .expect("result size distribution parameters are valid");
        dist.sample(rng).max(500.0)
    }

    /// Samples the per-frame loading (encode/decode/render) time at the UE
    /// in ms, including the `loading_time` simulation parameter.
    pub fn loading_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let dist = LogNormal::from_mean_std(BASE_LOADING_MEAN_MS, BASE_LOADING_STD_MS)
            .expect("loading time distribution parameters are valid");
        dist.sample(rng) + self.extra_loading_ms
    }
}

impl Default for FrameSource {
    fn default() -> Self {
        Self::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;
    use atlas_math::stats;

    #[test]
    fn frame_sizes_match_paper_statistics() {
        let mut rng = seeded_rng(1);
        let src = FrameSource::default();
        let sizes: Vec<f64> = (0..20_000).map(|_| src.ul_frame_bits(&mut rng)).collect();
        assert!((stats::mean(&sizes) - UL_FRAME_MEAN_BITS).abs() < 500.0);
        assert!((stats::std_dev(&sizes) - UL_FRAME_STD_BITS).abs() < 600.0);
        assert!(sizes.iter().all(|s| *s >= 1_000.0));
    }

    #[test]
    fn results_are_smaller_than_frames_on_average() {
        let mut rng = seeded_rng(2);
        let src = FrameSource::default();
        let ul: Vec<f64> = (0..5000).map(|_| src.ul_frame_bits(&mut rng)).collect();
        let dl: Vec<f64> = (0..5000).map(|_| src.dl_result_bits(&mut rng)).collect();
        assert!(stats::mean(&dl) < stats::mean(&ul));
    }

    #[test]
    fn extra_loading_time_is_additive() {
        let mut rng = seeded_rng(3);
        let base = FrameSource::new(0.0);
        let extra = FrameSource::new(25.0);
        let a: Vec<f64> = (0..5000).map(|_| base.loading_ms(&mut rng)).collect();
        let b: Vec<f64> = (0..5000).map(|_| extra.loading_ms(&mut rng)).collect();
        assert!((stats::mean(&b) - stats::mean(&a) - 25.0).abs() < 1.0);
    }

    #[test]
    fn negative_extra_loading_is_clamped() {
        assert_eq!(FrameSource::new(-5.0).extra_loading_ms, 0.0);
    }
}
