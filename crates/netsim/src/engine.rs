//! Minimal discrete-event simulation engine.
//!
//! The end-to-end slice is a tandem of FIFO servers (uplink radio →
//! backhaul → edge compute → downlink radio) traversed by frames from a
//! closed population of users. A priority queue of timestamped events with
//! deterministic FIFO tie-breaking is all the machinery required; the
//! stations themselves are modelled by [`Station`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in milliseconds.
pub type SimTime = f64;

#[derive(Debug, Clone)]
struct QueuedEvent<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for QueuedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for QueuedEvent<E> {}

impl<E> PartialOrd for QueuedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueuedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties are broken by insertion order (FIFO) for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<QueuedEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Schedules `event` at absolute time `time` (clamped to the current
    /// time if it lies in the past).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let time = if time < self.now { self.now } else { time };
        self.heap.push(QueuedEvent {
            time,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Pops the next event, advancing the simulation clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|qe| {
            self.now = qe.time;
            (qe.time, qe.event)
        })
    }

    /// Resets the queue to its initial state (time zero, no pending
    /// events, sequence counter rewound) while keeping the heap's
    /// allocation. A cleared queue behaves exactly like a freshly
    /// constructed one — heap capacity never influences pop order — which
    /// is what lets simulation workspaces be reused across runs
    /// bit-identically.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = 0.0;
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A single-server FIFO station with work-conserving service.
///
/// Frames arriving while the server is busy wait in FIFO order; the station
/// only needs to remember when the server next becomes free because events
/// are processed in time order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Station {
    next_free: SimTime,
    busy_ms: f64,
    served: u64,
}

impl Station {
    /// Creates an idle station.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serves a job arriving at `arrival` with the given service duration;
    /// returns `(start, finish)` times.
    pub fn serve(&mut self, arrival: SimTime, service_ms: f64) -> (SimTime, SimTime) {
        let start = if arrival > self.next_free {
            arrival
        } else {
            self.next_free
        };
        let finish = start + service_ms.max(0.0);
        self.next_free = finish;
        self.busy_ms += service_ms.max(0.0);
        self.served += 1;
        (start, finish)
    }

    /// Total busy time accumulated so far, in ms.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Number of jobs served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilisation over an observation window of `horizon_ms`.
    pub fn utilization(&self, horizon_ms: f64) -> f64 {
        if horizon_ms <= 0.0 {
            0.0
        } else {
            (self.busy_ms / horizon_ms).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(2.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((2.0, i)));
        }
    }

    #[test]
    fn clock_advances_and_past_events_are_clamped() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "late");
        assert_eq!(q.pop(), Some((10.0, "late")));
        assert_eq!(q.now(), 10.0);
        // Scheduling in the past clamps to now.
        q.schedule(5.0, "past");
        assert_eq!(q.pop(), Some((10.0, "past")));
    }

    #[test]
    fn queue_len_tracks_pending_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cleared_queue_behaves_like_a_fresh_one() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "a");
        q.schedule(20.0, "b");
        assert_eq!(q.pop(), Some((10.0, "a")));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), 0.0);
        // Same schedule order as a fresh queue yields the same pops —
        // including FIFO tie-breaking, which depends on the rewound
        // sequence counter.
        let mut fresh = EventQueue::new();
        for queue in [&mut q, &mut fresh] {
            queue.schedule(2.0, "x");
            queue.schedule(2.0, "y");
            queue.schedule(1.0, "z");
        }
        for _ in 0..3 {
            assert_eq!(q.pop(), fresh.pop());
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn station_is_fifo_and_work_conserving() {
        let mut s = Station::new();
        // First job: starts immediately.
        assert_eq!(s.serve(0.0, 10.0), (0.0, 10.0));
        // Second job arrives while busy: waits.
        assert_eq!(s.serve(2.0, 5.0), (10.0, 15.0));
        // Third job arrives after idle period: starts on arrival.
        assert_eq!(s.serve(100.0, 1.0), (100.0, 101.0));
        assert_eq!(s.served(), 3);
        assert!((s.busy_ms() - 16.0).abs() < 1e-12);
        assert!((s.utilization(200.0) - 0.08).abs() < 1e-12);
    }

    #[test]
    fn station_handles_zero_and_negative_service() {
        let mut s = Station::new();
        assert_eq!(s.serve(1.0, 0.0), (1.0, 1.0));
        assert_eq!(s.serve(1.0, -5.0), (1.0, 1.0));
        assert_eq!(s.utilization(0.0), 0.0);
    }
}
