//! Emulated real network ("the testbed").
//!
//! The paper evaluates Atlas against a hardware prototype (OAI eNB + USRP +
//! OnePlus 9 + OpenDayLight switch + OpenAir-CN + Docker edge). This module
//! substitutes that prototype with the same discrete-event engine driven by
//! a **hidden ground-truth environment** that differs from the idealised
//! simulator in exactly the ways the paper attributes the sim-to-real
//! discrepancy to:
//!
//! * a different propagation environment (higher reference loss, larger
//!   pathloss exponent, shadow fading, residual interference),
//! * protocol/implementation overheads on the transport and core path,
//! * heavier-tailed compute times in the containerised edge server,
//! * additional client-side loading time in the Android application.
//!
//! Some of these can be compensated by the 7 simulation parameters of
//! Table 3 (constant offsets), others cannot (fading, heavy tails, the
//! pathloss exponent) — so, as in the paper, the learning-based simulator
//! can shrink but never fully remove the discrepancy, and the online stage
//! still has a residual gap to learn.
//!
//! The ground truth is deliberately **not** exposed through the public API
//! used by the Atlas algorithms; it is only accessible to tests via
//! [`RealWorldProfile`] so invariants can be checked.

use crate::budget::{
    grant_round, ContentionPolicy, GrantFractions, ProportionalFair, ResourceBudget,
};
use crate::cache::{self, SimCachePolicy};
use crate::config::{Scenario, SliceConfig};
use crate::network::{run_end_to_end_cached, LinkEnvironment, TraceSummary};
use crate::radio::{LogDistancePathloss, RadioEnvironment};
use std::collections::HashMap;

/// The hidden ground-truth description of the real network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealWorldProfile {
    /// Reference pathloss at 1 m, in dB.
    pub reference_loss_db: f64,
    /// Pathloss exponent of the real propagation environment.
    pub pathloss_exponent: f64,
    /// eNB receiver noise figure in dB.
    pub enb_noise_figure_db: f64,
    /// UE receiver noise figure in dB.
    pub ue_noise_figure_db: f64,
    /// Shadow-fading standard deviation in dB.
    pub shadow_fading_std_db: f64,
    /// Residual uncontrolled interference margin in dB.
    pub interference_margin_db: f64,
    /// One-way backhaul delay (switch + kernel) in ms.
    pub backhaul_delay_ms: f64,
    /// Backhaul per-packet jitter standard deviation in ms.
    pub backhaul_jitter_std_ms: f64,
    /// Fraction of the configured OpenFlow meter rate actually achieved.
    pub backhaul_efficiency: f64,
    /// Extra effective backhaul bandwidth in Mbps (meter granularity slack).
    pub backhaul_extra_mbps: f64,
    /// Extra per-frame compute time in ms (container and serialisation
    /// overhead).
    pub extra_compute_ms: f64,
    /// Probability of hitting the edge server's slow path.
    pub compute_tail_probability: f64,
    /// Slow-path multiplier.
    pub compute_tail_factor: f64,
    /// Extra per-frame loading time at the UE in ms.
    pub extra_loading_ms: f64,
    /// Core-network (SPGW-U) per-packet processing time in ms.
    pub core_processing_ms: f64,
}

impl RealWorldProfile {
    /// The default testbed profile used throughout the reproduction.
    pub fn prototype() -> Self {
        Self {
            reference_loss_db: 41.8,
            pathloss_exponent: 3.35,
            enb_noise_figure_db: 6.8,
            ue_noise_figure_db: 11.0,
            shadow_fading_std_db: 2.5,
            interference_margin_db: 1.5,
            backhaul_delay_ms: 4.5,
            backhaul_jitter_std_ms: 1.2,
            backhaul_efficiency: 0.92,
            backhaul_extra_mbps: 2.0,
            extra_compute_ms: 7.0,
            compute_tail_probability: 0.12,
            compute_tail_factor: 2.8,
            extra_loading_ms: 8.0,
            core_processing_ms: 5.5,
        }
    }

    /// Builds the (hidden) link environment of the testbed.
    pub fn environment(&self) -> LinkEnvironment {
        let pathloss = LogDistancePathloss {
            reference_loss_db: self.reference_loss_db,
            exponent: self.pathloss_exponent,
            reference_distance_m: 1.0,
        };
        let mut ul = RadioEnvironment::uplink(pathloss, self.enb_noise_figure_db);
        ul.shadow_fading_std_db = self.shadow_fading_std_db;
        ul.interference_margin_db = self.interference_margin_db;
        let mut dl = RadioEnvironment::downlink(pathloss, self.ue_noise_figure_db);
        dl.shadow_fading_std_db = self.shadow_fading_std_db;
        dl.interference_margin_db = self.interference_margin_db;
        LinkEnvironment {
            ul_radio: ul,
            dl_radio: dl,
            backhaul_delay_ms: self.backhaul_delay_ms,
            backhaul_jitter_std_ms: self.backhaul_jitter_std_ms,
            backhaul_efficiency: self.backhaul_efficiency,
            backhaul_extra_mbps: self.backhaul_extra_mbps,
            extra_compute_ms: self.extra_compute_ms,
            compute_tail_probability: self.compute_tail_probability,
            compute_tail_factor: self.compute_tail_factor,
            extra_loading_ms: self.extra_loading_ms,
            core_processing_ms: self.core_processing_ms,
            interference_per_extra_user_db: 0.05,
        }
    }
}

/// The emulated real network Atlas queries during the online stage.
///
/// From the algorithms' point of view this is a black box with the same
/// `run(config, scenario)` signature as the [`crate::network::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealNetwork {
    profile: RealWorldProfile,
    cache: SimCachePolicy,
}

impl RealNetwork {
    /// Creates the default prototype testbed. Its cache policy defaults to
    /// [`SimCachePolicy::Measurement`]: real queries rarely repeat exactly
    /// (each carries a fresh derived seed) and their traces are long, so
    /// full-result memoization would mostly consume memory — but the
    /// carrier-saturation measurement is still shared per scenario.
    pub fn prototype() -> Self {
        Self {
            profile: RealWorldProfile::prototype(),
            cache: SimCachePolicy::Measurement,
        }
    }

    /// Creates a testbed with a custom ground-truth profile (useful for
    /// sensitivity studies and tests).
    pub fn with_profile(profile: RealWorldProfile) -> Self {
        Self {
            profile,
            cache: SimCachePolicy::Measurement,
        }
    }

    /// Replaces the cache policy. Results are bit-identical for every
    /// policy — [`SimCachePolicy::Off`] pins the historical uncached path
    /// for comparison.
    pub fn with_cache_policy(mut self, cache: SimCachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// The cache policy in use.
    pub fn cache_policy(&self) -> SimCachePolicy {
        self.cache
    }

    /// The hidden ground-truth profile (only meant for tests and analysis;
    /// the Atlas algorithms never read it).
    pub fn profile(&self) -> &RealWorldProfile {
        &self.profile
    }

    /// Runs one measurement of the slice on the testbed.
    pub fn run(&self, config: &SliceConfig, scenario: &Scenario) -> TraceSummary {
        run_end_to_end_cached(&self.profile.environment(), config, scenario, self.cache)
    }
}

impl Default for RealNetwork {
    fn default() -> Self {
        Self::prototype()
    }
}

/// A testbed shared by many concurrent slices: the batch-evaluation entry
/// point a multi-slice orchestrator fans its per-round queries through.
///
/// Two batch layers exist by design: [`SharedTestbed::run_batch`] is the
/// netsim-level entry — raw `(config, scenario) → TraceSummary` jobs,
/// usable without the Atlas crates — while the orchestrator's
/// `QueryScheduler` batches SLA-scored QoE queries over any `Environment`
/// (of which a `SharedTestbed` is one). Both fan out over the same
/// deterministic thread pool.
///
/// ## Finite substrate
///
/// The testbed owns a [`ResourceBudget`]: the finite PRB / backhaul / CPU
/// capacity every concurrent slice draws from. When one round of batch
/// jobs over-subscribes a dimension, the grants are scaled down by the
/// testbed's [`ContentionPolicy`] ([`ProportionalFair`] by default) before
/// any measurement runs, and each trace's [`TraceSummary::grant`] records
/// the granted-vs-requested gap. Granting is computed sequentially from
/// the whole batch, so contended results are still bit-for-bit identical
/// for every thread count. The default budget is
/// [`ResourceBudget::unlimited`], which reproduces the uncontended
/// behaviour exactly.
///
/// The underlying [`RealNetwork`] is stateless per measurement — each run
/// derives everything from `(config, scenario)`, with the RNG stream seeded
/// from the scenario — so evaluating N slices' (granted) queries
/// concurrently is byte-identical to running them one after another.
/// [`SharedTestbed::run_batch`] exploits that: jobs are split into
/// contiguous chunks over scoped threads (via `atlas-math::parallel`) and
/// reassembled in job order, so the result vector is bit-for-bit
/// independent of the thread count. Per-slice reproducibility therefore
/// reduces to per-slice seed discipline, which the callers provide by
/// embedding a derived seed in every job's [`Scenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedTestbed<P: ContentionPolicy = ProportionalFair> {
    network: RealNetwork,
    /// Pinned worker-thread count (`None`: machine default, capped at 8).
    threads: Option<usize>,
    /// Pinned fleet shard count (`None`: unsharded). Purely advisory at
    /// this layer — the orchestrator adopts it, the testbed itself never
    /// shards.
    shards: Option<usize>,
    budget: ResourceBudget,
    policy: P,
}

impl SharedTestbed<ProportionalFair> {
    /// Wraps a testbed for shared multi-slice evaluation with an unlimited
    /// resource budget and the proportional-fair contention policy.
    pub fn new(network: RealNetwork) -> Self {
        Self {
            network,
            threads: None,
            shards: None,
            budget: ResourceBudget::unlimited(),
            policy: ProportionalFair,
        }
    }
}

impl<P: ContentionPolicy> SharedTestbed<P> {
    /// Pins the number of evaluation worker threads (a performance knob
    /// only: results are identical for every value). Applies to
    /// [`SharedTestbed::run_batch`]; the orchestrator's query scheduler
    /// adopts it when constructed via `Orchestrator::over_testbed`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Pins the number of fleet worker *shards* the substrate recommends
    /// (a performance knob only: sharded results are bit-for-bit identical
    /// for every value). Like the thread pin, this keeps the substrate's
    /// parallel capacity in one place: an orchestrator built via
    /// `Orchestrator::over_testbed` adopts both pins, so the operator
    /// configures the testbed once and every fleet run over it shards the
    /// same way.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Sets the finite resource budget concurrent batch jobs contend for.
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the contention policy deciding how over-subscribed
    /// dimensions are split.
    pub fn with_policy<Q: ContentionPolicy>(self, policy: Q) -> SharedTestbed<Q> {
        SharedTestbed {
            network: self.network,
            threads: self.threads,
            shards: self.shards,
            budget: self.budget,
            policy,
        }
    }

    /// The shared underlying testbed.
    pub fn network(&self) -> &RealNetwork {
        &self.network
    }

    /// The pinned thread count, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The pinned fleet shard count, if any.
    pub fn shards(&self) -> Option<usize> {
        self.shards
    }

    /// The testbed's resource budget.
    pub fn budget(&self) -> &ResourceBudget {
        &self.budget
    }

    /// The testbed's contention policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Runs one measurement (identical to [`RealNetwork::run`]). Single
    /// measurements never contend — contention is a property of a *batch*
    /// of concurrent jobs.
    pub fn run(&self, config: &SliceConfig, scenario: &Scenario) -> TraceSummary {
        self.network.run(config, scenario)
    }

    /// Grants one round of concurrent configuration requests against the
    /// testbed's budget (element `i` answers `requested[i]`); uncontended
    /// rounds are returned bit-for-bit.
    pub fn grant(&self, requested: &[SliceConfig]) -> Vec<SliceConfig> {
        grant_round(&self.budget, &self.policy, requested)
    }

    /// Evaluates a batch of `(config, scenario)` jobs — typically one per
    /// slice and round — over scoped worker threads. The whole batch is
    /// first granted against the testbed's [`ResourceBudget`]; element `i`
    /// of the result is then bit-for-bit identical to
    /// `self.run(&granted[i], &jobs[i].1)` with its
    /// [`TraceSummary::grant`] fractions filled in, for every thread
    /// count. With the default unlimited budget this reduces exactly to
    /// the uncontended per-job runs. Each job's RNG stream comes from its
    /// own scenario seed.
    ///
    /// Unless the network's [`SimCachePolicy`] is `Off`, jobs whose
    /// *granted* `(config, scenario)` is bit-identical to an earlier job in
    /// the same batch simulate once and share the result (the measurement
    /// is deterministic, so this cannot change any trace); the collapsed
    /// job count is reported through
    /// [`crate::cache::SimCacheStats::batch_dedup_hits`].
    pub fn run_batch(&self, jobs: &[(SliceConfig, Scenario)]) -> Vec<TraceSummary> {
        let requested: Vec<SliceConfig> = jobs.iter().map(|(config, _)| *config).collect();
        let granted = self.grant(&requested);
        let granted_jobs: Vec<(SliceConfig, SliceConfig, Scenario)> = granted
            .into_iter()
            .zip(jobs)
            .map(|(g, (r, scenario))| (g, *r, *scenario))
            .collect();
        if self.network.cache_policy().measurement_enabled() {
            if let Some(deduped) = self.run_batch_deduped(&granted_jobs) {
                return deduped;
            }
        }
        atlas_math::parallel::par_chunks_map(&granted_jobs, 1, self.threads, |_, chunk| {
            chunk
                .iter()
                .map(|(granted, requested, scenario)| {
                    let mut trace = self.network.run(granted, scenario);
                    trace.grant = GrantFractions::of(requested, granted);
                    trace
                })
                .collect()
        })
    }

    /// Within-batch dedup: identical granted jobs simulate once, then the
    /// shared trace is scattered back to every original slot with that
    /// slot's own grant fractions. Returns `None` when every job is unique
    /// so the direct path runs without the clone/scatter pass.
    fn run_batch_deduped(
        &self,
        granted_jobs: &[(SliceConfig, SliceConfig, Scenario)],
    ) -> Option<Vec<TraceSummary>> {
        let mut index_of: HashMap<[u64; 13], usize> = HashMap::with_capacity(granted_jobs.len());
        let mut unique: Vec<(SliceConfig, Scenario)> = Vec::with_capacity(granted_jobs.len());
        let mut slot: Vec<usize> = Vec::with_capacity(granted_jobs.len());
        for (granted, _, scenario) in granted_jobs {
            let key = cache::job_key(granted, scenario);
            let idx = *index_of.entry(key).or_insert_with(|| {
                unique.push((*granted, *scenario));
                unique.len() - 1
            });
            slot.push(idx);
        }
        if unique.len() == granted_jobs.len() {
            return None;
        }
        cache::note_batch_dedup((granted_jobs.len() - unique.len()) as u64);
        let unique_traces: Vec<TraceSummary> =
            atlas_math::parallel::par_chunks_map(&unique, 1, self.threads, |_, chunk| {
                chunk
                    .iter()
                    .map(|(config, scenario)| self.network.run(config, scenario))
                    .collect()
            });
        Some(
            granted_jobs
                .iter()
                .zip(&slot)
                .map(|((granted, requested, _), &idx)| {
                    let mut trace = unique_traces[idx].clone();
                    trace.grant = GrantFractions::of(requested, granted);
                    trace
                })
                .collect(),
        )
    }
}

impl From<RealNetwork> for SharedTestbed<ProportionalFair> {
    fn from(network: RealNetwork) -> Self {
        Self::new(network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scenario, SimParams};
    use crate::network::Simulator;
    use atlas_math::stats;

    fn cfg() -> SliceConfig {
        SliceConfig {
            bandwidth_ul: 10.0,
            bandwidth_dl: 5.0,
            mcs_offset_ul: 0.0,
            mcs_offset_dl: 0.0,
            backhaul_bw: 10.0,
            cpu_ratio: 0.8,
        }
    }

    fn scenario(seed: u64) -> Scenario {
        Scenario::default_with_seed(seed).with_duration(20.0)
    }

    #[test]
    fn real_network_is_slower_than_the_original_simulator() {
        let sim = Simulator::with_original_params();
        let real = RealNetwork::prototype();
        let a = sim.run(&cfg(), &scenario(1));
        let b = real.run(&cfg(), &scenario(1));
        assert!(
            b.mean_latency_ms() > a.mean_latency_ms() * 1.1,
            "real {} should be noticeably slower than sim {}",
            b.mean_latency_ms(),
            a.mean_latency_ms()
        );
    }

    #[test]
    fn real_network_throughput_is_lower() {
        let sim = Simulator::with_original_params();
        let real = RealNetwork::prototype();
        let a = sim.run(&cfg(), &scenario(2));
        let b = real.run(&cfg(), &scenario(2));
        assert!(b.ul_throughput_mbps < a.ul_throughput_mbps);
        assert!(b.dl_throughput_mbps < a.dl_throughput_mbps);
        assert!(b.ul_per > a.ul_per);
        assert!(b.ping_delay_ms > a.ping_delay_ms);
    }

    #[test]
    fn discrepancy_shrinks_when_sim_params_absorb_the_offsets() {
        // A hand-tuned parameter vector that compensates the constant
        // offsets of the testbed should produce a latency distribution much
        // closer to the real one than the original parameters do.
        let real = RealNetwork::prototype();
        let target = real.run(&cfg(), &scenario(3));

        let original = Simulator::with_original_params().run(&cfg(), &scenario(4));
        let tuned_params = SimParams {
            baseline_loss: 41.8,
            enb_noise_figure: 6.8,
            ue_noise_figure: 11.0,
            backhaul_bw: 2.0,
            backhaul_delay: 4.0,
            compute_time: 10.0,
            loading_time: 8.0,
        };
        let tuned = Simulator::new(tuned_params).run(&cfg(), &scenario(4));

        let kl_original =
            stats::kl_divergence(&target.latencies_ms, &original.latencies_ms).unwrap();
        let kl_tuned = stats::kl_divergence(&target.latencies_ms, &tuned.latencies_ms).unwrap();
        assert!(
            kl_tuned < kl_original,
            "tuned KL {kl_tuned} should be below original KL {kl_original}"
        );
        assert!(kl_tuned > 0.0, "a residual gap must remain");
    }

    #[test]
    fn slice_isolation_holds_under_extra_background_users() {
        let real = RealNetwork::prototype();
        let base = real.run(&cfg(), &scenario(5));
        let crowded = real.run(
            &cfg(),
            &Scenario {
                extra_background_users: 2,
                ..scenario(5)
            },
        );
        let rel_change =
            (crowded.mean_latency_ms() - base.mean_latency_ms()).abs() / base.mean_latency_ms();
        assert!(
            rel_change < 0.15,
            "latency should be stable under background load (changed {rel_change})"
        );
    }

    #[test]
    fn discrepancy_grows_with_distance() {
        // At 1 m the pathloss exponent mismatch is invisible; at 10 m it is
        // not. The KL-divergence between simulator and testbed latency
        // distributions should therefore grow with distance (Fig. 10).
        let sim = Simulator::with_original_params();
        let real = RealNetwork::prototype();
        let mut kls = Vec::new();
        for (i, d) in [1.0, 30.0].iter().enumerate() {
            let s = scenario(6 + i as u64).with_distance(*d);
            let a = sim.run(&cfg(), &s);
            let b = real.run(&cfg(), &s);
            kls.push(stats::kl_divergence(&b.latencies_ms, &a.latencies_ms).unwrap());
        }
        assert!(
            kls[1] > kls[0],
            "KL at 30 m ({}) should exceed KL at 1 m ({})",
            kls[1],
            kls[0]
        );
    }

    #[test]
    fn shared_testbed_batch_matches_sequential_runs_for_every_thread_count() {
        let network = RealNetwork::prototype();
        // Distinct configs, scenarios and seeds per job — the per-slice
        // streams must not bleed into each other.
        let jobs: Vec<(SliceConfig, Scenario)> = (0..6)
            .map(|i| {
                let mut c = cfg();
                c.bandwidth_ul = 8.0 + i as f64;
                c.cpu_ratio = 0.5 + 0.05 * i as f64;
                (c, scenario(100 + i as u64).with_traffic(1 + (i as u32) % 3))
            })
            .collect();
        let sequential: Vec<_> = jobs.iter().map(|(c, s)| network.run(c, s)).collect();
        for threads in [1, 2, 3, 8] {
            let batch = SharedTestbed::new(network)
                .with_threads(threads)
                .run_batch(&jobs);
            assert_eq!(batch, sequential, "threads = {threads}");
        }
        // Machine-default thread count too.
        assert_eq!(SharedTestbed::new(network).run_batch(&jobs), sequential);
        assert!(SharedTestbed::new(network).run_batch(&[]).is_empty());
    }

    #[test]
    fn shared_testbed_exposes_the_wrapped_network() {
        let shared = SharedTestbed::from(RealNetwork::prototype())
            .with_threads(4)
            .with_shards(2);
        assert_eq!(shared.network(), &RealNetwork::prototype());
        assert_eq!(shared.threads(), Some(4));
        assert_eq!(shared.shards(), Some(2));
        // Both pins are clamped to at least 1, default to None, and
        // survive a policy swap.
        assert_eq!(SharedTestbed::new(RealNetwork::prototype()).shards(), None);
        assert_eq!(
            SharedTestbed::new(RealNetwork::prototype())
                .with_shards(0)
                .shards(),
            Some(1)
        );
        let swapped = shared.with_policy(crate::budget::MaxMinFair);
        assert_eq!(swapped.threads(), Some(4));
        assert_eq!(swapped.shards(), Some(2));
        let a = swapped.run(&cfg(), &scenario(1));
        let b = RealNetwork::prototype().run(&cfg(), &scenario(1));
        assert_eq!(a, b);
    }

    #[test]
    fn contended_batch_scales_grants_and_reports_the_gap() {
        let network = RealNetwork::prototype();
        // Two slices each requesting 40 UL PRBs against a 50-PRB carrier:
        // 1.6x over-subscribed in UL, everything else fits.
        let mut big = cfg();
        big.bandwidth_ul = 40.0;
        let jobs = vec![(big, scenario(21)), (big, scenario(22))];
        let contended = SharedTestbed::new(network)
            .with_budget(crate::budget::ResourceBudget::carrier_default())
            .run_batch(&jobs);
        for trace in &contended {
            assert!((trace.grant.ul_prbs - 50.0 / 80.0).abs() < 1e-12);
            assert_eq!(trace.grant.dl_prbs, 1.0);
            assert!(!trace.grant.is_full());
        }
        // Element i equals a direct run of the *granted* configuration.
        let mut granted_cfg = big;
        granted_cfg.bandwidth_ul = 40.0 * 50.0 / 80.0;
        let direct = network.run(&granted_cfg, &scenario(21));
        assert_eq!(contended[0].latencies_ms, direct.latencies_ms);
        // Determinism across thread counts holds under contention too.
        for threads in [1, 2, 4] {
            let again = SharedTestbed::new(network)
                .with_budget(crate::budget::ResourceBudget::carrier_default())
                .with_threads(threads)
                .run_batch(&jobs);
            assert_eq!(again, contended, "threads = {threads}");
        }
        // An unlimited budget reproduces the uncontended traces exactly.
        let uncontended = SharedTestbed::new(network).run_batch(&jobs);
        assert!(uncontended.iter().all(|t| t.grant.is_full()));
        assert_ne!(uncontended, contended);
    }

    #[test]
    fn contention_policy_is_pluggable() {
        let network = RealNetwork::prototype();
        let mut small = cfg();
        small.bandwidth_ul = 10.0;
        let mut big = cfg();
        big.bandwidth_ul = 90.0;
        let jobs = vec![(small, scenario(31)), (big, scenario(32))];
        let budget = crate::budget::ResourceBudget::carrier_default();
        let pf = SharedTestbed::new(network)
            .with_budget(budget)
            .run_batch(&jobs);
        let mmf = SharedTestbed::new(network)
            .with_budget(budget)
            .with_policy(crate::budget::MaxMinFair)
            .run_batch(&jobs);
        // Max-min fair serves the small demand in full; proportional fair
        // scales both by the same factor.
        assert!((pf[0].grant.ul_prbs - 0.5).abs() < 1e-12);
        assert!((pf[1].grant.ul_prbs - 0.5).abs() < 1e-12);
        assert_eq!(mmf[0].grant.ul_prbs, 1.0);
        assert!((mmf[1].grant.ul_prbs - 40.0 / 90.0).abs() < 1e-12);
        assert_eq!(
            SharedTestbed::new(network)
                .with_policy(crate::budget::MaxMinFair)
                .policy()
                .name(),
            "max-min-fair"
        );
    }

    #[test]
    fn real_network_cache_policies_are_pure_performance_transforms() {
        let cfg = cfg();
        let s = scenario(40).with_traffic(2);
        let off = RealNetwork::prototype().with_cache_policy(SimCachePolicy::Off);
        let expected = off.run(&cfg, &s);
        for policy in [SimCachePolicy::Measurement, SimCachePolicy::Memoize] {
            let real = RealNetwork::prototype().with_cache_policy(policy);
            assert_eq!(real.run(&cfg, &s), expected, "{policy:?} cold");
            assert_eq!(real.run(&cfg, &s), expected, "{policy:?} warm");
        }
        assert_eq!(
            RealNetwork::prototype().cache_policy(),
            SimCachePolicy::Measurement
        );
    }

    #[test]
    fn batch_dedup_collapses_identical_jobs_without_changing_results() {
        let network = RealNetwork::prototype();
        // Three duplicates of one job interleaved with distinct jobs.
        let twin = (cfg(), scenario(50).with_traffic(2));
        let jobs = vec![
            twin,
            (cfg(), scenario(51)),
            twin,
            (cfg(), scenario(52).with_traffic(3)),
            twin,
        ];
        let sequential: Vec<_> = jobs.iter().map(|(c, s)| network.run(c, s)).collect();
        let before = crate::cache::sim_cache_stats();
        for threads in [1, 2, 4] {
            let batch = SharedTestbed::new(network)
                .with_threads(threads)
                .run_batch(&jobs);
            assert_eq!(batch, sequential, "threads = {threads}");
        }
        let delta = crate::cache::sim_cache_stats().delta_since(&before);
        assert!(
            delta.batch_dedup_hits >= 6,
            "2 duplicate jobs x 3 thread counts, saw {}",
            delta.batch_dedup_hits
        );
        // With caching off the historical per-job path runs and still
        // produces the same traces.
        let off =
            SharedTestbed::new(network.with_cache_policy(SimCachePolicy::Off)).run_batch(&jobs);
        assert_eq!(off, sequential);
    }

    #[test]
    fn custom_profile_is_respected() {
        let mut profile = RealWorldProfile::prototype();
        profile.extra_compute_ms = 100.0;
        let slow = RealNetwork::with_profile(profile);
        let normal = RealNetwork::prototype();
        let a = slow.run(&cfg(), &scenario(8));
        let b = normal.run(&cfg(), &scenario(8));
        assert!(a.mean_latency_ms() > b.mean_latency_ms() + 50.0);
        assert_eq!(slow.profile().extra_compute_ms, 100.0);
    }
}
