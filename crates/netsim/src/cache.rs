//! Deterministic evaluate-phase caches for the simulator fast path.
//!
//! Three layers, all bit-identity-safe by construction and all opt-out-able
//! through [`SimCachePolicy`]:
//!
//! 1. **Scenario-keyed measurement cache** — the carrier-saturation
//!    measurement block of `run_end_to_end` (2 × 2000 radio transmissions)
//!    is independent of the slice configuration and runs on its own derived
//!    RNG stream (`derive_seed(scenario.seed, 0xFEED)`), so its result is a
//!    pure function of the adjusted radio environments, the scenario seed
//!    and the user distance. Caching it can therefore never change a
//!    result, only skip recomputing one.
//! 2. **Sim memoization** ([`SimMemo`]) — full `TraceSummary` results keyed
//!    by the exact `(LinkEnvironment, SliceConfig, Scenario)` triple, for
//!    the accel/residual simulator path where identical queries recur.
//! 3. **Batch dedup counters** — `SharedTestbed::run_batch` collapses
//!    identical granted jobs to one simulation; the hit count is surfaced
//!    here so the saving is reported honestly rather than assumed.
//!
//! Keys are the *bit patterns* of the defining floats (`f64::to_bits`), so
//! lookups are exact: two inputs that differ in any bit (including
//! `0.0` vs `-0.0`) simply miss and recompute — a harmless extra
//! simulation, never a wrong answer. Eviction is bounded FIFO
//! (LRU-by-insertion): deterministic, allocation-light, and sufficient for
//! the replay-style access patterns of the online loop.
//!
//! The process-wide caches are shared across every [`crate::Simulator`] and
//! [`crate::RealNetwork`] instance because the values they hold are pure
//! functions of their keys — sharing can only increase the hit rate. Hit
//! and miss counts are exposed through [`sim_cache_stats`]; concurrent
//! users should diff two snapshots via [`SimCacheStats::delta_since`]
//! rather than assert absolute values.

use crate::config::{Mobility, Scenario, SliceConfig};
use crate::network::{CarrierMeasurement, LinkEnvironment, TraceSummary};
use crate::radio::RadioEnvironment;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};

/// Which cache layers a simulation entry point may use.
///
/// Every layer is a pure performance transform: results are bit-for-bit
/// identical across all three policies. [`SimCachePolicy::Off`] exists so
/// property tests (and suspicious operators) can pin the historical
/// uncached path and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimCachePolicy {
    /// No caching at all — the historical code path, bit for bit.
    Off,
    /// Reuse the config-independent carrier-saturation measurement, but
    /// re-run every discrete-event simulation.
    Measurement,
    /// Measurement reuse plus full-result memoization of exact
    /// `(environment, config, scenario)` repeats.
    #[default]
    Memoize,
}

impl SimCachePolicy {
    /// Whether the carrier-saturation measurement cache is consulted.
    pub fn measurement_enabled(self) -> bool {
        self != Self::Off
    }

    /// Whether full-result memoization is consulted.
    pub fn memo_enabled(self) -> bool {
        self == Self::Memoize
    }
}

/// A bounded map with deterministic FIFO (insertion-order) eviction.
///
/// Capacity 0 stores nothing — every lookup misses, which makes it
/// behaviourally identical to no cache at all.
#[derive(Debug)]
struct Bounded<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: std::hash::Hash + Eq + Clone, V> Bounded<K, V> {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1024)),
            order: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Packs one radio environment (7 defining floats) into `out`.
fn pack_radio(env: &RadioEnvironment, out: &mut [u64]) {
    out[0] = env.pathloss.reference_loss_db.to_bits();
    out[1] = env.pathloss.exponent.to_bits();
    out[2] = env.pathloss.reference_distance_m.to_bits();
    out[3] = env.tx_power_dbm.to_bits();
    out[4] = env.noise_figure_db.to_bits();
    out[5] = env.shadow_fading_std_db.to_bits();
    out[6] = env.interference_margin_db.to_bits();
}

/// Packs a scenario (7 words: traffic, distance, mobility tag + payload,
/// duration, background users, seed) into `out`.
fn pack_scenario(scenario: &Scenario, out: &mut [u64]) {
    out[0] = u64::from(scenario.traffic);
    out[1] = scenario.user_distance_m.to_bits();
    let (tag, payload) = match scenario.mobility {
        Mobility::Stationary => (0u64, 0u64),
        Mobility::RandomWalk { max_distance_m } => (1u64, max_distance_m.to_bits()),
    };
    out[2] = tag;
    out[3] = payload;
    out[4] = scenario.duration_s.to_bits();
    out[5] = u64::from(scenario.extra_background_users);
    out[6] = scenario.seed;
}

/// Exact bit-level identity of one batch job `(config, scenario)` — the
/// dedup key of `SharedTestbed::run_batch`, where every job already shares
/// the testbed's environment.
pub(crate) fn job_key(config: &SliceConfig, scenario: &Scenario) -> [u64; 13] {
    let mut k = [0u64; 13];
    k[0] = config.bandwidth_ul.to_bits();
    k[1] = config.bandwidth_dl.to_bits();
    k[2] = config.mcs_offset_ul.to_bits();
    k[3] = config.mcs_offset_dl.to_bits();
    k[4] = config.backhaul_bw.to_bits();
    k[5] = config.cpu_ratio.to_bits();
    pack_scenario(scenario, &mut k[6..13]);
    k
}

/// Exact key of the carrier-saturation measurement: the two *adjusted*
/// radio environments (interference margin already includes the
/// background-user term), the scenario seed (the measurement RNG stream is
/// derived from it) and the user distance the sweep measures at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct MeasurementKey([u64; 16]);

impl MeasurementKey {
    pub(crate) fn new(
        ul_env: &RadioEnvironment,
        dl_env: &RadioEnvironment,
        scenario: &Scenario,
    ) -> Self {
        let mut k = [0u64; 16];
        pack_radio(ul_env, &mut k[0..7]);
        pack_radio(dl_env, &mut k[7..14]);
        k[14] = scenario.seed;
        k[15] = scenario.user_distance_m.to_bits();
        Self(k)
    }
}

/// Exact key of a full simulation result: every float of the link
/// environment (24), the slice configuration (6) and the scenario (7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey([u64; 37]);

impl MemoKey {
    fn new(env: &LinkEnvironment, config: &SliceConfig, scenario: &Scenario) -> Self {
        let mut k = [0u64; 37];
        pack_radio(&env.ul_radio, &mut k[0..7]);
        pack_radio(&env.dl_radio, &mut k[7..14]);
        k[14] = env.backhaul_delay_ms.to_bits();
        k[15] = env.backhaul_jitter_std_ms.to_bits();
        k[16] = env.backhaul_efficiency.to_bits();
        k[17] = env.backhaul_extra_mbps.to_bits();
        k[18] = env.extra_compute_ms.to_bits();
        k[19] = env.compute_tail_probability.to_bits();
        k[20] = env.compute_tail_factor.to_bits();
        k[21] = env.extra_loading_ms.to_bits();
        k[22] = env.core_processing_ms.to_bits();
        k[23] = env.interference_per_extra_user_db.to_bits();
        k[24] = config.bandwidth_ul.to_bits();
        k[25] = config.bandwidth_dl.to_bits();
        k[26] = config.mcs_offset_ul.to_bits();
        k[27] = config.mcs_offset_dl.to_bits();
        k[28] = config.backhaul_bw.to_bits();
        k[29] = config.cpu_ratio.to_bits();
        pack_scenario(scenario, &mut k[30..37]);
        Self(k)
    }
}

/// A bounded, deterministic memo of full simulation results keyed by the
/// exact `(LinkEnvironment, SliceConfig, Scenario)` triple.
///
/// Eviction is FIFO in insertion order; capacity 0 stores nothing, so a
/// zero-capacity memo is behaviourally identical to [`SimCachePolicy::Off`]
/// (every lookup misses). The process-wide instance behind
/// [`SimCachePolicy::Memoize`] holds [`SIM_MEMO_CAPACITY`] entries;
/// standalone instances exist for boundary testing.
#[derive(Debug)]
pub struct SimMemo {
    inner: Bounded<MemoKey, TraceSummary>,
}

impl SimMemo {
    /// Creates a memo bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Bounded::new(capacity),
        }
    }

    /// Returns the memoized result of the exact triple, if present.
    pub fn lookup(
        &self,
        env: &LinkEnvironment,
        config: &SliceConfig,
        scenario: &Scenario,
    ) -> Option<TraceSummary> {
        self.inner
            .get(&MemoKey::new(env, config, scenario))
            .cloned()
    }

    /// Stores a result under the exact triple, evicting the oldest entry
    /// when over capacity.
    pub fn store(
        &mut self,
        env: &LinkEnvironment,
        config: &SliceConfig,
        scenario: &Scenario,
        trace: TraceSummary,
    ) {
        self.inner
            .insert(MemoKey::new(env, config, scenario), trace);
    }

    /// Number of memoized results currently held.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the memo holds no results.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// The eviction bound this memo was created with.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

/// Capacity of the process-wide measurement cache. Entries are small (a
/// 16-word key plus 4 floats), and every query consults it — real *and*
/// simulated, each with its own derived scenario seed — so one 1000-slice
/// round loop inserts ≈8000 distinct keys (2 iterations × [1 real +
/// 1 observe + 2 accel] queries per slice). Sized so that workload
/// survives intact until an in-process replay; FIFO eviction then drops
/// the oldest workloads first.
pub const MEASUREMENT_CACHE_CAPACITY: usize = 16_384;
/// Capacity of the process-wide sim memo. Sized so one full round-loop
/// replay of the 1000-slice bench fleet (≈6000 distinct accel/residual
/// queries at 2 s duration) survives until its replay.
pub const SIM_MEMO_CAPACITY: usize = 8192;

static MEASUREMENT_CACHE: LazyLock<Mutex<Bounded<MeasurementKey, CarrierMeasurement>>> =
    LazyLock::new(|| Mutex::new(Bounded::new(MEASUREMENT_CACHE_CAPACITY)));
static SIM_MEMO: LazyLock<Mutex<SimMemo>> =
    LazyLock::new(|| Mutex::new(SimMemo::new(SIM_MEMO_CAPACITY)));

static MEASUREMENT_HITS: AtomicU64 = AtomicU64::new(0);
static MEASUREMENT_MISSES: AtomicU64 = AtomicU64::new(0);
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_MISSES: AtomicU64 = AtomicU64::new(0);
static BATCH_DEDUP_HITS: AtomicU64 = AtomicU64::new(0);

/// Monotonic hit/miss counters of the process-wide simulation caches.
///
/// Counters only ever grow; to measure one workload, snapshot before and
/// after with [`sim_cache_stats`] and diff via
/// [`SimCacheStats::delta_since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimCacheStats {
    /// Carrier-saturation measurements served from cache.
    pub measurement_hits: u64,
    /// Carrier-saturation measurements computed (2 × 2000 transmissions).
    pub measurement_misses: u64,
    /// Full simulation results served from the memo.
    pub memo_hits: u64,
    /// Full simulations actually run under a memoizing policy.
    pub memo_misses: u64,
    /// Batch jobs answered by another identical job in the same
    /// `run_batch` call.
    pub batch_dedup_hits: u64,
}

impl SimCacheStats {
    /// Counter increments since `earlier` (saturating, so an out-of-order
    /// snapshot pair yields zeros rather than wrapping).
    pub fn delta_since(&self, earlier: &SimCacheStats) -> SimCacheStats {
        SimCacheStats {
            measurement_hits: self
                .measurement_hits
                .saturating_sub(earlier.measurement_hits),
            measurement_misses: self
                .measurement_misses
                .saturating_sub(earlier.measurement_misses),
            memo_hits: self.memo_hits.saturating_sub(earlier.memo_hits),
            memo_misses: self.memo_misses.saturating_sub(earlier.memo_misses),
            batch_dedup_hits: self
                .batch_dedup_hits
                .saturating_sub(earlier.batch_dedup_hits),
        }
    }

    /// Fraction of measurement lookups served from cache (0 when no
    /// lookups happened).
    pub fn measurement_hit_rate(&self) -> f64 {
        let total = self.measurement_hits + self.measurement_misses;
        if total == 0 {
            0.0
        } else {
            self.measurement_hits as f64 / total as f64
        }
    }
}

/// Snapshot of the process-wide cache counters.
pub fn sim_cache_stats() -> SimCacheStats {
    SimCacheStats {
        measurement_hits: MEASUREMENT_HITS.load(Ordering::Relaxed),
        measurement_misses: MEASUREMENT_MISSES.load(Ordering::Relaxed),
        memo_hits: MEMO_HITS.load(Ordering::Relaxed),
        memo_misses: MEMO_MISSES.load(Ordering::Relaxed),
        batch_dedup_hits: BATCH_DEDUP_HITS.load(Ordering::Relaxed),
    }
}

/// Serves the carrier-saturation measurement from the process-wide cache,
/// computing (outside the lock) and storing it on a miss. `compute` must be
/// a pure function of `key` — which it is for `measure_carrier`, whose RNG
/// stream is derived solely from the scenario seed.
pub(crate) fn measurement_cached(
    key: MeasurementKey,
    compute: impl FnOnce() -> CarrierMeasurement,
) -> CarrierMeasurement {
    let cached = MEASUREMENT_CACHE
        .lock()
        .expect("measurement cache lock")
        .get(&key)
        .copied();
    if let Some(hit) = cached {
        MEASUREMENT_HITS.fetch_add(1, Ordering::Relaxed);
        return hit;
    }
    MEASUREMENT_MISSES.fetch_add(1, Ordering::Relaxed);
    // Computed outside the lock: a concurrent duplicate costs one extra
    // deterministic computation, never a wrong or torn result.
    let value = compute();
    MEASUREMENT_CACHE
        .lock()
        .expect("measurement cache lock")
        .insert(key, value);
    value
}

/// Looks up the process-wide sim memo, counting the hit or miss.
pub(crate) fn memo_lookup(
    env: &LinkEnvironment,
    config: &SliceConfig,
    scenario: &Scenario,
) -> Option<TraceSummary> {
    let hit = SIM_MEMO
        .lock()
        .expect("sim memo lock")
        .lookup(env, config, scenario);
    match hit {
        Some(trace) => {
            MEMO_HITS.fetch_add(1, Ordering::Relaxed);
            Some(trace)
        }
        None => {
            MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Stores a freshly computed result in the process-wide sim memo.
pub(crate) fn memo_store(
    env: &LinkEnvironment,
    config: &SliceConfig,
    scenario: &Scenario,
    trace: TraceSummary,
) {
    SIM_MEMO
        .lock()
        .expect("sim memo lock")
        .store(env, config, scenario, trace);
}

/// Records `n` batch jobs answered by deduplication inside one
/// `run_batch` call.
pub(crate) fn note_batch_dedup(n: u64) {
    if n > 0 {
        BATCH_DEDUP_HITS.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scenario, SimParams, SliceConfig};
    use crate::network::{run_end_to_end, LinkEnvironment};

    #[test]
    fn policy_layers_are_ordered() {
        assert_eq!(SimCachePolicy::default(), SimCachePolicy::Memoize);
        assert!(!SimCachePolicy::Off.measurement_enabled());
        assert!(!SimCachePolicy::Off.memo_enabled());
        assert!(SimCachePolicy::Measurement.measurement_enabled());
        assert!(!SimCachePolicy::Measurement.memo_enabled());
        assert!(SimCachePolicy::Memoize.measurement_enabled());
        assert!(SimCachePolicy::Memoize.memo_enabled());
    }

    #[test]
    fn bounded_map_evicts_fifo() {
        let mut b: Bounded<u64, u64> = Bounded::new(2);
        b.insert(1, 10);
        b.insert(2, 20);
        b.insert(3, 30);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(&1), None, "oldest entry is evicted first");
        assert_eq!(b.get(&2), Some(&20));
        assert_eq!(b.get(&3), Some(&30));
        // Re-inserting an existing key neither grows nor reorders.
        b.insert(2, 21);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(&3), Some(&30));
    }

    fn memo_fixture() -> (LinkEnvironment, SliceConfig, Scenario, TraceSummary) {
        let env = LinkEnvironment::from_sim_params(&SimParams::original());
        let config = SliceConfig::default_generous();
        let scenario = Scenario::default_with_seed(7).with_duration(2.0);
        let trace = run_end_to_end(&env, &config, &scenario);
        (env, config, scenario, trace)
    }

    #[test]
    fn sim_memo_roundtrips_exact_triples() {
        let (env, config, scenario, trace) = memo_fixture();
        let mut memo = SimMemo::new(4);
        assert!(memo.is_empty());
        assert_eq!(memo.lookup(&env, &config, &scenario), None);
        memo.store(&env, &config, &scenario, trace.clone());
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.lookup(&env, &config, &scenario), Some(trace));
        // Any bit of difference in the triple misses.
        let other = scenario.with_seed(8);
        assert_eq!(memo.lookup(&env, &config, &other), None);
        let mut other_config = config;
        other_config.cpu_ratio += 1e-9;
        assert_eq!(memo.lookup(&env, &other_config, &scenario), None);
    }

    #[test]
    fn sim_memo_capacity_one_keeps_only_the_latest() {
        let (env, config, scenario, trace) = memo_fixture();
        let mut memo = SimMemo::new(1);
        assert_eq!(memo.capacity(), 1);
        memo.store(&env, &config, &scenario, trace.clone());
        let second = scenario.with_seed(99);
        memo.store(&env, &config, &second, trace.clone());
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.lookup(&env, &config, &scenario), None);
        assert_eq!(memo.lookup(&env, &config, &second), Some(trace));
    }

    #[test]
    fn sim_memo_capacity_zero_is_equivalent_to_off() {
        let (env, config, scenario, trace) = memo_fixture();
        let mut memo = SimMemo::new(0);
        memo.store(&env, &config, &scenario, trace);
        assert!(memo.is_empty());
        assert_eq!(memo.lookup(&env, &config, &scenario), None);
    }

    #[test]
    fn measurement_key_distinguishes_seed_distance_and_environment() {
        let env = LinkEnvironment::from_sim_params(&SimParams::original());
        let s = Scenario::default_with_seed(1);
        let base = MeasurementKey::new(&env.ul_radio, &env.dl_radio, &s);
        assert_eq!(base, MeasurementKey::new(&env.ul_radio, &env.dl_radio, &s));
        let reseeded = MeasurementKey::new(&env.ul_radio, &env.dl_radio, &s.with_seed(2));
        assert_ne!(base, reseeded);
        let moved = MeasurementKey::new(&env.ul_radio, &env.dl_radio, &s.with_distance(2.0));
        assert_ne!(base, moved);
        let mut noisy_ul = env.ul_radio;
        noisy_ul.interference_margin_db += 0.05;
        assert_ne!(base, MeasurementKey::new(&noisy_ul, &env.dl_radio, &s));
    }

    #[test]
    fn stats_deltas_are_saturating_and_hit_rate_is_bounded() {
        let a = SimCacheStats {
            measurement_hits: 10,
            measurement_misses: 5,
            memo_hits: 1,
            memo_misses: 2,
            batch_dedup_hits: 3,
        };
        let b = SimCacheStats {
            measurement_hits: 25,
            measurement_misses: 5,
            ..a
        };
        let d = b.delta_since(&a);
        assert_eq!(d.measurement_hits, 15);
        assert_eq!(d.measurement_misses, 0);
        assert_eq!(a.delta_since(&b).measurement_hits, 0);
        assert!((b.measurement_hit_rate() - 25.0 / 30.0).abs() < 1e-12);
        assert_eq!(SimCacheStats::default().measurement_hit_rate(), 0.0);
    }

    #[test]
    fn global_counters_grow_through_the_cached_helpers() {
        let env = LinkEnvironment::from_sim_params(&SimParams::original());
        // A seed far outside every other test's range so this test's first
        // lookup is a genuine miss even when the whole suite shares the
        // process-wide cache.
        let scenario = Scenario::default_with_seed(0x00C0_FFEE_0001).with_duration(1.0);
        let key = MeasurementKey::new(&env.ul_radio, &env.dl_radio, &scenario);
        let before = sim_cache_stats();
        let value = CarrierMeasurement {
            ul_sat_raw: 1.0,
            ul_sat_per: 0.1,
            dl_sat: 2.0,
            dl_sat_per: 0.2,
        };
        let first = measurement_cached(key, || value);
        let second = measurement_cached(key, || panic!("second lookup must hit"));
        assert_eq!(first, value);
        assert_eq!(second, value);
        let delta = sim_cache_stats().delta_since(&before);
        assert!(delta.measurement_hits >= 1);
        assert!(delta.measurement_misses >= 1);

        let config = SliceConfig::default_generous();
        assert_eq!(memo_lookup(&env, &config, &scenario), None);
        let trace = run_end_to_end(&env, &config, &scenario);
        memo_store(&env, &config, &scenario, trace.clone());
        assert_eq!(memo_lookup(&env, &config, &scenario), Some(trace));
        note_batch_dedup(2);
        let delta = sim_cache_stats().delta_since(&before);
        assert!(delta.memo_hits >= 1);
        assert!(delta.memo_misses >= 1);
        assert!(delta.batch_dedup_hits >= 2);
    }
}
