//! End-to-end network assembly.
//!
//! Combines the radio, transport, edge and application models into one
//! closed queueing network traversed by application frames, and exposes the
//! two facades Atlas interacts with:
//!
//! * [`Simulator`] — the offline simulator whose behaviour is controlled by
//!   the 7 simulation parameters of Table 3 (the NS-3 stand-in).
//! * `RealNetwork` (in [`crate::testbed`]) — the emulated testbed with a
//!   hidden ground-truth environment.
//!
//! Both run the same engine through [`LinkEnvironment`], which captures
//! every physical assumption in one place.

use crate::app::FrameSource;
use crate::budget::GrantFractions;
use crate::cache::{self, MeasurementKey, SimCachePolicy};
use crate::config::{Mobility, Scenario, SimParams, SliceConfig};
use crate::edge::EdgeServer;
use crate::engine::{EventQueue, Station};
use crate::radio::{LogDistancePathloss, RadioEnvironment, RadioLink};
use crate::transport::BackhaulLink;
use atlas_math::rng::{derive_seed, seeded_rng};
use atlas_math::stats;
use rand::Rng;
use std::cell::RefCell;

/// Everything physical about the end-to-end path: the "world" a run takes
/// place in. The simulator derives it from [`SimParams`]; the testbed uses
/// a hidden ground-truth instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEnvironment {
    /// Uplink radio environment (UE → eNB).
    pub ul_radio: RadioEnvironment,
    /// Downlink radio environment (eNB → UE).
    pub dl_radio: RadioEnvironment,
    /// Fixed one-way backhaul delay in ms.
    pub backhaul_delay_ms: f64,
    /// Per-packet backhaul jitter standard deviation in ms.
    pub backhaul_jitter_std_ms: f64,
    /// Fraction of the configured backhaul bandwidth actually achievable.
    pub backhaul_efficiency: f64,
    /// Additional backhaul bandwidth in Mbps on top of the configured one.
    pub backhaul_extra_mbps: f64,
    /// Additional per-frame compute time in ms.
    pub extra_compute_ms: f64,
    /// Probability that a frame hits the edge server's slow path.
    pub compute_tail_probability: f64,
    /// Slow-path service-time multiplier.
    pub compute_tail_factor: f64,
    /// Additional per-frame loading time at the UE in ms.
    pub extra_loading_ms: f64,
    /// Per-packet core-network processing time in ms (SPGW-U forwarding).
    pub core_processing_ms: f64,
    /// Interference added per extra background user, in dB (captures the
    /// small cross-slice coupling that remains despite isolation).
    pub interference_per_extra_user_db: f64,
}

impl LinkEnvironment {
    /// Builds the idealised simulator environment from simulation
    /// parameters (Table 3 semantics).
    pub fn from_sim_params(params: &SimParams) -> Self {
        let pathloss = LogDistancePathloss {
            reference_loss_db: params.baseline_loss,
            exponent: 3.0,
            reference_distance_m: 1.0,
        };
        Self {
            ul_radio: RadioEnvironment::uplink(pathloss, params.enb_noise_figure),
            dl_radio: RadioEnvironment::downlink(pathloss, params.ue_noise_figure),
            backhaul_delay_ms: 0.5 + params.backhaul_delay,
            backhaul_jitter_std_ms: 0.0,
            backhaul_efficiency: 1.0,
            backhaul_extra_mbps: params.backhaul_bw,
            extra_compute_ms: params.compute_time,
            compute_tail_probability: 0.0,
            compute_tail_factor: 1.0,
            extra_loading_ms: params.loading_time,
            core_processing_ms: 2.0,
            interference_per_extra_user_db: 0.0,
        }
    }
}

/// Per-stage latency breakdown averaged over completed frames (the
/// "transmission and computing details" the paper's NS-3 tracer records).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Mean UE-side loading time (ms).
    pub loading_ms: f64,
    /// Mean uplink radio time including queueing (ms).
    pub uplink_ms: f64,
    /// Mean backhaul + core time including queueing (ms).
    pub backhaul_ms: f64,
    /// Mean edge compute time including queueing (ms).
    pub compute_ms: f64,
    /// Mean downlink radio time including queueing (ms).
    pub downlink_ms: f64,
}

/// Result of one 60-second (by default) measurement run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Per-frame end-to-end latencies in ms, in completion order.
    pub latencies_ms: Vec<f64>,
    /// Number of frames completed within the run.
    pub frames_completed: usize,
    /// Saturation uplink throughput of the full carrier in Mbps.
    pub ul_throughput_mbps: f64,
    /// Saturation downlink throughput of the full carrier in Mbps.
    pub dl_throughput_mbps: f64,
    /// Residual uplink packet error rate.
    pub ul_per: f64,
    /// Residual downlink packet error rate.
    pub dl_per: f64,
    /// Average ping (ICMP round-trip) delay in ms.
    pub ping_delay_ms: f64,
    /// Mean per-stage latency breakdown.
    pub breakdown: LatencyBreakdown,
    /// Utilisation of the edge compute server during the run.
    pub edge_utilization: f64,
    /// Granted-over-requested resource fractions for this measurement.
    /// `run_end_to_end` itself always reports a full grant; budget-aware
    /// batch entry points (`SharedTestbed::run_batch` under a finite
    /// [`crate::budget::ResourceBudget`]) overwrite it with the contention
    /// outcome, so the granted-vs-requested gap travels with the trace.
    pub grant: GrantFractions,
}

impl TraceSummary {
    /// Mean end-to-end latency in ms (0 if no frame completed).
    pub fn mean_latency_ms(&self) -> f64 {
        stats::mean(&self.latencies_ms)
    }

    /// Quality of experience: the fraction of frames whose end-to-end
    /// latency is at or below `threshold_ms` (the paper's unified QoE).
    pub fn qoe(&self, threshold_ms: f64) -> f64 {
        stats::fraction_below(&self.latencies_ms, threshold_ms)
    }
}

/// Which stage a frame reaches next. The backhaul has no hop of its own:
/// `UplinkArrival` serves the radio and backhaul stations back to back and
/// schedules straight to `EdgeArrival`, saving one schedule/pop per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hop {
    StartLoading,
    UplinkArrival,
    EdgeArrival,
    DownlinkArrival,
}

#[derive(Debug, Clone, Copy)]
struct FrameEvent {
    user: usize,
    hop: Hop,
    generated_at: f64,
    /// Accumulated per-stage durations for the breakdown tracer.
    loading_ms: f64,
    uplink_ms: f64,
    backhaul_ms: f64,
    compute_ms: f64,
}

/// Reusable per-worker scratch for [`run_end_to_end_in`]: the event-queue
/// heap and a capacity hint for the latency buffer, both carried over from
/// the previous run so the closed-loop DES allocates nothing per query
/// beyond the latency vector it returns.
///
/// Reuse is bit-identity-safe: [`EventQueue::clear`] rewinds the queue to
/// a fresh-constructed state (heap capacity never influences pop order),
/// and the latency buffer's capacity never influences its contents.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    queue: EventQueue<FrameEvent>,
    /// Completed-frame count of the previous run: the capacity the next
    /// run's latency vector is allocated with up front.
    latency_hint: usize,
}

impl SimWorkspace {
    /// Creates an empty workspace (the first run allocates as the
    /// historical path did).
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Per-thread workspace backing the cached entry points. Worker
    /// threads are scoped per fan-out call, so this mainly pays off on the
    /// inline (threads ≤ 1) path and within one chunk of a batch — which
    /// is where the per-query churn concentrates on small machines.
    static WORKSPACE: RefCell<SimWorkspace> = RefCell::new(SimWorkspace::new());
}

/// The config-independent carrier-saturation measurement of one scenario
/// (Table 1 semantics): full-carrier UL/DL saturation throughputs and
/// packet error rates. `ul_sat_raw` is the raw sweep result; the UL/DL
/// power asymmetry factor is applied at the use site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CarrierMeasurement {
    pub(crate) ul_sat_raw: f64,
    pub(crate) ul_sat_per: f64,
    pub(crate) dl_sat: f64,
    pub(crate) dl_sat_per: f64,
}

/// The per-run radio environments after the cross-slice interference
/// adjustment (kept tiny: the whole point of slicing is isolation,
/// c.f. Fig. 11).
fn adjusted_radio_envs(
    env: &LinkEnvironment,
    scenario: &Scenario,
) -> (RadioEnvironment, RadioEnvironment) {
    let interference =
        env.interference_per_extra_user_db * f64::from(scenario.extra_background_users);
    let mut ul_env = env.ul_radio;
    ul_env.interference_margin_db += interference;
    let mut dl_env = env.dl_radio;
    dl_env.interference_margin_db += interference;
    (ul_env, dl_env)
}

/// Runs the network-level measurement block (full 10 MHz carrier, as in
/// Table 1): 2 × 2000 radio transmissions on an RNG stream derived solely
/// from the scenario seed — a pure function of `(ul_env, dl_env,
/// scenario.seed, scenario.user_distance_m)`, which is what makes the
/// measurement cache bit-exact.
fn measure_carrier(
    ul_env: &RadioEnvironment,
    dl_env: &RadioEnvironment,
    scenario: &Scenario,
) -> CarrierMeasurement {
    let mut meas_rng = seeded_rng(derive_seed(scenario.seed, 0xFEED));
    let full_ul = RadioLink::new(*ul_env, 50.0, 0.0);
    let full_dl = RadioLink::new(*dl_env, 50.0, 0.0);
    let (ul_sat_raw, ul_sat_per) =
        full_ul.saturation_throughput_mbps(scenario.user_distance_m, 2000, &mut meas_rng);
    let (dl_sat, dl_sat_per) =
        full_dl.saturation_throughput_mbps(scenario.user_distance_m, 2000, &mut meas_rng);
    CarrierMeasurement {
        ul_sat_raw,
        ul_sat_per,
        dl_sat,
        dl_sat_per,
    }
}

/// Runs the closed-network frame-offloading workload in `env` under the
/// given slice configuration and scenario. This is the core of both the
/// simulator and the emulated testbed.
pub fn run_end_to_end(
    env: &LinkEnvironment,
    config: &SliceConfig,
    scenario: &Scenario,
) -> TraceSummary {
    run_end_to_end_in(env, config, scenario, &mut SimWorkspace::new())
}

/// [`run_end_to_end`] with a caller-supplied reusable [`SimWorkspace`] —
/// results are bit-identical for every workspace history.
pub fn run_end_to_end_in(
    env: &LinkEnvironment,
    config: &SliceConfig,
    scenario: &Scenario,
    ws: &mut SimWorkspace,
) -> TraceSummary {
    let (ul_env, dl_env) = adjusted_radio_envs(env, scenario);
    // The measurement RNG stream is independent of the simulation stream,
    // so running it before the DES changes nothing.
    let measurement = measure_carrier(&ul_env, &dl_env, scenario);
    simulate(env, ul_env, dl_env, config, scenario, measurement, ws)
}

/// Policy-dispatched entry point behind [`Simulator::run`] and
/// `RealNetwork::run`: consults the sim memo and the measurement cache as
/// `policy` allows, running on the thread-local workspace. With
/// [`SimCachePolicy::Off`] this is exactly [`run_end_to_end`].
pub(crate) fn run_end_to_end_cached(
    env: &LinkEnvironment,
    config: &SliceConfig,
    scenario: &Scenario,
    policy: SimCachePolicy,
) -> TraceSummary {
    if !policy.measurement_enabled() {
        return run_end_to_end(env, config, scenario);
    }
    if policy.memo_enabled() {
        if let Some(hit) = cache::memo_lookup(env, config, scenario) {
            return hit;
        }
    }
    let (ul_env, dl_env) = adjusted_radio_envs(env, scenario);
    let measurement =
        cache::measurement_cached(MeasurementKey::new(&ul_env, &dl_env, scenario), || {
            measure_carrier(&ul_env, &dl_env, scenario)
        });
    let trace = WORKSPACE.with(|ws| {
        simulate(
            env,
            ul_env,
            dl_env,
            config,
            scenario,
            measurement,
            &mut ws.borrow_mut(),
        )
    });
    if policy.memo_enabled() {
        cache::memo_store(env, config, scenario, trace.clone());
    }
    trace
}

/// The discrete-event core: builds the tandem of stations, drives the
/// closed frame loop, and assembles the [`TraceSummary`] from the run plus
/// the (possibly cached) carrier measurement.
fn simulate(
    env: &LinkEnvironment,
    ul_env: RadioEnvironment,
    dl_env: RadioEnvironment,
    config: &SliceConfig,
    scenario: &Scenario,
    measurement: CarrierMeasurement,
    ws: &mut SimWorkspace,
) -> TraceSummary {
    let mut rng = seeded_rng(scenario.seed);

    let ul_link = RadioLink::new(ul_env, config.bandwidth_ul, config.mcs_offset_ul);
    let dl_link = RadioLink::new(dl_env, config.bandwidth_dl, config.mcs_offset_dl);
    let backhaul = BackhaulLink::new(
        config.backhaul_bw * env.backhaul_efficiency + env.backhaul_extra_mbps,
        env.backhaul_delay_ms,
    )
    .with_jitter(env.backhaul_jitter_std_ms);
    let edge = EdgeServer::new(config.cpu_ratio, env.extra_compute_ms)
        .with_heavy_tail(env.compute_tail_probability, env.compute_tail_factor);
    let source = FrameSource::new(env.extra_loading_ms);

    let mut ul_station = Station::new();
    let mut backhaul_station = Station::new();
    let mut edge_station = Station::new();
    let mut dl_station = Station::new();

    let duration_ms = scenario.duration_s * 1000.0;
    let users = scenario.traffic.max(1) as usize;

    // A cleared queue is indistinguishable from a fresh one; only its heap
    // allocation is carried over from the previous run.
    let queue = &mut ws.queue;
    queue.clear();
    for user in 0..users {
        queue.schedule(
            user as f64 * 7.0,
            FrameEvent {
                user,
                hop: Hop::StartLoading,
                generated_at: user as f64 * 7.0,
                loading_ms: 0.0,
                uplink_ms: 0.0,
                backhaul_ms: 0.0,
                compute_ms: 0.0,
            },
        );
    }

    // The latency vector moves into the returned trace, so it cannot be
    // reused outright; sizing it from the previous run's completed-frame
    // count collapses the growth reallocations to one up-front one.
    let mut latencies = Vec::with_capacity(ws.latency_hint);
    let mut breakdown_acc = LatencyBreakdown::default();
    let mut ul_blocks = 0u64;
    let mut ul_errors = 0u64;
    let mut dl_blocks = 0u64;
    let mut dl_errors = 0u64;

    while let Some((now, mut ev)) = queue.pop() {
        if now > duration_ms {
            break;
        }
        let distance = sample_distance(scenario, &mut rng);
        match ev.hop {
            Hop::StartLoading => {
                let load = source.loading_ms(&mut rng);
                ev.loading_ms = load;
                ev.hop = Hop::UplinkArrival;
                queue.schedule(now + load, ev);
            }
            Hop::UplinkArrival => {
                let bits = source.ul_frame_bits(&mut rng);
                let tx = ul_link.transmit(bits, distance, &mut rng);
                ul_blocks += u64::from(tx.blocks);
                ul_errors += u64::from(tx.first_tx_errors);
                let (_start, finish) = ul_station.serve(now, tx.duration_ms);
                ev.uplink_ms = finish - now;
                // The backhaul carries the same frame onward.
                let transfer = backhaul.transfer_ms(bits, &mut rng) + env.core_processing_ms;
                let (_bstart, bfinish) = backhaul_station.serve(finish, transfer);
                ev.backhaul_ms = bfinish - finish;
                ev.hop = Hop::EdgeArrival;
                queue.schedule(bfinish, ev);
            }
            Hop::EdgeArrival => {
                let service = edge.service_ms(&mut rng);
                let (_start, finish) = edge_station.serve(now, service);
                ev.compute_ms = finish - now;
                ev.hop = Hop::DownlinkArrival;
                queue.schedule(finish, ev);
            }
            Hop::DownlinkArrival => {
                let bits = source.dl_result_bits(&mut rng);
                let tx = dl_link.transmit(bits, distance, &mut rng);
                dl_blocks += u64::from(tx.blocks);
                dl_errors += u64::from(tx.first_tx_errors);
                let backhaul_back =
                    backhaul.transfer_ms(bits, &mut rng) * 0.25 + env.core_processing_ms * 0.5;
                let (_start, finish) = dl_station.serve(now + backhaul_back, tx.duration_ms);
                let latency = finish - ev.generated_at;
                latencies.push(latency);
                breakdown_acc.loading_ms += ev.loading_ms;
                breakdown_acc.uplink_ms += ev.uplink_ms;
                breakdown_acc.backhaul_ms += ev.backhaul_ms;
                breakdown_acc.compute_ms += ev.compute_ms;
                breakdown_acc.downlink_ms += finish - now;
                // Closed loop: the user immediately offloads the next frame.
                queue.schedule(
                    finish + 1.0,
                    FrameEvent {
                        user: ev.user,
                        hop: Hop::StartLoading,
                        generated_at: finish + 1.0,
                        loading_ms: 0.0,
                        uplink_ms: 0.0,
                        backhaul_ms: 0.0,
                        compute_ms: 0.0,
                    },
                );
            }
        }
    }

    let n = latencies.len().max(1) as f64;
    let breakdown = LatencyBreakdown {
        loading_ms: breakdown_acc.loading_ms / n,
        uplink_ms: breakdown_acc.uplink_ms / n,
        backhaul_ms: breakdown_acc.backhaul_ms / n,
        compute_ms: breakdown_acc.compute_ms / n,
        downlink_ms: breakdown_acc.downlink_ms / n,
    };

    // Network-level measurements (full 10 MHz carrier, as in Table 1),
    // computed by `measure_carrier` on its own derived RNG stream. The
    // uplink of a handset is power limited relative to the eNB; apply the
    // usual UL/DL asymmetry so the carrier-level numbers resemble a 10 MHz
    // LTE deployment.
    let CarrierMeasurement {
        ul_sat_raw,
        ul_sat_per,
        dl_sat,
        dl_sat_per,
    } = measurement;
    let ul_sat = ul_sat_raw * 0.62;

    let residual_ul_per = if ul_blocks > 0 {
        (ul_errors as f64 / ul_blocks as f64) * 0.05 + ul_sat_per * 0.02
    } else {
        ul_sat_per * 0.02
    };
    let residual_dl_per = if dl_blocks > 0 {
        (dl_errors as f64 / dl_blocks as f64) * 0.05 + dl_sat_per * 0.01
    } else {
        dl_sat_per * 0.01
    };

    let ping = 2.0 * (8.0 + env.backhaul_delay_ms + env.core_processing_ms)
        + 1.0
        + 0.5 * env.backhaul_jitter_std_ms;

    ws.latency_hint = latencies.len();
    TraceSummary {
        frames_completed: latencies.len(),
        ul_throughput_mbps: ul_sat,
        dl_throughput_mbps: dl_sat,
        ul_per: (residual_ul_per + 2e-3).min(1.0),
        dl_per: (residual_dl_per + 1e-3).min(1.0),
        ping_delay_ms: ping,
        breakdown,
        edge_utilization: edge_station.utilization(duration_ms),
        grant: GrantFractions::default(),
        latencies_ms: latencies,
    }
}

fn sample_distance<R: Rng + ?Sized>(scenario: &Scenario, rng: &mut R) -> f64 {
    match scenario.mobility {
        Mobility::Stationary => scenario.user_distance_m,
        Mobility::RandomWalk { max_distance_m } => {
            1.0 + rng.random::<f64>() * (max_distance_m - 1.0).max(0.0)
        }
    }
}

/// The offline network simulator (the NS-3 stand-in): its behaviour is
/// fully determined by the public 7-dimensional [`SimParams`] vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Simulator {
    params: SimParams,
    cache: SimCachePolicy,
}

impl Simulator {
    /// Creates a simulator with the given simulation parameters and the
    /// default cache policy ([`SimCachePolicy::Memoize`] — the simulator
    /// serves the accel/residual query path, where exact repeats recur).
    pub fn new(params: SimParams) -> Self {
        Self {
            params,
            cache: SimCachePolicy::default(),
        }
    }

    /// Creates a simulator with the original, specification-derived
    /// parameters (the "Original Simulator" row of Table 4).
    pub fn with_original_params() -> Self {
        Self::new(SimParams::original())
    }

    /// The simulation parameters currently in use.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Replaces the simulation parameters (used by the learning-based
    /// simulator stage once better parameters are found).
    pub fn set_params(&mut self, params: SimParams) {
        self.params = params;
    }

    /// Replaces the cache policy. Results are bit-identical for every
    /// policy — [`SimCachePolicy::Off`] pins the historical uncached path
    /// for comparison.
    pub fn with_cache_policy(mut self, cache: SimCachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// The cache policy in use.
    pub fn cache_policy(&self) -> SimCachePolicy {
        self.cache
    }

    /// Runs one measurement of the slice under `config` in `scenario`.
    pub fn run(&self, config: &SliceConfig, scenario: &Scenario) -> TraceSummary {
        let env = LinkEnvironment::from_sim_params(&self.params);
        run_end_to_end_cached(&env, config, scenario, self.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_scenario(seed: u64) -> Scenario {
        Scenario::default_with_seed(seed).with_duration(20.0)
    }

    fn decent_config() -> SliceConfig {
        SliceConfig {
            bandwidth_ul: 10.0,
            bandwidth_dl: 5.0,
            mcs_offset_ul: 0.0,
            mcs_offset_dl: 0.0,
            backhaul_bw: 10.0,
            cpu_ratio: 0.8,
        }
    }

    #[test]
    fn simulator_is_deterministic_for_a_seed() {
        let sim = Simulator::with_original_params();
        let a = sim.run(&decent_config(), &quick_scenario(3));
        let b = sim.run(&decent_config(), &quick_scenario(3));
        assert_eq!(a.latencies_ms, b.latencies_ms);
        assert_eq!(a.frames_completed, b.frames_completed);
        let c = sim.run(&decent_config(), &quick_scenario(4));
        assert_ne!(a.latencies_ms, c.latencies_ms);
    }

    #[test]
    fn frames_complete_and_latencies_are_positive() {
        let sim = Simulator::with_original_params();
        let out = sim.run(&decent_config(), &quick_scenario(1));
        assert!(out.frames_completed > 20, "frames {}", out.frames_completed);
        assert!(out.latencies_ms.iter().all(|l| *l > 0.0 && l.is_finite()));
        assert!(out.mean_latency_ms() > 50.0 && out.mean_latency_ms() < 2000.0);
    }

    #[test]
    fn latency_increases_with_user_traffic() {
        let sim = Simulator::with_original_params();
        let cfg = decent_config();
        let one = sim.run(&cfg, &quick_scenario(5).with_traffic(1));
        let four = sim.run(&cfg, &quick_scenario(5).with_traffic(4));
        assert!(
            four.mean_latency_ms() > one.mean_latency_ms() * 1.5,
            "traffic 4 latency {} should exceed traffic 1 latency {}",
            four.mean_latency_ms(),
            one.mean_latency_ms()
        );
    }

    #[test]
    fn more_cpu_reduces_latency() {
        let sim = Simulator::with_original_params();
        let mut starved = decent_config();
        starved.cpu_ratio = 0.3;
        let mut generous = decent_config();
        generous.cpu_ratio = 1.0;
        let slow = sim.run(&starved, &quick_scenario(6));
        let fast = sim.run(&generous, &quick_scenario(6));
        assert!(slow.mean_latency_ms() > fast.mean_latency_ms() * 1.5);
    }

    #[test]
    fn more_uplink_prbs_reduce_latency_when_radio_limited() {
        let sim = Simulator::with_original_params();
        let mut narrow = decent_config();
        narrow.bandwidth_ul = 2.0;
        let mut wide = decent_config();
        wide.bandwidth_ul = 30.0;
        let slow = sim.run(&narrow, &quick_scenario(7));
        let fast = sim.run(&wide, &quick_scenario(7));
        assert!(slow.mean_latency_ms() > fast.mean_latency_ms());
    }

    #[test]
    fn qoe_is_monotone_in_threshold_and_bounded() {
        let sim = Simulator::with_original_params();
        let out = sim.run(&decent_config(), &quick_scenario(8));
        let q200 = out.qoe(200.0);
        let q400 = out.qoe(400.0);
        assert!((0.0..=1.0).contains(&q200));
        assert!((0.0..=1.0).contains(&q400));
        assert!(q400 >= q200);
    }

    #[test]
    fn simulation_parameters_shift_latency() {
        let base = Simulator::with_original_params();
        let mut slowed_params = SimParams::original();
        slowed_params.compute_time = 10.0;
        slowed_params.backhaul_delay = 10.0;
        slowed_params.loading_time = 10.0;
        let slowed = Simulator::new(slowed_params);
        let cfg = decent_config();
        let a = base.run(&cfg, &quick_scenario(9));
        let b = slowed.run(&cfg, &quick_scenario(9));
        assert!(
            b.mean_latency_ms() > a.mean_latency_ms() + 15.0,
            "slowed {} vs base {}",
            b.mean_latency_ms(),
            a.mean_latency_ms()
        );
    }

    #[test]
    fn higher_baseline_loss_reduces_throughput() {
        let base = Simulator::with_original_params();
        let mut lossy_params = SimParams::original();
        lossy_params.baseline_loss = 50.0;
        lossy_params.enb_noise_figure = 10.0;
        let lossy = Simulator::new(lossy_params);
        let cfg = decent_config();
        let scenario = quick_scenario(10).with_distance(10.0);
        let a = base.run(&cfg, &scenario);
        let b = lossy.run(&cfg, &scenario);
        assert!(b.ul_throughput_mbps < a.ul_throughput_mbps);
    }

    #[test]
    fn table1_style_metrics_are_in_plausible_ranges() {
        let sim = Simulator::with_original_params();
        let out = sim.run(&SliceConfig::default_generous(), &quick_scenario(11));
        assert!(out.ul_throughput_mbps > 5.0 && out.ul_throughput_mbps < 50.0);
        assert!(out.dl_throughput_mbps > 10.0 && out.dl_throughput_mbps < 80.0);
        assert!(out.dl_throughput_mbps > out.ul_throughput_mbps);
        assert!(out.ul_per > 0.0 && out.ul_per < 0.1);
        assert!(out.dl_per > 0.0 && out.dl_per < 0.1);
        assert!(out.ping_delay_ms > 5.0 && out.ping_delay_ms < 100.0);
    }

    #[test]
    fn breakdown_sums_roughly_to_total_latency() {
        let sim = Simulator::with_original_params();
        let out = sim.run(&decent_config(), &quick_scenario(12));
        let b = out.breakdown;
        let sum = b.loading_ms + b.uplink_ms + b.backhaul_ms + b.compute_ms + b.downlink_ms;
        let mean = out.mean_latency_ms();
        assert!(
            (sum - mean).abs() < 0.3 * mean,
            "breakdown sum {sum} vs mean latency {mean}"
        );
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let env = LinkEnvironment::from_sim_params(&SimParams::original());
        let cfg = decent_config();
        let mut ws = SimWorkspace::new();
        // Runs of different sizes through one workspace: each must equal
        // a fresh-workspace run bit for bit.
        for (seed, traffic) in [(20, 4), (21, 1), (22, 2)] {
            let scenario = quick_scenario(seed).with_traffic(traffic);
            let fresh = run_end_to_end(&env, &cfg, &scenario);
            let reused = run_end_to_end_in(&env, &cfg, &scenario, &mut ws);
            assert_eq!(fresh, reused, "seed {seed}");
        }
    }

    #[test]
    fn cache_policies_are_pure_performance_transforms() {
        let cfg = decent_config();
        let scenario = quick_scenario(30).with_traffic(2);
        let off = Simulator::with_original_params().with_cache_policy(SimCachePolicy::Off);
        let expected = off.run(&cfg, &scenario);
        for policy in [SimCachePolicy::Measurement, SimCachePolicy::Memoize] {
            let sim = Simulator::with_original_params().with_cache_policy(policy);
            assert_eq!(sim.run(&cfg, &scenario), expected, "{policy:?} cold");
            // Second run exercises the hit path of every enabled layer.
            assert_eq!(sim.run(&cfg, &scenario), expected, "{policy:?} warm");
        }
        assert_eq!(off.cache_policy(), SimCachePolicy::Off);
        assert_eq!(
            Simulator::with_original_params().cache_policy(),
            SimCachePolicy::Memoize
        );
    }

    #[test]
    fn edge_utilization_grows_with_traffic() {
        let sim = Simulator::with_original_params();
        let cfg = decent_config();
        let light = sim.run(&cfg, &quick_scenario(13).with_traffic(1));
        let heavy = sim.run(&cfg, &quick_scenario(13).with_traffic(4));
        assert!(heavy.edge_utilization > light.edge_utilization);
        assert!(heavy.edge_utilization <= 1.0);
    }
}
