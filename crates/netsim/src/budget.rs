//! Finite resource budgets and cross-slice contention.
//!
//! PR 3's [`crate::SharedTestbed`] granted every concurrent slice its
//! configured resources unconditionally — slices shared the evaluation
//! engine but never the substrate. Real slices share *finite*
//! infrastructure: one carrier's PRBs, one metered backhaul, one edge
//! server's CPU shares (cf. ONAP-style 5G slice deployment,
//! arXiv:1907.02278). This module models that substrate:
//!
//! * [`ResourceBudget`] — the testbed's per-dimension capacity (UL/DL
//!   PRBs, backhaul Mbps, edge CPU shares). [`ResourceBudget::unlimited`]
//!   reproduces the uncontended PR 3 behaviour bit-for-bit.
//! * [`ContentionPolicy`] — how an over-subscribed dimension's capacity is
//!   split among the concurrent demands. [`ProportionalFair`] (the
//!   default) scales every demand by the same factor; [`MaxMinFair`]
//!   water-fills so small demands are served in full first.
//! * [`grant_round`] — applies the policy per dimension to one round of
//!   concurrent configuration requests; deterministic and independent of
//!   any evaluation threading.
//! * [`GrantFractions`] — the granted-vs-requested gap of one measurement,
//!   surfaced through `TraceSummary`.
//!
//! MCS offsets are robustness knobs, not substrate resources; they pass
//! through granting untouched.

use crate::config::SliceConfig;

/// Number of contended resource dimensions (UL PRBs, DL PRBs, backhaul
/// Mbps, CPU shares).
pub const RESOURCE_DIMS: usize = 4;

/// The finite per-dimension capacity of a shared testbed.
///
/// An infinite capacity means that dimension never contends. Slices'
/// demands are taken from their [`SliceConfig`]s: `bandwidth_ul`,
/// `bandwidth_dl`, `backhaul_bw` and `cpu_ratio` in that order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceBudget {
    /// Total uplink PRBs available across all concurrent slices.
    pub ul_prbs: f64,
    /// Total downlink PRBs available across all concurrent slices.
    pub dl_prbs: f64,
    /// Total backhaul bandwidth in Mbps across all concurrent slices.
    pub backhaul_mbps: f64,
    /// Total edge CPU shares across all concurrent slices (each slice's
    /// `cpu_ratio` claims up to 1.0 of a share).
    pub cpu_shares: f64,
}

impl ResourceBudget {
    /// An infinite budget: no dimension ever contends. A testbed with this
    /// budget behaves bit-for-bit like the pre-budget `SharedTestbed`.
    pub fn unlimited() -> Self {
        Self {
            ul_prbs: f64::INFINITY,
            dl_prbs: f64::INFINITY,
            backhaul_mbps: f64::INFINITY,
            cpu_shares: f64::INFINITY,
        }
    }

    /// The default physical substrate of the reproduction's testbed: one
    /// 10 MHz LTE carrier (50 PRBs each way), a 100 Mbps metered backhaul
    /// and a 4-core edge server.
    pub fn carrier_default() -> Self {
        Self {
            ul_prbs: crate::config::TOTAL_PRBS,
            dl_prbs: crate::config::TOTAL_PRBS,
            backhaul_mbps: crate::config::MAX_BACKHAUL_MBPS,
            cpu_shares: 4.0,
        }
    }

    /// Scales every finite dimension by `factor` (tightness knob for
    /// contention studies; infinite dimensions stay infinite).
    pub fn scaled(mut self, factor: f64) -> Self {
        for c in [
            &mut self.ul_prbs,
            &mut self.dl_prbs,
            &mut self.backhaul_mbps,
            &mut self.cpu_shares,
        ] {
            if c.is_finite() {
                *c *= factor;
            }
        }
        self
    }

    /// Whether every dimension is infinite (no contention possible).
    pub fn is_unlimited(&self) -> bool {
        self.capacities().iter().all(|c| c.is_infinite())
    }

    /// Per-dimension capacities in demand order (UL PRBs, DL PRBs,
    /// backhaul Mbps, CPU shares).
    pub fn capacities(&self) -> [f64; RESOURCE_DIMS] {
        [
            self.ul_prbs,
            self.dl_prbs,
            self.backhaul_mbps,
            self.cpu_shares,
        ]
    }

    /// The per-dimension demand a configuration places on the budget.
    pub fn demand_of(config: &SliceConfig) -> [f64; RESOURCE_DIMS] {
        [
            config.bandwidth_ul,
            config.bandwidth_dl,
            config.backhaul_bw,
            config.cpu_ratio,
        ]
    }

    /// Per-dimension occupancy of a set of concurrent demands: summed
    /// demand over capacity (0 for infinite dimensions). Values above 1
    /// mean the dimension is over-subscribed and grants will be scaled.
    pub fn occupancy(&self, demands: &[SliceConfig]) -> [f64; RESOURCE_DIMS] {
        let capacities = self.capacities();
        let mut occ = [0.0; RESOURCE_DIMS];
        for config in demands {
            let d = Self::demand_of(config);
            for (o, (demand, capacity)) in occ.iter_mut().zip(d.iter().zip(capacities.iter())) {
                if capacity.is_finite() && *capacity > 0.0 {
                    *o += demand / capacity;
                }
            }
        }
        occ
    }

    /// The most-occupied dimension's occupancy (the admission-relevant
    /// scalar).
    pub fn max_occupancy(&self, demands: &[SliceConfig]) -> f64 {
        self.occupancy(demands).into_iter().fold(0.0f64, f64::max)
    }
}

impl Default for ResourceBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// How one over-subscribed resource dimension's capacity is split among
/// concurrent demands.
///
/// Implementations must be **deterministic** (grants are computed once per
/// round, before any evaluation fan-out, so results are identical for every
/// thread count) and must never grant more than requested or more than the
/// capacity in total when the dimension is over-subscribed.
pub trait ContentionPolicy: Sync {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Splits `capacity` among `requested` demands, returning one grant per
    /// demand. Called only when `sum(requested) > capacity` and `capacity`
    /// is finite; the uncontended case is short-circuited by
    /// [`grant_round`].
    fn split(&self, requested: &[f64], capacity: f64) -> Vec<f64>;
}

/// Proportional-fair contention: every demand is scaled by the same factor
/// `capacity / total_demand`, so each slice keeps the same *share* of its
/// request. The default policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProportionalFair;

impl ContentionPolicy for ProportionalFair {
    fn name(&self) -> &'static str {
        "proportional-fair"
    }

    fn split(&self, requested: &[f64], capacity: f64) -> Vec<f64> {
        let total: f64 = requested.iter().sum();
        if total <= capacity || total <= 0.0 {
            return requested.to_vec();
        }
        let scale = capacity / total;
        requested.iter().map(|r| r * scale).collect()
    }
}

/// Max-min fair (water-filling) contention: the capacity is split evenly,
/// demands below their even share are served in full, and the slack is
/// redistributed among the still-unsatisfied demands until none remains.
/// Small slices are insulated from large ones at the price of deeper cuts
/// to the largest demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaxMinFair;

impl ContentionPolicy for MaxMinFair {
    fn name(&self) -> &'static str {
        "max-min-fair"
    }

    fn split(&self, requested: &[f64], capacity: f64) -> Vec<f64> {
        let total: f64 = requested.iter().sum();
        if total <= capacity || total <= 0.0 {
            return requested.to_vec();
        }
        let mut grants = vec![0.0; requested.len()];
        let mut unsatisfied: Vec<usize> = (0..requested.len()).collect();
        let mut remaining = capacity;
        // Each pass serves every demand at or below the fair share in full
        // and removes it; at most `n` passes before only demands above the
        // share remain, which then split the rest evenly.
        loop {
            let share = remaining / unsatisfied.len() as f64;
            let (below, above): (Vec<usize>, Vec<usize>) = unsatisfied
                .iter()
                .partition(|&&i| requested[i] <= share + 1e-12);
            if below.is_empty() {
                for &i in &above {
                    grants[i] = share;
                }
                break;
            }
            for &i in &below {
                grants[i] = requested[i];
                remaining -= requested[i];
            }
            if above.is_empty() {
                break;
            }
            unsatisfied = above;
        }
        grants
    }
}

/// Grants one round of concurrent configuration requests against a budget:
/// per resource dimension, demands that fit are granted verbatim and
/// over-subscribed dimensions are split by `policy`. MCS offsets pass
/// through untouched. Uncontended rounds return the requests bit-for-bit.
pub fn grant_round<P: ContentionPolicy>(
    budget: &ResourceBudget,
    policy: &P,
    requested: &[SliceConfig],
) -> Vec<SliceConfig> {
    let mut granted = requested.to_vec();
    if requested.is_empty() || budget.is_unlimited() {
        return granted;
    }
    for (dim, capacity) in budget.capacities().into_iter().enumerate() {
        if !capacity.is_finite() {
            continue;
        }
        let demands: Vec<f64> = requested
            .iter()
            .map(|c| ResourceBudget::demand_of(c)[dim])
            .collect();
        if demands.iter().sum::<f64>() <= capacity {
            continue;
        }
        let grants = policy.split(&demands, capacity);
        assert_eq!(
            grants.len(),
            demands.len(),
            "contention policy {:?} returned {} grants for {} demands",
            policy.name(),
            grants.len(),
            demands.len()
        );
        for (config, grant) in granted.iter_mut().zip(grants) {
            match dim {
                0 => config.bandwidth_ul = grant,
                1 => config.bandwidth_dl = grant,
                2 => config.backhaul_bw = grant,
                _ => config.cpu_ratio = grant,
            }
        }
    }
    granted
}

/// Granted-over-requested fraction per resource dimension for one
/// measurement (all 1.0 for uncontended runs). Surfaced through
/// `TraceSummary::grant` by budget-aware batch entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrantFractions {
    /// Fraction of the requested uplink PRBs granted.
    pub ul_prbs: f64,
    /// Fraction of the requested downlink PRBs granted.
    pub dl_prbs: f64,
    /// Fraction of the requested backhaul bandwidth granted.
    pub backhaul_mbps: f64,
    /// Fraction of the requested CPU share granted.
    pub cpu_shares: f64,
}

impl GrantFractions {
    /// Computes the fractions between a requested and a granted
    /// configuration (1.0 where nothing was requested).
    pub fn of(requested: &SliceConfig, granted: &SliceConfig) -> Self {
        let req = ResourceBudget::demand_of(requested);
        let got = ResourceBudget::demand_of(granted);
        let frac = |i: usize| if req[i] > 0.0 { got[i] / req[i] } else { 1.0 };
        Self {
            ul_prbs: frac(0),
            dl_prbs: frac(1),
            backhaul_mbps: frac(2),
            cpu_shares: frac(3),
        }
    }

    /// The worst (smallest) per-dimension fraction.
    pub fn min(&self) -> f64 {
        self.ul_prbs
            .min(self.dl_prbs)
            .min(self.backhaul_mbps)
            .min(self.cpu_shares)
    }

    /// Whether the full request was granted in every dimension.
    pub fn is_full(&self) -> bool {
        self.min() >= 1.0 - 1e-12
    }
}

impl Default for GrantFractions {
    fn default() -> Self {
        Self {
            ul_prbs: 1.0,
            dl_prbs: 1.0,
            backhaul_mbps: 1.0,
            cpu_shares: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ul: f64, dl: f64, bh: f64, cpu: f64) -> SliceConfig {
        SliceConfig {
            bandwidth_ul: ul,
            bandwidth_dl: dl,
            mcs_offset_ul: 1.0,
            mcs_offset_dl: 2.0,
            backhaul_bw: bh,
            cpu_ratio: cpu,
        }
    }

    #[test]
    fn unlimited_budget_grants_requests_verbatim() {
        let budget = ResourceBudget::unlimited();
        assert!(budget.is_unlimited());
        let requested = vec![cfg(40.0, 45.0, 90.0, 1.0); 8];
        let granted = grant_round(&budget, &ProportionalFair, &requested);
        assert_eq!(granted, requested);
        assert_eq!(budget.max_occupancy(&requested), 0.0);
    }

    #[test]
    fn proportional_fair_scales_oversubscribed_dimensions_only() {
        let budget = ResourceBudget::carrier_default();
        // UL over-subscribed 2x; DL, backhaul and CPU fit.
        let requested = vec![cfg(40.0, 10.0, 20.0, 0.5), cfg(60.0, 10.0, 20.0, 0.5)];
        let granted = grant_round(&budget, &ProportionalFair, &requested);
        assert!((granted[0].bandwidth_ul - 20.0).abs() < 1e-9);
        assert!((granted[1].bandwidth_ul - 30.0).abs() < 1e-9);
        // Untouched dimensions (including MCS offsets) pass through.
        assert_eq!(granted[0].bandwidth_dl, 10.0);
        assert_eq!(granted[0].backhaul_bw, 20.0);
        assert_eq!(granted[0].cpu_ratio, 0.5);
        assert_eq!(granted[0].mcs_offset_ul, 1.0);
        assert_eq!(granted[1].mcs_offset_dl, 2.0);
    }

    #[test]
    fn max_min_fair_waterfills() {
        let grants = MaxMinFair.split(&[2.0, 10.0, 10.0], 12.0);
        // The small demand is served in full; the two big ones split the rest.
        assert!((grants[0] - 2.0).abs() < 1e-9);
        assert!((grants[1] - 5.0).abs() < 1e-9);
        assert!((grants[2] - 5.0).abs() < 1e-9);
        // Uncontended: verbatim.
        assert_eq!(MaxMinFair.split(&[1.0, 2.0], 12.0), vec![1.0, 2.0]);
        assert_eq!(MaxMinFair.name(), "max-min-fair");
        assert_eq!(ProportionalFair.name(), "proportional-fair");
    }

    #[test]
    fn occupancy_sums_demands_per_dimension() {
        let budget = ResourceBudget::carrier_default();
        let demands = vec![cfg(25.0, 25.0, 50.0, 1.0), cfg(25.0, 25.0, 50.0, 1.0)];
        let occ = budget.occupancy(&demands);
        assert!((occ[0] - 1.0).abs() < 1e-12);
        assert!((occ[1] - 1.0).abs() < 1e-12);
        assert!((occ[2] - 1.0).abs() < 1e-12);
        assert!((occ[3] - 0.5).abs() < 1e-12);
        assert!((budget.max_occupancy(&demands) - 1.0).abs() < 1e-12);
        // Tightening the budget doubles occupancy.
        let tight = budget.scaled(0.5);
        assert!((tight.max_occupancy(&demands) - 2.0).abs() < 1e-12);
        // Scaling an unlimited budget keeps it unlimited.
        assert!(ResourceBudget::unlimited().scaled(0.5).is_unlimited());
    }

    #[test]
    fn grant_fractions_report_the_gap() {
        let requested = cfg(40.0, 10.0, 20.0, 0.8);
        let mut granted = requested;
        granted.bandwidth_ul = 20.0;
        granted.cpu_ratio = 0.4;
        let g = GrantFractions::of(&requested, &granted);
        assert!((g.ul_prbs - 0.5).abs() < 1e-12);
        assert_eq!(g.dl_prbs, 1.0);
        assert!((g.cpu_shares - 0.5).abs() < 1e-12);
        assert!((g.min() - 0.5).abs() < 1e-12);
        assert!(!g.is_full());
        assert!(GrantFractions::default().is_full());
        // Zero requests count as fully granted.
        let zero = cfg(0.0, 0.0, 0.0, 0.0);
        assert!(GrantFractions::of(&zero, &zero).is_full());
    }
}
