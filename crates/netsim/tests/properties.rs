//! Property-based tests of the network-simulator invariants.

use atlas_netsim::{
    RealNetwork, Scenario, SharedTestbed, SimCachePolicy, SimParams, Simulator, SliceConfig,
};
use proptest::prelude::*;

fn arbitrary_config() -> impl Strategy<Value = SliceConfig> {
    (
        0.0..50.0f64,
        0.0..50.0f64,
        0.0..10.0f64,
        0.0..10.0f64,
        0.0..100.0f64,
        0.0..1.0f64,
    )
        .prop_map(|(ul, dl, mu, md, bh, cpu)| SliceConfig::from_vec(&[ul, dl, mu, md, bh, cpu]))
}

fn arbitrary_params() -> impl Strategy<Value = SimParams> {
    (
        30.0..50.0f64,
        0.0..10.0f64,
        0.0..15.0f64,
        0.0..10.0f64,
        0.0..10.0f64,
        0.0..10.0f64,
        0.0..10.0f64,
    )
        .prop_map(|(bl, enb, ue, bw, d, c, l)| SimParams::from_vec(&[bl, enb, ue, bw, d, c, l]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn config_roundtrips_and_usage_is_bounded(config in arbitrary_config()) {
        let v = config.to_vec();
        prop_assert_eq!(SliceConfig::from_vec(&v), config);
        let usage = config.resource_usage();
        prop_assert!((0.0..=1.0).contains(&usage));
        let unit = config.to_unit();
        prop_assert!(unit.iter().all(|u| (0.0..=1.0).contains(u)));
        // The connectivity floor never decreases any allocation.
        let floored = config.with_connectivity_floor();
        prop_assert!(floored.bandwidth_ul >= config.bandwidth_ul);
        prop_assert!(floored.bandwidth_dl >= config.bandwidth_dl);
        prop_assert!(floored.resource_usage() + 1e-12 >= usage);
    }

    #[test]
    fn sim_params_distance_is_a_metric_to_reference(params in arbitrary_params()) {
        let original = SimParams::original();
        let d = params.distance_from(&original);
        prop_assert!(d >= 0.0 && d.is_finite());
        prop_assert_eq!(params.distance_from(&params), 0.0);
        // Symmetry.
        prop_assert!((d - original.distance_from(&params)).abs() < 1e-12);
    }

    #[test]
    fn simulator_always_produces_finite_positive_latencies(
        config in arbitrary_config(),
        params in arbitrary_params(),
        seed in 0u64..500,
        traffic in 1u32..4,
    ) {
        let scenario = Scenario::default_with_seed(seed)
            .with_duration(4.0)
            .with_traffic(traffic);
        let trace = Simulator::new(params).run(&config.with_connectivity_floor(), &scenario);
        prop_assert!(trace.frames_completed > 0);
        prop_assert!(trace.latencies_ms.iter().all(|l| l.is_finite() && *l > 0.0));
        prop_assert!((0.0..=1.0).contains(&trace.qoe(300.0)));
        prop_assert!(trace.qoe(5000.0) >= trace.qoe(100.0));
        prop_assert!(trace.ul_per >= 0.0 && trace.ul_per <= 1.0);
        prop_assert!(trace.dl_per >= 0.0 && trace.dl_per <= 1.0);
        prop_assert!(trace.edge_utilization >= 0.0 && trace.edge_utilization <= 1.0);
    }

    #[test]
    fn real_network_is_deterministic_per_seed(config in arbitrary_config(), seed in 0u64..200) {
        let scenario = Scenario::default_with_seed(seed).with_duration(4.0);
        let cfg = config.with_connectivity_floor();
        let a = RealNetwork::prototype().run(&cfg, &scenario);
        let b = RealNetwork::prototype().run(&cfg, &scenario);
        prop_assert_eq!(a.latencies_ms, b.latencies_ms);
        prop_assert_eq!(a.frames_completed, b.frames_completed);
    }

    // The cache layers (measurement cache, workspace reuse, memoization)
    // are pure performance transforms: every TraceSummary field is
    // bit-identical to the uncached path, on the first (cold) run and on
    // repeats served from warm caches.
    #[test]
    fn cached_simulation_is_bit_identical_to_uncached(
        config in arbitrary_config(),
        params in arbitrary_params(),
        seed in 0u64..500,
        traffic in 1u32..4,
    ) {
        let scenario = Scenario::default_with_seed(seed)
            .with_duration(3.0)
            .with_traffic(traffic);
        let cfg = config.with_connectivity_floor();

        let sim_off = Simulator::new(params).with_cache_policy(SimCachePolicy::Off);
        let baseline = sim_off.run(&cfg, &scenario);
        for policy in [SimCachePolicy::Measurement, SimCachePolicy::Memoize] {
            let sim = Simulator::new(params).with_cache_policy(policy);
            // Twice: the second run hits the measurement cache (and, under
            // Memoize, the memo) filled by the first.
            prop_assert_eq!(&sim.run(&cfg, &scenario), &baseline);
            prop_assert_eq!(&sim.run(&cfg, &scenario), &baseline);
        }

        let real_off = RealNetwork::prototype().with_cache_policy(SimCachePolicy::Off);
        let real_baseline = real_off.run(&cfg, &scenario);
        for policy in [SimCachePolicy::Measurement, SimCachePolicy::Memoize] {
            let real = RealNetwork::prototype().with_cache_policy(policy);
            prop_assert_eq!(&real.run(&cfg, &scenario), &real_baseline);
            prop_assert_eq!(&real.run(&cfg, &scenario), &real_baseline);
        }
    }

    // Batch-level dedup (identical granted jobs simulate once and fan the
    // result out) never changes results, at any worker-thread count, with
    // or without deliberately duplicated jobs in the batch.
    #[test]
    fn batched_dedup_matches_sequential_runs(
        configs in proptest::collection::vec(arbitrary_config(), 1..5),
        seed in 0u64..200,
        duplicate in (0u32..2).prop_map(|b| b == 1),
    ) {
        let mut jobs: Vec<(SliceConfig, Scenario)> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let scenario = Scenario::default_with_seed(seed + i as u64).with_duration(2.0);
                (c.with_connectivity_floor(), scenario)
            })
            .collect();
        if duplicate {
            // Repeat the first job at the back so the dedup path triggers.
            jobs.push(jobs[0]);
        }
        let reference: Vec<_> = {
            let testbed =
                SharedTestbed::new(RealNetwork::prototype().with_cache_policy(SimCachePolicy::Off));
            let granted = testbed.grant(&jobs.iter().map(|(c, _)| *c).collect::<Vec<_>>());
            granted
                .iter()
                .zip(&jobs)
                .map(|(g, (r, s))| {
                    let mut trace = testbed.network().run(g, s);
                    trace.grant = atlas_netsim::GrantFractions::of(r, g);
                    trace
                })
                .collect()
        };
        for threads in [1usize, 2, 4, 8] {
            let testbed =
                SharedTestbed::new(RealNetwork::prototype()).with_threads(threads);
            let batched = testbed.run_batch(&jobs);
            prop_assert_eq!(&batched, &reference, "threads = {}", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Contention-policy invariants: grants never exceed the request, never
    // exceed the capacity in total when over-subscribed, and an unlimited
    // budget is a bit-for-bit no-op.
    #[test]
    fn contention_grants_are_feasible(
        configs in proptest::collection::vec(arbitrary_config(), 1..10),
        tightness in 0.2..2.0f64,
    ) {
        let budget = atlas_netsim::ResourceBudget::carrier_default().scaled(tightness);
        for granted in [
            atlas_netsim::budget::grant_round(&budget, &atlas_netsim::ProportionalFair, &configs),
            atlas_netsim::budget::grant_round(&budget, &atlas_netsim::MaxMinFair, &configs),
        ] {
            prop_assert_eq!(granted.len(), configs.len());
            let capacities = budget.capacities();
            let mut totals = [0.0f64; atlas_netsim::RESOURCE_DIMS];
            for (g, r) in granted.iter().zip(&configs) {
                let gd = atlas_netsim::ResourceBudget::demand_of(g);
                let rd = atlas_netsim::ResourceBudget::demand_of(r);
                for dim in 0..atlas_netsim::RESOURCE_DIMS {
                    prop_assert!(gd[dim] <= rd[dim] + 1e-9, "grant exceeds request");
                    prop_assert!(gd[dim] >= 0.0);
                    totals[dim] += gd[dim];
                }
                // MCS offsets pass through untouched.
                prop_assert_eq!(g.mcs_offset_ul, r.mcs_offset_ul);
                prop_assert_eq!(g.mcs_offset_dl, r.mcs_offset_dl);
            }
            for dim in 0..atlas_netsim::RESOURCE_DIMS {
                let requested_total: f64 = configs
                    .iter()
                    .map(|c| atlas_netsim::ResourceBudget::demand_of(c)[dim])
                    .sum();
                prop_assert!(
                    totals[dim] <= capacities[dim].min(requested_total) + 1e-6,
                    "dim {} total {} over capacity {}", dim, totals[dim], capacities[dim]
                );
            }
        }
        // Unlimited budget: bit-for-bit identity.
        let free = atlas_netsim::budget::grant_round(
            &atlas_netsim::ResourceBudget::unlimited(),
            &atlas_netsim::ProportionalFair,
            &configs,
        );
        prop_assert_eq!(free, configs);
    }
}
