//! # atlas-nn
//!
//! A small, dependency-light neural-network library written for the Atlas
//! reproduction:
//!
//! * [`mlp::Mlp`] — a deterministic feed-forward regression network with
//!   manual back-propagation (used by the DLDA baseline and as the
//!   materialised form of Bayesian weight draws).
//! * [`bayes::Bnn`] — a Bayesian neural network trained with
//!   Bayes-by-Backprop (Eq. 3–4 of the paper), supporting Monte-Carlo
//!   predictive uncertainty and single-draw Thompson sampling.
//! * [`optim`] — SGD, Adam and Adadelta optimisers plus a StepLR schedule
//!   (the paper's training setup).
//! * [`data`] — z-score feature/target scaling and mini-batching.
//!
//! Everything is seedable and deterministic; no BLAS or GPU is required.
//!
//! ## Quick start
//!
//! ```
//! use atlas_math::rng::seeded_rng;
//! use atlas_nn::{Bnn, BnnConfig};
//!
//! let mut rng = seeded_rng(7);
//! let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 / 31.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0]).collect();
//! let mut bnn = Bnn::new(1, BnnConfig { hidden: [8, 8, 0, 0], ..BnnConfig::default() }, &mut rng);
//! bnn.fit_epochs(&xs, &ys, 20, &mut rng);
//! let mean = bnn.predict_mean(&[0.5]);
//! assert!(mean.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod bayes;
pub mod data;
pub mod dense;
pub mod mlp;
pub mod optim;

pub use activation::Activation;
pub use bayes::{Bnn, BnnConfig};
pub use data::Scaler;
pub use mlp::Mlp;
pub use optim::{Adadelta, Adam, Optimizer, Sgd, StepLr};
