//! # atlas-nn
//!
//! A small, dependency-light neural-network library written for the Atlas
//! reproduction:
//!
//! * [`mlp::Mlp`] — a deterministic feed-forward regression network with
//!   manual back-propagation (used by the DLDA baseline and as the
//!   materialised form of Bayesian weight draws).
//! * [`bayes::Bnn`] — a Bayesian neural network trained with
//!   Bayes-by-Backprop (Eq. 3–4 of the paper), supporting Monte-Carlo
//!   predictive uncertainty and single-draw Thompson sampling.
//! * [`optim`] — SGD, Adam and Adadelta optimisers plus a StepLR schedule
//!   (the paper's training setup).
//! * [`data`] — z-score feature/target scaling and mini-batching.
//!
//! Everything is seedable and deterministic; no BLAS or GPU is required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod bayes;
pub mod data;
pub mod dense;
pub mod mlp;
pub mod optim;

pub use activation::Activation;
pub use bayes::{Bnn, BnnConfig};
pub use data::Scaler;
pub use mlp::Mlp;
pub use optim::{Adadelta, Adam, Optimizer, Sgd, StepLr};
