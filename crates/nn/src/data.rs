//! Feature/target scaling and mini-batching helpers.

use atlas_math::stats;
use rand::seq::SliceRandom;
use rand::Rng;

/// Per-dimension z-score scaler (`(x − mean) / std`).
///
/// Mirrors scikit-learn's `StandardScaler`; the paper normalises GP targets
/// "by removing the mean and scaling to unit variance", and the BNN inputs
/// benefit from the same treatment.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fits a scaler to a set of feature vectors (one `Vec<f64>` per row).
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "Scaler::fit requires at least one row");
        let dim = rows[0].len();
        let mut means = vec![0.0; dim];
        let mut stds = vec![1.0; dim];
        for d in 0..dim {
            let column: Vec<f64> = rows.iter().map(|r| r[d]).collect();
            means[d] = stats::mean(&column);
            let s = stats::std_dev(&column);
            stds[d] = if s > 1e-12 { s } else { 1.0 };
        }
        Self { means, stds }
    }

    /// Fits a scaler to scalar targets.
    pub fn fit_scalar(values: &[f64]) -> Self {
        Self::fit(&values.iter().map(|v| vec![*v]).collect::<Vec<_>>())
    }

    /// Transforms one row.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(x, (m, s))| (x - m) / s)
            .collect()
    }

    /// Transforms many rows.
    pub fn transform_batch(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Inverse-transforms one row.
    pub fn inverse(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(x, (m, s))| x * s + m)
            .collect()
    }

    /// Transforms a scalar (first dimension).
    pub fn transform_scalar(&self, value: f64) -> f64 {
        (value - self.means[0]) / self.stds[0]
    }

    /// Inverse-transforms a scalar (first dimension).
    pub fn inverse_scalar(&self, value: f64) -> f64 {
        value * self.stds[0] + self.means[0]
    }

    /// Scale (standard deviation) of the first dimension.
    pub fn scale(&self) -> f64 {
        self.stds[0]
    }
}

/// Splits `(X, y)` into shuffled mini-batches of at most `batch_size` rows.
pub fn mini_batches<R: Rng + ?Sized>(
    inputs: &[Vec<f64>],
    targets: &[f64],
    batch_size: usize,
    rng: &mut R,
) -> Vec<(Vec<Vec<f64>>, Vec<f64>)> {
    assert_eq!(
        inputs.len(),
        targets.len(),
        "inputs/targets length mismatch"
    );
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    order.shuffle(rng);
    let batch_size = batch_size.max(1);
    order
        .chunks(batch_size)
        .map(|chunk| {
            (
                chunk.iter().map(|&i| inputs[i].clone()).collect(),
                chunk.iter().map(|&i| targets[i]).collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;

    #[test]
    fn scaler_roundtrips() {
        let rows = vec![vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]];
        let scaler = Scaler::fit(&rows);
        let t = scaler.transform(&rows[0]);
        let back = scaler.inverse(&t);
        assert!((back[0] - 1.0).abs() < 1e-9);
        assert!((back[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_features_have_zero_mean_unit_variance() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, i as f64 * 3.0 + 7.0])
            .collect();
        let scaler = Scaler::fit(&rows);
        let scaled = scaler.transform_batch(&rows);
        for d in 0..2 {
            let col: Vec<f64> = scaled.iter().map(|r| r[d]).collect();
            assert!(stats::mean(&col).abs() < 1e-9);
            assert!((stats::std_dev(&col) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let scaler = Scaler::fit(&rows);
        let t = scaler.transform(&[5.0]);
        assert_eq!(t[0], 0.0);
        assert!(t[0].is_finite());
    }

    #[test]
    fn scalar_helpers_match_vector_path() {
        let scaler = Scaler::fit_scalar(&[10.0, 20.0, 30.0]);
        let t = scaler.transform_scalar(20.0);
        assert!(t.abs() < 1e-9);
        assert!((scaler.inverse_scalar(t) - 20.0).abs() < 1e-9);
        assert!(scaler.scale() > 0.0);
    }

    #[test]
    fn mini_batches_cover_every_sample_exactly_once() {
        let mut rng = seeded_rng(1);
        let inputs: Vec<Vec<f64>> = (0..23).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..23).map(|i| i as f64).collect();
        let batches = mini_batches(&inputs, &targets, 5, &mut rng);
        assert_eq!(batches.len(), 5);
        let mut seen: Vec<f64> = batches.iter().flat_map(|(_, t)| t.clone()).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, targets);
        // Inputs and targets stay aligned.
        for (xs, ts) in &batches {
            for (x, t) in xs.iter().zip(ts.iter()) {
                assert_eq!(x[0], *t);
            }
        }
    }
}
