//! Bayesian neural network trained with Bayes-by-Backprop.
//!
//! Implements the surrogate model of the paper's stage 1 and stage 2
//! (Sec. 4.2): every weight is a Gaussian `N(μ, σ²)` with `σ = softplus(ρ)`;
//! training minimises the approximated ELBO loss of Eq. 4 (negative log
//! likelihood of the data under one Monte-Carlo weight draw plus the
//! KL-divergence of the variational posterior from the prior); and
//! Thompson sampling is realised by drawing the weights **once** and
//! evaluating the resulting deterministic network on many candidate points
//! (Sec. 4.2, "Parallel Thompson Sampling").

use crate::data::{mini_batches, Scaler};
use crate::mlp::Mlp;
use crate::optim::{Adam, Optimizer, StepLr};
use atlas_math::dist::standard_normal_sample;
use atlas_math::stats;
use rand::Rng;

fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else {
        (1.0 + x.exp()).ln()
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn inverse_softplus(y: f64) -> f64 {
    // ln(e^y - 1); valid for y > 0.
    (y.exp() - 1.0).max(1e-12).ln()
}

/// Training hyper-parameters of the Bayesian network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnnConfig {
    /// Hidden-layer widths. The paper uses `[128, 256, 256, 128]`; the
    /// default here is smaller so that the full experiment sweep fits a
    /// CPU-only budget (see EXPERIMENTS.md).
    pub hidden: [usize; 4],
    /// Standard deviation of the Gaussian weight prior.
    pub prior_std: f64,
    /// Initial posterior standard deviation.
    pub init_std: f64,
    /// Weight of the KL term relative to the data term (effectively
    /// 1 / number of batches in Bayes-by-Backprop).
    pub kl_weight: f64,
    /// Learning rate of the Adam optimiser used for the variational
    /// parameters.
    pub learning_rate: f64,
    /// Mini-batch size (the paper uses 128).
    pub batch_size: usize,
    /// Training epochs per `fit` call.
    pub epochs: usize,
    /// StepLR decay factor per epoch (the paper uses 0.999).
    pub lr_gamma: f64,
}

impl Default for BnnConfig {
    fn default() -> Self {
        Self {
            hidden: [32, 64, 64, 32],
            prior_std: 1.0,
            init_std: 0.05,
            kl_weight: 1e-4,
            learning_rate: 0.01,
            batch_size: 128,
            epochs: 60,
            lr_gamma: 0.999,
        }
    }
}

impl BnnConfig {
    /// The paper-scale architecture (128×256×256×128, Adadelta-style slow
    /// decay). Markedly slower to train on CPU.
    pub fn paper_scale() -> Self {
        Self {
            hidden: [128, 256, 256, 128],
            epochs: 200,
            ..Self::default()
        }
    }
}

/// A Bayesian MLP with factorised Gaussian posteriors over every weight.
#[derive(Debug, Clone)]
pub struct Bnn {
    layer_sizes: Vec<usize>,
    /// Posterior means, flat layout identical to [`Mlp::flat_params`].
    mu: Vec<f64>,
    /// Posterior pre-standard-deviations (σ = softplus(ρ)).
    rho: Vec<f64>,
    config: BnnConfig,
    optimizer: Adam,
    scheduler: StepLr,
    input_scaler: Option<Scaler>,
    target_scaler: Option<Scaler>,
}

impl Bnn {
    /// Creates an untrained Bayesian network for `input_dim`-dimensional
    /// inputs and a scalar output.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, config: BnnConfig, rng: &mut R) -> Self {
        let mut layer_sizes = vec![input_dim];
        layer_sizes.extend(config.hidden.iter().copied().filter(|h| *h > 0));
        layer_sizes.push(1);
        // Initialise μ with the He scheme via a throwaway MLP.
        let proto = Mlp::new(&layer_sizes, rng);
        let mu = proto.flat_params();
        let rho = vec![inverse_softplus(config.init_std); mu.len()];
        Self {
            layer_sizes,
            mu,
            rho,
            optimizer: Adam::new(config.learning_rate),
            scheduler: StepLr::new(1, config.lr_gamma),
            config,
            input_scaler: None,
            target_scaler: None,
        }
    }

    /// Number of variational parameters (2 per weight).
    pub fn parameter_count(&self) -> usize {
        self.mu.len() * 2
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layer_sizes[0]
    }

    /// Draws one deterministic network from the posterior (a Thompson
    /// sample). The returned [`Mlp`] operates on *scaled* inputs/outputs;
    /// prefer [`Bnn::thompson_sampler`] which wraps the scaling.
    fn sample_network<R: Rng + ?Sized>(&self, rng: &mut R) -> Mlp {
        let params: Vec<f64> = self
            .mu
            .iter()
            .zip(self.rho.iter())
            .map(|(m, r)| m + softplus(*r) * standard_normal_sample(rng))
            .collect();
        Mlp::from_flat_params(&self.layer_sizes, &params)
    }

    /// Draws one posterior sample and returns a closure that evaluates it
    /// on raw (unscaled) inputs, producing predictions in the original
    /// target units. This is the single-inference Thompson sampling the
    /// paper uses to rank tens of thousands of candidates cheaply.
    pub fn thompson_sampler<R: Rng + ?Sized>(&self, rng: &mut R) -> impl Fn(&[f64]) -> f64 {
        let net = self.sample_network(rng);
        let input_scaler = self.input_scaler.clone();
        let target_scaler = self.target_scaler.clone();
        move |x: &[f64]| {
            let scaled = match &input_scaler {
                Some(s) => s.transform(x),
                None => x.to_vec(),
            };
            let y = net.predict(&scaled);
            match &target_scaler {
                Some(s) => s.inverse_scalar(y),
                None => y,
            }
        }
    }

    /// Posterior-mean prediction (uses μ directly, no sampling).
    pub fn predict_mean(&self, x: &[f64]) -> f64 {
        let net = Mlp::from_flat_params(&self.layer_sizes, &self.mu);
        let scaled = match &self.input_scaler {
            Some(s) => s.transform(x),
            None => x.to_vec(),
        };
        let y = net.predict(&scaled);
        match &self.target_scaler {
            Some(s) => s.inverse_scalar(y),
            None => y,
        }
    }

    /// Monte-Carlo predictive mean and standard deviation from `samples`
    /// posterior draws.
    pub fn predict_with_uncertainty<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        samples: usize,
        rng: &mut R,
    ) -> (f64, f64) {
        let samples = samples.max(2);
        let preds: Vec<f64> = (0..samples)
            .map(|_| {
                let f = self.thompson_sampler(rng);
                f(x)
            })
            .collect();
        (stats::mean(&preds), stats::std_dev(&preds))
    }

    /// Fits the network to `(inputs, targets)` with Bayes-by-Backprop,
    /// running `config.epochs` epochs of mini-batch updates. Inputs and
    /// targets are z-scored internally. Returns the final epoch's mean
    /// data loss (MSE in scaled units).
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[f64],
        rng: &mut R,
    ) -> f64 {
        self.fit_epochs(inputs, targets, self.config.epochs, rng)
    }

    /// Fits for an explicit number of epochs, warm-starting from the
    /// current variational parameters. Used by the Atlas stages, which
    /// retrain the surrogate a little after every batch of new transitions
    /// instead of from scratch.
    pub fn fit_epochs<R: Rng + ?Sized>(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[f64],
        epochs: usize,
        rng: &mut R,
    ) -> f64 {
        assert_eq!(inputs.len(), targets.len());
        assert!(!inputs.is_empty(), "Bnn::fit requires at least one sample");
        let input_scaler = Scaler::fit(inputs);
        let target_scaler = Scaler::fit_scalar(targets);
        let x_scaled = input_scaler.transform_batch(inputs);
        let y_scaled: Vec<f64> = targets
            .iter()
            .map(|t| target_scaler.transform_scalar(*t))
            .collect();
        self.input_scaler = Some(input_scaler);
        self.target_scaler = Some(target_scaler);

        let mut last_epoch_loss = 0.0;
        for _ in 0..epochs {
            let batches = mini_batches(&x_scaled, &y_scaled, self.config.batch_size, rng);
            let mut epoch_loss = 0.0;
            for (bx, by) in &batches {
                epoch_loss += self.train_step(bx, by, rng);
            }
            last_epoch_loss = epoch_loss / batches.len() as f64;
            self.scheduler.step(&mut self.optimizer);
        }
        last_epoch_loss
    }

    /// One Bayes-by-Backprop update on a mini-batch of *scaled* data;
    /// returns the data loss.
    fn train_step<R: Rng + ?Sized>(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[f64],
        rng: &mut R,
    ) -> f64 {
        // Reparameterisation: w = μ + σ·ε with one ε draw per step.
        let eps: Vec<f64> = (0..self.mu.len())
            .map(|_| standard_normal_sample(rng))
            .collect();
        let sigma: Vec<f64> = self.rho.iter().map(|r| softplus(*r)).collect();
        let weights: Vec<f64> = self
            .mu
            .iter()
            .zip(sigma.iter().zip(eps.iter()))
            .map(|(m, (s, e))| m + s * e)
            .collect();
        let net = Mlp::from_flat_params(&self.layer_sizes, &weights);
        let (data_loss, grad_w) = net.loss_and_flat_grads(inputs, targets);

        let prior_var = self.config.prior_std * self.config.prior_std;
        let kl_w = self.config.kl_weight;
        let n = self.mu.len();
        // Gradients of the ELBO with respect to μ and ρ.
        let mut grads = vec![0.0; 2 * n];
        for i in 0..n {
            let dkl_dmu = self.mu[i] / prior_var;
            let dkl_dsigma = -1.0 / sigma[i] + sigma[i] / prior_var;
            let dsigma_drho = sigmoid(self.rho[i]);
            grads[i] = grad_w[i] + kl_w * dkl_dmu;
            grads[n + i] = grad_w[i] * eps[i] * dsigma_drho + kl_w * dkl_dsigma * dsigma_drho;
        }
        let mut params: Vec<f64> = self.mu.iter().chain(self.rho.iter()).copied().collect();
        self.optimizer.step(&mut params, &grads);
        self.mu.copy_from_slice(&params[..n]);
        self.rho.copy_from_slice(&params[n..]);
        data_loss
    }

    /// KL divergence of the current posterior from the prior, summed over
    /// all weights (the regulariser of Eq. 3/4). Exposed for tests and
    /// diagnostics.
    pub fn posterior_kl(&self) -> f64 {
        let prior_var = self.config.prior_std * self.config.prior_std;
        self.mu
            .iter()
            .zip(self.rho.iter())
            .map(|(m, r)| {
                let s = softplus(*r);
                (self.config.prior_std / s).ln() + (s * s + m * m) / (2.0 * prior_var) - 0.5
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;

    fn toy_dataset() -> (Vec<Vec<f64>>, Vec<f64>) {
        let inputs: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let x = i as f64 / 120.0;
                vec![x, 1.0 - x]
            })
            .collect();
        let targets: Vec<f64> = inputs
            .iter()
            .map(|x| 2.0 * x[0] + 0.3 * (6.0 * x[0]).sin())
            .collect();
        (inputs, targets)
    }

    #[test]
    fn softplus_helpers_are_consistent() {
        for y in [0.01, 0.1, 1.0, 5.0] {
            assert!((softplus(inverse_softplus(y)) - y).abs() < 1e-9);
        }
        assert!(softplus(100.0) >= 100.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bnn_fits_a_simple_function() {
        let mut rng = seeded_rng(1);
        let (inputs, targets) = toy_dataset();
        let mut bnn = Bnn::new(
            2,
            BnnConfig {
                hidden: [16, 16, 0, 0],
                epochs: 200,
                ..BnnConfig::default()
            },
            &mut rng,
        );
        bnn.fit(&inputs, &targets, &mut rng);
        let mut err = 0.0;
        for (x, t) in inputs.iter().zip(targets.iter()) {
            err += (bnn.predict_mean(x) - t).abs();
        }
        err /= inputs.len() as f64;
        assert!(err < 0.25, "mean absolute error {err}");
    }

    #[test]
    fn thompson_samples_differ_but_agree_near_the_data() {
        let mut rng = seeded_rng(2);
        let (inputs, targets) = toy_dataset();
        let mut bnn = Bnn::new(
            2,
            BnnConfig {
                hidden: [16, 16, 0, 0],
                epochs: 150,
                ..BnnConfig::default()
            },
            &mut rng,
        );
        bnn.fit(&inputs, &targets, &mut rng);
        let f1 = bnn.thompson_sampler(&mut rng);
        let f2 = bnn.thompson_sampler(&mut rng);
        let x = &inputs[40];
        // Different draws give different functions...
        let disagreement: f64 = (0..20)
            .map(|i| {
                let x = vec![i as f64 / 20.0, 1.0 - i as f64 / 20.0];
                (f1(&x) - f2(&x)).abs()
            })
            .sum();
        assert!(disagreement > 1e-6);
        // ...but both stay in the vicinity of the data.
        assert!((f1(x) - targets[40]).abs() < 1.0);
        assert!((f2(x) - targets[40]).abs() < 1.0);
    }

    #[test]
    fn predictive_uncertainty_is_larger_away_from_the_data() {
        let mut rng = seeded_rng(3);
        // Train only on x in [0, 0.5].
        let inputs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 120.0]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x[0] * 2.0).collect();
        let mut bnn = Bnn::new(
            1,
            BnnConfig {
                hidden: [16, 16, 0, 0],
                epochs: 150,
                ..BnnConfig::default()
            },
            &mut rng,
        );
        bnn.fit(&inputs, &targets, &mut rng);
        let (_, std_in) = bnn.predict_with_uncertainty(&[0.25], 30, &mut rng);
        let (_, std_out) = bnn.predict_with_uncertainty(&[3.0], 30, &mut rng);
        assert!(
            std_out > std_in,
            "extrapolation std {std_out} should exceed interpolation std {std_in}"
        );
    }

    #[test]
    fn fitting_reduces_posterior_spread_relative_to_prior() {
        let mut rng = seeded_rng(4);
        let (inputs, targets) = toy_dataset();
        let mut bnn = Bnn::new(
            2,
            BnnConfig {
                hidden: [8, 8, 0, 0],
                epochs: 100,
                ..BnnConfig::default()
            },
            &mut rng,
        );
        let kl_before = bnn.posterior_kl();
        bnn.fit(&inputs, &targets, &mut rng);
        let kl_after = bnn.posterior_kl();
        // Training moves the posterior away from the prior (KL grows) while
        // the data loss falls — both are finite and well behaved.
        assert!(kl_before.is_finite() && kl_after.is_finite());
        assert!(kl_after != kl_before);
    }

    #[test]
    fn parameter_count_and_input_dim_are_reported() {
        let mut rng = seeded_rng(5);
        let bnn = Bnn::new(
            3,
            BnnConfig {
                hidden: [4, 0, 0, 0],
                ..BnnConfig::default()
            },
            &mut rng,
        );
        // Layers: 3->4 (16 params), 4->1 (5 params) => 21 weights, ×2.
        assert_eq!(bnn.parameter_count(), 42);
        assert_eq!(bnn.input_dim(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn fit_rejects_empty_datasets() {
        let mut rng = seeded_rng(6);
        let mut bnn = Bnn::new(2, BnnConfig::default(), &mut rng);
        bnn.fit(&[], &[], &mut rng);
    }
}
