//! Fully-connected layer with manual forward/backward passes.

use crate::activation::Activation;
use atlas_math::dist::standard_normal_sample;
use rand::Rng;

/// A dense (fully-connected) layer `y = act(W x + b)` with row-major
/// weights of shape `(outputs, inputs)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    /// Number of input features.
    pub inputs: usize,
    /// Number of output features.
    pub outputs: usize,
    /// Weights, row-major `(outputs × inputs)`.
    pub weights: Vec<f64>,
    /// Biases, length `outputs`.
    pub bias: Vec<f64>,
    /// Activation applied to the pre-activation output.
    pub activation: Activation,
}

/// Cached values from a forward pass, needed by the backward pass.
#[derive(Debug, Clone)]
pub struct DenseCache {
    /// The inputs of each sample in the batch.
    pub inputs: Vec<Vec<f64>>,
    /// The pre-activation outputs of each sample.
    pub pre_activations: Vec<Vec<f64>>,
}

/// Gradients of a dense layer produced by the backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGradients {
    /// Gradient of the loss with respect to the weights (same layout as
    /// [`DenseLayer::weights`]).
    pub weights: Vec<f64>,
    /// Gradient with respect to the biases.
    pub bias: Vec<f64>,
    /// Gradient with respect to the layer inputs (one vector per sample),
    /// used to continue back-propagation into the previous layer.
    pub inputs: Vec<Vec<f64>>,
}

impl DenseLayer {
    /// Creates a layer with He-initialised weights (appropriate for ReLU).
    pub fn new<R: Rng + ?Sized>(
        inputs: usize,
        outputs: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let scale = (2.0 / inputs.max(1) as f64).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| standard_normal_sample(rng) * scale)
            .collect();
        Self {
            inputs,
            outputs,
            weights,
            bias: vec![0.0; outputs],
            activation,
        }
    }

    /// Creates a layer from explicit weights and biases.
    pub fn from_parts(
        inputs: usize,
        outputs: usize,
        weights: Vec<f64>,
        bias: Vec<f64>,
        activation: Activation,
    ) -> Self {
        assert_eq!(weights.len(), inputs * outputs, "weight shape mismatch");
        assert_eq!(bias.len(), outputs, "bias shape mismatch");
        Self {
            inputs,
            outputs,
            weights,
            bias,
            activation,
        }
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass over a batch; returns activations and the cache needed
    /// for the backward pass.
    pub fn forward(&self, batch: &[Vec<f64>]) -> (Vec<Vec<f64>>, DenseCache) {
        let mut outputs = Vec::with_capacity(batch.len());
        let mut pre_activations = Vec::with_capacity(batch.len());
        for x in batch {
            debug_assert_eq!(x.len(), self.inputs);
            let mut pre = vec![0.0; self.outputs];
            for (o, pre_o) in pre.iter_mut().enumerate() {
                let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
                let mut acc = self.bias[o];
                for (w, xi) in row.iter().zip(x.iter()) {
                    acc += w * xi;
                }
                *pre_o = acc;
            }
            let out = pre.iter().map(|v| self.activation.apply(*v)).collect();
            pre_activations.push(pre);
            outputs.push(out);
        }
        (
            outputs,
            DenseCache {
                inputs: batch.to_vec(),
                pre_activations,
            },
        )
    }

    /// Backward pass: given `d_loss/d_output` per sample, produces the
    /// parameter gradients (averaged over the batch) and the gradients with
    /// respect to the inputs.
    pub fn backward(&self, cache: &DenseCache, grad_output: &[Vec<f64>]) -> DenseGradients {
        let batch = cache.inputs.len().max(1) as f64;
        let mut grad_w = vec![0.0; self.weights.len()];
        let mut grad_b = vec![0.0; self.outputs];
        let mut grad_inputs = Vec::with_capacity(cache.inputs.len());

        for (sample, go) in grad_output.iter().enumerate() {
            let x = &cache.inputs[sample];
            let pre = &cache.pre_activations[sample];
            let mut gx = vec![0.0; self.inputs];
            for o in 0..self.outputs {
                let delta = go[o] * self.activation.derivative(pre[o]);
                grad_b[o] += delta / batch;
                let row = o * self.inputs;
                for i in 0..self.inputs {
                    grad_w[row + i] += delta * x[i] / batch;
                    gx[i] += delta * self.weights[row + i];
                }
            }
            grad_inputs.push(gx);
        }

        DenseGradients {
            weights: grad_w,
            bias: grad_b,
            inputs: grad_inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;

    #[test]
    fn forward_computes_affine_transform() {
        let layer = DenseLayer::from_parts(
            2,
            2,
            vec![1.0, 2.0, -1.0, 0.5],
            vec![0.1, -0.2],
            Activation::Identity,
        );
        let (out, _) = layer.forward(&[vec![3.0, 4.0]]);
        assert!((out[0][0] - (1.0 * 3.0 + 2.0 * 4.0 + 0.1)).abs() < 1e-12);
        assert!((out[0][1] - (0.5 * 4.0 - 1.0 * 3.0 - 0.2)).abs() < 1e-12);
    }

    #[test]
    fn relu_masks_negative_outputs() {
        let layer = DenseLayer::from_parts(1, 1, vec![1.0], vec![0.0], Activation::Relu);
        let (out, _) = layer.forward(&[vec![-5.0], vec![5.0]]);
        assert_eq!(out[0][0], 0.0);
        assert_eq!(out[1][0], 5.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = seeded_rng(1);
        let layer = DenseLayer::new(3, 2, Activation::Tanh, &mut rng);
        let batch = vec![vec![0.3, -0.7, 1.2], vec![-0.1, 0.4, 0.9]];
        let targets = [vec![0.5, -0.5], vec![0.2, 0.1]];

        // Loss = 0.5 * sum of squared errors averaged over batch.
        let loss = |l: &DenseLayer| -> f64 {
            let (out, _) = l.forward(&batch);
            out.iter()
                .zip(targets.iter())
                .map(|(o, t)| {
                    o.iter()
                        .zip(t.iter())
                        .map(|(a, b)| 0.5 * (a - b) * (a - b))
                        .sum::<f64>()
                })
                .sum::<f64>()
                / batch.len() as f64
        };

        let (out, cache) = layer.forward(&batch);
        let grad_out: Vec<Vec<f64>> = out
            .iter()
            .zip(targets.iter())
            .map(|(o, t)| o.iter().zip(t.iter()).map(|(a, b)| a - b).collect())
            .collect();
        let grads = layer.backward(&cache, &grad_out);

        let eps = 1e-6;
        for idx in [0usize, 2, 5] {
            let mut plus = layer.clone();
            plus.weights[idx] += eps;
            let mut minus = layer.clone();
            minus.weights[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (grads.weights[idx] - numeric).abs() < 1e-5,
                "weight {idx}: analytic {} vs numeric {numeric}",
                grads.weights[idx]
            );
        }
        for idx in [0usize, 1] {
            let mut plus = layer.clone();
            plus.bias[idx] += eps;
            let mut minus = layer.clone();
            minus.bias[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!((grads.bias[idx] - numeric).abs() < 1e-5);
        }
    }

    #[test]
    fn input_gradients_propagate() {
        let layer = DenseLayer::from_parts(2, 1, vec![2.0, -3.0], vec![0.0], Activation::Identity);
        let batch = vec![vec![1.0, 1.0]];
        let (_, cache) = layer.forward(&batch);
        let grads = layer.backward(&cache, &[vec![1.0]]);
        assert!((grads.inputs[0][0] - 2.0).abs() < 1e-12);
        assert!((grads.inputs[0][1] + 3.0).abs() < 1e-12);
    }

    #[test]
    fn parameter_count_is_correct() {
        let mut rng = seeded_rng(2);
        let layer = DenseLayer::new(7, 5, Activation::Relu, &mut rng);
        assert_eq!(layer.parameter_count(), 7 * 5 + 5);
    }
}
