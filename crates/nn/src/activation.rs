//! Activation functions.

/// Activation function applied element-wise after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no activation) — used for output layers in regression.
    Identity,
    /// Rectified linear unit (the paper's BNN uses ReLU throughout).
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative of the activation with respect to the pre-activation
    /// value `x`.
    pub fn derivative(&self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn identity_is_transparent() {
        assert_eq!(Activation::Identity.apply(-7.0), -7.0);
        assert_eq!(Activation::Identity.derivative(123.0), 1.0);
    }

    #[test]
    fn tanh_saturates_and_derivative_matches_finite_difference() {
        let a = Activation::Tanh;
        assert!(a.apply(10.0) < 1.0 + 1e-9);
        assert!(a.apply(-10.0) > -1.0 - 1e-9);
        let x = 0.37;
        let eps = 1e-6;
        let numeric = (a.apply(x + eps) - a.apply(x - eps)) / (2.0 * eps);
        assert!((a.derivative(x) - numeric).abs() < 1e-6);
    }
}
