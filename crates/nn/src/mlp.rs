//! Deterministic multi-layer perceptron for regression.
//!
//! Used directly by the DLDA baseline (a standard DNN) and as the
//! materialised form of one weight draw from the Bayesian network in
//! [`crate::bayes`]. Hidden layers use ReLU, the output layer is linear,
//! and training minimises mean squared error.

use crate::activation::Activation;
use crate::dense::{DenseCache, DenseLayer};
use crate::optim::Optimizer;
use rand::Rng;

/// A feed-forward network with a single scalar output.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Creates an MLP from a list of layer sizes, e.g. `[6, 64, 64, 1]`.
    /// Hidden layers use ReLU; the final layer is linear.
    pub fn new<R: Rng + ?Sized>(layer_sizes: &[usize], rng: &mut R) -> Self {
        assert!(
            layer_sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let mut layers = Vec::with_capacity(layer_sizes.len() - 1);
        for i in 0..layer_sizes.len() - 1 {
            let activation = if i + 2 == layer_sizes.len() {
                Activation::Identity
            } else {
                Activation::Relu
            };
            layers.push(DenseLayer::new(
                layer_sizes[i],
                layer_sizes[i + 1],
                activation,
                rng,
            ));
        }
        Self { layers }
    }

    /// Builds an MLP with the same architecture but explicit flat
    /// parameters (used by the Bayesian network to materialise a draw).
    pub fn from_flat_params(layer_sizes: &[usize], params: &[f64]) -> Self {
        let mut layers = Vec::with_capacity(layer_sizes.len() - 1);
        let mut offset = 0;
        for i in 0..layer_sizes.len() - 1 {
            let inputs = layer_sizes[i];
            let outputs = layer_sizes[i + 1];
            let activation = if i + 2 == layer_sizes.len() {
                Activation::Identity
            } else {
                Activation::Relu
            };
            let w_len = inputs * outputs;
            let weights = params[offset..offset + w_len].to_vec();
            offset += w_len;
            let bias = params[offset..offset + outputs].to_vec();
            offset += outputs;
            layers.push(DenseLayer::from_parts(
                inputs, outputs, weights, bias, activation,
            ));
        }
        assert_eq!(offset, params.len(), "flat parameter length mismatch");
        Self { layers }
    }

    /// Layer sizes of this network, including input and output.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![self.layers[0].inputs];
        sizes.extend(self.layers.iter().map(|l| l.outputs));
        sizes
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(DenseLayer::parameter_count).sum()
    }

    /// Returns all parameters as one flat vector (layer by layer, weights
    /// then biases).
    pub fn flat_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.parameter_count());
        for l in &self.layers {
            out.extend_from_slice(&l.weights);
            out.extend_from_slice(&l.bias);
        }
        out
    }

    /// Overwrites all parameters from a flat vector.
    pub fn set_flat_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.parameter_count());
        let mut offset = 0;
        for l in &mut self.layers {
            let w_len = l.weights.len();
            l.weights.copy_from_slice(&params[offset..offset + w_len]);
            offset += w_len;
            let b_len = l.bias.len();
            l.bias.copy_from_slice(&params[offset..offset + b_len]);
            offset += b_len;
        }
    }

    /// Predicts the scalar output for one input.
    pub fn predict(&self, input: &[f64]) -> f64 {
        self.predict_batch(std::slice::from_ref(&input.to_vec()))[0]
    }

    /// Predicts the scalar outputs for a batch of inputs.
    pub fn predict_batch(&self, inputs: &[Vec<f64>]) -> Vec<f64> {
        let mut activations: Vec<Vec<f64>> = inputs.to_vec();
        for layer in &self.layers {
            let (out, _) = layer.forward(&activations);
            activations = out;
        }
        activations.into_iter().map(|o| o[0]).collect()
    }

    /// Computes the mean-squared-error loss on a batch and the gradient of
    /// that loss with respect to every parameter, as a flat vector in the
    /// same layout as [`Mlp::flat_params`].
    pub fn loss_and_flat_grads(&self, inputs: &[Vec<f64>], targets: &[f64]) -> (f64, Vec<f64>) {
        assert_eq!(inputs.len(), targets.len());
        assert!(!inputs.is_empty(), "empty batch");
        // Forward pass, caching every layer.
        let mut activations: Vec<Vec<f64>> = inputs.to_vec();
        let mut caches: Vec<DenseCache> = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, cache) = layer.forward(&activations);
            caches.push(cache);
            activations = out;
        }
        let n = inputs.len() as f64;
        let loss = activations
            .iter()
            .zip(targets.iter())
            .map(|(o, t)| (o[0] - t) * (o[0] - t))
            .sum::<f64>()
            / n;
        // d(MSE)/d(output) = 2 (o - t) / n, but the per-layer backward
        // already averages over the batch, so pass 2 (o - t).
        let mut grad_output: Vec<Vec<f64>> = activations
            .iter()
            .zip(targets.iter())
            .map(|(o, t)| vec![2.0 * (o[0] - t)])
            .collect();
        // Backward pass layer by layer.
        let mut per_layer_grads = Vec::with_capacity(self.layers.len());
        for (layer, cache) in self.layers.iter().zip(caches.iter()).rev() {
            let grads = layer.backward(cache, &grad_output);
            grad_output = grads.inputs.clone();
            per_layer_grads.push((grads.weights, grads.bias));
        }
        per_layer_grads.reverse();
        let mut flat = Vec::with_capacity(self.parameter_count());
        for (w, b) in per_layer_grads {
            flat.extend(w);
            flat.extend(b);
        }
        (loss, flat)
    }

    /// Performs one optimisation step on a mini-batch; returns the MSE loss
    /// before the update.
    pub fn train_batch(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[f64],
        optimizer: &mut dyn Optimizer,
    ) -> f64 {
        let (loss, grads) = self.loss_and_flat_grads(inputs, targets);
        let mut params = self.flat_params();
        optimizer.step(&mut params, &grads);
        self.set_flat_params(&params);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use atlas_math::rng::seeded_rng;

    #[test]
    fn flat_params_roundtrip() {
        let mut rng = seeded_rng(1);
        let mlp = Mlp::new(&[3, 8, 1], &mut rng);
        let params = mlp.flat_params();
        assert_eq!(params.len(), mlp.parameter_count());
        let rebuilt = Mlp::from_flat_params(&[3, 8, 1], &params);
        assert_eq!(rebuilt.flat_params(), params);
        assert_eq!(rebuilt.layer_sizes(), vec![3, 8, 1]);
        // Predictions are identical.
        let x = vec![0.2, -0.4, 1.0];
        assert!((mlp.predict(&x) - rebuilt.predict(&x)).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = seeded_rng(2);
        let mlp = Mlp::new(&[2, 6, 1], &mut rng);
        let inputs = vec![vec![0.5, -1.0], vec![1.5, 0.3], vec![-0.2, 0.8]];
        let targets = vec![1.0, -0.5, 0.25];
        let (_, grads) = mlp.loss_and_flat_grads(&inputs, &targets);
        let params = mlp.flat_params();
        let eps = 1e-6;
        for idx in [0usize, 5, 12, params.len() - 1] {
            let mut plus = params.clone();
            plus[idx] += eps;
            let mut minus = params.clone();
            minus[idx] -= eps;
            let mlp_plus = Mlp::from_flat_params(&[2, 6, 1], &plus);
            let mlp_minus = Mlp::from_flat_params(&[2, 6, 1], &minus);
            let (lp, _) = mlp_plus.loss_and_flat_grads(&inputs, &targets);
            let (lm, _) = mlp_minus.loss_and_flat_grads(&inputs, &targets);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grads[idx] - numeric).abs() < 1e-5,
                "param {idx}: analytic {} vs numeric {numeric}",
                grads[idx]
            );
        }
    }

    #[test]
    fn mlp_learns_a_linear_function() {
        let mut rng = seeded_rng(3);
        let mut mlp = Mlp::new(&[2, 16, 1], &mut rng);
        let mut opt = Adam::new(0.01);
        let inputs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 / 20.0, (i / 20) as f64 / 10.0])
            .collect();
        let targets: Vec<f64> = inputs
            .iter()
            .map(|x| 3.0 * x[0] - 2.0 * x[1] + 0.5)
            .collect();
        let mut last_loss = f64::INFINITY;
        for _ in 0..400 {
            last_loss = mlp.train_batch(&inputs, &targets, &mut opt);
        }
        assert!(last_loss < 0.01, "loss {last_loss}");
        let pred = mlp.predict(&[0.5, 0.5]);
        let expected = 3.0 * 0.5 - 2.0 * 0.5 + 0.5;
        assert!((pred - expected).abs() < 0.2, "pred {pred} vs {expected}");
    }

    #[test]
    fn mlp_learns_a_nonlinear_function() {
        let mut rng = seeded_rng(4);
        let mut mlp = Mlp::new(&[1, 32, 32, 1], &mut rng);
        let mut opt = Adam::new(0.01);
        let inputs: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 / 100.0 * 2.0 - 1.0])
            .collect();
        let targets: Vec<f64> = inputs.iter().map(|x| (3.0 * x[0]).sin()).collect();
        for _ in 0..1500 {
            mlp.train_batch(&inputs, &targets, &mut opt);
        }
        let preds = mlp.predict_batch(&inputs);
        let mse: f64 = preds
            .iter()
            .zip(targets.iter())
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / preds.len() as f64;
        assert!(mse < 0.02, "mse {mse}");
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_layer_sizes_are_rejected() {
        let mut rng = seeded_rng(5);
        let _ = Mlp::new(&[4], &mut rng);
    }
}
