//! First-order optimisers and learning-rate schedules.
//!
//! The paper trains its BNNs with Adadelta (initial learning rate 1.0) and
//! decays the rate with a StepLR schedule (gamma 0.999); Adam and plain SGD
//! are provided as well because the baselines and tests use them.

/// A first-order optimiser operating on a flat parameter vector.
pub trait Optimizer {
    /// Applies one update step given the gradient of the loss.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);
    /// Current learning rate.
    fn learning_rate(&self) -> f64;
    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum: momentum.clamp(0.0, 0.999),
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            self.velocity[i] = self.momentum * self.velocity[i] - self.lr * grads[i];
            params[i] += self.velocity[i];
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam optimiser (Kingma & Ba).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimiser with the usual defaults (β₁ = 0.9,
    /// β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adadelta optimiser (Zeiler) — the optimiser the paper uses with an
/// initial learning rate of 1.0.
#[derive(Debug, Clone)]
pub struct Adadelta {
    lr: f64,
    rho: f64,
    epsilon: f64,
    avg_sq_grad: Vec<f64>,
    avg_sq_update: Vec<f64>,
}

impl Adadelta {
    /// Creates an Adadelta optimiser (ρ = 0.9, ε = 1e-6).
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            rho: 0.9,
            epsilon: 1e-6,
            avg_sq_grad: Vec::new(),
            avg_sq_update: Vec::new(),
        }
    }
}

impl Optimizer for Adadelta {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        if self.avg_sq_grad.len() != params.len() {
            self.avg_sq_grad = vec![0.0; params.len()];
            self.avg_sq_update = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            self.avg_sq_grad[i] =
                self.rho * self.avg_sq_grad[i] + (1.0 - self.rho) * grads[i] * grads[i];
            let update = ((self.avg_sq_update[i] + self.epsilon).sqrt()
                / (self.avg_sq_grad[i] + self.epsilon).sqrt())
                * grads[i];
            self.avg_sq_update[i] =
                self.rho * self.avg_sq_update[i] + (1.0 - self.rho) * update * update;
            params[i] -= self.lr * update;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Multiplicative learning-rate decay applied every `step_size` epochs
/// (PyTorch's `StepLR`; the paper uses gamma 0.999).
#[derive(Debug, Clone)]
pub struct StepLr {
    gamma: f64,
    step_size: u64,
    epoch: u64,
}

impl StepLr {
    /// Creates a StepLR schedule.
    pub fn new(step_size: u64, gamma: f64) -> Self {
        Self {
            gamma,
            step_size: step_size.max(1),
            epoch: 0,
        }
    }

    /// Advances one epoch and updates the optimiser's learning rate.
    pub fn step(&mut self, optimizer: &mut dyn Optimizer) {
        self.epoch += 1;
        if self.epoch.is_multiple_of(self.step_size) {
            let lr = optimizer.learning_rate() * self.gamma;
            optimizer.set_learning_rate(lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 with each optimiser.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut params = vec![-5.0];
        for _ in 0..steps {
            let grads = vec![2.0 * (params[0] - 3.0)];
            opt.step(&mut params, &grads);
        }
        params[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        assert!((minimise(&mut opt, 200) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        assert!((minimise(&mut opt, 400) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        assert!((minimise(&mut opt, 500) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adadelta_moves_towards_the_minimum() {
        let mut opt = Adadelta::new(1.0);
        let final_x = minimise(&mut opt, 2000);
        assert!((final_x - 3.0).abs() < 1.0, "got {final_x}");
    }

    #[test]
    fn step_lr_decays_learning_rate() {
        let mut opt = Sgd::new(1.0, 0.0);
        let mut sched = StepLr::new(1, 0.5);
        sched.step(&mut opt);
        assert!((opt.learning_rate() - 0.5).abs() < 1e-12);
        sched.step(&mut opt);
        assert!((opt.learning_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn step_lr_respects_step_size() {
        let mut opt = Sgd::new(1.0, 0.0);
        let mut sched = StepLr::new(3, 0.1);
        sched.step(&mut opt);
        sched.step(&mut opt);
        assert_eq!(opt.learning_rate(), 1.0);
        sched.step(&mut opt);
        assert!((opt.learning_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn optimisers_resize_state_when_parameter_count_changes() {
        let mut opt = Adam::new(0.1);
        let mut short = vec![0.0; 2];
        opt.step(&mut short, &[1.0, 1.0]);
        let mut long = vec![0.0; 4];
        opt.step(&mut long, &[1.0; 4]);
        assert_eq!(long.len(), 4);
    }
}
