//! # atlas-gp
//!
//! Exact Gaussian-process regression for the Atlas reproduction: Matérn and
//! RBF kernels, Cholesky-based fitting, target normalisation and
//! marginal-likelihood hyper-parameter refinement — the Rust counterpart of
//! the scikit-learn `GaussianProcessRegressor` (Matérn ν = 2.5,
//! `normalize_y=True`) the paper uses in its online learning stage.
//!
//! ## Quick start
//!
//! ```
//! use atlas_gp::GaussianProcess;
//!
//! let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin()).collect();
//! let mut gp = GaussianProcess::default_matern();
//! gp.fit(&xs, &ys).unwrap();
//! let (mean, std) = gp.predict(&[0.5]);
//! assert!((mean - (0.5f64 * 3.0).sin()).abs() < 0.2);
//! assert!(std >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gpr;
pub mod kernel;

pub use gpr::{GaussianProcess, GpConfig};
pub use kernel::Kernel;
