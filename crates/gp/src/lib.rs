//! # atlas-gp
//!
//! Exact Gaussian-process regression for the Atlas reproduction: Matérn and
//! RBF kernels, Cholesky-based fitting, target normalisation and
//! marginal-likelihood hyper-parameter refinement — the Rust counterpart of
//! the scikit-learn `GaussianProcessRegressor` (Matérn ν = 2.5,
//! `normalize_y=True`) the paper uses in its online learning stage.
//!
//! The online hot path is incremental: [`GaussianProcess::observe`] absorbs
//! one observation in O(n²) per hyper-parameter candidate by extending live
//! Cholesky factors (exactly equivalent to a full refit, at a fraction of
//! the cost), and [`GaussianProcess::predict_batch`] resolves whole
//! candidate sets with one multi-right-hand-side solve — see the
//! [`gpr`] module docs for the mechanics.
//!
//! ## Quick start
//!
//! ```
//! use atlas_gp::GaussianProcess;
//!
//! let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin()).collect();
//! let mut gp = GaussianProcess::default_matern();
//! gp.fit(&xs, &ys).unwrap();
//! // Online: absorb fresh observations incrementally (O(n²), not O(n³)).
//! gp.observe(vec![1.5], (1.5f64 * 3.0).sin()).unwrap();
//! let (mean, std) = gp.predict(&[0.5]);
//! assert!((mean - (0.5f64 * 3.0).sin()).abs() < 0.2);
//! assert!(std >= 0.0);
//! // Batched prediction matches per-point prediction bit for bit.
//! let batch = gp.predict_batch(&[vec![0.25], vec![0.5]]);
//! assert_eq!(batch[1], gp.predict(&[0.5]));
//! ```
//!
//! ## Long horizons: bounded-memory sliding windows
//!
//! Unbounded, the GP costs O(n²) per observation and O(grid·n²/2) resident
//! factor memory — both growing with the age of the slice it serves. A
//! [`WindowPolicy`] caps the retained window: once full, each observation
//! evicts the oldest one by *downdating* the cached distances and every
//! live grid factor in place (Givens-style Cholesky row deletion + the
//! usual bordering append), so per-observation cost and memory plateau at
//! the capacity while selection keeps matching a full refit on the same
//! retained window.
//!
//! ```
//! use atlas_gp::{GaussianProcess, GpConfig, WindowPolicy};
//!
//! let mut gp = GaussianProcess::new(GpConfig {
//!     window: WindowPolicy::SlidingWindow { capacity: 64 },
//!     ..GpConfig::default()
//! });
//! for i in 0..500 {
//!     let x = (i % 40) as f64 / 40.0;
//!     gp.observe(vec![x], (x * 6.0).sin()).unwrap();
//! }
//! // The window — observations, distances, factors — has plateaued.
//! assert_eq!(gp.len(), 64);
//! assert!(gp.factor_bytes() <= 35 * (64 * 65 / 2) * 8);
//! let (mean, _) = gp.predict(&[0.5]);
//! assert!((mean - (0.5f64 * 6.0).sin()).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gpr;
pub mod kernel;

pub use gpr::{
    GaussianProcess, GpConfig, ScoringPrecision, WindowPolicy, GRID_PAR_MIN_CANDIDATES,
    GRID_PAR_MIN_N, PREDICT_PAR_MIN_CHUNK,
};
pub use kernel::Kernel;
