//! # atlas-gp
//!
//! Exact Gaussian-process regression for the Atlas reproduction: Matérn and
//! RBF kernels, Cholesky-based fitting, target normalisation and
//! marginal-likelihood hyper-parameter refinement — the Rust counterpart of
//! the scikit-learn `GaussianProcessRegressor` (Matérn ν = 2.5,
//! `normalize_y=True`) the paper uses in its online learning stage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gpr;
pub mod kernel;

pub use gpr::{GaussianProcess, GpConfig};
pub use kernel::Kernel;
