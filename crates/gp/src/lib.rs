//! # atlas-gp
//!
//! Exact Gaussian-process regression for the Atlas reproduction: Matérn and
//! RBF kernels, Cholesky-based fitting, target normalisation and
//! marginal-likelihood hyper-parameter refinement — the Rust counterpart of
//! the scikit-learn `GaussianProcessRegressor` (Matérn ν = 2.5,
//! `normalize_y=True`) the paper uses in its online learning stage.
//!
//! The online hot path is incremental: [`GaussianProcess::observe`] absorbs
//! one observation in O(n²) per hyper-parameter candidate by extending live
//! Cholesky factors (exactly equivalent to a full refit, at a fraction of
//! the cost), and [`GaussianProcess::predict_batch`] resolves whole
//! candidate sets with one multi-right-hand-side solve — see the
//! [`gpr`] module docs for the mechanics.
//!
//! ## Quick start
//!
//! ```
//! use atlas_gp::GaussianProcess;
//!
//! let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin()).collect();
//! let mut gp = GaussianProcess::default_matern();
//! gp.fit(&xs, &ys).unwrap();
//! // Online: absorb fresh observations incrementally (O(n²), not O(n³)).
//! gp.observe(vec![1.5], (1.5f64 * 3.0).sin()).unwrap();
//! let (mean, std) = gp.predict(&[0.5]);
//! assert!((mean - (0.5f64 * 3.0).sin()).abs() < 0.2);
//! assert!(std >= 0.0);
//! // Batched prediction matches per-point prediction bit for bit.
//! let batch = gp.predict_batch(&[vec![0.25], vec![0.5]]);
//! assert_eq!(batch[1], gp.predict(&[0.5]));
//! ```
//!
//! ## Long horizons: bounded-memory sliding windows
//!
//! Unbounded, the GP costs O(n²) per observation and O(grid·n²/2) resident
//! factor memory — both growing with the age of the slice it serves. A
//! [`WindowPolicy`] caps the retained window: once full, each observation
//! evicts the oldest one by *downdating* the cached distances and every
//! live grid factor in place (Givens-style Cholesky row deletion + the
//! usual bordering append), so per-observation cost and memory plateau at
//! the capacity while selection keeps matching a full refit on the same
//! retained window.
//!
//! ```
//! use atlas_gp::{GaussianProcess, GpConfig, WindowPolicy};
//!
//! let mut gp = GaussianProcess::new(GpConfig {
//!     window: WindowPolicy::SlidingWindow { capacity: 64 },
//!     ..GpConfig::default()
//! });
//! for i in 0..500 {
//!     let x = (i % 40) as f64 / 40.0;
//!     gp.observe(vec![x], (x * 6.0).sin()).unwrap();
//! }
//! // The window — observations, distances, factors — has plateaued.
//! assert_eq!(gp.len(), 64);
//! assert!(gp.factor_bytes() <= gp.grid_len() * (64 * 65 / 2) * 8);
//! let (mean, _) = gp.predict(&[0.5]);
//! assert!((mean - (0.5f64 * 6.0).sin()).abs() < 0.2);
//! ```
//!
//! ## Elastic hyper-parameter grid
//!
//! Even incrementally, every observation multiplies its O(n²) bordering
//! work — and its O(n²/2) resident factor — by the hyper-parameter grid
//! width (35 candidates by default), although the marginal-likelihood
//! winner almost always sits in a small stable neighbourhood of the grid.
//! [`GridMaintenance::Elastic`] keeps live factors only for the top-
//! `hot_set` candidates; every `refresh_every` factor mutations a
//! *tournament refresh* rebuilds the cold candidates from the retained
//! window and re-selects over the full grid, so at refresh points the
//! selection matches full-grid selection on the same window (promotions,
//! demotions and refreshes are observable via
//! [`GaussianProcess::grid_stats`]).
//!
//! ```
//! use atlas_gp::{GaussianProcess, GpConfig, GridMaintenance};
//!
//! let mut gp = GaussianProcess::new(GpConfig {
//!     grid_maintenance: GridMaintenance::Elastic {
//!         hot_set: 8,
//!         refresh_every: 32,
//!     },
//!     ..GpConfig::default()
//! });
//! let mut full = GaussianProcess::default_matern();
//! for i in 0..96 {
//!     let x = (i % 24) as f64 / 24.0;
//!     gp.observe(vec![x], (x * 6.0).sin()).unwrap();
//!     full.observe(vec![x], (x * 6.0).sin()).unwrap();
//! }
//! // Only the hot set keeps factors resident (~8/35 of the full grid)…
//! let stats = gp.grid_stats();
//! assert_eq!(stats.hot, 8);
//! assert!(stats.refreshes >= 1);
//! assert!(gp.factor_bytes() * 4 < full.factor_bytes());
//! // …and the last tournament re-selected over all 35 candidates.
//! assert_eq!(stats.grid_len, gp.grid_len());
//! let (mean, _) = gp.predict(&[0.5]);
//! assert!((mean - (0.5f64 * 6.0).sin()).abs() < 0.2);
//! ```
//!
//! ## Beyond the window: inducing-point sparse surrogate
//!
//! Windows bound cost by *discarding* old evidence.
//! [`SurrogateBasis::Inducing`] *compresses* it instead: `m` pseudo-inputs
//! (re-selected from the retained window every `refresh_every` mutations)
//! summarise the whole history through an m×m information factor, so each
//! observe folds in with one O(m²) rank-1 update and batch scoring is one
//! m×q sweep — independent of how many observations are retained. The
//! exact GP stays the bit-identical default, and while the window fits in
//! `m` the exact path runs untouched — see the
//! [sparse surrogate](gpr#inducing-point-sparse-surrogate) module docs.
//!
//! ```
//! use atlas_gp::{GaussianProcess, GpConfig, InducingSelection, SurrogateBasis};
//!
//! let mut gp = GaussianProcess::new(GpConfig {
//!     basis: SurrogateBasis::Inducing {
//!         m: 16,
//!         selection: InducingSelection::GreedyVariance,
//!         refresh_every: 64,
//!     },
//!     ..GpConfig::default()
//! });
//! for i in 0..200 {
//!     let x = (i % 50) as f64 / 50.0;
//!     gp.observe(vec![x], (x * 6.0).sin()).unwrap();
//! }
//! // The sparse path is active: 16 pseudo-inputs summarise all 200
//! // retained observations, and factor memory is at most two 16×16
//! // packed triangles per live candidate — independent of n.
//! assert!(gp.basis_active());
//! assert_eq!(gp.inducing_len(), 16);
//! assert_eq!(gp.len(), 200);
//! assert!(gp.factor_bytes() <= gp.grid_len() * 2 * (16 * 17 / 2) * 8);
//! let (mean, _) = gp.predict(&[0.5]);
//! assert!((mean - (0.5f64 * 6.0).sin()).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gpr;
pub mod kernel;

pub use gpr::{
    GaussianProcess, GpConfig, GridMaintenance, GridStats, InducingSelection, ScoringPrecision,
    SurrogateBasis, WindowPolicy, DEFAULT_INDUCING_M, DEFAULT_INDUCING_REFRESH,
    GRID_PAR_MIN_CANDIDATES, GRID_PAR_MIN_N, PREDICT_PAR_MIN_CHUNK,
};
pub use kernel::Kernel;
