//! Covariance kernels for Gaussian-process regression.
//!
//! The paper's online stage uses scikit-learn's `GaussianProcessRegressor`
//! with a Matérn kernel (ν = 2.5); RBF and Matérn 3/2 are provided as well
//! for the ablation experiments and the GP-based stage-1 baseline.

use atlas_math::linalg::l2_distance;

/// A stationary covariance kernel over `R^d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Squared-exponential (radial basis function) kernel.
    Rbf {
        /// Length scale.
        length_scale: f64,
        /// Signal variance (output scale squared).
        variance: f64,
    },
    /// Matérn kernel with ν = 3/2.
    Matern32 {
        /// Length scale.
        length_scale: f64,
        /// Signal variance.
        variance: f64,
    },
    /// Matérn kernel with ν = 5/2 (the paper's default).
    Matern52 {
        /// Length scale.
        length_scale: f64,
        /// Signal variance.
        variance: f64,
    },
}

impl Kernel {
    /// The paper's default kernel: Matérn ν = 2.5 with unit variance and
    /// unit length scale (hyper-parameters are refined during fitting).
    pub fn default_matern() -> Self {
        Kernel::Matern52 {
            length_scale: 1.0,
            variance: 1.0,
        }
    }

    /// Evaluates the kernel between two points.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_dist(l2_distance(a, b))
    }

    /// Evaluates the kernel as a function of the Euclidean distance `r`
    /// between two points.
    ///
    /// All kernels here are stationary and isotropic, so this is the whole
    /// covariance computation once distances are known. The GP regressor
    /// caches pairwise training distances and calls this for each
    /// hyper-parameter candidate instead of re-measuring distances n² times
    /// per candidate.
    pub fn eval_dist(&self, r: f64) -> f64 {
        match *self {
            Kernel::Rbf {
                length_scale,
                variance,
            } => variance * (-0.5 * (r / length_scale).powi(2)).exp(),
            Kernel::Matern32 {
                length_scale,
                variance,
            } => {
                let s = 3f64.sqrt() * r / length_scale;
                variance * (1.0 + s) * (-s).exp()
            }
            Kernel::Matern52 {
                length_scale,
                variance,
            } => {
                let s = 5f64.sqrt() * r / length_scale;
                variance * (1.0 + s + s * s / 3.0) * (-s).exp()
            }
        }
    }

    /// Single-precision twin of [`Kernel::eval_dist`], for the opt-in
    /// mixed-precision scoring path: same formulas, every operation in
    /// `f32`. Only acquisition *ranking* consumes these values — training
    /// and refits stay in f64.
    pub fn eval_dist_f32(&self, r: f32) -> f32 {
        match *self {
            Kernel::Rbf {
                length_scale,
                variance,
            } => {
                let (ls, v) = (length_scale as f32, variance as f32);
                v * (-0.5 * (r / ls).powi(2)).exp()
            }
            Kernel::Matern32 {
                length_scale,
                variance,
            } => {
                let s = 3f32.sqrt() * r / length_scale as f32;
                variance as f32 * (1.0 + s) * (-s).exp()
            }
            Kernel::Matern52 {
                length_scale,
                variance,
            } => {
                let s = 5f32.sqrt() * r / length_scale as f32;
                variance as f32 * (1.0 + s + s * s / 3.0) * (-s).exp()
            }
        }
    }

    /// Returns a copy with a different length scale.
    pub fn with_length_scale(&self, length_scale: f64) -> Self {
        let length_scale = length_scale.max(1e-6);
        match *self {
            Kernel::Rbf { variance, .. } => Kernel::Rbf {
                length_scale,
                variance,
            },
            Kernel::Matern32 { variance, .. } => Kernel::Matern32 {
                length_scale,
                variance,
            },
            Kernel::Matern52 { variance, .. } => Kernel::Matern52 {
                length_scale,
                variance,
            },
        }
    }

    /// Returns a copy with a different signal variance.
    pub fn with_variance(&self, variance: f64) -> Self {
        let variance = variance.max(1e-12);
        match *self {
            Kernel::Rbf { length_scale, .. } => Kernel::Rbf {
                length_scale,
                variance,
            },
            Kernel::Matern32 { length_scale, .. } => Kernel::Matern32 {
                length_scale,
                variance,
            },
            Kernel::Matern52 { length_scale, .. } => Kernel::Matern52 {
                length_scale,
                variance,
            },
        }
    }

    /// Current length scale.
    pub fn length_scale(&self) -> f64 {
        match *self {
            Kernel::Rbf { length_scale, .. }
            | Kernel::Matern32 { length_scale, .. }
            | Kernel::Matern52 { length_scale, .. } => length_scale,
        }
    }

    /// Current signal variance.
    pub fn variance(&self) -> f64 {
        match *self {
            Kernel::Rbf { variance, .. }
            | Kernel::Matern32 { variance, .. }
            | Kernel::Matern52 { variance, .. } => variance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<Kernel> {
        vec![
            Kernel::Rbf {
                length_scale: 1.0,
                variance: 2.0,
            },
            Kernel::Matern32 {
                length_scale: 1.0,
                variance: 2.0,
            },
            Kernel::Matern52 {
                length_scale: 1.0,
                variance: 2.0,
            },
        ]
    }

    #[test]
    fn kernel_at_zero_distance_equals_variance() {
        for k in kernels() {
            let x = [0.3, -0.7];
            assert!((k.eval(&x, &x) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_decays_with_distance() {
        for k in kernels() {
            let a = [0.0, 0.0];
            let near = [0.1, 0.0];
            let far = [3.0, 0.0];
            assert!(k.eval(&a, &near) > k.eval(&a, &far));
            assert!(k.eval(&a, &far) > 0.0);
            assert!(k.eval(&a, &far) < 2.0);
        }
    }

    #[test]
    fn eval_dist_agrees_with_eval() {
        for k in kernels() {
            let a = [0.1, 0.9, -2.0];
            let b = [1.4, -0.3, 0.2];
            let r = atlas_math::linalg::l2_distance(&a, &b);
            assert_eq!(k.eval(&a, &b), k.eval_dist(r));
            assert_eq!(k.eval_dist(0.0), k.variance());
        }
    }

    #[test]
    fn f32_eval_tracks_f64_within_rounding() {
        for k in kernels() {
            for r in [0.0, 0.05, 0.3, 1.7, 6.0, 25.0] {
                let got = f64::from(k.eval_dist_f32(r as f32));
                let want = k.eval_dist(r);
                assert!(
                    (got - want).abs() <= 1e-5 * (1.0 + want.abs()),
                    "{k:?} at r {r}: f32 {got} vs f64 {want}"
                );
            }
        }
    }

    #[test]
    fn kernel_is_symmetric() {
        for k in kernels() {
            let a = [0.1, 0.9, -2.0];
            let b = [1.4, -0.3, 0.2];
            assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-12);
        }
    }

    #[test]
    fn longer_length_scale_means_slower_decay() {
        let short = Kernel::default_matern().with_length_scale(0.5);
        let long = Kernel::default_matern().with_length_scale(5.0);
        let a = [0.0];
        let b = [1.0];
        assert!(long.eval(&a, &b) > short.eval(&a, &b));
    }

    #[test]
    fn setters_clamp_invalid_values() {
        let k = Kernel::default_matern()
            .with_length_scale(-1.0)
            .with_variance(-2.0);
        assert!(k.length_scale() > 0.0);
        assert!(k.variance() > 0.0);
    }
}
