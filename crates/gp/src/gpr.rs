//! Exact Gaussian-process regression.
//!
//! Mirrors the subset of scikit-learn's `GaussianProcessRegressor` the
//! paper relies on: a Matérn-ν2.5 kernel, a white-noise term, target
//! normalisation (`normalize_y=True`) and maximum-marginal-likelihood
//! hyper-parameter refinement over a small length-scale/variance grid.

use crate::kernel::Kernel;
use atlas_math::linalg::Matrix;
use atlas_math::{MathError, Result};

/// Configuration of the GP regressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpConfig {
    /// Covariance kernel (hyper-parameters act as the starting point for
    /// refinement).
    pub kernel: Kernel,
    /// Observation noise variance added to the kernel diagonal.
    pub noise_variance: f64,
    /// Whether to z-score the targets before fitting (the paper enables
    /// this).
    pub normalize_y: bool,
    /// Whether to refine the kernel hyper-parameters by maximising the log
    /// marginal likelihood over a small grid around the current values.
    pub optimize_hyperparameters: bool,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::default_matern(),
            noise_variance: 1e-4,
            normalize_y: true,
            optimize_hyperparameters: true,
        }
    }
}

/// A fitted (or empty) exact Gaussian-process regressor.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    config: GpConfig,
    kernel: Kernel,
    train_x: Vec<Vec<f64>>,
    /// Normalised training targets.
    train_y: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    /// Cholesky factor of `K + σ²I`.
    chol: Option<Matrix>,
    /// `(K + σ²I)⁻¹ y` (in normalised target space).
    alpha: Vec<f64>,
}

impl GaussianProcess {
    /// Creates an unfitted GP.
    pub fn new(config: GpConfig) -> Self {
        Self {
            kernel: config.kernel,
            config,
            train_x: Vec::new(),
            train_y: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
            chol: None,
            alpha: Vec::new(),
        }
    }

    /// Creates a GP with the paper's default configuration.
    pub fn default_matern() -> Self {
        Self::new(GpConfig::default())
    }

    /// Number of training observations.
    pub fn len(&self) -> usize {
        self.train_x.len()
    }

    /// Whether the GP has no training data.
    pub fn is_empty(&self) -> bool {
        self.train_x.is_empty()
    }

    /// The kernel currently in use (after any hyper-parameter refinement).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Fits the GP to the given observations, replacing previous data.
    pub fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<()> {
        if inputs.len() != targets.len() {
            return Err(MathError::ShapeMismatch {
                op: "GaussianProcess::fit",
                lhs: (inputs.len(), 1),
                rhs: (targets.len(), 1),
            });
        }
        if inputs.is_empty() {
            return Err(MathError::EmptyInput("GaussianProcess::fit"));
        }
        self.train_x = inputs.to_vec();
        let (y_mean, y_std) = if self.config.normalize_y {
            let mean = atlas_math::stats::mean(targets);
            let std = atlas_math::stats::std_dev(targets).max(1e-9);
            (mean, std)
        } else {
            (0.0, 1.0)
        };
        self.y_mean = y_mean;
        self.y_std = y_std;
        self.train_y = targets.iter().map(|y| (y - y_mean) / y_std).collect();

        if self.config.optimize_hyperparameters {
            self.kernel = self.select_hyperparameters()?;
        } else {
            self.kernel = self.config.kernel;
        }
        let (chol, alpha) = self.factorise(&self.kernel)?;
        self.chol = Some(chol);
        self.alpha = alpha;
        Ok(())
    }

    /// Adds one observation and refits (convenient for the online loop
    /// where observations arrive one at a time).
    pub fn add_observation(&mut self, input: Vec<f64>, target: f64) -> Result<()> {
        let mut xs = self.train_x.clone();
        let mut ys: Vec<f64> = self
            .train_y
            .iter()
            .map(|y| y * self.y_std + self.y_mean)
            .collect();
        xs.push(input);
        ys.push(target);
        self.fit(&xs, &ys)
    }

    fn factorise(&self, kernel: &Kernel) -> Result<(Matrix, Vec<f64>)> {
        let n = self.train_x.len();
        let mut k = Matrix::from_fn(n, n, |i, j| kernel.eval(&self.train_x[i], &self.train_x[j]));
        k.add_diagonal(self.config.noise_variance + 1e-8);
        let chol = k.cholesky()?;
        let alpha = chol.cholesky_solve(&self.train_y)?;
        Ok((chol, alpha))
    }

    /// Log marginal likelihood of the (normalised) training data under the
    /// given kernel.
    fn log_marginal_likelihood(&self, kernel: &Kernel) -> Result<f64> {
        let (chol, alpha) = self.factorise(kernel)?;
        let n = self.train_y.len() as f64;
        let data_fit: f64 = self
            .train_y
            .iter()
            .zip(alpha.iter())
            .map(|(y, a)| y * a)
            .sum();
        let log_det: f64 = chol.diagonal().iter().map(|d| d.ln()).sum::<f64>() * 2.0;
        Ok(-0.5 * data_fit - 0.5 * log_det - 0.5 * n * (2.0 * std::f64::consts::PI).ln())
    }

    /// Grid refinement of length scale and variance by maximising the log
    /// marginal likelihood (a lightweight stand-in for scikit-learn's
    /// L-BFGS restarts, adequate at the data sizes Atlas uses online).
    fn select_hyperparameters(&self) -> Result<Kernel> {
        let base = self.config.kernel;
        let mut best = base;
        let mut best_lml = f64::NEG_INFINITY;
        for &ls_mult in &[0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            for &var in &[0.25, 0.5, 1.0, 2.0, 4.0] {
                let candidate = base
                    .with_length_scale(base.length_scale() * ls_mult)
                    .with_variance(var);
                match self.log_marginal_likelihood(&candidate) {
                    Ok(lml) if lml > best_lml => {
                        best_lml = lml;
                        best = candidate;
                    }
                    _ => {}
                }
            }
        }
        Ok(best)
    }

    /// Predictive mean and standard deviation at `x` (in original target
    /// units). An unfitted GP returns the prior `(0, √variance)` scaled by
    /// the (identity) normalisation.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        if self.train_x.is_empty() || self.chol.is_none() {
            return (self.y_mean, self.kernel.variance().sqrt() * self.y_std);
        }
        let chol = self.chol.as_ref().expect("fitted GP has a Cholesky factor");
        let k_star: Vec<f64> = self
            .train_x
            .iter()
            .map(|xi| self.kernel.eval(x, xi))
            .collect();
        let mean_norm: f64 = k_star
            .iter()
            .zip(self.alpha.iter())
            .map(|(k, a)| k * a)
            .sum();
        // v = L⁻¹ k*, var = k(x,x) − vᵀv.
        let v = chol
            .solve_lower_triangular(&k_star)
            .expect("triangular solve on fitted GP");
        let prior_var = self.kernel.eval(x, x) + self.config.noise_variance;
        let var_norm = (prior_var - v.iter().map(|vi| vi * vi).sum::<f64>()).max(1e-12);
        (
            mean_norm * self.y_std + self.y_mean,
            var_norm.sqrt() * self.y_std,
        )
    }

    /// Predicts a batch of points.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_sine(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64 * 6.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin() * 10.0 + 50.0).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = train_sine(25);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let (mean, std) = gp.predict(x);
            assert!((mean - y).abs() < 0.5, "mean {mean} vs target {y}");
            assert!(std < 1.5, "std {std} should be small at a training point");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = train_sine(20);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let (_, std_in) = gp.predict(&[3.0]);
        let (_, std_out) = gp.predict(&[30.0]);
        assert!(std_out > std_in * 2.0, "out {std_out} vs in {std_in}");
    }

    #[test]
    fn predictions_are_sensible_between_points() {
        let (xs, ys) = train_sine(40);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let x = 2.05; // between grid points
        let (mean, _) = gp.predict(&[x]);
        assert!((mean - (x.sin() * 10.0 + 50.0)).abs() < 1.0);
    }

    #[test]
    fn unfitted_gp_returns_prior() {
        let gp = GaussianProcess::default_matern();
        let (mean, std) = gp.predict(&[1.0, 2.0]);
        assert_eq!(mean, 0.0);
        assert!(std > 0.0);
        assert!(gp.is_empty());
    }

    #[test]
    fn add_observation_refits_incrementally() {
        let mut gp = GaussianProcess::default_matern();
        gp.add_observation(vec![0.0], 1.0).unwrap();
        gp.add_observation(vec![1.0], 3.0).unwrap();
        gp.add_observation(vec![2.0], 5.0).unwrap();
        assert_eq!(gp.len(), 3);
        let (mean, _) = gp.predict(&[1.0]);
        assert!((mean - 3.0).abs() < 0.5);
    }

    #[test]
    fn normalisation_handles_large_offsets() {
        // Targets far from zero; without normalize_y the prior mean of 0
        // would badly bias the extrapolation.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1000.0 + x[0]).collect();
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let (mean, _) = gp.predict(&[4.5]);
        assert!((mean - 1004.5).abs() < 1.0);
    }

    #[test]
    fn mismatched_or_empty_inputs_error() {
        let mut gp = GaussianProcess::default_matern();
        assert!(gp.fit(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(gp.fit(&[], &[]).is_err());
    }

    #[test]
    fn duplicate_points_do_not_break_the_factorisation() {
        let xs = vec![vec![1.0], vec![1.0], vec![2.0]];
        let ys = vec![5.0, 5.1, 7.0];
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let (mean, _) = gp.predict(&[1.0]);
        assert!((mean - 5.05).abs() < 0.5);
    }

    #[test]
    fn hyperparameter_refinement_improves_fit_on_smooth_data() {
        let (xs, ys) = train_sine(30);
        let mut fixed = GaussianProcess::new(GpConfig {
            optimize_hyperparameters: false,
            kernel: Kernel::default_matern().with_length_scale(0.01),
            ..GpConfig::default()
        });
        fixed.fit(&xs, &ys).unwrap();
        let mut tuned = GaussianProcess::new(GpConfig {
            kernel: Kernel::default_matern().with_length_scale(0.01),
            ..GpConfig::default()
        });
        tuned.fit(&xs, &ys).unwrap();
        // Evaluate midway between training points: the tuned GP should
        // generalise better than the absurdly short fixed length scale.
        let x = [2.05];
        let truth = 2.05f64.sin() * 10.0 + 50.0;
        let err_fixed = (fixed.predict(&x).0 - truth).abs();
        let err_tuned = (tuned.predict(&x).0 - truth).abs();
        assert!(err_tuned <= err_fixed + 1e-9);
    }
}
