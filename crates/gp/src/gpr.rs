//! Exact Gaussian-process regression.
//!
//! Mirrors the subset of scikit-learn's `GaussianProcessRegressor` the
//! paper relies on: a Matérn-ν2.5 kernel, a white-noise term, target
//! normalisation (`normalize_y=True`) and maximum-marginal-likelihood
//! hyper-parameter refinement over a small length-scale/variance grid.
//!
//! ## Incremental hot path
//!
//! Atlas's online stage feeds the GP one observation at a time, so the
//! regressor is built around an O(n²) [`GaussianProcess::observe`] instead
//! of refitting from scratch (35 × O(n³) per step with the hyper-parameter
//! grid enabled):
//!
//! * pairwise training distances are cached once ([`DistanceCache`]), so
//!   every hyper-parameter candidate evaluates its kernel from the cached
//!   distances instead of re-measuring n² point pairs;
//! * **every** grid candidate keeps a live Cholesky factor that is extended
//!   by one bordering row per observation
//!   ([`atlas_math::linalg::Matrix::cholesky_append_row`]), so the
//!   marginal-likelihood selection over the grid stays *bit-for-bit*
//!   identical to a full refit while costing O(n²) per candidate;
//! * [`GaussianProcess::predict_batch`] resolves a whole candidate set with
//!   one multi-right-hand-side triangular solve (and
//!   [`GaussianProcess::predict_batch_par`] spreads large sets over scoped
//!   threads, deterministically).
//!
//! Raw targets are stored alongside the normalised ones, so renormalising
//! after each observation never round-trips through the de-normalised
//! values. A periodic full rebuild (every [`GpConfig::refit_every`]
//! observations) re-derives everything from scratch as a numerical
//! backstop and revives any grid candidate whose factor update failed.
//!
//! ## Bounded windows for long horizons
//!
//! Unbounded, the incremental path still grows with slice age: O(n²) per
//! observe and O(grid·n²/2) resident factor memory. A bounded
//! [`WindowPolicy`] caps the retained window — once full, each observe
//! evicts the oldest observation by downdating the distance cache and
//! every live grid factor **in place**
//! ([`atlas_math::linalg::PackedCholesky::shift_window`]: a Givens-style
//! row-deletion downdate plus the usual bordering append), so the
//! per-observe cost and footprint plateau at the capacity while the
//! marginal-likelihood selection keeps matching a full refit on the same
//! retained window. An evict+append is two factor mutations and advances
//! the [`GpConfig::refit_every`] counter twice, so the periodic rebuild
//! also bounds the downdates' numerical drift.
//!
//! ## Elastic hyper-parameter grid
//!
//! Even incrementally, every observe multiplies its O(n²) work — and its
//! O(n²/2) resident factor — by the full grid width, although the
//! marginal-likelihood winner almost always sits in a small stable
//! neighbourhood of the grid. [`GridMaintenance::Elastic`] keeps live
//! factors only for the top-`hot_set` candidates by log marginal
//! likelihood; cold candidates drop their factors and carry a stale LML.
//! Every `refresh_every` factor mutations — and at every
//! [`GpConfig::refit_every`] rebuild — a **tournament refresh** rebuilds
//! the cold factors from the retained window, re-selects over the full
//! grid, promotes any winning cold candidate (demoting the worst hot one)
//! and re-drops the cold factors, so at refresh points selection matches
//! full-grid selection on the same window. The hot factors are *not*
//! rebuilt by a refresh: their incremental drift stays bounded only by the
//! `refit_every` backstop, which a refresh deliberately does not reset.
//! Promotion/demotion/refresh counts are observable via
//! [`GaussianProcess::grid_stats`].
//!
//! ## Inducing-point sparse surrogate
//!
//! Windows cap the cost by *discarding* old evidence. The opt-in
//! [`SurrogateBasis::Inducing`] compresses it instead: a fixed budget of
//! `m` pseudo-inputs `Z` (re-selected from the retained window every
//! `refresh_every` mutations) summarises the whole history through the
//! subset-of-regressors information matrix `P = K_mn·K_nm + σ²·K̃_mm`.
//! While the retained window holds `n ≤ m` points the exact path runs
//! untouched (so `Inducing { m ≥ n }` is bit-for-bit the exact GP); once
//! `n` outgrows `m` the sparse path activates, dropping the O(n²)
//! distance cache and dense factors:
//!
//! * each observe folds the new point's cross-covariance column `φ` into
//!   every hot candidate's m×m factor by a rank-1 Givens update
//!   ([`PackedCholesky::rank_one_update`]) in O(m²) — independent of `n` —
//!   with window evictions handled by the hyperbolic
//!   [`PackedCholesky::rank_one_downdate`] dual; the projected targets
//!   `b = K_mn·y` are carried as O(m) raw-target accumulators so
//!   renormalisation (and [`WindowPolicy::Decayed`] age weighting) never
//!   rescans the window;
//! * selection maximises the sparse log marginal likelihood computed via
//!   the Woodbury data-fit `(yᵀy − |L_p⁻¹b|²)/σ²` and the
//!   matrix-determinant lemma `log|P| − log|K̃_mm| + (n−m)·ln σ²`;
//! * prediction solves two m×q multi-RHS sweeps
//!   ([`PackedCholesky::quad_form_diag`]) instead of an n×q one;
//! * every boundary — the [`GpConfig::refit_every`] backstop, the
//!   inducing-set refresh cadence, and the elastic-grid tournament — runs
//!   the same blocked re-factorisation from the retained window
//!   (re-selecting `Z`, resetting all cadences), so in sparse mode the
//!   basis refresh subsumes the refit backstop.
//!
//! The [`GridMaintenance::Elastic`] hot set composes: cold candidates drop
//! their m×m factors too, so per-observe cost is O(hot_set·m²) independent
//! of `n`. [`ScoringPrecision::MixedF32`] keeps no f32 shadow of the sparse
//! factors — ranking falls back to exact f64 scoring while the sparse path
//! is active (scoring is already m-bounded there).

use crate::kernel::Kernel;
use atlas_math::linalg::{
    Matrix, MatrixF32, PackedCholesky, PackedCholeskyF32, DEFAULT_CHOL_BLOCK,
};
use atlas_math::{MathError, Result};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Length-scale multipliers of the hyper-parameter refinement grid (applied
/// to the configured kernel's length scale).
const LS_MULTIPLIERS: [f64; 7] = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
/// Signal-variance levels of the hyper-parameter refinement grid.
const VARIANCES: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// How the regressor bounds its training window over a long horizon.
///
/// Atlas's online stage runs for the lifetime of a slice, and an unbounded
/// GP costs O(n²) per observation and O(grid·n²/2) resident factor memory —
/// both growing with slice age. A window policy caps the retained
/// observation set so the per-observation cost and footprint plateau at the
/// capacity, independent of how many observations ever flowed through:
/// eviction *downdates* the cached distances and every live grid factor in
/// place ([`atlas_math::linalg::PackedCholesky::shift_window`]) instead of
/// refitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowPolicy {
    /// Keep every observation (the historical behaviour, bit-for-bit).
    Unbounded,
    /// Keep only the newest `capacity` observations; the oldest one is
    /// evicted on each observe once the window is full. Selection and
    /// prediction match a full GP fit on the same retained window (to
    /// rounding error between periodic rebuilds — see
    /// [`GpConfig::refit_every`], which windowed eviction honours at twice
    /// the rate since an evict+append is two factor mutations).
    SlidingWindow {
        /// Maximum retained observations (values below 1 are treated as 1).
        capacity: usize,
    },
    /// Like [`WindowPolicy::SlidingWindow`], but targets are additionally
    /// down-weighted by age *before* eviction: the normalised target of an
    /// observation `age` steps old is scaled by `0.5^(age / half_life)`,
    /// shrinking stale residuals towards the prior mean so the posterior
    /// forgets gradually instead of at the eviction cliff. (The predictive
    /// variance is unweighted — uncertainty does not shrink with age.)
    Decayed {
        /// Maximum retained observations (values below 1 are treated as 1).
        capacity: usize,
        /// Age, in observations, at which a target's weight halves.
        half_life: f64,
    },
}

impl WindowPolicy {
    /// The retained-observation cap, if the policy bounds the window.
    pub fn capacity(&self) -> Option<usize> {
        match *self {
            WindowPolicy::Unbounded => None,
            WindowPolicy::SlidingWindow { capacity } | WindowPolicy::Decayed { capacity, .. } => {
                Some(capacity.max(1))
            }
        }
    }
}

/// Numeric precision of acquisition *scoring*
/// ([`GaussianProcess::predict_batch_ranking`]).
///
/// Training — observes, factor updates, hyper-parameter selection — is
/// always double precision; this knob only affects how candidate batches
/// are scored when the caller cares about the induced *ordering* rather
/// than the absolute values (acquisition maximisation picks an argmax).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoringPrecision {
    /// Score in f64 (the default): `predict_batch_ranking` is bit-for-bit
    /// [`GaussianProcess::predict_batch_par`].
    Exact,
    /// Score through an f32 shadow of the selected factor — half the
    /// memory traffic and twice the SIMD lanes per load. Guarded against
    /// drift: every `recheck_every`-th ranking call is *also* scored in
    /// f64 (and returns the f64 values); if the top-`top_k` candidate sets
    /// (by predictive mean) disagree, the shadow is demoted and scoring
    /// falls back to f64 until the next full rebuild re-arms it.
    MixedF32 {
        /// Score every n-th ranking call in f64 as a drift check (values
        /// below 1 are treated as 1 — every call is checked).
        recheck_every: usize,
        /// Size of the head-of-ranking set that must agree for the f32
        /// path to stay trusted.
        top_k: usize,
    },
}

/// How the hyper-parameter grid's per-candidate Cholesky factors are
/// maintained across observations.
///
/// Under [`GridMaintenance::Full`] every grid candidate keeps a live
/// factor, so each observe pays the full grid width in bordering work and
/// factor memory. [`GridMaintenance::Elastic`] restricts the live factors
/// to a hot set of the most likely candidates and periodically re-runs the
/// full-grid tournament — see the [elastic grid](crate::gpr#elastic-hyper-parameter-grid)
/// module docs for the mechanics and drift guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GridMaintenance {
    /// Every candidate keeps a live factor (the historical behaviour, bit
    /// for bit — the default).
    #[default]
    Full,
    /// Only the top-`hot_set` candidates by log marginal likelihood keep
    /// live factors; the rest drop theirs (freeing O(n²/2) doubles each)
    /// and carry a stale LML until the next tournament refresh.
    Elastic {
        /// Candidates retaining live factors between refreshes (clamped to
        /// `1..=grid_len`). The selection winner is always hot.
        hot_set: usize,
        /// Factor mutations between tournament refreshes (values below 1
        /// are treated as 1; an evict+append counts as two mutations, like
        /// [`GpConfig::refit_every`]).
        refresh_every: usize,
    },
}

/// Hot-set maintenance counters of the hyper-parameter grid
/// ([`GaussianProcess::grid_stats`]): how often candidates moved between
/// the hot and cold sets, and how many tournament refreshes ran. Under
/// [`GridMaintenance::Full`] everything stays hot and the counters stay 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GridStats {
    /// Cold candidates that won a live factor at a tournament (or rebuild).
    pub promotions: usize,
    /// Hot candidates that lost their live factor at a tournament (or
    /// rebuild).
    pub demotions: usize,
    /// Cadence-triggered tournament refreshes (periodic
    /// [`GpConfig::refit_every`] rebuilds re-run the tournament too but are
    /// counted by their own backstop, not here).
    pub refreshes: usize,
    /// Candidates currently in the hot set.
    pub hot: usize,
    /// Total grid candidates ([`GaussianProcess::grid_len`]).
    pub grid_len: usize,
}

/// Default inducing-point budget of [`SurrogateBasis::default_inducing`].
/// Calibrated with the `gp_bench` m-sweep (`inducing` section of
/// `BENCH_gp.json`) on the 1-CPU reference container.
pub const DEFAULT_INDUCING_M: usize = 256;
/// Default inducing-set refresh cadence (factor mutations between
/// pseudo-input re-selections) of [`SurrogateBasis::default_inducing`].
pub const DEFAULT_INDUCING_REFRESH: usize = 512;

/// How the inducing set is (re-)selected from the retained window at each
/// sparse rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InducingSelection {
    /// Farthest-point (max–min-distance) sweep seeded at the newest
    /// observation — a greedy max-variance heuristic that spreads the
    /// pseudo-inputs over the occupied region of the input space. O(n·m)
    /// per rebuild; deterministic (first maximum wins ties). The default.
    #[default]
    GreedyVariance,
    /// `m` evenly strided indices over the retained window, newest point
    /// always included. O(m) per rebuild; a cheap recency-biased fallback
    /// when the input geometry is uninformative.
    StridedRecent,
}

/// Which basis the surrogate posterior is expressed in.
///
/// The exact GP scales as O(n²) per observe; the inducing-point basis
/// compresses the retained history through `m` pseudo-inputs so observes
/// cost O(m²) and batch scoring O(m·q), independent of `n` — see the
/// [sparse surrogate](crate::gpr#inducing-point-sparse-surrogate) module
/// docs for the mechanics and equivalence guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SurrogateBasis {
    /// The full exact GP (the historical behaviour, bit for bit — the
    /// default).
    #[default]
    Exact,
    /// Subset-of-regressors sparse GP over `m` pseudo-inputs. While the
    /// retained window holds at most `m` points the exact path runs
    /// untouched (bit for bit); beyond that the sparse path activates.
    Inducing {
        /// Pseudo-input budget (values below 1 are treated as 1).
        m: usize,
        /// How pseudo-inputs are re-selected at each sparse rebuild.
        selection: InducingSelection,
        /// Factor mutations between inducing-set re-selections (values
        /// below 1 are treated as 1; an evict+append counts as two, like
        /// [`GpConfig::refit_every`]). In sparse mode this cadence
        /// subsumes the refit backstop — every boundary runs the same
        /// blocked re-factorisation.
        refresh_every: usize,
    },
}

impl SurrogateBasis {
    /// The calibrated default inducing basis
    /// (`m =` [`DEFAULT_INDUCING_M`], greedy-variance selection,
    /// `refresh_every =` [`DEFAULT_INDUCING_REFRESH`]).
    pub fn default_inducing() -> Self {
        SurrogateBasis::Inducing {
            m: DEFAULT_INDUCING_M,
            selection: InducingSelection::GreedyVariance,
            refresh_every: DEFAULT_INDUCING_REFRESH,
        }
    }
}

/// Configuration of the GP regressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpConfig {
    /// Covariance kernel (hyper-parameters act as the starting point for
    /// refinement).
    pub kernel: Kernel,
    /// Observation noise variance added to the kernel diagonal.
    pub noise_variance: f64,
    /// Whether to z-score the targets before fitting (the paper enables
    /// this).
    pub normalize_y: bool,
    /// Whether to refine the kernel hyper-parameters by maximising the log
    /// marginal likelihood over a small grid around the current values.
    pub optimize_hyperparameters: bool,
    /// How many incremental [`GaussianProcess::observe`] calls may elapse
    /// before the factors are rebuilt from scratch. The bordering update is
    /// exact, so this is a numerical backstop (and revives grid candidates
    /// whose update failed), not a correctness requirement. Under a
    /// bounded [`GpConfig::window`] it also bounds the drift of the
    /// eviction downdates — an evict+append counts as **two** factor
    /// mutations towards this threshold.
    pub refit_every: usize,
    /// How the training window is bounded over a long horizon
    /// ([`WindowPolicy::Unbounded`] — the default — reproduces the
    /// historical unbounded behaviour bit for bit).
    pub window: WindowPolicy,
    /// Numeric precision of acquisition scoring
    /// ([`ScoringPrecision::Exact`] — the default — keeps every prediction
    /// path in f64, bit for bit).
    pub scoring_precision: ScoringPrecision,
    /// How the hyper-parameter grid's per-candidate factors are maintained
    /// ([`GridMaintenance::Full`] — the default — keeps every candidate's
    /// factor live, reproducing the historical behaviour bit for bit).
    pub grid_maintenance: GridMaintenance,
    /// Which basis the surrogate posterior is expressed in
    /// ([`SurrogateBasis::Exact`] — the default — keeps the full exact GP,
    /// bit for bit).
    pub basis: SurrogateBasis,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::default_matern(),
            noise_variance: 1e-4,
            normalize_y: true,
            optimize_hyperparameters: true,
            refit_every: 64,
            window: WindowPolicy::Unbounded,
            scoring_precision: ScoringPrecision::Exact,
            grid_maintenance: GridMaintenance::Full,
            basis: SurrogateBasis::Exact,
        }
    }
}

/// Cached pairwise Euclidean distances between training inputs, stored as a
/// packed lower triangle (row `i` holds `d(i, 0..=i)`), so appending one
/// point is O(n·d) and never repacks existing entries.
#[derive(Debug, Clone, Default)]
struct DistanceCache {
    packed: Vec<f64>,
    n: usize,
}

impl DistanceCache {
    fn clear(&mut self) {
        self.packed.clear();
        self.n = 0;
    }

    /// Appends the distances from `x_new` to every point in `xs` (the
    /// current training set, *before* `x_new` is pushed into it).
    fn append(&mut self, xs: &[Vec<f64>], x_new: &[f64]) {
        debug_assert_eq!(xs.len(), self.n);
        self.packed.reserve(self.n + 1);
        for x in xs {
            self.packed.push(atlas_math::linalg::l2_distance(x_new, x));
        }
        self.packed.push(0.0);
        self.n += 1;
    }

    /// Removes training point 0, shifting every remaining index down by
    /// one. Row `i` of the packed triangle holds `d(i, 0..=i)`, so the
    /// compaction just drops each row's leading entry — O(n²) moves, no
    /// fresh allocation, and the freed tail capacity is reused by the next
    /// [`DistanceCache::append`].
    fn remove_oldest(&mut self) {
        let n = self.n;
        debug_assert!(n > 0, "remove_oldest on an empty cache");
        let mut w = 0;
        for i in 1..n {
            let start = i * (i + 1) / 2;
            self.packed.copy_within(start + 1..start + i + 1, w);
            w += i;
        }
        self.packed.truncate(w);
        self.n = n - 1;
    }

    /// Distance between training points `i` and `j`.
    fn get(&self, i: usize, j: usize) -> f64 {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.packed[hi * (hi + 1) / 2 + lo]
    }
}

/// Thread-parallel thresholds of the GP hot paths. Calibrated with the
/// `gp_bench` sweep (`thread_calibration` in `BENCH_gp.json`): below these
/// sizes the per-spawn cost of scoped threads exceeds the arithmetic they
/// absorb, so the code stays serial and byte-identical either way.
///
/// Minimum candidates per worker chunk in
/// [`GaussianProcess::predict_batch_par`]: each chunk performs a full
/// multi-RHS triangular solve, so chunks need enough columns to amortise
/// the spawn (and to keep whole column tiles per worker).
pub const PREDICT_PAR_MIN_CHUNK: usize = 64;
/// Minimum hyper-parameter grid size for the per-candidate factor sweep to
/// fan out over threads.
pub const GRID_PAR_MIN_CANDIDATES: usize = 8;
/// Minimum training-set size for the grid sweep fan-out: each candidate's
/// bordering update is O(n²), so small n makes the sweep spawn-bound.
pub const GRID_PAR_MIN_N: usize = 128;

/// Thread-count override for a sweep over the hyper-parameter grid:
/// `Some(1)` (serial) unless there are enough candidates and enough data
/// per candidate for the fan-out to pay for thread spawns, `None` (use the
/// machine default) otherwise.
fn grid_pin(grid_len: usize, n: usize) -> Option<usize> {
    if grid_len < GRID_PAR_MIN_CANDIDATES || n < GRID_PAR_MIN_N {
        Some(1)
    } else {
        None
    }
}

/// Factorises `K + noise·I` for one candidate kernel straight from the
/// packed distance triangle: the cache stores row `i`'s distances
/// `d(i, 0..=i)` at offset `i(i+1)/2` — the exact layout
/// [`PackedCholesky`] factors in place — so the kernel matrix is built by
/// mapping `eval_dist` over the packed entries (the diagonal distances are
/// 0, giving `k(x,x)`) plus the noise on the diagonal, with no n² dense
/// staging. Bit-for-bit identical to building the dense matrix and calling
/// [`PackedCholesky::cholesky`], since both routes feed the same blocked
/// kernel the same triangle.
fn factor_from_dist(kernel: &Kernel, dist: &DistanceCache, noise: f64) -> Option<PackedCholesky> {
    let mut data: Vec<f64> = dist.packed.iter().map(|&d| kernel.eval_dist(d)).collect();
    for i in 0..dist.n {
        data[i * (i + 1) / 2 + i] += noise;
    }
    PackedCholesky::cholesky_from_packed(data, DEFAULT_CHOL_BLOCK).ok()
}

/// One hyper-parameter candidate with its live Cholesky factor of
/// `K + (σ² + jitter)·I` (or `None` after a failed factorisation, until the
/// next full rebuild — or, under [`GridMaintenance::Elastic`], while the
/// candidate sits in the cold set).
#[derive(Debug, Clone)]
struct GridPoint {
    kernel: Kernel,
    chol: Option<PackedCholesky>,
    /// Whether the candidate is in the hot set (always `true` under
    /// [`GridMaintenance::Full`]). Cold candidates carry no factor and are
    /// revived only at tournament refreshes and rebuilds.
    hot: bool,
    /// The candidate's log marginal likelihood from its most recent
    /// evaluation — live for hot candidates (updated every selection),
    /// stale for cold ones (their last tournament).
    stale_lml: Option<f64>,
    /// The candidate's m×m sparse-basis state while the inducing-point
    /// path is active (`None` on the exact path, for cold elastic
    /// candidates, and after a failed factorisation until the next sparse
    /// rebuild). Never coexists with `chol`.
    sparse: Option<SparseState>,
}

/// One candidate's subset-of-regressors state over the current inducing
/// set `Z` (m pseudo-inputs): two m×m Cholesky factors plus the O(m)
/// raw-target accumulators that recover the projected targets under any
/// normalisation without rescanning the window.
#[derive(Debug, Clone)]
struct SparseState {
    /// Cholesky factor of `K̃_mm = K(Z, Z) + jitter·I`.
    l_mm: PackedCholesky,
    /// Cholesky factor of the information matrix
    /// `P = K_mn·K_nm + σ²·K̃_mm`, maintained by rank-1 Givens
    /// updates/downdates between rebuilds.
    l_p: PackedCholesky,
    /// `Σᵢ wᵢ·φᵢ·yᵢ_raw` over the retained window (`φᵢ = K(Z, xᵢ)`,
    /// `wᵢ` the [`WindowPolicy::Decayed`] age weight or 1): with the sum
    /// `s` below, the normalised projected targets are
    /// `b = (u − ȳ·s)/σ_y` in O(m).
    u: Vec<f64>,
    /// `Σᵢ wᵢ·φᵢ` over the retained window.
    s: Vec<f64>,
}

/// Shared (kernel-independent) inducing-set state while the sparse path is
/// active: the pseudo-inputs and the mutation count since they were last
/// re-selected.
#[derive(Debug, Clone)]
struct InducingState {
    /// The `m` pseudo-inputs, selected from the retained window.
    z: Vec<Vec<f64>>,
    /// Factor mutations since the inducing set was last re-selected
    /// (drives the [`SurrogateBasis::Inducing`] `refresh_every` cadence).
    since_basis: usize,
}

/// Running promotion/demotion/refresh counts of the elastic grid.
#[derive(Debug, Clone, Copy, Default)]
struct GridCounters {
    promotions: usize,
    demotions: usize,
    refreshes: usize,
}

/// The f32 shadow of the *selected* candidate's factor, refreshed after
/// every kernel selection ([`GaussianProcess::select_best`]) when
/// [`ScoringPrecision::MixedF32`] is enabled. Scoring-only state: the f64
/// factor remains the source of truth for every observe and refit.
#[derive(Debug, Clone)]
struct ScoringShadow {
    chol: PackedCholeskyF32,
    alpha: Vec<f32>,
    /// Training inputs, flattened row-major (`n × dim`) and cast to f32,
    /// so the kernel column build streams contiguous memory.
    train_flat: Vec<f32>,
    dim: usize,
}

/// Drift guard of the f32 scoring path. Interior mutability because
/// ranking calls take `&self`; relaxed ordering suffices — the counter and
/// the demotion flag are monotone hints, not synchronisation points.
#[derive(Debug, Default)]
struct ScoringGuard {
    /// Ranking calls since the last full rebuild (drives the periodic f64
    /// recheck cadence).
    calls: AtomicUsize,
    /// Set when a recheck caught a top-k ranking disagreement: scoring
    /// stays in f64 until the next full rebuild re-arms the shadow.
    demoted: AtomicBool,
}

impl Clone for ScoringGuard {
    fn clone(&self) -> Self {
        Self {
            calls: AtomicUsize::new(self.calls.load(Ordering::Relaxed)),
            demoted: AtomicBool::new(self.demoted.load(Ordering::Relaxed)),
        }
    }
}

/// A fitted (or empty) exact Gaussian-process regressor.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    config: GpConfig,
    kernel: Kernel,
    train_x: Vec<Vec<f64>>,
    /// Raw (un-normalised) training targets — the source of truth.
    train_y_raw: Vec<f64>,
    /// Normalised training targets, re-derived from the raw ones.
    train_y: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    dist: DistanceCache,
    /// Hyper-parameter candidates with live factors (a single entry when
    /// refinement is disabled).
    grid: Vec<GridPoint>,
    /// Index into `grid` of the currently selected kernel.
    best_idx: usize,
    /// `(K + σ²I)⁻¹ y` (in normalised target space) under the selected
    /// kernel.
    alpha: Vec<f64>,
    /// Incremental observations since the last full rebuild.
    since_rebuild: usize,
    /// Factor mutations since the last tournament refresh (only consulted
    /// under [`GridMaintenance::Elastic`]).
    since_refresh: usize,
    /// Promotion/demotion/refresh counts of the elastic grid.
    counters: GridCounters,
    /// f32 shadow of the selected factor (mixed-precision scoring only).
    shadow: Option<ScoringShadow>,
    /// Drift guard of the f32 scoring path.
    guard: ScoringGuard,
    /// Inducing-set state while the sparse path is active (`None` on the
    /// exact path — including under [`SurrogateBasis::Inducing`] while the
    /// retained window still fits in `m`).
    inducing: Option<InducingState>,
}

impl GaussianProcess {
    /// Creates an unfitted GP.
    pub fn new(config: GpConfig) -> Self {
        Self {
            kernel: config.kernel,
            grid: Self::build_grid(&config),
            config,
            train_x: Vec::new(),
            train_y_raw: Vec::new(),
            train_y: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
            dist: DistanceCache::default(),
            best_idx: 0,
            alpha: Vec::new(),
            since_rebuild: 0,
            since_refresh: 0,
            counters: GridCounters::default(),
            shadow: None,
            guard: ScoringGuard::default(),
            inducing: None,
        }
    }

    /// Creates a GP with the paper's default configuration.
    pub fn default_matern() -> Self {
        Self::new(GpConfig::default())
    }

    fn build_grid(config: &GpConfig) -> Vec<GridPoint> {
        let base = config.kernel;
        if !config.optimize_hyperparameters {
            return vec![GridPoint {
                kernel: base,
                chol: None,
                hot: true,
                stale_lml: None,
                sparse: None,
            }];
        }
        let mut grid = Vec::with_capacity(LS_MULTIPLIERS.len() * VARIANCES.len());
        for ls_mult in LS_MULTIPLIERS {
            for var in VARIANCES {
                grid.push(GridPoint {
                    kernel: base
                        .with_length_scale(base.length_scale() * ls_mult)
                        .with_variance(var),
                    chol: None,
                    hot: true,
                    stale_lml: None,
                    sparse: None,
                });
            }
        }
        grid
    }

    /// Number of training observations.
    pub fn len(&self) -> usize {
        self.train_x.len()
    }

    /// Whether the GP has no training data.
    pub fn is_empty(&self) -> bool {
        self.train_x.is_empty()
    }

    /// The kernel currently in use (after any hyper-parameter refinement).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The raw (un-normalised) training targets (the retained window under
    /// a bounded [`WindowPolicy`]).
    pub fn raw_targets(&self) -> &[f64] {
        &self.train_y_raw
    }

    /// The window policy bounding the training set.
    pub fn window(&self) -> WindowPolicy {
        self.config.window
    }

    /// Replaces the window policy in place. Shrinking the window below the
    /// currently retained count evicts the oldest observations immediately
    /// (through a full rebuild on the retained tail); otherwise the fitted
    /// state is re-derived under the new policy (the age weighting of
    /// [`WindowPolicy::Decayed`] lives in the normalised targets) and
    /// future observes enforce the new bound.
    pub fn set_window(&mut self, window: WindowPolicy) -> Result<()> {
        self.config.window = window;
        let n = self.train_x.len();
        match window.capacity() {
            Some(cap) if n > cap => {
                self.train_x.drain(..n - cap);
                self.train_y_raw.drain(..n - cap);
                self.rebuild()
            }
            _ if n > 0 => {
                if self.inducing.is_some() {
                    // The sparse projected-target accumulators embed the
                    // old policy's age weights — re-derive them wholesale.
                    return self.rebuild();
                }
                self.update_normalisation();
                self.select_best()
            }
            _ => Ok(()),
        }
    }

    /// Number of hyper-parameter grid candidates (one when refinement is
    /// disabled; the length-scale × variance product grid otherwise — use
    /// this instead of hardcoding the grid shape).
    pub fn grid_len(&self) -> usize {
        self.grid.len()
    }

    /// The grid-maintenance policy in effect.
    pub fn grid_maintenance(&self) -> GridMaintenance {
        self.config.grid_maintenance
    }

    /// Replaces the grid-maintenance policy in place. On a fitted GP this
    /// triggers a full rebuild: every candidate's factor is re-derived from
    /// the retained window and the hot set re-selected under the new policy
    /// (switching to [`GridMaintenance::Full`] revives every factor;
    /// switching to [`GridMaintenance::Elastic`] drops the cold ones).
    pub fn set_grid_maintenance(&mut self, grid_maintenance: GridMaintenance) -> Result<()> {
        self.config.grid_maintenance = grid_maintenance;
        if self.train_x.is_empty() {
            return Ok(());
        }
        self.rebuild()
    }

    /// The surrogate-basis policy in effect.
    pub fn basis(&self) -> SurrogateBasis {
        self.config.basis
    }

    /// Replaces the surrogate-basis policy in place. On a fitted GP this
    /// triggers a full rebuild under the new policy: switching to
    /// [`SurrogateBasis::Inducing`] with the retained window beyond `m`
    /// activates the sparse path (selecting pseudo-inputs and dropping the
    /// dense distance cache and factors); switching back — or raising `m`
    /// past the retained count — re-derives the exact state from scratch.
    pub fn set_basis(&mut self, basis: SurrogateBasis) -> Result<()> {
        self.config.basis = basis;
        if self.train_x.is_empty() {
            return Ok(());
        }
        self.rebuild()
    }

    /// Whether the inducing-point sparse path is currently active (the
    /// retained window has outgrown the basis budget `m`). Always `false`
    /// under [`SurrogateBasis::Exact`].
    pub fn basis_active(&self) -> bool {
        self.inducing.is_some()
    }

    /// The current pseudo-input count (0 while the exact path is active).
    pub fn inducing_len(&self) -> usize {
        self.inducing.as_ref().map_or(0, |ind| ind.z.len())
    }

    /// The current pseudo-inputs (empty while the exact path is active).
    /// Frozen between sparse rebuilds — the incremental folds update the
    /// factors over this basis, not the basis itself.
    pub fn inducing_points(&self) -> &[Vec<f64>] {
        self.inducing.as_ref().map_or(&[], |ind| ind.z.as_slice())
    }

    /// Whether `n` retained points put the configured basis into sparse
    /// mode.
    fn basis_activates(&self, n: usize) -> bool {
        match self.config.basis {
            SurrogateBasis::Inducing { m, .. } => n > m.max(1),
            SurrogateBasis::Exact => false,
        }
    }

    /// The retained-window size after absorbing `k` more observations
    /// (accounting for evictions under a bounded window).
    fn retained_after(&self, k: usize) -> usize {
        let n = self.train_x.len() + k;
        match self.config.window.capacity() {
            Some(cap) => n.min(cap),
            None => n,
        }
    }

    /// Hot-set maintenance counters of the hyper-parameter grid: lifetime
    /// promotion/demotion/tournament-refresh counts plus the current hot
    /// and total candidate counts. Under [`GridMaintenance::Full`] the
    /// counters stay 0 and every candidate is hot.
    pub fn grid_stats(&self) -> GridStats {
        GridStats {
            promotions: self.counters.promotions,
            demotions: self.counters.demotions,
            refreshes: self.counters.refreshes,
            hot: self.grid.iter().filter(|p| p.hot).count(),
            grid_len: self.grid.len(),
        }
    }

    /// Per-candidate log marginal likelihoods from each candidate's most
    /// recent evaluation, in grid order: live values for hot candidates
    /// (refreshed every selection), stale ones for cold candidates (their
    /// last tournament), `None` for candidates never successfully
    /// evaluated.
    pub fn grid_lmls(&self) -> Vec<Option<f64>> {
        self.grid.iter().map(|p| p.stale_lml).collect()
    }

    /// Bytes of Cholesky-factor storage resident across every live
    /// hyper-parameter grid candidate. Under a bounded [`WindowPolicy`]
    /// this plateaus at O(grid · capacity²/2) doubles regardless of how
    /// many observations ever flowed through; unbounded it grows as
    /// O(grid · n²/2) — and under [`GridMaintenance::Elastic`] the grid
    /// multiplier shrinks from the full grid width to `hot_set`.
    pub fn factor_bytes(&self) -> usize {
        self.grid
            .iter()
            .map(|p| {
                p.chol.as_ref().map_or(0, PackedCholesky::resident_bytes)
                    + p.sparse
                        .as_ref()
                        .map_or(0, |s| s.l_mm.resident_bytes() + s.l_p.resident_bytes())
            })
            .sum()
    }

    /// Fits the GP to the given observations, replacing previous data.
    pub fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<()> {
        if inputs.len() != targets.len() {
            return Err(MathError::ShapeMismatch {
                op: "GaussianProcess::fit",
                lhs: (inputs.len(), 1),
                rhs: (targets.len(), 1),
            });
        }
        if inputs.is_empty() {
            return Err(MathError::EmptyInput("GaussianProcess::fit"));
        }
        // A bounded window retains only the newest `capacity` observations,
        // exactly as if the older ones had been evicted one by one.
        let keep = match self.config.window.capacity() {
            Some(cap) if inputs.len() > cap => inputs.len() - cap,
            _ => 0,
        };
        self.train_x = inputs[keep..].to_vec();
        self.train_y_raw = targets[keep..].to_vec();
        self.rebuild()
    }

    /// Absorbs one observation in O(n²) per hyper-parameter candidate.
    ///
    /// The cached pairwise distances gain one row, every live grid factor
    /// is extended by one bordering row (bit-for-bit identical to a full
    /// refactorisation), the targets are renormalised from the raw values,
    /// and the marginal-likelihood selection re-runs over the grid — so the
    /// resulting posterior and selected hyper-parameters are exactly those
    /// a full [`GaussianProcess::fit`] on the extended data would produce,
    /// at a fraction of the cost.
    pub fn observe(&mut self, input: Vec<f64>, target: f64) -> Result<()> {
        // The inducing-point path has its own O(m²) fold; it also takes
        // over the observe that first pushes the retained window past `m`.
        if self.inducing.is_some() || self.basis_activates(self.retained_after(1)) {
            return self.observe_sparse(input, target);
        }
        if self.train_x.is_empty() {
            self.train_x.push(input);
            self.train_y_raw.push(target);
            return self.rebuild();
        }
        // A full window evicts its oldest observation before absorbing the
        // new one. An evict+append is **two** factor mutations (a deletion
        // downdate plus a bordering append), so it advances the
        // periodic-rebuild counter twice — keeping the numerical backstop
        // honest about how much incremental drift has accumulated.
        let evicting = self
            .config
            .window
            .capacity()
            .is_some_and(|cap| self.train_x.len() >= cap);
        self.since_rebuild += if evicting { 2 } else { 1 };
        self.since_refresh += if evicting { 2 } else { 1 };
        if self.since_rebuild >= self.config.refit_every.max(1) {
            if evicting {
                self.train_x.remove(0);
                self.train_y_raw.remove(0);
            }
            self.train_x.push(input);
            self.train_y_raw.push(target);
            return self.rebuild();
        }
        if evicting {
            // Buffer-reusing eviction: the point vectors and the packed
            // distance rows are compacted in place, so the retained-window
            // footprint plateaus instead of growing with slice age.
            self.train_x.remove(0);
            self.train_y_raw.remove(0);
            self.dist.remove_oldest();
        }
        self.dist.append(&self.train_x, &input);
        self.train_x.push(input);
        self.train_y_raw.push(target);
        self.update_normalisation();
        let n = self.train_x.len();
        let noise = self.config.noise_variance + 1e-8;
        let dist = &self.dist;
        let extend_point = |point: &mut GridPoint| {
            let Some(chol) = point.chol.as_mut() else {
                return;
            };
            let mut row = Vec::with_capacity(n);
            for j in 0..n - 1 {
                row.push(point.kernel.eval_dist(dist.get(n - 1, j)));
            }
            row.push(point.kernel.eval_dist(0.0) + noise);
            let updated = if evicting {
                chol.shift_window(&row)
            } else {
                chol.append_row(&row)
            };
            if updated.is_err() {
                // Degenerate extension for this candidate: retire its factor
                // until the next full rebuild.
                point.chol = None;
            }
        };
        // The candidates are independent, so large updates fan the grid out
        // over scoped threads; each candidate's arithmetic is unchanged, so
        // the result does not depend on the thread count.
        let pin = grid_pin(self.grid.len(), n);
        atlas_math::parallel::par_for_each_mut(&mut self.grid, 1, pin, extend_point);
        if self.refresh_due() {
            return self.tournament_refresh();
        }
        self.select_best()
    }

    /// Absorbs a whole round of observations at once.
    ///
    /// When nothing forces per-observation work — the factor is live, no
    /// eviction is due within the batch, and the batch does not cross the
    /// periodic-rebuild boundary — every grid factor is extended with **one**
    /// batched bordering update
    /// ([`atlas_math::linalg::PackedCholesky::append_rows`]): the shared
    /// n-row prefix of the bordering rows is resolved by a single multi-RHS
    /// triangular solve instead of `k` single-RHS solves, and the target
    /// renormalisation plus grid selection run once instead of `k` times.
    /// The arithmetic per factor element is unchanged, so the resulting
    /// state is **bit-for-bit** identical to calling
    /// [`GaussianProcess::observe`] per observation. Otherwise (bootstrap,
    /// eviction, rebuild boundary) it falls back to exactly that sequential
    /// chain.
    pub fn observe_batch(&mut self, batch: Vec<(Vec<f64>, f64)>) -> Result<()> {
        let k = batch.len();
        if k <= 1 {
            for (x, y) in batch {
                self.observe(x, y)?;
            }
            return Ok(());
        }
        let n = self.train_x.len();
        // The inducing-point path folds observations one at a time (each
        // fold is O(m²) with no shared triangular solve to amortise), and
        // crossing the activation threshold mid-batch needs the
        // per-observation path too — batching is bit-identical by
        // definition since the sequential chain *is* the semantics.
        if self.inducing.is_some() || self.basis_activates(self.retained_after(k)) {
            for (x, y) in batch {
                self.observe(x, y)?;
            }
            return Ok(());
        }
        let no_evict = self.config.window.capacity().is_none_or(|cap| n + k <= cap);
        let crosses_rebuild = self.since_rebuild + k >= self.config.refit_every.max(1);
        // A batch that crosses the tournament-refresh cadence also takes
        // the sequential path, so the refresh fires at exactly the same
        // observation it would have sequentially.
        let crosses_refresh = match self.config.grid_maintenance {
            GridMaintenance::Elastic { refresh_every, .. } => {
                self.since_refresh + k >= refresh_every.max(1)
            }
            GridMaintenance::Full => false,
        };
        if n == 0 || !no_evict || crosses_rebuild || crosses_refresh {
            for (x, y) in batch {
                self.observe(x, y)?;
            }
            return Ok(());
        }
        self.since_rebuild += k;
        self.since_refresh += k;
        for (x, y) in batch {
            self.dist.append(&self.train_x, &x);
            self.train_x.push(x);
            self.train_y_raw.push(y);
        }
        self.update_normalisation();
        let noise = self.config.noise_variance + 1e-8;
        let dist = &self.dist;
        let extend_point = |point: &mut GridPoint| {
            let Some(chol) = point.chol.as_mut() else {
                return;
            };
            let rows: Vec<Vec<f64>> = (n..n + k)
                .map(|r| {
                    let mut row = Vec::with_capacity(r + 1);
                    for j in 0..r {
                        row.push(point.kernel.eval_dist(dist.get(r, j)));
                    }
                    row.push(point.kernel.eval_dist(0.0) + noise);
                    row
                })
                .collect();
            if chol.append_rows(&rows).is_err() {
                // Same retirement semantics as the sequential chain: a
                // degenerate extension benches this candidate until the
                // next full rebuild.
                point.chol = None;
            }
        };
        let pin = grid_pin(self.grid.len(), n + k);
        atlas_math::parallel::par_for_each_mut(&mut self.grid, 1, pin, extend_point);
        self.select_best()
    }

    /// Recomputes the target normalisation from the raw targets, applying
    /// the [`WindowPolicy::Decayed`] age weighting when configured.
    fn update_normalisation(&mut self) {
        let (y_mean, y_std) = if self.config.normalize_y {
            let mean = atlas_math::stats::mean(&self.train_y_raw);
            let std = atlas_math::stats::std_dev(&self.train_y_raw).max(1e-9);
            (mean, std)
        } else {
            (0.0, 1.0)
        };
        self.y_mean = y_mean;
        self.y_std = y_std;
        self.train_y.clear();
        self.train_y
            .extend(self.train_y_raw.iter().map(|y| (y - y_mean) / y_std));
        if let WindowPolicy::Decayed { half_life, .. } = self.config.window {
            // Newest observation has age 0; a target's weight halves every
            // `half_life` observations. Non-positive half-lives collapse to
            // "only the newest target matters".
            let rate = 1.0 / half_life.max(1e-9);
            let n = self.train_y.len();
            for (i, y) in self.train_y.iter_mut().enumerate() {
                *y *= 0.5f64.powf((n - 1 - i) as f64 * rate);
            }
        }
    }

    /// Rebuilds the distance cache and every grid factor from scratch, then
    /// reselects the kernel. Dispatches to the sparse rebuild when the
    /// configured basis is in (or entering) sparse mode; dropping back —
    /// fewer retained points than `m`, or a switch to
    /// [`SurrogateBasis::Exact`] — deactivates the sparse path and
    /// re-derives the dense state.
    fn rebuild(&mut self) -> Result<()> {
        if self.basis_activates(self.train_x.len()) {
            return self.sparse_rebuild();
        }
        if self.inducing.is_some() {
            self.inducing = None;
            for point in &mut self.grid {
                point.sparse = None;
            }
        }
        self.update_normalisation();
        let n = self.train_x.len();
        self.dist.clear();
        for i in 0..n {
            // Reuses the append path so packing stays in one place; the
            // borrow split keeps `train_x[..i]` readable while appending.
            let (existing, rest) = self.train_x.split_at(i);
            self.dist.append(existing, &rest[0]);
        }
        let noise = self.config.noise_variance + 1e-8;
        let dist = &self.dist;
        let refit_point = |point: &mut GridPoint| {
            point.chol = factor_from_dist(&point.kernel, dist, noise);
        };
        let pin = grid_pin(self.grid.len(), n);
        atlas_math::parallel::par_for_each_mut(&mut self.grid, 1, pin, refit_point);
        self.since_rebuild = 0;
        self.since_refresh = 0;
        // A from-scratch factorisation resets whatever drift demoted the
        // f32 scoring shadow: re-arm it.
        self.guard.calls.store(0, Ordering::Relaxed);
        self.guard.demoted.store(false, Ordering::Relaxed);
        // Every factor was just revived, so the rebuild doubles as a
        // tournament point: select over the full grid and re-derive the
        // hot set (a no-op under `GridMaintenance::Full`).
        self.select_full()
    }

    /// Tournament refresh of the elastic grid: rebuild every cold
    /// candidate's factor from the currently retained window, re-select
    /// over the full grid, re-derive the hot set from the result (which
    /// drops the cold losers' factors again). Hot factors are *not*
    /// rebuilt — their incremental drift stays bounded only by the
    /// [`GpConfig::refit_every`] backstop, which this deliberately leaves
    /// running.
    fn tournament_refresh(&mut self) -> Result<()> {
        let n = self.train_x.len();
        let noise = self.config.noise_variance + 1e-8;
        let dist = &self.dist;
        let revive_cold = |point: &mut GridPoint| {
            if point.hot {
                return;
            }
            point.chol = factor_from_dist(&point.kernel, dist, noise);
        };
        let pin = grid_pin(self.grid.len(), n);
        atlas_math::parallel::par_for_each_mut(&mut self.grid, 1, pin, revive_cold);
        self.since_refresh = 0;
        self.counters.refreshes += 1;
        self.select_full()
    }

    /// Absorbs one observation through the sparse inducing-point path in
    /// O(m²) per hot candidate, independent of the retained-window size.
    ///
    /// Cadence boundaries — the [`GpConfig::refit_every`] backstop, the
    /// inducing-set `refresh_every`, the elastic tournament, and the
    /// activation transition itself — all route to the same blocked
    /// [`GaussianProcess::sparse_rebuild`]. Otherwise the new point's
    /// cross-covariance column `φ` folds into every live candidate's
    /// information factor by one rank-1 Givens update
    /// ([`PackedCholesky::rank_one_update`]), an eviction is the
    /// hyperbolic downdate dual, and the raw-target accumulators absorb
    /// the new target (scaled by the [`WindowPolicy::Decayed`] age step
    /// when configured — appending shifts every retained age by one, which
    /// multiplies every weight by the same factor).
    fn observe_sparse(&mut self, input: Vec<f64>, target: f64) -> Result<()> {
        let evicting = self
            .config
            .window
            .capacity()
            .is_some_and(|cap| self.train_x.len() >= cap);
        let muts = if evicting { 2 } else { 1 };
        self.since_rebuild += muts;
        self.since_refresh += muts;
        if let Some(ind) = self.inducing.as_mut() {
            ind.since_basis += muts;
        }
        let transition = self.inducing.is_none();
        let basis_due = match (self.inducing.as_ref(), self.config.basis) {
            (Some(ind), SurrogateBasis::Inducing { refresh_every, .. }) => {
                ind.since_basis >= refresh_every.max(1)
            }
            _ => false,
        };
        let backstop_due = self.since_rebuild >= self.config.refit_every.max(1);
        let elastic_due = self.refresh_due();
        if transition || basis_due || backstop_due || elastic_due {
            if !transition && !basis_due && !backstop_due {
                // Purely the elastic cadence: count it as a tournament
                // refresh like the exact path does (the sparse rebuild
                // revives and re-ranks the full grid).
                self.counters.refreshes += 1;
            }
            if evicting {
                self.train_x.remove(0);
                self.train_y_raw.remove(0);
            }
            self.train_x.push(input);
            self.train_y_raw.push(target);
            return self.rebuild();
        }
        let ind = self
            .inducing
            .as_ref()
            .expect("sparse fold requires a live inducing set");
        let m = ind.z.len();
        let d_new: Vec<f64> = ind
            .z
            .iter()
            .map(|z| atlas_math::linalg::l2_distance(z, &input))
            .collect();
        // Eviction data is captured before the window mutates: the evicted
        // point's cross-distances, raw target and current age weight.
        let evict = evicting.then(|| {
            let d_old: Vec<f64> = ind
                .z
                .iter()
                .map(|z| atlas_math::linalg::l2_distance(z, &self.train_x[0]))
                .collect();
            let w_old = self.decay_weight(self.train_x.len() - 1);
            (d_old, self.train_y_raw[0], w_old)
        });
        let g = self.decay_step();
        let fold = |point: &mut GridPoint| {
            let Some(state) = point.sparse.as_mut() else {
                return;
            };
            if let Some((d_old, raw_old, w_old)) = &evict {
                let phi_old: Vec<f64> = d_old.iter().map(|&r| point.kernel.eval_dist(r)).collect();
                if state.l_p.rank_one_downdate(&phi_old).is_err() {
                    // Indefinite downdate: retire this candidate's sparse
                    // state until the next sparse rebuild.
                    point.sparse = None;
                    return;
                }
                for ((u, s), p) in state.u.iter_mut().zip(&mut state.s).zip(&phi_old) {
                    *u -= w_old * raw_old * p;
                    *s -= w_old * p;
                }
            }
            if g != 1.0 {
                for (u, s) in state.u.iter_mut().zip(&mut state.s) {
                    *u *= g;
                    *s *= g;
                }
            }
            let phi_new: Vec<f64> = d_new.iter().map(|&r| point.kernel.eval_dist(r)).collect();
            if state.l_p.rank_one_update(&phi_new).is_err() {
                point.sparse = None;
                return;
            }
            for ((u, s), p) in state.u.iter_mut().zip(&mut state.s).zip(&phi_new) {
                *u += target * p;
                *s += p;
            }
        };
        let pin = grid_pin(self.grid.len(), m);
        atlas_math::parallel::par_for_each_mut(&mut self.grid, 1, pin, fold);
        if evicting {
            self.train_x.remove(0);
            self.train_y_raw.remove(0);
        }
        self.train_x.push(input);
        self.train_y_raw.push(target);
        self.update_normalisation();
        self.select_best()
    }

    /// (Re-)establishes the sparse inducing-point state from the retained
    /// window: re-selects the pseudo-inputs, assembles each candidate's
    /// rectangular cross-covariance `Φ = K(Z, X)`, accumulates the Gram
    /// information matrix `P = Φ·Φᵀ + σ²·K̃_mm` straight into a packed
    /// triangle ([`Matrix::gram_lower_packed`]) and factors both m×m
    /// systems with the blocked kernel. The O(n²) distance cache and any
    /// dense factors are dropped — the sparse path never consults them,
    /// and freeing them is the memory win. Doubles as a tournament point:
    /// selection re-runs over the full grid and the elastic hot set is
    /// re-derived.
    fn sparse_rebuild(&mut self) -> Result<()> {
        self.update_normalisation();
        let n = self.train_x.len();
        let m = match self.config.basis {
            SurrogateBasis::Inducing { m, .. } => m.max(1).min(n),
            SurrogateBasis::Exact => unreachable!("sparse rebuild requires an inducing basis"),
        };
        self.dist.clear();
        for point in &mut self.grid {
            point.chol = None;
        }
        let z_idx = self.select_inducing(m);
        let z: Vec<Vec<f64>> = z_idx.iter().map(|&i| self.train_x[i].clone()).collect();
        // Kernel-independent geometry, shared across the whole grid (the
        // kernels are stationary): the m×n inducing↔training
        // cross-distances and the packed m×m inducing-pair triangle.
        let cross = atlas_math::linalg::cross_distances(&z, &self.train_x);
        let mut z_dist = Vec::with_capacity(m * (m + 1) / 2);
        for i in 0..m {
            for j in 0..=i {
                z_dist.push(atlas_math::linalg::l2_distance(&z[i], &z[j]));
            }
        }
        let weights: Vec<f64> = (0..n).map(|i| self.decay_weight(n - 1 - i)).collect();
        let noise = self.config.noise_variance + 1e-8;
        let train_y_raw = &self.train_y_raw;
        let z_dist = &z_dist;
        let cross = &cross;
        let weights = &weights;
        let build = |point: &mut GridPoint| {
            point.sparse = None;
            // K̃_mm = K(Z, Z) + jitter·I, factored for the variance term
            // and the determinant-lemma correction.
            let mut kmm: Vec<f64> = z_dist.iter().map(|&r| point.kernel.eval_dist(r)).collect();
            for i in 0..m {
                kmm[i * (i + 1) / 2 + i] += 1e-8;
            }
            let Ok(l_mm) = PackedCholesky::cholesky_from_packed(kmm.clone(), DEFAULT_CHOL_BLOCK)
            else {
                return;
            };
            let phi = Matrix::from_fn(m, n, |i, j| point.kernel.eval_dist(cross[(i, j)]));
            let mut p_packed = phi.gram_lower_packed();
            for (pe, ke) in p_packed.iter_mut().zip(&kmm) {
                *pe += noise * ke;
            }
            let Ok(l_p) = PackedCholesky::cholesky_from_packed(p_packed, DEFAULT_CHOL_BLOCK) else {
                return;
            };
            let mut u = vec![0.0; m];
            let mut s = vec![0.0; m];
            for i in 0..m {
                for ((p, y), w) in phi.row(i).iter().zip(train_y_raw).zip(weights) {
                    u[i] += w * y * p;
                    s[i] += w * p;
                }
            }
            point.sparse = Some(SparseState { l_mm, l_p, u, s });
        };
        let pin = grid_pin(self.grid.len(), n);
        atlas_math::parallel::par_for_each_mut(&mut self.grid, 1, pin, build);
        self.inducing = Some(InducingState { z, since_basis: 0 });
        self.since_rebuild = 0;
        self.since_refresh = 0;
        // The sparse path keeps no f32 shadow; clear the drift guard like
        // any from-scratch factorisation.
        self.guard.calls.store(0, Ordering::Relaxed);
        self.guard.demoted.store(false, Ordering::Relaxed);
        self.select_full()
    }

    /// Selects `m` pseudo-input indices (ascending) from the retained
    /// window according to the configured [`InducingSelection`].
    fn select_inducing(&self, m: usize) -> Vec<usize> {
        let n = self.train_x.len();
        debug_assert!(m >= 1 && m <= n);
        let selection = match self.config.basis {
            SurrogateBasis::Inducing { selection, .. } => selection,
            SurrogateBasis::Exact => InducingSelection::default(),
        };
        match selection {
            InducingSelection::StridedRecent => {
                if m == 1 {
                    return vec![n - 1];
                }
                let mut idx: Vec<usize> = (0..m).map(|k| n - 1 - k * (n - 1) / (m - 1)).collect();
                idx.sort_unstable();
                idx.dedup();
                idx
            }
            InducingSelection::GreedyVariance => {
                let mut taken = vec![false; n];
                let mut chosen = Vec::with_capacity(m);
                taken[n - 1] = true;
                chosen.push(n - 1);
                let newest = &self.train_x[n - 1];
                let mut min_d: Vec<f64> = self
                    .train_x
                    .iter()
                    .map(|x| atlas_math::linalg::l2_distance(x, newest))
                    .collect();
                while chosen.len() < m {
                    // First maximum wins ties, so the sweep is
                    // deterministic regardless of the input order history.
                    let mut best = usize::MAX;
                    let mut best_d = f64::NEG_INFINITY;
                    for (i, &d) in min_d.iter().enumerate() {
                        if !taken[i] && d > best_d {
                            best_d = d;
                            best = i;
                        }
                    }
                    taken[best] = true;
                    chosen.push(best);
                    let picked = &self.train_x[best];
                    for (i, d) in min_d.iter_mut().enumerate() {
                        let nd = atlas_math::linalg::l2_distance(&self.train_x[i], picked);
                        if nd < *d {
                            *d = nd;
                        }
                    }
                }
                chosen.sort_unstable();
                chosen
            }
        }
    }

    /// The per-observation age factor of [`WindowPolicy::Decayed`] (1.0
    /// under the other policies): appending one observation multiplies
    /// every retained target's age weight by this.
    fn decay_step(&self) -> f64 {
        match self.config.window {
            WindowPolicy::Decayed { half_life, .. } => 0.5f64.powf(1.0 / half_life.max(1e-9)),
            _ => 1.0,
        }
    }

    /// The [`WindowPolicy::Decayed`] weight of a target `age` observations
    /// old (1.0 under the other policies), matching
    /// [`GaussianProcess::update_normalisation`].
    fn decay_weight(&self, age: usize) -> f64 {
        match self.config.window {
            WindowPolicy::Decayed { half_life, .. } => {
                let rate = 1.0 / half_life.max(1e-9);
                0.5f64.powf(age as f64 * rate)
            }
            _ => 1.0,
        }
    }

    /// Whether the elastic grid's tournament-refresh cadence has elapsed.
    fn refresh_due(&self) -> bool {
        match self.config.grid_maintenance {
            GridMaintenance::Elastic { refresh_every, .. } => {
                self.since_refresh >= refresh_every.max(1)
            }
            GridMaintenance::Full => false,
        }
    }

    /// Log marginal likelihood of the (normalised) training data given a
    /// candidate's factor and forward-solve vector `z = L⁻¹y` (so the
    /// data-fit term `yᵀK⁻¹y = |z|²` needs no backward substitution — that
    /// is only run for the selected candidate).
    fn log_marginal_likelihood(&self, chol: &PackedCholesky, z: &[f64]) -> f64 {
        let n = self.train_y.len() as f64;
        let data_fit: f64 = z.iter().map(|v| v * v).sum();
        -0.5 * data_fit - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Reselects the kernel by maximising the log marginal likelihood over
    /// the live grid candidates (a lightweight stand-in for scikit-learn's
    /// L-BFGS restarts, adequate at the data sizes Atlas uses online),
    /// refreshes `alpha` for the winner and re-derives the f32 scoring
    /// shadow from the selected factor.
    fn select_best(&mut self) -> Result<()> {
        let res = self.select_pass(false);
        self.refresh_shadow(res.is_ok());
        res
    }

    /// Full-grid selection at a tournament point (refresh or rebuild):
    /// every live candidate is evaluated and, under
    /// [`GridMaintenance::Elastic`], the hot set is re-derived from the
    /// result.
    fn select_full(&mut self) -> Result<()> {
        let res = self.select_pass(true);
        self.refresh_shadow(res.is_ok());
        res
    }

    /// Rebuilds the f32 scoring shadow from the selected factor (or drops
    /// it when scoring is exact / the selection failed).
    fn refresh_shadow(&mut self, selected: bool) {
        self.shadow = None;
        if !selected
            || !matches!(
                self.config.scoring_precision,
                ScoringPrecision::MixedF32 { .. }
            )
        {
            return;
        }
        let Some(chol) = self.active_chol() else {
            return;
        };
        let shadow = ScoringShadow {
            chol: PackedCholeskyF32::from_f64(chol),
            alpha: self.alpha.iter().map(|a| *a as f32).collect(),
            train_flat: self
                .train_x
                .iter()
                .flat_map(|x| x.iter().map(|v| *v as f32))
                .collect(),
            dim: self.train_x.first().map_or(0, Vec::len),
        };
        self.shadow = Some(shadow);
    }

    fn select_pass(&mut self, apply_hot: bool) -> Result<()> {
        if self.inducing.is_some() {
            return self.select_pass_sparse(apply_hot);
        }
        if !self.config.optimize_hyperparameters {
            let point = &self.grid[0];
            let chol = point.chol.as_ref().ok_or(MathError::NotPositiveDefinite)?;
            let z = chol.solve_lower(&self.train_y)?;
            self.alpha = chol.solve_upper(&z)?;
            self.best_idx = 0;
            self.kernel = point.kernel;
            return Ok(());
        }
        // Evaluate every live candidate (in parallel when worthwhile), then
        // pick the winner serially in grid order so ties resolve the same
        // way regardless of the thread count. Under the elastic grid, "the
        // live candidates" is the hot set between tournaments and the full
        // grid at them.
        let eval_point = |point: &GridPoint| -> Option<(f64, Vec<f64>)> {
            let chol = point.chol.as_ref()?;
            let z = chol.solve_lower(&self.train_y).ok()?;
            Some((self.log_marginal_likelihood(chol, &z), z))
        };
        let pin = grid_pin(self.grid.len(), self.train_y.len());
        let evals: Vec<Option<(f64, Vec<f64>)>> =
            atlas_math::parallel::par_chunks_map(&self.grid, 1, pin, |_, points| {
                points.iter().map(eval_point).collect()
            });
        let mut lmls: Vec<Option<f64>> = Vec::with_capacity(evals.len());
        let mut best: Option<(usize, f64, Vec<f64>)> = None;
        for (i, eval) in evals.into_iter().enumerate() {
            let Some((lml, z)) = eval else {
                lmls.push(None);
                continue;
            };
            lmls.push(Some(lml));
            self.grid[i].stale_lml = Some(lml);
            if best.as_ref().is_none_or(|(_, b, _)| lml > *b) {
                best = Some((i, lml, z));
            }
        }
        let res = match best {
            Some((i, _, z)) => {
                self.best_idx = i;
                self.kernel = self.grid[i].kernel;
                self.alpha = self.grid[i]
                    .chol
                    .as_ref()
                    .expect("selected candidate has a live factor")
                    .solve_upper(&z)?;
                Ok(())
            }
            None => Err(MathError::NotPositiveDefinite),
        };
        if apply_hot && res.is_ok() {
            self.apply_hot_set(&lmls);
        }
        res
    }

    /// Sparse-basis mirror of [`GaussianProcess::select_pass`]: candidates
    /// are ranked by the sparse log marginal likelihood and the winner's
    /// weight vector `ŵ = P⁻¹·b` replaces `alpha` (predictive means are
    /// `φ*ᵀ·ŵ`). Each candidate's evaluation is O(m²), so selection never
    /// rescans the window.
    fn select_pass_sparse(&mut self, apply_hot: bool) -> Result<()> {
        let n = self.train_y.len();
        let noise = self.config.noise_variance + 1e-8;
        // yᵀy over the normalised (weighted) targets — O(n) once per
        // selection, shared across every candidate.
        let y_dot: f64 = self.train_y.iter().map(|y| y * y).sum();
        let eval_point = |point: &GridPoint| -> Option<(f64, Vec<f64>)> {
            let state = point.sparse.as_ref()?;
            let b = self.projected_targets(state);
            let half = state.l_p.solve_lower(&b).ok()?;
            Some((self.sparse_lml(state, &half, y_dot, n, noise), half))
        };
        if !self.config.optimize_hyperparameters {
            let Some((_, half)) = eval_point(&self.grid[0]) else {
                return Err(MathError::NotPositiveDefinite);
            };
            self.alpha = self.grid[0]
                .sparse
                .as_ref()
                .expect("evaluated candidate has sparse state")
                .l_p
                .solve_upper(&half)?;
            self.best_idx = 0;
            self.kernel = self.grid[0].kernel;
            return Ok(());
        }
        let pin = grid_pin(self.grid.len(), self.inducing_len());
        let evals: Vec<Option<(f64, Vec<f64>)>> =
            atlas_math::parallel::par_chunks_map(&self.grid, 1, pin, |_, points| {
                points.iter().map(eval_point).collect()
            });
        let mut lmls: Vec<Option<f64>> = Vec::with_capacity(evals.len());
        let mut best: Option<(usize, f64, Vec<f64>)> = None;
        for (i, eval) in evals.into_iter().enumerate() {
            let Some((lml, half)) = eval else {
                lmls.push(None);
                continue;
            };
            lmls.push(Some(lml));
            self.grid[i].stale_lml = Some(lml);
            if best.as_ref().is_none_or(|(_, b, _)| lml > *b) {
                best = Some((i, lml, half));
            }
        }
        let res = match best {
            Some((i, _, half)) => {
                self.best_idx = i;
                self.kernel = self.grid[i].kernel;
                self.alpha = self.grid[i]
                    .sparse
                    .as_ref()
                    .expect("selected candidate has sparse state")
                    .l_p
                    .solve_upper(&half)?;
                Ok(())
            }
            None => Err(MathError::NotPositiveDefinite),
        };
        if apply_hot && res.is_ok() {
            self.apply_hot_set(&lmls);
        }
        res
    }

    /// The normalised projected targets `b = Φ·y` of one candidate,
    /// recovered in O(m) from the raw-target accumulators (which carry the
    /// window's age weights): `b = (u − ȳ·s)/σ_y`.
    fn projected_targets(&self, state: &SparseState) -> Vec<f64> {
        state
            .u
            .iter()
            .zip(&state.s)
            .map(|(u, s)| (u - self.y_mean * s) / self.y_std)
            .collect()
    }

    /// Sparse log marginal likelihood via the Woodbury identity for the
    /// data-fit term and the matrix-determinant lemma for the log
    /// determinant: given `half = L_p⁻¹·b`,
    /// `yᵀ(σ²I + K_nm·K̃⁻¹·K_mn)⁻¹y = (yᵀy − |half|²)/σ²` and
    /// `ln|σ²I + K_nm·K̃⁻¹·K_mn| = ln|P| − ln|K̃_mm| + (n−m)·ln σ²`.
    fn sparse_lml(
        &self,
        state: &SparseState,
        half: &[f64],
        y_dot: f64,
        n: usize,
        noise: f64,
    ) -> f64 {
        let m = state.u.len();
        let data_fit = (y_dot - half.iter().map(|v| v * v).sum::<f64>()) / noise;
        let log_det =
            state.l_p.log_det() - state.l_mm.log_det() + (n as f64 - m as f64) * noise.ln();
        -0.5 * (data_fit + log_det + n as f64 * (2.0 * std::f64::consts::PI).ln())
    }

    /// Re-derives the hot set from a full-grid evaluation: the top-`hot_set`
    /// candidates by log marginal likelihood (unevaluated candidates rank
    /// last; ties break towards the lower grid index, matching the winner
    /// pick) keep their factors, everyone else drops theirs. The selection
    /// winner has the maximal LML, so it is always hot. Under
    /// [`GridMaintenance::Full`] every candidate is (re-)marked hot and
    /// nothing is dropped or counted.
    fn apply_hot_set(&mut self, lmls: &[Option<f64>]) {
        let GridMaintenance::Elastic { hot_set, .. } = self.config.grid_maintenance else {
            for point in &mut self.grid {
                point.hot = true;
            }
            return;
        };
        let hot_set = hot_set.clamp(1, self.grid.len());
        let mut order: Vec<usize> = (0..self.grid.len()).collect();
        order.sort_by(|&a, &b| match (lmls[a], lmls[b]) {
            (Some(x), Some(y)) => y
                .partial_cmp(&x)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b)),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.cmp(&b),
        });
        let mut want = vec![false; self.grid.len()];
        for &i in &order[..hot_set] {
            want[i] = true;
        }
        for (point, &hot) in self.grid.iter_mut().zip(&want) {
            if hot && !point.hot {
                self.counters.promotions += 1;
            } else if !hot && point.hot {
                self.counters.demotions += 1;
            }
            point.hot = hot;
            if !hot {
                point.chol = None;
                point.sparse = None;
            }
        }
    }

    /// The Cholesky factor backing predictions, if the GP is usable.
    fn active_chol(&self) -> Option<&PackedCholesky> {
        if self.train_x.is_empty() {
            return None;
        }
        self.grid.get(self.best_idx).and_then(|p| p.chol.as_ref())
    }

    /// The selected candidate's sparse state, when the inducing-point path
    /// is active and the winner's factors are live.
    fn active_sparse(&self) -> Option<&SparseState> {
        self.inducing.as_ref()?;
        self.grid.get(self.best_idx).and_then(|p| p.sparse.as_ref())
    }

    /// Sparse-basis mirror of [`GaussianProcess::predict`]: two m-vector
    /// triangular solves instead of an n-vector one. The DTC predictive
    /// variance is `k** + σ² − |L_mm⁻¹·φ*|² + σ²·|L_p⁻¹·φ*|²` — the prior
    /// minus what the inducing set explains, plus the weight-uncertainty
    /// term (clamped away from zero like the exact path).
    fn predict_sparse(&self, state: &SparseState, x: &[f64]) -> (f64, f64) {
        let z = &self
            .inducing
            .as_ref()
            .expect("active sparse state implies a live inducing set")
            .z;
        let phi: Vec<f64> = z.iter().map(|zi| self.kernel.eval(x, zi)).collect();
        let mean_norm: f64 = phi.iter().zip(self.alpha.iter()).map(|(p, a)| p * a).sum();
        let t = state
            .l_mm
            .solve_lower(&phi)
            .expect("triangular solve on live sparse factor");
        let v = state
            .l_p
            .solve_lower(&phi)
            .expect("triangular solve on live sparse factor");
        let noise = self.config.noise_variance + 1e-8;
        let prior_var = self.kernel.eval(x, x) + self.config.noise_variance;
        let var_norm = (prior_var - t.iter().map(|ti| ti * ti).sum::<f64>()
            + noise * v.iter().map(|vi| vi * vi).sum::<f64>())
        .max(1e-12);
        (
            mean_norm * self.y_std + self.y_mean,
            var_norm.sqrt() * self.y_std,
        )
    }

    /// Sparse-basis mirror of [`GaussianProcess::predict_batch`]: the
    /// whole candidate batch goes through two m×q multi-RHS quad-form
    /// sweeps ([`PackedCholesky::quad_form_diag`]) instead of an n×q
    /// solve. Bit-for-bit identical to calling
    /// [`GaussianProcess::predict`] per point.
    fn predict_batch_sparse(&self, state: &SparseState, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let z = &self
            .inducing
            .as_ref()
            .expect("active sparse state implies a live inducing set")
            .z;
        let m = z.len();
        let q = xs.len();
        if q == 0 {
            return Vec::new();
        }
        // Column j of `phi` is φ* for candidate j.
        let mut phi = Matrix::zeros(m, q);
        for (j, x) in xs.iter().enumerate() {
            for (i, zi) in z.iter().enumerate() {
                phi[(i, j)] = self.kernel.eval(x, zi);
            }
        }
        let (Ok(t), Ok(v)) = (
            state.l_mm.quad_form_diag(&phi),
            state.l_p.quad_form_diag(&phi),
        ) else {
            return xs.iter().map(|x| self.predict(x)).collect();
        };
        let noise = self.config.noise_variance + 1e-8;
        xs.iter()
            .enumerate()
            .map(|(j, x)| {
                let mean_norm: f64 = (0..m).map(|i| phi[(i, j)] * self.alpha[i]).sum();
                let prior_var = self.kernel.eval(x, x) + self.config.noise_variance;
                let var_norm = (prior_var - t[j] + noise * v[j]).max(1e-12);
                (
                    mean_norm * self.y_std + self.y_mean,
                    var_norm.sqrt() * self.y_std,
                )
            })
            .collect()
    }

    /// Predictive mean and standard deviation at `x` (in original target
    /// units). An unfitted GP returns the prior `(0, √variance)` scaled by
    /// the (identity) normalisation.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        if let Some(state) = self.active_sparse() {
            return self.predict_sparse(state, x);
        }
        let Some(chol) = self.active_chol() else {
            return (self.y_mean, self.kernel.variance().sqrt() * self.y_std);
        };
        let k_star: Vec<f64> = self
            .train_x
            .iter()
            .map(|xi| self.kernel.eval(x, xi))
            .collect();
        let mean_norm: f64 = k_star
            .iter()
            .zip(self.alpha.iter())
            .map(|(k, a)| k * a)
            .sum();
        // v = L⁻¹ k*, var = k(x,x) − vᵀv.
        let v = chol
            .solve_lower(&k_star)
            .expect("triangular solve on fitted GP");
        let prior_var = self.kernel.eval(x, x) + self.config.noise_variance;
        let var_norm = (prior_var - v.iter().map(|vi| vi * vi).sum::<f64>()).max(1e-12);
        (
            mean_norm * self.y_std + self.y_mean,
            var_norm.sqrt() * self.y_std,
        )
    }

    /// Predicts a batch of points with one multi-right-hand-side triangular
    /// solve. Results are bit-for-bit identical to calling
    /// [`GaussianProcess::predict`] per point.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        if let Some(state) = self.active_sparse() {
            return self.predict_batch_sparse(state, xs);
        }
        let Some(chol) = self.active_chol() else {
            return xs.iter().map(|x| self.predict(x)).collect();
        };
        let n = self.train_x.len();
        let m = xs.len();
        if m == 0 {
            return Vec::new();
        }
        // Column j of `b` is k* for candidate j.
        let mut b = Matrix::zeros(n, m);
        for (j, x) in xs.iter().enumerate() {
            for (i, xi) in self.train_x.iter().enumerate() {
                b[(i, j)] = self.kernel.eval(x, xi);
            }
        }
        let Ok(v) = chol.solve_lower_multi(&b) else {
            return xs.iter().map(|x| self.predict(x)).collect();
        };
        xs.iter()
            .enumerate()
            .map(|(j, x)| {
                let mean_norm: f64 = (0..n).map(|i| b[(i, j)] * self.alpha[i]).sum();
                let prior_var = self.kernel.eval(x, x) + self.config.noise_variance;
                let var_norm =
                    (prior_var - (0..n).map(|i| v[(i, j)] * v[(i, j)]).sum::<f64>()).max(1e-12);
                (
                    mean_norm * self.y_std + self.y_mean,
                    var_norm.sqrt() * self.y_std,
                )
            })
            .collect()
    }

    /// Like [`GaussianProcess::predict_batch`], but spreads large candidate
    /// sets over scoped threads. Each point's result is computed exactly as
    /// in `predict_batch`, so the output is deterministic and independent
    /// of the thread count.
    pub fn predict_batch_par(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        atlas_math::parallel::par_chunks_map(xs, PREDICT_PAR_MIN_CHUNK, None, |_, chunk| {
            self.predict_batch(chunk)
        })
    }

    /// Scores a candidate batch for acquisition *ranking*.
    ///
    /// Under [`ScoringPrecision::Exact`] (the default) this is bit-for-bit
    /// [`GaussianProcess::predict_batch_par`]. Under
    /// [`ScoringPrecision::MixedF32`] the batch is scored through the f32
    /// shadow of the selected factor — appropriate when only the induced
    /// ordering matters (the caller takes an argmax), not the absolute
    /// values. Every `recheck_every`-th call is also scored in f64 and
    /// returns those exact values; a top-k disagreement demotes the shadow
    /// until the next full rebuild.
    pub fn predict_batch_ranking(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let ScoringPrecision::MixedF32 {
            recheck_every,
            top_k,
        } = self.config.scoring_precision
        else {
            return self.predict_batch_par(xs);
        };
        if xs.is_empty() {
            return Vec::new();
        }
        if self.guard.demoted.load(Ordering::Relaxed) {
            return self.predict_batch_par(xs);
        }
        let Some(shadow) = self.shadow.as_ref() else {
            return self.predict_batch_par(xs);
        };
        if xs.iter().any(|x| x.len() != shadow.dim) {
            return self.predict_batch_par(xs);
        }
        let fast =
            atlas_math::parallel::par_chunks_map(xs, PREDICT_PAR_MIN_CHUNK, None, |_, chunk| {
                self.predict_chunk_f32(shadow, chunk)
            });
        let calls = self.guard.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if !calls.is_multiple_of(recheck_every.max(1)) {
            return fast;
        }
        // Drift check: score the same batch in f64; trust the shadow only
        // while the head of the ranking agrees.
        let exact = self.predict_batch_par(xs);
        if top_k_by_mean(&fast, top_k) != top_k_by_mean(&exact, top_k) {
            self.guard.demoted.store(true, Ordering::Relaxed);
        }
        exact
    }

    /// Whether the f32 scoring shadow has been demoted by the drift guard
    /// (always `false` under [`ScoringPrecision::Exact`]; re-armed by the
    /// next full rebuild).
    pub fn scoring_demoted(&self) -> bool {
        self.guard.demoted.load(Ordering::Relaxed)
    }

    /// Scores one candidate chunk through the f32 shadow (the single-
    /// precision mirror of [`GaussianProcess::predict_batch`]).
    fn predict_chunk_f32(&self, shadow: &ScoringShadow, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let n = shadow.chol.order();
        let m = xs.len();
        let d = shadow.dim;
        let xs32: Vec<f32> = xs
            .iter()
            .flat_map(|x| x.iter().map(|v| *v as f32))
            .collect();
        let b = MatrixF32::from_fn(n, m, |i, j| {
            let ti = &shadow.train_flat[i * d..(i + 1) * d];
            let cj = &xs32[j * d..(j + 1) * d];
            let r2: f32 = ti.iter().zip(cj).map(|(a, b)| (a - b) * (a - b)).sum();
            self.kernel.eval_dist_f32(r2.sqrt())
        });
        let v = shadow
            .chol
            .solve_lower_multi(&b)
            .expect("shadow solve: shapes are constructed to match");
        let prior_var = self.kernel.eval_dist_f32(0.0) + self.config.noise_variance as f32;
        (0..m)
            .map(|j| {
                let mean_norm: f32 = (0..n).map(|i| b.get(i, j) * shadow.alpha[i]).sum();
                let var_norm =
                    (prior_var - (0..n).map(|i| v.get(i, j) * v.get(i, j)).sum::<f32>()).max(1e-12);
                (
                    f64::from(mean_norm) * self.y_std + self.y_mean,
                    f64::from(var_norm.sqrt()) * self.y_std,
                )
            })
            .collect()
    }
}

/// Indices of the `k` highest predictive means, as a set (sorted by index):
/// the drift guard compares *membership* of the ranking head, not the order
/// within it — ties between near-equal candidates may legitimately swap.
fn top_k_by_mean(preds: &[(f64, f64)], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..preds.len()).collect();
    idx.sort_by(|&a, &b| {
        preds[b]
            .0
            .partial_cmp(&preds[a].0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k.min(preds.len()));
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_sine(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64 * 6.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin() * 10.0 + 50.0).collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = train_sine(25);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let (mean, std) = gp.predict(x);
            assert!((mean - y).abs() < 0.5, "mean {mean} vs target {y}");
            assert!(std < 1.5, "std {std} should be small at a training point");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (xs, ys) = train_sine(20);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let (_, std_in) = gp.predict(&[3.0]);
        let (_, std_out) = gp.predict(&[30.0]);
        assert!(std_out > std_in * 2.0, "out {std_out} vs in {std_in}");
    }

    #[test]
    fn predictions_are_sensible_between_points() {
        let (xs, ys) = train_sine(40);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let x = 2.05; // between grid points
        let (mean, _) = gp.predict(&[x]);
        assert!((mean - (x.sin() * 10.0 + 50.0)).abs() < 1.0);
    }

    #[test]
    fn unfitted_gp_returns_prior() {
        let gp = GaussianProcess::default_matern();
        let (mean, std) = gp.predict(&[1.0, 2.0]);
        assert_eq!(mean, 0.0);
        assert!(std > 0.0);
        assert!(gp.is_empty());
    }

    #[test]
    fn observe_refits_incrementally() {
        let mut gp = GaussianProcess::default_matern();
        gp.observe(vec![0.0], 1.0).unwrap();
        gp.observe(vec![1.0], 3.0).unwrap();
        gp.observe(vec![2.0], 5.0).unwrap();
        assert_eq!(gp.len(), 3);
        assert_eq!(gp.raw_targets(), &[1.0, 3.0, 5.0]);
        let (mean, _) = gp.predict(&[1.0]);
        assert!((mean - 3.0).abs() < 0.5);
    }

    #[test]
    fn observe_matches_full_refit_exactly() {
        // The incremental path must reproduce fit-from-scratch bit for bit:
        // same distances, same bordered factors, same grid selection.
        let (xs, ys) = train_sine(30);
        let mut incremental = GaussianProcess::default_matern();
        let mut full = GaussianProcess::default_matern();
        let probes: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 * 0.61]).collect();
        for k in 0..xs.len() {
            incremental.observe(xs[k].clone(), ys[k]).unwrap();
            full.fit(&xs[..=k], &ys[..=k]).unwrap();
            assert_eq!(incremental.kernel(), full.kernel(), "step {k}");
            for p in &probes {
                assert_eq!(incremental.predict(p), full.predict(p), "step {k}");
            }
        }
    }

    #[test]
    fn observe_crossing_the_rebuild_boundary_stays_consistent() {
        let (xs, ys) = train_sine(12);
        let mut gp = GaussianProcess::new(GpConfig {
            refit_every: 3,
            ..GpConfig::default()
        });
        let mut full = GaussianProcess::default_matern();
        for k in 0..xs.len() {
            gp.observe(xs[k].clone(), ys[k]).unwrap();
            full.fit(&xs[..=k], &ys[..=k]).unwrap();
            assert_eq!(gp.predict(&[2.3]), full.predict(&[2.3]), "step {k}");
        }
    }

    #[test]
    fn unbounded_window_is_bit_identical_to_the_default() {
        // `WindowPolicy::Unbounded` (the default) must not perturb a single
        // bit of the historical observe path.
        let (xs, ys) = train_sine(20);
        let mut explicit = GaussianProcess::new(GpConfig {
            window: WindowPolicy::Unbounded,
            ..GpConfig::default()
        });
        let mut default = GaussianProcess::default_matern();
        for (x, y) in xs.iter().zip(&ys) {
            explicit.observe(x.clone(), *y).unwrap();
            default.observe(x.clone(), *y).unwrap();
        }
        assert_eq!(explicit.kernel(), default.kernel());
        for p in &xs {
            assert_eq!(explicit.predict(p), default.predict(p));
        }
        assert_eq!(explicit.factor_bytes(), default.factor_bytes());
    }

    #[test]
    fn sliding_window_evicts_and_tracks_a_full_fit_on_the_window() {
        let cap = 8;
        let (xs, ys) = train_sine(30);
        // A large refit_every so every eviction exercises the downdate
        // path rather than hiding behind the periodic rebuild.
        let mut windowed = GaussianProcess::new(GpConfig {
            window: WindowPolicy::SlidingWindow { capacity: cap },
            refit_every: 10_000,
            ..GpConfig::default()
        });
        for k in 0..xs.len() {
            windowed.observe(xs[k].clone(), ys[k]).unwrap();
            assert!(windowed.len() <= cap, "window must plateau at {cap}");
            let lo = (k + 1).saturating_sub(cap);
            assert_eq!(windowed.raw_targets(), &ys[lo..=k], "step {k}");
            if k + 1 >= cap {
                let mut full = GaussianProcess::new(GpConfig {
                    window: WindowPolicy::SlidingWindow { capacity: cap },
                    ..GpConfig::default()
                });
                full.fit(&xs[lo..=k], &ys[lo..=k]).unwrap();
                // Selection over the 35-candidate grid must agree with the
                // full refit on the same retained window...
                assert_eq!(windowed.kernel(), full.kernel(), "step {k}");
                // ...and predictions agree to downdate rounding error.
                for p in &xs[..5] {
                    let (wm, ws) = windowed.predict(p);
                    let (fm, fs) = full.predict(p);
                    assert!((wm - fm).abs() < 1e-7, "step {k}: mean {wm} vs {fm}");
                    assert!((ws - fs).abs() < 1e-7, "step {k}: std {ws} vs {fs}");
                }
            }
        }
        // Memory plateaus: every live factor holds exactly cap rows.
        assert!(windowed.factor_bytes() <= windowed.grid_len() * cap * (cap + 1) / 2 * 8);
    }

    #[test]
    fn windowed_eviction_advances_the_rebuild_counter_twice() {
        // refit_every = 4 with a capacity-2 window: observe #1 rebuilds
        // (bootstrap, counter 0), #2 adds +1 (no eviction yet), and every
        // later observe evicts, adding +2 — so rebuilds fire at observes
        // #4 and #6 (counter 1 → 3 → 5 ≥ 4, then 2 → 4 ≥ 4). A rebuild is
        // a from-scratch refactorisation and therefore **bit-identical**
        // to a fresh fit on the retained window, while downdate steps
        // agree only to rounding error — which makes the +2 counting
        // directly observable: were an eviction counted once, the rebuild
        // would land on #5 instead and #4 would (almost surely) differ in
        // the low bits.
        let mut gp = GaussianProcess::new(GpConfig {
            window: WindowPolicy::SlidingWindow { capacity: 2 },
            refit_every: 4,
            ..GpConfig::default()
        });
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 0.7]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 1.3).sin() * 2.0 + 1.0).collect();
        let mut full = GaussianProcess::new(GpConfig {
            window: WindowPolicy::SlidingWindow { capacity: 2 },
            ..GpConfig::default()
        });
        let probes = [vec![0.4], vec![1.1], vec![2.9]];
        for k in 0..xs.len() {
            gp.observe(xs[k].clone(), ys[k]).unwrap();
            let lo = (k + 1).saturating_sub(2);
            full.fit(&xs[lo..=k], &ys[lo..=k]).unwrap();
            assert_eq!(gp.raw_targets(), full.raw_targets(), "step {k}");
            for p in &probes {
                let (gm, gs) = gp.predict(p);
                let (fm, fs) = full.predict(p);
                if k == 3 || k == 5 {
                    // Post-rebuild steps: exactly the fresh fit.
                    assert_eq!((gm, gs), (fm, fs), "rebuild step {k}");
                } else {
                    assert!((gm - fm).abs() < 1e-7, "step {k}: {gm} vs {fm}");
                    assert!((gs - fs).abs() < 1e-7, "step {k}: {gs} vs {fs}");
                }
            }
        }
    }

    #[test]
    fn decayed_window_downweights_old_targets() {
        // First half of the stream sits at +5, the newer half at −5: a
        // decayed GP's prediction must lean towards the recent level, a
        // plain sliding window (same capacity, no decay) sits in between.
        let xs: Vec<Vec<f64>> = (0..16).map(|i| vec![(i % 4) as f64]).collect();
        let ys: Vec<f64> = (0..16).map(|i| if i < 8 { 5.0 } else { -5.0 }).collect();
        let run = |window: WindowPolicy| {
            let mut gp = GaussianProcess::new(GpConfig {
                window,
                ..GpConfig::default()
            });
            for (x, y) in xs.iter().zip(&ys) {
                gp.observe(x.clone(), *y).unwrap();
            }
            gp.predict(&[1.0]).0
        };
        let plain = run(WindowPolicy::SlidingWindow { capacity: 12 });
        let decayed = run(WindowPolicy::Decayed {
            capacity: 12,
            half_life: 2.0,
        });
        assert!(
            decayed < plain - 0.5,
            "decayed {decayed} must lean towards the recent −5 level vs plain {plain}"
        );
        // And the incremental path still matches a full refit on the same
        // retained window (positions = ages in both).
        let mut inc = GaussianProcess::new(GpConfig {
            window: WindowPolicy::Decayed {
                capacity: 12,
                half_life: 2.0,
            },
            refit_every: 10_000,
            ..GpConfig::default()
        });
        let mut full = GaussianProcess::new(GpConfig {
            window: WindowPolicy::Decayed {
                capacity: 12,
                half_life: 2.0,
            },
            ..GpConfig::default()
        });
        for (x, y) in xs.iter().zip(&ys) {
            inc.observe(x.clone(), *y).unwrap();
        }
        full.fit(&xs, &ys).unwrap();
        assert_eq!(inc.kernel(), full.kernel());
        let (im, is) = inc.predict(&[2.0]);
        let (fm, fs) = full.predict(&[2.0]);
        assert!((im - fm).abs() < 1e-7 && (is - fs).abs() < 1e-7);
    }

    #[test]
    fn set_window_shrinks_in_place_and_matches_a_fresh_fit() {
        let (xs, ys) = train_sine(12);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        gp.set_window(WindowPolicy::SlidingWindow { capacity: 4 })
            .unwrap();
        assert_eq!(gp.len(), 4);
        assert_eq!(gp.raw_targets(), &ys[8..]);
        // Shrinking rebuilds on the retained tail, so the state is exactly
        // a fresh windowed fit on the same data.
        let mut fresh = GaussianProcess::new(GpConfig {
            window: WindowPolicy::SlidingWindow { capacity: 4 },
            ..GpConfig::default()
        });
        fresh.fit(&xs[8..], &ys[8..]).unwrap();
        assert_eq!(gp.kernel(), fresh.kernel());
        assert_eq!(gp.predict(&[1.2]), fresh.predict(&[1.2]));
        // Growing (or unbounding) keeps the fitted state usable.
        gp.set_window(WindowPolicy::Unbounded).unwrap();
        assert_eq!(gp.len(), 4);
        gp.observe(vec![9.0], 0.5).unwrap();
        assert_eq!(gp.len(), 5, "unbounded again: no more eviction");
    }

    #[test]
    fn window_capacity_is_clamped_to_at_least_one() {
        let mut gp = GaussianProcess::new(GpConfig {
            window: WindowPolicy::SlidingWindow { capacity: 0 },
            ..GpConfig::default()
        });
        for i in 0..4 {
            gp.observe(vec![i as f64], i as f64).unwrap();
            assert_eq!(gp.len(), 1);
        }
        assert_eq!(gp.raw_targets(), &[3.0]);
        assert_eq!(
            WindowPolicy::SlidingWindow { capacity: 0 }.capacity(),
            Some(1)
        );
        assert_eq!(WindowPolicy::Unbounded.capacity(), None);
    }

    #[test]
    fn predict_batch_matches_per_point_predict_exactly() {
        let (xs, ys) = train_sine(25);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let probes: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 * 0.037]).collect();
        let batch = gp.predict_batch(&probes);
        let single: Vec<(f64, f64)> = probes.iter().map(|p| gp.predict(p)).collect();
        assert_eq!(batch, single);
        assert_eq!(gp.predict_batch_par(&probes), single);
        assert!(gp.predict_batch(&[]).is_empty());
    }

    #[test]
    fn predict_batch_on_unfitted_gp_returns_priors() {
        let gp = GaussianProcess::default_matern();
        let out = gp.predict_batch(&[vec![0.0], vec![1.0]]);
        assert_eq!(out, vec![gp.predict(&[0.0]), gp.predict(&[1.0])]);
    }

    #[test]
    fn normalisation_handles_large_offsets() {
        // Targets far from zero; without normalize_y the prior mean of 0
        // would badly bias the extrapolation.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1000.0 + x[0]).collect();
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let (mean, _) = gp.predict(&[4.5]);
        assert!((mean - 1004.5).abs() < 1.0);
    }

    #[test]
    fn raw_targets_survive_observation_exactly() {
        // The old add_observation de-normalised and re-normalised targets;
        // observe must keep the raw values bit-for-bit.
        let mut gp = GaussianProcess::default_matern();
        let targets = [1e9 + 0.125, 1e9 + 0.25, 1e9 + 0.375, 1e9 + 0.5];
        for (i, t) in targets.iter().enumerate() {
            gp.observe(vec![i as f64], *t).unwrap();
        }
        assert_eq!(gp.raw_targets(), &targets);
    }

    #[test]
    fn mismatched_or_empty_inputs_error() {
        let mut gp = GaussianProcess::default_matern();
        assert!(gp.fit(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(gp.fit(&[], &[]).is_err());
    }

    #[test]
    fn duplicate_points_do_not_break_the_factorisation() {
        let xs = vec![vec![1.0], vec![1.0], vec![2.0]];
        let ys = vec![5.0, 5.1, 7.0];
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let (mean, _) = gp.predict(&[1.0]);
        assert!((mean - 5.05).abs() < 0.5);
    }

    #[test]
    fn hyperparameter_refinement_improves_fit_on_smooth_data() {
        let (xs, ys) = train_sine(30);
        let mut fixed = GaussianProcess::new(GpConfig {
            optimize_hyperparameters: false,
            kernel: Kernel::default_matern().with_length_scale(0.01),
            ..GpConfig::default()
        });
        fixed.fit(&xs, &ys).unwrap();
        let mut tuned = GaussianProcess::new(GpConfig {
            kernel: Kernel::default_matern().with_length_scale(0.01),
            ..GpConfig::default()
        });
        tuned.fit(&xs, &ys).unwrap();
        // Evaluate midway between training points: the tuned GP should
        // generalise better than the absurdly short fixed length scale.
        let x = [2.05];
        let truth = 2.05f64.sin() * 10.0 + 50.0;
        let err_fixed = (fixed.predict(&x).0 - truth).abs();
        let err_tuned = (tuned.predict(&x).0 - truth).abs();
        assert!(err_tuned <= err_fixed + 1e-9);
    }

    #[test]
    fn observe_batch_matches_sequential_observes_exactly() {
        // The batched bordering update is pure scheduling: kernel selection
        // and every prediction must be bit-identical to the sequential
        // observe chain, for every split of the stream into batches.
        let (xs, ys) = train_sine(24);
        let probes: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.71]).collect();
        for chunk in [2, 3, 7, 24] {
            let mut batched = GaussianProcess::default_matern();
            let mut seq = GaussianProcess::default_matern();
            for group in xs.chunks(chunk).zip(ys.chunks(chunk)) {
                let batch: Vec<(Vec<f64>, f64)> = group
                    .0
                    .iter()
                    .cloned()
                    .zip(group.1.iter().copied())
                    .collect();
                batched.observe_batch(batch).unwrap();
            }
            for (x, y) in xs.iter().zip(&ys) {
                seq.observe(x.clone(), *y).unwrap();
            }
            assert_eq!(batched.kernel(), seq.kernel(), "chunk {chunk}");
            assert_eq!(batched.len(), seq.len());
            for p in &probes {
                assert_eq!(batched.predict(p), seq.predict(p), "chunk {chunk}");
            }
        }
    }

    #[test]
    fn observe_batch_falls_back_across_evictions_and_rebuilds() {
        // Batches that straddle an eviction or the periodic-rebuild
        // boundary take the sequential path — the result must still be the
        // sequential chain's, bit for bit.
        let (xs, ys) = train_sine(20);
        let config = GpConfig {
            window: WindowPolicy::SlidingWindow { capacity: 6 },
            refit_every: 5,
            ..GpConfig::default()
        };
        let mut batched = GaussianProcess::new(config);
        let mut seq = GaussianProcess::new(config);
        for group in xs.chunks(4).zip(ys.chunks(4)) {
            let batch: Vec<(Vec<f64>, f64)> = group
                .0
                .iter()
                .cloned()
                .zip(group.1.iter().copied())
                .collect();
            batched.observe_batch(batch).unwrap();
        }
        for (x, y) in xs.iter().zip(&ys) {
            seq.observe(x.clone(), *y).unwrap();
        }
        assert_eq!(batched.kernel(), seq.kernel());
        assert_eq!(batched.raw_targets(), seq.raw_targets());
        for p in xs.iter().take(6) {
            assert_eq!(batched.predict(p), seq.predict(p));
        }
        // Empty and singleton batches degenerate to the plain paths.
        let snapshot = batched.clone();
        batched.observe_batch(Vec::new()).unwrap();
        assert_eq!(batched.kernel(), snapshot.kernel());
        assert_eq!(batched.len(), snapshot.len());
    }

    #[test]
    fn exact_scoring_is_the_default_and_matches_predict_batch() {
        let (xs, ys) = train_sine(25);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        assert_eq!(
            gp.window(),
            WindowPolicy::Unbounded,
            "sanity: default config"
        );
        let probes: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64 * 0.041]).collect();
        // Exact scoring: bit-for-bit the plain batch path, no shadow built.
        assert_eq!(gp.predict_batch_ranking(&probes), gp.predict_batch(&probes));
        assert!(gp.shadow.is_none());
        assert!(!gp.scoring_demoted());
    }

    #[test]
    fn mixed_precision_ranking_agrees_on_the_top_k() {
        let (xs, ys) = train_sine(30);
        let mut gp = GaussianProcess::new(GpConfig {
            scoring_precision: ScoringPrecision::MixedF32 {
                recheck_every: 1_000_000,
                top_k: 5,
            },
            ..GpConfig::default()
        });
        gp.fit(&xs, &ys).unwrap();
        assert!(gp.shadow.is_some(), "MixedF32 must build a shadow");
        let probes: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 * 0.021]).collect();
        let fast = gp.predict_batch_ranking(&probes);
        let exact = gp.predict_batch(&probes);
        assert_eq!(fast.len(), exact.len());
        // The f32 path is approximate in value…
        for ((fm, fs), (em, es)) in fast.iter().zip(&exact) {
            assert!((fm - em).abs() <= 1e-3 * (1.0 + em.abs()), "{fm} vs {em}");
            assert!((fs - es).abs() <= 1e-2 * (1.0 + es.abs()), "{fs} vs {es}");
        }
        // …but agrees on the head of the ranking, which is all acquisition
        // maximisation consumes.
        assert_eq!(top_k_by_mean(&fast, 5), top_k_by_mean(&exact, 5));
        // Observing keeps the shadow fresh.
        gp.observe(vec![7.0], 51.0).unwrap();
        assert!(gp.shadow.is_some());
        assert!(gp.predict_batch_ranking(&probes).len() == probes.len());
    }

    #[test]
    fn drift_guard_rechecks_in_f64_and_demotes_on_disagreement() {
        let (xs, ys) = train_sine(20);
        let mut gp = GaussianProcess::new(GpConfig {
            scoring_precision: ScoringPrecision::MixedF32 {
                recheck_every: 1,
                top_k: 3,
            },
            ..GpConfig::default()
        });
        gp.fit(&xs, &ys).unwrap();
        let probes: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.093]).collect();
        // recheck_every = 1: every ranking call returns the exact f64
        // values (the recheck's output), and a healthy shadow stays armed.
        assert_eq!(gp.predict_batch_ranking(&probes), gp.predict_batch(&probes));
        assert!(!gp.scoring_demoted());
        // Corrupt the shadow so its ranking disagrees: the guard must
        // demote it, keep returning exact values, and a full rebuild
        // (fit) must re-arm the fast path.
        for a in &mut gp.shadow.as_mut().unwrap().alpha {
            *a = -*a;
        }
        assert_eq!(gp.predict_batch_ranking(&probes), gp.predict_batch(&probes));
        assert!(gp.scoring_demoted(), "flipped ranking must demote");
        assert_eq!(gp.predict_batch_ranking(&probes), gp.predict_batch(&probes));
        gp.fit(&xs, &ys).unwrap();
        assert!(!gp.scoring_demoted(), "rebuild re-arms the shadow");
    }

    #[test]
    fn top_k_by_mean_is_order_insensitive_membership() {
        let a = [(3.0, 0.1), (1.0, 0.1), (2.0, 0.1), (5.0, 0.1)];
        assert_eq!(top_k_by_mean(&a, 2), vec![0, 3]);
        assert_eq!(top_k_by_mean(&a, 10), vec![0, 1, 2, 3]);
        assert!(top_k_by_mean(&a, 0).is_empty());
    }

    #[test]
    fn elastic_grid_caps_live_factors_and_refreshes_on_cadence() {
        let (xs, ys) = train_sine(40);
        let mut gp = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Elastic {
                hot_set: 4,
                refresh_every: 8,
            },
            refit_every: 10_000,
            ..GpConfig::default()
        });
        let mut full = GaussianProcess::new(GpConfig {
            refit_every: 10_000,
            ..GpConfig::default()
        });
        let mut refresh_points = 0;
        for k in 0..xs.len() {
            let before = gp.grid_stats().refreshes;
            gp.observe(xs[k].clone(), ys[k]).unwrap();
            full.observe(xs[k].clone(), ys[k]).unwrap();
            let stats = gp.grid_stats();
            // Only the hot set keeps factors resident.
            assert_eq!(stats.hot, 4, "step {k}");
            assert_eq!(stats.grid_len, 35);
            let n = gp.len();
            assert!(gp.factor_bytes() <= 4 * n * (n + 1) / 2 * 8, "step {k}");
            if stats.refreshes > before {
                refresh_points += 1;
                // At a refresh point the tournament re-selected over the
                // full grid: unbounded appends are bit-exact, so the
                // selection must equal full-grid maintenance's exactly.
                assert_eq!(gp.kernel(), full.kernel(), "refresh at step {k}");
                // Cold candidates carry their (now current) stale LMLs.
                assert!(gp.grid_lmls().iter().all(Option::is_some));
            }
        }
        assert!(refresh_points >= 3, "cadence 8 over 40 observes");
        assert_eq!(gp.grid_stats().refreshes, refresh_points);
    }

    #[test]
    fn elastic_with_full_hot_set_is_bit_identical_to_full_maintenance() {
        let (xs, ys) = train_sine(25);
        let mut elastic = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Elastic {
                hot_set: 35,
                refresh_every: 6,
            },
            ..GpConfig::default()
        });
        let mut full = GaussianProcess::default_matern();
        for (x, y) in xs.iter().zip(&ys) {
            elastic.observe(x.clone(), *y).unwrap();
            full.observe(x.clone(), *y).unwrap();
            assert_eq!(elastic.kernel(), full.kernel());
            assert_eq!(elastic.predict(&[2.3]), full.predict(&[2.3]));
        }
        assert_eq!(elastic.factor_bytes(), full.factor_bytes());
        let stats = elastic.grid_stats();
        assert_eq!((stats.promotions, stats.demotions), (0, 0));
    }

    #[test]
    fn elastic_tournament_promotes_and_demotes_as_the_winner_moves() {
        // A stream whose smoothness changes drives the selected length
        // scale across the grid, forcing hot-set membership to change at
        // tournaments.
        let xs: Vec<Vec<f64>> = (0..48).map(|i| vec![i as f64 * 0.25]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                if i < 24 {
                    x[0].sin() // smooth
                } else {
                    (x[0] * 9.0).sin() * 3.0 // fast-varying
                }
            })
            .collect();
        let mut gp = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Elastic {
                hot_set: 3,
                refresh_every: 6,
            },
            refit_every: 10_000,
            ..GpConfig::default()
        });
        for (x, y) in xs.iter().zip(&ys) {
            gp.observe(x.clone(), *y).unwrap();
        }
        let stats = gp.grid_stats();
        assert!(stats.refreshes >= 5);
        assert!(
            stats.promotions > 0 && stats.demotions > 0,
            "regime change must move candidates across the hot boundary: {stats:?}"
        );
        // The grid starts fully hot, so the bootstrap tournament demotes
        // grid_len − hot_set candidates unpaired; every later change swaps.
        assert_eq!(
            stats.demotions,
            stats.promotions + 32,
            "hot set is fixed-size after the bootstrap shrink"
        );
        assert_eq!(stats.hot, 3);
    }

    #[test]
    fn set_grid_maintenance_switches_in_place() {
        let (xs, ys) = train_sine(20);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let full_bytes = gp.factor_bytes();
        gp.set_grid_maintenance(GridMaintenance::Elastic {
            hot_set: 5,
            refresh_every: 16,
        })
        .unwrap();
        assert_eq!(gp.grid_stats().hot, 5);
        assert!(gp.factor_bytes() * 6 < full_bytes, "30 cold factors freed");
        // Switching is a rebuild: the state matches a fresh elastic fit.
        let mut fresh = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Elastic {
                hot_set: 5,
                refresh_every: 16,
            },
            ..GpConfig::default()
        });
        fresh.fit(&xs, &ys).unwrap();
        assert_eq!(gp.kernel(), fresh.kernel());
        assert_eq!(gp.predict(&[1.2]), fresh.predict(&[1.2]));
        // And back: every factor revives.
        gp.set_grid_maintenance(GridMaintenance::Full).unwrap();
        assert_eq!(gp.factor_bytes(), full_bytes);
        assert_eq!(gp.grid_stats().hot, 35);
        assert_eq!(gp.grid_len(), 35);
    }

    #[test]
    fn elastic_hot_set_is_clamped_to_the_grid() {
        let (xs, ys) = train_sine(10);
        for hot_set in [0usize, 100] {
            let mut gp = GaussianProcess::new(GpConfig {
                grid_maintenance: GridMaintenance::Elastic {
                    hot_set,
                    refresh_every: 4,
                },
                ..GpConfig::default()
            });
            gp.fit(&xs, &ys).unwrap();
            let stats = gp.grid_stats();
            let expect = hot_set.clamp(1, 35);
            assert_eq!(stats.hot, expect, "hot_set {hot_set}");
            // The winner is always hot, so the GP stays usable.
            gp.observe(vec![7.0], 51.0).unwrap();
            assert!(gp.predict(&[1.0]).1 > 0.0);
        }
    }

    #[test]
    fn elastic_observe_batch_falls_back_across_refresh_boundaries() {
        let (xs, ys) = train_sine(30);
        let config = GpConfig {
            grid_maintenance: GridMaintenance::Elastic {
                hot_set: 6,
                refresh_every: 7,
            },
            refit_every: 10_000,
            ..GpConfig::default()
        };
        let mut batched = GaussianProcess::new(config);
        let mut seq = GaussianProcess::new(config);
        for group in xs.chunks(5).zip(ys.chunks(5)) {
            let batch: Vec<(Vec<f64>, f64)> = group
                .0
                .iter()
                .cloned()
                .zip(group.1.iter().copied())
                .collect();
            batched.observe_batch(batch).unwrap();
        }
        for (x, y) in xs.iter().zip(&ys) {
            seq.observe(x.clone(), *y).unwrap();
        }
        assert_eq!(batched.kernel(), seq.kernel());
        assert_eq!(batched.grid_stats(), seq.grid_stats());
        for p in xs.iter().take(6) {
            assert_eq!(batched.predict(p), seq.predict(p));
        }
    }

    #[test]
    fn observe_works_without_hyperparameter_refinement() {
        let mut gp = GaussianProcess::new(GpConfig {
            optimize_hyperparameters: false,
            ..GpConfig::default()
        });
        let mut full = GaussianProcess::new(GpConfig {
            optimize_hyperparameters: false,
            ..GpConfig::default()
        });
        let (xs, ys) = train_sine(15);
        for k in 0..xs.len() {
            gp.observe(xs[k].clone(), ys[k]).unwrap();
            full.fit(&xs[..=k], &ys[..=k]).unwrap();
            assert_eq!(gp.predict(&[1.7]), full.predict(&[1.7]), "step {k}");
        }
    }

    fn inducing(m: usize, refresh_every: usize) -> SurrogateBasis {
        SurrogateBasis::Inducing {
            m,
            selection: InducingSelection::GreedyVariance,
            refresh_every,
        }
    }

    #[test]
    fn exact_basis_is_the_default() {
        assert_eq!(GpConfig::default().basis, SurrogateBasis::Exact);
        let gp = GaussianProcess::default_matern();
        assert_eq!(gp.basis(), SurrogateBasis::Exact);
        assert!(!gp.basis_active());
        assert_eq!(
            SurrogateBasis::default_inducing(),
            inducing(DEFAULT_INDUCING_M, DEFAULT_INDUCING_REFRESH)
        );
    }

    #[test]
    fn inducing_with_m_at_least_n_is_bit_identical_to_exact() {
        // While the retained window fits in `m` the exact path runs
        // untouched, so `Inducing { m ≥ n }` — including every rebuild
        // point — reproduces exact-GP selection and prediction bit for
        // bit.
        let (xs, ys) = train_sine(30);
        let mut sparse = GaussianProcess::new(GpConfig {
            basis: inducing(100, 8),
            refit_every: 7,
            ..GpConfig::default()
        });
        let mut exact = GaussianProcess::new(GpConfig {
            refit_every: 7,
            ..GpConfig::default()
        });
        for (x, y) in xs.iter().zip(&ys) {
            sparse.observe(x.clone(), *y).unwrap();
            exact.observe(x.clone(), *y).unwrap();
            assert!(!sparse.basis_active());
            assert_eq!(sparse.kernel(), exact.kernel());
            assert_eq!(sparse.predict(&[2.3]), exact.predict(&[2.3]));
        }
        assert_eq!(sparse.factor_bytes(), exact.factor_bytes());
    }

    #[test]
    fn inducing_activates_beyond_m_and_still_fits_the_data() {
        let (xs, ys) = train_sine(40);
        let mut gp = GaussianProcess::new(GpConfig {
            basis: inducing(8, 16),
            ..GpConfig::default()
        });
        for (k, (x, y)) in xs.iter().zip(&ys).enumerate() {
            gp.observe(x.clone(), *y).unwrap();
            assert_eq!(gp.basis_active(), k + 1 > 8, "step {k}");
        }
        assert_eq!(gp.inducing_len(), 8);
        // The compressed posterior still explains the sine far better
        // than the prior mean does.
        let sq_err: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| {
                let (mean, std) = gp.predict(x);
                assert!(std > 0.0 && std.is_finite());
                (mean - y) * (mean - y)
            })
            .sum();
        let rmse = (sq_err / xs.len() as f64).sqrt();
        assert!(rmse < 2.0, "rmse {rmse} over a ±10 sine");
    }

    #[test]
    fn inducing_rebuild_points_match_a_fresh_fit_exactly() {
        // With refresh_every = 1 every observe is a rebuild boundary, so
        // the incremental chain must reproduce a from-scratch fit on the
        // same retained window bit for bit — including under eviction and
        // Decayed age weighting.
        for window in [
            WindowPolicy::Unbounded,
            WindowPolicy::SlidingWindow { capacity: 12 },
            WindowPolicy::Decayed {
                capacity: 12,
                half_life: 3.0,
            },
        ] {
            let config = GpConfig {
                basis: inducing(8, 1),
                window,
                ..GpConfig::default()
            };
            let (xs, ys) = train_sine(25);
            let mut gp = GaussianProcess::new(config);
            let mut fresh = GaussianProcess::new(config);
            for k in 0..xs.len() {
                gp.observe(xs[k].clone(), ys[k]).unwrap();
                fresh.fit(&xs[..=k], &ys[..=k]).unwrap();
                assert_eq!(gp.kernel(), fresh.kernel(), "{window:?} step {k}");
                assert_eq!(
                    gp.predict(&[1.7]),
                    fresh.predict(&[1.7]),
                    "{window:?} step {k}"
                );
            }
        }
    }

    #[test]
    fn inducing_incremental_fold_tracks_the_rebuilt_state() {
        // Between rebuilds the pseudo-inputs are frozen and the rank-1
        // folds (and eviction downdates) drift only by rounding: the
        // posterior mean must match a from-scratch subset-of-regressors
        // computation over the same basis and retained window.
        let config = GpConfig {
            basis: inducing(8, 64),
            window: WindowPolicy::SlidingWindow { capacity: 16 },
            refit_every: 10_000,
            normalize_y: false,
            optimize_hyperparameters: false,
            ..GpConfig::default()
        };
        let (xs, ys) = train_sine(40);
        let mut gp = GaussianProcess::new(config);
        let mut window: Vec<(Vec<f64>, f64)> = Vec::new();
        for k in 0..xs.len() {
            gp.observe(xs[k].clone(), ys[k]).unwrap();
            window.push((xs[k].clone(), ys[k]));
            if window.len() > 16 {
                window.remove(0);
            }
            if !gp.basis_active() {
                continue;
            }
            let z = gp.inducing_points().to_vec();
            let m = z.len();
            let n = window.len();
            let kernel = *gp.kernel();
            let noise = config.noise_variance + 1e-8;
            let phi = Matrix::from_fn(m, n, |i, j| kernel.eval(&z[i], &window[j].0));
            let mut p = phi.matmul(&phi.transpose()).unwrap();
            for i in 0..m {
                for j in 0..m {
                    p[(i, j)] +=
                        noise * (kernel.eval(&z[i], &z[j]) + if i == j { 1e-8 } else { 0.0 });
                }
            }
            let b: Vec<f64> = (0..m)
                .map(|i| {
                    window
                        .iter()
                        .enumerate()
                        .map(|(j, (_, y))| phi[(i, j)] * y)
                        .sum()
                })
                .collect();
            let w_hat = p.cholesky().unwrap().cholesky_solve(&b).unwrap();
            let query = [1.7];
            let expect: f64 = (0..m).map(|i| kernel.eval(&query, &z[i]) * w_hat[i]).sum();
            let (mean, _) = gp.predict(&query);
            assert!(
                (mean - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                "step {k}: {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn inducing_predict_batch_matches_per_point_predict_exactly() {
        let (xs, ys) = train_sine(30);
        let mut gp = GaussianProcess::new(GpConfig {
            basis: inducing(8, 16),
            ..GpConfig::default()
        });
        for (x, y) in xs.iter().zip(&ys) {
            gp.observe(x.clone(), *y).unwrap();
        }
        assert!(gp.basis_active());
        let queries: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.6]).collect();
        let batch = gp.predict_batch(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(*b, gp.predict(q));
        }
        assert_eq!(gp.predict_batch_par(&queries), batch);
        assert_eq!(gp.predict_batch_ranking(&queries), batch);
    }

    #[test]
    fn inducing_observe_batch_matches_sequential_observes() {
        let config = GpConfig {
            basis: inducing(8, 16),
            ..GpConfig::default()
        };
        let (xs, ys) = train_sine(30);
        let mut batched = GaussianProcess::new(config);
        let mut seq = GaussianProcess::new(config);
        for group in xs.chunks(5).zip(ys.chunks(5)) {
            let batch: Vec<(Vec<f64>, f64)> = group
                .0
                .iter()
                .cloned()
                .zip(group.1.iter().copied())
                .collect();
            batched.observe_batch(batch).unwrap();
        }
        for (x, y) in xs.iter().zip(&ys) {
            seq.observe(x.clone(), *y).unwrap();
        }
        assert_eq!(batched.kernel(), seq.kernel());
        for p in xs.iter().take(6) {
            assert_eq!(batched.predict(p), seq.predict(p));
        }
    }

    #[test]
    fn inducing_factor_memory_plateaus_at_m() {
        let mut gp = GaussianProcess::new(GpConfig {
            basis: inducing(8, 16),
            refit_every: 10_000,
            ..GpConfig::default()
        });
        let (xs, ys) = train_sine(80);
        let mut plateau = 0;
        for (k, (x, y)) in xs.iter().zip(&ys).enumerate() {
            gp.observe(x.clone(), *y).unwrap();
            if k + 1 > 8 {
                // Two m×m packed factors per live candidate, independent
                // of n.
                let per_candidate = 2 * (8 * 9 / 2) * 8;
                assert_eq!(gp.factor_bytes(), 35 * per_candidate, "step {k}");
                plateau += 1;
            }
        }
        assert!(plateau > 60);
        // The exact unbounded GP at the same n keeps O(n²/2) per
        // candidate — orders of magnitude more.
        let mut exact = GaussianProcess::default_matern();
        exact.fit(&xs, &ys).unwrap();
        assert!(exact.factor_bytes() > 10 * gp.factor_bytes());
    }

    #[test]
    fn inducing_composes_with_the_elastic_grid() {
        let (xs, ys) = train_sine(60);
        let mut gp = GaussianProcess::new(GpConfig {
            basis: inducing(8, 32),
            grid_maintenance: GridMaintenance::Elastic {
                hot_set: 4,
                refresh_every: 8,
            },
            refit_every: 10_000,
            ..GpConfig::default()
        });
        for (x, y) in xs.iter().zip(&ys) {
            gp.observe(x.clone(), *y).unwrap();
        }
        assert!(gp.basis_active());
        let stats = gp.grid_stats();
        assert_eq!(stats.hot, 4);
        assert!(stats.refreshes > 0, "elastic cadence fires in sparse mode");
        // Only hot candidates keep their two m×m factors.
        assert_eq!(gp.factor_bytes(), 4 * 2 * (8 * 9 / 2) * 8);
        assert!(gp.predict(&[1.0]).1 > 0.0);
    }

    #[test]
    fn strided_recent_selection_runs_and_fits() {
        let (xs, ys) = train_sine(40);
        let mut gp = GaussianProcess::new(GpConfig {
            basis: SurrogateBasis::Inducing {
                m: 8,
                selection: InducingSelection::StridedRecent,
                refresh_every: 16,
            },
            ..GpConfig::default()
        });
        for (x, y) in xs.iter().zip(&ys) {
            gp.observe(x.clone(), *y).unwrap();
        }
        assert!(gp.basis_active());
        assert_eq!(gp.inducing_len(), 8);
        let (mean, std) = gp.predict(&xs[20]);
        assert!((mean - ys[20]).abs() < 3.0);
        assert!(std.is_finite() && std > 0.0);
    }

    #[test]
    fn set_basis_switches_in_place_and_back() {
        let (xs, ys) = train_sine(50);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&xs, &ys).unwrap();
        let exact_bytes = gp.factor_bytes();
        let exact_pred = gp.predict(&[1.2]);
        gp.set_basis(inducing(8, 16)).unwrap();
        assert!(gp.basis_active());
        assert!(
            gp.factor_bytes() * 10 < exact_bytes,
            "sparse factors are two m×m triangles per candidate"
        );
        // Switching is a rebuild: the state matches a fresh sparse fit.
        let mut fresh = GaussianProcess::new(GpConfig {
            basis: inducing(8, 16),
            ..GpConfig::default()
        });
        fresh.fit(&xs, &ys).unwrap();
        assert_eq!(gp.kernel(), fresh.kernel());
        assert_eq!(gp.predict(&[1.2]), fresh.predict(&[1.2]));
        // And back: the dense state revives, bit for bit.
        gp.set_basis(SurrogateBasis::Exact).unwrap();
        assert!(!gp.basis_active());
        assert_eq!(gp.factor_bytes(), exact_bytes);
        assert_eq!(gp.predict(&[1.2]), exact_pred);
    }
}
