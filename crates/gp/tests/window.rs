//! Property tests of the sliding-window GP: for any seed, stream length
//! and window configuration, the incremental evict+append path must keep
//! the retained window exact and agree with a full GP fit on the same
//! window — same hyper-parameter selection over the whole 35-candidate
//! grid, predictions to downdate rounding error.

use atlas_gp::{GaussianProcess, GpConfig, WindowPolicy};
use atlas_math::rng::seeded_rng;
use proptest::prelude::*;
use rand::Rng;

/// A deterministic pseudo-random stream of 2-D observations.
fn stream(seed: u64, len: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = seeded_rng(seed);
    let xs: Vec<Vec<f64>> = (0..len)
        .map(|_| vec![rng.random::<f64>() * 4.0, rng.random::<f64>() * 4.0])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (x[0] - 1.7).sin() * 3.0 + (x[1] * 0.8).cos() + 10.0)
        .collect();
    (xs, ys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sliding_window_selection_equals_full_fit_on_the_window(
        seed in 0u64..1000,
        cap in 4usize..10,
        extra in 1usize..12,
    ) {
        let len = cap + extra;
        let (xs, ys) = stream(seed, len);
        // refit_every large enough that every eviction exercises the
        // downdate path (the periodic rebuild is tested separately).
        let mut windowed = GaussianProcess::new(GpConfig {
            window: WindowPolicy::SlidingWindow { capacity: cap },
            refit_every: 10_000,
            ..GpConfig::default()
        });
        for (x, y) in xs.iter().zip(&ys) {
            windowed.observe(x.clone(), *y).unwrap();
        }
        prop_assert_eq!(windowed.len(), cap);
        prop_assert_eq!(windowed.raw_targets(), &ys[len - cap..]);

        let mut full = GaussianProcess::default_matern();
        full.fit(&xs[len - cap..], &ys[len - cap..]).unwrap();
        // Marginal-likelihood selection over the grid agrees exactly...
        prop_assert_eq!(windowed.kernel(), full.kernel());
        // ...and the posteriors agree to downdate rounding error.
        let probes = [vec![0.5, 0.5], vec![2.0, 1.0], vec![3.5, 3.5]];
        for p in &probes {
            let (wm, ws) = windowed.predict(p);
            let (fm, fs) = full.predict(p);
            prop_assert!((wm - fm).abs() < 1e-7, "mean {} vs {}", wm, fm);
            prop_assert!((ws - fs).abs() < 1e-7, "std {} vs {}", ws, fs);
        }
    }

    #[test]
    fn windowed_memory_and_window_are_independent_of_stream_length(
        seed in 0u64..1000,
        extra in 0usize..30,
    ) {
        // Two streams of very different lengths: identical suffixes must
        // leave identical windows and an identical memory plateau.
        let cap = 6;
        let config = GpConfig {
            window: WindowPolicy::SlidingWindow { capacity: cap },
            ..GpConfig::default()
        };
        let (xs, ys) = stream(seed, cap + extra + 20);
        let mut long = GaussianProcess::new(config);
        for (x, y) in xs.iter().zip(&ys) {
            long.observe(x.clone(), *y).unwrap();
        }
        let mut short = GaussianProcess::new(config);
        let tail = xs.len() - cap;
        for (x, y) in xs[tail..].iter().zip(&ys[tail..]) {
            short.observe(x.clone(), *y).unwrap();
        }
        prop_assert_eq!(long.len(), short.len());
        prop_assert_eq!(long.raw_targets(), short.raw_targets());
        // The plateau: factor bytes bounded by the capacity, not the
        // stream length.
        prop_assert!(long.factor_bytes() <= long.grid_len() * cap * (cap + 1) / 2 * 8);
        prop_assert_eq!(long.factor_bytes(), short.factor_bytes());
    }

    #[test]
    fn unbounded_window_stays_bit_identical_for_any_stream(
        seed in 0u64..1000,
        len in 2usize..20,
    ) {
        let (xs, ys) = stream(seed, len);
        let mut explicit = GaussianProcess::new(GpConfig {
            window: WindowPolicy::Unbounded,
            ..GpConfig::default()
        });
        let mut default = GaussianProcess::default_matern();
        for (x, y) in xs.iter().zip(&ys) {
            explicit.observe(x.clone(), *y).unwrap();
            default.observe(x.clone(), *y).unwrap();
        }
        prop_assert_eq!(explicit.kernel(), default.kernel());
        for p in &xs {
            prop_assert_eq!(explicit.predict(p), default.predict(p));
        }
    }
}
