//! Property tests of the elastic hyper-parameter grid: a hot set as wide
//! as the grid must be indistinguishable from full maintenance bit for
//! bit, the `Full` default must reproduce the historical observe path, and
//! at every tournament refresh the elastic selection must equal full-grid
//! selection on the same retained window.

use atlas_gp::{
    GaussianProcess, GpConfig, GridMaintenance, InducingSelection, SurrogateBasis, WindowPolicy,
};
use atlas_math::rng::seeded_rng;
use proptest::prelude::*;
use rand::Rng;

/// A deterministic pseudo-random stream of 2-D observations.
fn stream(seed: u64, len: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = seeded_rng(seed);
    let xs: Vec<Vec<f64>> = (0..len)
        .map(|_| vec![rng.random::<f64>() * 4.0, rng.random::<f64>() * 4.0])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (x[0] - 1.7).sin() * 3.0 + (x[1] * 0.8).cos() + 10.0)
        .collect();
    (xs, ys)
}

/// The window policies the elastic grid must compose with.
fn window_for(choice: u8) -> WindowPolicy {
    match choice % 3 {
        0 => WindowPolicy::Unbounded,
        1 => WindowPolicy::SlidingWindow { capacity: 7 },
        _ => WindowPolicy::Decayed {
            capacity: 7,
            half_life: 3.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn elastic_with_grid_wide_hot_set_is_bit_identical_to_full(
        seed in 0u64..1000,
        len in 2usize..24,
        refresh_every in 1usize..10,
        window_choice in 0u8..3,
    ) {
        // hot_set = grid_len: nothing ever goes cold, the tournament
        // refresh degenerates to a plain re-selection over the same
        // factors, and every report, selection and posterior must equal
        // full maintenance's bit for bit — for any refresh cadence and
        // window policy.
        let window = window_for(window_choice);
        let mut elastic = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Elastic { hot_set: 35, refresh_every },
            window,
            ..GpConfig::default()
        });
        let mut full = GaussianProcess::new(GpConfig {
            window,
            ..GpConfig::default()
        });
        let (xs, ys) = stream(seed, len);
        for (x, y) in xs.iter().zip(&ys) {
            elastic.observe(x.clone(), *y).unwrap();
            full.observe(x.clone(), *y).unwrap();
            prop_assert_eq!(elastic.kernel(), full.kernel());
            prop_assert_eq!(elastic.raw_targets(), full.raw_targets());
            prop_assert_eq!(elastic.factor_bytes(), full.factor_bytes());
            for p in &xs {
                prop_assert_eq!(elastic.predict(p), full.predict(p));
            }
        }
        let stats = elastic.grid_stats();
        prop_assert_eq!((stats.promotions, stats.demotions), (0, 0));
        prop_assert_eq!(stats.hot, stats.grid_len);
    }

    #[test]
    fn full_maintenance_default_matches_the_historical_path(
        seed in 0u64..1000,
        len in 2usize..20,
    ) {
        // An explicit `GridMaintenance::Full` must not perturb a single
        // bit of the default-constructed observe path (which the PR 7
        // regression suite pins against full refits).
        let (xs, ys) = stream(seed, len);
        let mut explicit = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Full,
            ..GpConfig::default()
        });
        let mut default = GaussianProcess::default_matern();
        for (x, y) in xs.iter().zip(&ys) {
            explicit.observe(x.clone(), *y).unwrap();
            default.observe(x.clone(), *y).unwrap();
        }
        prop_assert_eq!(explicit.kernel(), default.kernel());
        prop_assert_eq!(explicit.factor_bytes(), default.factor_bytes());
        for p in &xs {
            prop_assert_eq!(explicit.predict(p), default.predict(p));
        }
        let stats = default.grid_stats();
        prop_assert_eq!((stats.promotions, stats.demotions, stats.refreshes), (0, 0, 0));
        prop_assert_eq!(stats.hot, 35);
    }

    #[test]
    fn refresh_point_selection_equals_full_grid_selection_on_the_window(
        seed in 0u64..1000,
        hot_set in 1usize..12,
        refresh_every in 2usize..9,
        window_choice in 0u8..3,
    ) {
        // At every tournament refresh the cold factors are rebuilt from
        // the retained window, so the selection must agree with a
        // full-maintenance GP fed the same stream (hot factors are
        // bit-identical to full's, revived cold ones agree to downdate
        // rounding — exactly under an unbounded window).
        let window = window_for(window_choice);
        let mut elastic = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Elastic { hot_set, refresh_every },
            window,
            refit_every: 10_000,
            ..GpConfig::default()
        });
        let mut full = GaussianProcess::new(GpConfig {
            window,
            refit_every: 10_000,
            ..GpConfig::default()
        });
        let (xs, ys) = stream(seed, 3 * refresh_every + 4);
        let mut refreshes_seen = 0;
        for (k, (x, y)) in xs.iter().zip(&ys).enumerate() {
            let before = elastic.grid_stats().refreshes;
            elastic.observe(x.clone(), *y).unwrap();
            full.observe(x.clone(), *y).unwrap();
            if elastic.grid_stats().refreshes > before {
                refreshes_seen += 1;
                prop_assert_eq!(
                    elastic.kernel(), full.kernel(),
                    "refresh at step {} must match full-grid selection", k
                );
            }
        }
        prop_assert!(refreshes_seen >= 2, "stream spans multiple refresh cadences");
    }

    #[test]
    fn exact_basis_default_is_bit_identical_under_every_window_and_grid(
        seed in 0u64..1000,
        len in 2usize..20,
        window_choice in 0u8..3,
    ) {
        // An explicit `SurrogateBasis::Exact` — and an `Inducing` basis
        // whose budget the window never outgrows — must not perturb a
        // single bit of the default observe path.
        let window = window_for(window_choice);
        let config = GpConfig { window, ..GpConfig::default() };
        let mut default = GaussianProcess::new(config);
        let mut explicit = GaussianProcess::new(GpConfig {
            basis: SurrogateBasis::Exact,
            ..config
        });
        let mut roomy = GaussianProcess::new(GpConfig {
            basis: SurrogateBasis::Inducing {
                m: 64,
                selection: InducingSelection::GreedyVariance,
                refresh_every: 8,
            },
            ..config
        });
        let (xs, ys) = stream(seed, len);
        for (x, y) in xs.iter().zip(&ys) {
            default.observe(x.clone(), *y).unwrap();
            explicit.observe(x.clone(), *y).unwrap();
            roomy.observe(x.clone(), *y).unwrap();
            prop_assert_eq!(explicit.kernel(), default.kernel());
            prop_assert_eq!(roomy.kernel(), default.kernel());
            prop_assert!(!roomy.basis_active());
            for p in &xs {
                prop_assert_eq!(explicit.predict(p), default.predict(p));
                prop_assert_eq!(roomy.predict(p), default.predict(p));
            }
        }
        prop_assert_eq!(explicit.factor_bytes(), default.factor_bytes());
        prop_assert_eq!(roomy.factor_bytes(), default.factor_bytes());
    }
}

#[test]
fn decayed_half_life_weighting_composes_with_the_elastic_grid() {
    // A regime shift under `Decayed` must fade out of the posterior even
    // when the grid is elastic: feed a constant-60 prefix then a
    // constant-40 suffix. At the *old-regime* inputs a short half-life
    // must have shrunk the stale residuals towards the prior mean while a
    // long one still remembers the 60 level — with hot-set maintenance
    // (and its tournament refreshes) active throughout.
    let at_half_life = |half_life: f64| {
        let mut gp = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Elastic {
                hot_set: 4,
                refresh_every: 6,
            },
            window: WindowPolicy::Decayed {
                capacity: 24,
                half_life,
            },
            refit_every: 10_000,
            ..GpConfig::default()
        });
        for i in 0..12 {
            gp.observe(vec![i as f64 * 0.3], 60.0).unwrap();
        }
        for i in 12..24 {
            gp.observe(vec![i as f64 * 0.3], 40.0).unwrap();
        }
        let stats = gp.grid_stats();
        assert_eq!(stats.hot, 4, "half_life {half_life}");
        assert!(stats.refreshes >= 3, "half_life {half_life}");
        // Recent observations dominate either way.
        let (recent, _) = gp.predict(&[6.9]);
        assert!(
            (recent - 40.0).abs() < 1.0,
            "half_life {half_life}: {recent}"
        );
        gp.predict(&[1.5]).0
    };
    let fast = at_half_life(2.0);
    let slow = at_half_life(50.0);
    assert!(
        (fast - 60.0).abs() > (slow - 60.0).abs() + 1.0,
        "shorter half-life forgets the old regime faster: fast {fast}, slow {slow}"
    );
    assert!(fast < 55.0, "old level mostly forgotten: {fast}");
    assert!(slow > 55.0, "old level mostly remembered: {slow}");
}

#[test]
fn decayed_window_composes_with_elastic_grid_and_inducing_basis() {
    // The full composition: Decayed age weighting + elastic hot set +
    // sparse inducing basis, run well past the activation threshold.
    let mut gp = GaussianProcess::new(GpConfig {
        grid_maintenance: GridMaintenance::Elastic {
            hot_set: 4,
            refresh_every: 8,
        },
        window: WindowPolicy::Decayed {
            capacity: 20,
            half_life: 5.0,
        },
        basis: SurrogateBasis::Inducing {
            m: 8,
            selection: InducingSelection::GreedyVariance,
            refresh_every: 16,
        },
        refit_every: 10_000,
        ..GpConfig::default()
    });
    let (xs, ys) = stream(7, 60);
    for (x, y) in xs.iter().zip(&ys) {
        gp.observe(x.clone(), *y).unwrap();
    }
    assert!(gp.basis_active());
    assert_eq!(gp.len(), 20);
    assert_eq!(gp.grid_stats().hot, 4);
    // Only the hot candidates keep their two m×m factors.
    assert_eq!(gp.factor_bytes(), 4 * 2 * (8 * 9 / 2) * 8);
    for p in xs.iter().take(5) {
        let (mean, std) = gp.predict(p);
        assert!(mean.is_finite() && std.is_finite() && std > 0.0);
    }
}
