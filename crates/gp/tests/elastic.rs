//! Property tests of the elastic hyper-parameter grid: a hot set as wide
//! as the grid must be indistinguishable from full maintenance bit for
//! bit, the `Full` default must reproduce the historical observe path, and
//! at every tournament refresh the elastic selection must equal full-grid
//! selection on the same retained window.

use atlas_gp::{GaussianProcess, GpConfig, GridMaintenance, WindowPolicy};
use atlas_math::rng::seeded_rng;
use proptest::prelude::*;
use rand::Rng;

/// A deterministic pseudo-random stream of 2-D observations.
fn stream(seed: u64, len: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = seeded_rng(seed);
    let xs: Vec<Vec<f64>> = (0..len)
        .map(|_| vec![rng.random::<f64>() * 4.0, rng.random::<f64>() * 4.0])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (x[0] - 1.7).sin() * 3.0 + (x[1] * 0.8).cos() + 10.0)
        .collect();
    (xs, ys)
}

/// The window policies the elastic grid must compose with.
fn window_for(choice: u8) -> WindowPolicy {
    match choice % 3 {
        0 => WindowPolicy::Unbounded,
        1 => WindowPolicy::SlidingWindow { capacity: 7 },
        _ => WindowPolicy::Decayed {
            capacity: 7,
            half_life: 3.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn elastic_with_grid_wide_hot_set_is_bit_identical_to_full(
        seed in 0u64..1000,
        len in 2usize..24,
        refresh_every in 1usize..10,
        window_choice in 0u8..3,
    ) {
        // hot_set = grid_len: nothing ever goes cold, the tournament
        // refresh degenerates to a plain re-selection over the same
        // factors, and every report, selection and posterior must equal
        // full maintenance's bit for bit — for any refresh cadence and
        // window policy.
        let window = window_for(window_choice);
        let mut elastic = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Elastic { hot_set: 35, refresh_every },
            window,
            ..GpConfig::default()
        });
        let mut full = GaussianProcess::new(GpConfig {
            window,
            ..GpConfig::default()
        });
        let (xs, ys) = stream(seed, len);
        for (x, y) in xs.iter().zip(&ys) {
            elastic.observe(x.clone(), *y).unwrap();
            full.observe(x.clone(), *y).unwrap();
            prop_assert_eq!(elastic.kernel(), full.kernel());
            prop_assert_eq!(elastic.raw_targets(), full.raw_targets());
            prop_assert_eq!(elastic.factor_bytes(), full.factor_bytes());
            for p in &xs {
                prop_assert_eq!(elastic.predict(p), full.predict(p));
            }
        }
        let stats = elastic.grid_stats();
        prop_assert_eq!((stats.promotions, stats.demotions), (0, 0));
        prop_assert_eq!(stats.hot, stats.grid_len);
    }

    #[test]
    fn full_maintenance_default_matches_the_historical_path(
        seed in 0u64..1000,
        len in 2usize..20,
    ) {
        // An explicit `GridMaintenance::Full` must not perturb a single
        // bit of the default-constructed observe path (which the PR 7
        // regression suite pins against full refits).
        let (xs, ys) = stream(seed, len);
        let mut explicit = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Full,
            ..GpConfig::default()
        });
        let mut default = GaussianProcess::default_matern();
        for (x, y) in xs.iter().zip(&ys) {
            explicit.observe(x.clone(), *y).unwrap();
            default.observe(x.clone(), *y).unwrap();
        }
        prop_assert_eq!(explicit.kernel(), default.kernel());
        prop_assert_eq!(explicit.factor_bytes(), default.factor_bytes());
        for p in &xs {
            prop_assert_eq!(explicit.predict(p), default.predict(p));
        }
        let stats = default.grid_stats();
        prop_assert_eq!((stats.promotions, stats.demotions, stats.refreshes), (0, 0, 0));
        prop_assert_eq!(stats.hot, 35);
    }

    #[test]
    fn refresh_point_selection_equals_full_grid_selection_on_the_window(
        seed in 0u64..1000,
        hot_set in 1usize..12,
        refresh_every in 2usize..9,
        window_choice in 0u8..3,
    ) {
        // At every tournament refresh the cold factors are rebuilt from
        // the retained window, so the selection must agree with a
        // full-maintenance GP fed the same stream (hot factors are
        // bit-identical to full's, revived cold ones agree to downdate
        // rounding — exactly under an unbounded window).
        let window = window_for(window_choice);
        let mut elastic = GaussianProcess::new(GpConfig {
            grid_maintenance: GridMaintenance::Elastic { hot_set, refresh_every },
            window,
            refit_every: 10_000,
            ..GpConfig::default()
        });
        let mut full = GaussianProcess::new(GpConfig {
            window,
            refit_every: 10_000,
            ..GpConfig::default()
        });
        let (xs, ys) = stream(seed, 3 * refresh_every + 4);
        let mut refreshes_seen = 0;
        for (k, (x, y)) in xs.iter().zip(&ys).enumerate() {
            let before = elastic.grid_stats().refreshes;
            elastic.observe(x.clone(), *y).unwrap();
            full.observe(x.clone(), *y).unwrap();
            if elastic.grid_stats().refreshes > before {
                refreshes_seen += 1;
                prop_assert_eq!(
                    elastic.kernel(), full.kernel(),
                    "refresh at step {} must match full-grid selection", k
                );
            }
        }
        prop_assert!(refreshes_seen >= 2, "stream spans multiple refresh cadences");
    }
}
