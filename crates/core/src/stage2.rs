//! Stage 2 — offline policy training in the augmented simulator
//! (Sec. 5, Algorithm 2).
//!
//! Learns the network-configuration policy that minimises resource usage
//! `F(a)` subject to the SLA chance constraint `Pr(latency ≤ Y) ≥ E` by
//! querying the augmented simulator. The constraint is folded into the
//! objective with an adaptive Lagrangian multiplier (Eq. 8–9); the unknown
//! QoE function is approximated by a BNN and queries are proposed with
//! parallel Thompson sampling. GP-based variants (GP-EI/PI/UCB, compared in
//! Fig. 17–18) are also provided: they optimise a fixed-penalty
//! scalarisation of the same constrained problem with the classic
//! acquisition functions.

use crate::env::{
    policy_features, query_parallel, Environment, QoeSample, Sla, POLICY_FEATURE_DIM,
};
use crate::model::{PolicyModel, SurrogateKind};
use atlas_bayesopt::{Acquisition, SearchSpace};
use atlas_math::rng::{derive_seed, seeded_rng, Rng64};
use atlas_math::stats;
use atlas_netsim::{Scenario, SliceConfig};
use atlas_nn::{Bnn, BnnConfig};

/// How stage 2 selects the next configurations to query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OfflineStrategy {
    /// The paper's method: BNN surrogate of the QoE, parallel Thompson
    /// sampling, adaptive Lagrangian penalisation (Algorithm 2).
    ParallelThompson,
    /// Baseline: a GP surrogate over the fixed-penalty scalarised objective
    /// `F(a) + penalty·max(0, E − Q(a))`, with the given acquisition
    /// function selecting the next query.
    GpAcquisition(Acquisition),
}

/// Configuration of the offline training stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage2Config {
    /// Optimisation iterations (paper: 1000).
    pub iterations: usize,
    /// Purely random exploration iterations (paper: 100).
    pub warmup: usize,
    /// Parallel simulator queries per iteration (paper: 16).
    pub parallel: usize,
    /// Random candidates scored per proposal.
    pub candidates: usize,
    /// Dual-update step size ε (paper: 0.1).
    pub epsilon: f64,
    /// Selection strategy.
    pub strategy: OfflineStrategy,
    /// BNN hyper-parameters (for [`OfflineStrategy::ParallelThompson`]).
    pub bnn: BnnConfig,
    /// Warm-start training epochs per iteration.
    pub train_epochs_per_iter: usize,
    /// Simulated seconds per query.
    pub duration_s: f64,
    /// Penalty coefficient of the scalarised objective used by the GP
    /// baselines.
    pub scalarisation_penalty: f64,
}

impl Default for Stage2Config {
    fn default() -> Self {
        Self {
            iterations: 150,
            warmup: 30,
            parallel: 4,
            candidates: 1500,
            epsilon: 0.1,
            strategy: OfflineStrategy::ParallelThompson,
            bnn: BnnConfig {
                hidden: [32, 32, 0, 0],
                epochs: 40,
                ..BnnConfig::default()
            },
            train_epochs_per_iter: 8,
            duration_s: 15.0,
            scalarisation_penalty: 3.0,
        }
    }
}

/// Per-iteration progress record (one point of Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage2Iteration {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Mean resource usage of this iteration's queries.
    pub avg_usage: f64,
    /// Mean QoE of this iteration's queries.
    pub avg_qoe: f64,
    /// Lagrangian multiplier after this iteration's dual update.
    pub multiplier: f64,
}

/// Result of the offline training stage.
#[derive(Debug, Clone)]
pub struct Stage2Result {
    /// The best configuration found: minimum usage among SLA-satisfying
    /// queries (or the highest-QoE query if none satisfied the SLA).
    pub best_config: SliceConfig,
    /// Resource usage of the best configuration.
    pub best_usage: f64,
    /// QoE of the best configuration (in the augmented simulator).
    pub best_qoe: f64,
    /// Final Lagrangian multiplier λ (carried into stage 3).
    pub multiplier: f64,
    /// Per-iteration training progress.
    pub history: Vec<Stage2Iteration>,
    /// Every evaluated configuration with its measured QoE.
    pub observations: Vec<QoeSample>,
    /// The trained offline QoE model `Q_s` (present for the
    /// parallel-Thompson strategy; carried into stage 3 as the offline
    /// estimate of Eq. 12).
    pub qoe_model: Option<Bnn>,
}

/// The stage-2 offline trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfflineTrainer {
    config: Stage2Config,
    sla: Sla,
}

impl OfflineTrainer {
    /// Creates the offline trainer.
    pub fn new(config: Stage2Config, sla: Sla) -> Self {
        Self { config, sla }
    }

    /// The stage configuration.
    pub fn config(&self) -> &Stage2Config {
        &self.config
    }

    /// Selects the best configuration from a set of evaluated samples:
    /// minimum usage among SLA-satisfying ones, or the maximum-QoE sample
    /// if none satisfies the SLA.
    pub fn best_of(&self, samples: &[QoeSample]) -> Option<QoeSample> {
        let feasible: Vec<&QoeSample> = samples
            .iter()
            .filter(|s| self.sla.satisfied_by(s.qoe))
            .collect();
        if feasible.is_empty() {
            samples
                .iter()
                .max_by(|a, b| {
                    a.qoe
                        .partial_cmp(&b.qoe)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .copied()
        } else {
            feasible
                .into_iter()
                .min_by(|a, b| {
                    a.usage
                        .partial_cmp(&b.usage)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .copied()
        }
    }

    /// Runs offline training against `env` (normally the augmented
    /// simulator) for the given traffic scenario.
    pub fn run<E: Environment>(&self, env: &E, scenario: &Scenario, seed: u64) -> Stage2Result {
        match self.config.strategy {
            OfflineStrategy::ParallelThompson => self.run_parallel_thompson(env, scenario, seed),
            OfflineStrategy::GpAcquisition(acq) => {
                self.run_gp_acquisition(env, scenario, seed, acq)
            }
        }
    }

    fn config_space() -> SearchSpace {
        SearchSpace::new(SliceConfig::min().to_vec(), SliceConfig::max().to_vec())
    }

    /// Algorithm 2: BNN + parallel Thompson sampling + adaptive
    /// penalisation.
    fn run_parallel_thompson<E: Environment>(
        &self,
        env: &E,
        scenario: &Scenario,
        seed: u64,
    ) -> Stage2Result {
        let cfg = &self.config;
        let mut rng = seeded_rng(seed);
        let space = Self::config_space();
        let mut qoe_model = Bnn::new(POLICY_FEATURE_DIM, cfg.bnn, &mut rng);
        let mut fitted = false;

        let mut observations: Vec<QoeSample> = Vec::new();
        let mut features: Vec<Vec<f64>> = Vec::new();
        let mut targets: Vec<f64> = Vec::new();
        let mut history = Vec::with_capacity(cfg.iterations);
        let mut multiplier: f64 = 0.0;

        let run_scenario = scenario.with_duration(cfg.duration_s);

        for iteration in 0..cfg.iterations {
            // --- propose `parallel` configurations ----------------------
            let proposals: Vec<SliceConfig> = if iteration < cfg.warmup || !fitted {
                (0..cfg.parallel)
                    .map(|_| SliceConfig::from_vec(&space.sample(&mut rng)))
                    .collect()
            } else {
                (0..cfg.parallel)
                    .map(|_| {
                        let candidates: Vec<Vec<f64>> = space.sample_n(cfg.candidates, &mut rng);
                        let candidate_features: Vec<Vec<f64>> = candidates
                            .iter()
                            .map(|c| {
                                policy_features(
                                    &SliceConfig::from_vec(c),
                                    run_scenario.traffic,
                                    &self.sla,
                                )
                            })
                            .collect();
                        let draw = qoe_model.thompson_sampler(&mut rng);
                        let mut best_idx = 0;
                        let mut best_val = f64::INFINITY;
                        for (i, c) in candidates.iter().enumerate() {
                            let config = SliceConfig::from_vec(c);
                            let qoe_est = draw(&candidate_features[i]).clamp(0.0, 1.0);
                            // Lagrangian of Eq. 8.
                            let lagrangian = config.resource_usage()
                                - multiplier * (qoe_est - self.sla.qoe_target);
                            if lagrangian < best_val {
                                best_val = lagrangian;
                                best_idx = i;
                            }
                        }
                        SliceConfig::from_vec(&candidates[best_idx])
                    })
                    .collect()
            };

            // --- query the simulator in parallel -------------------------
            let iteration_seed = derive_seed(seed, 5000 + iteration as u64);
            let samples = query_parallel(env, &proposals, &run_scenario, &self.sla, iteration_seed);

            // --- bookkeeping + dual update -------------------------------
            let usages: Vec<f64> = samples.iter().map(|s| s.usage).collect();
            let qoes: Vec<f64> = samples.iter().map(|s| s.qoe).collect();
            // Eq. 9: λ ← [λ − ε (Q_s − E)]⁺, averaged over parallel queries.
            multiplier =
                (multiplier - cfg.epsilon * (stats::mean(&qoes) - self.sla.qoe_target)).max(0.0);
            history.push(Stage2Iteration {
                iteration,
                avg_usage: stats::mean(&usages),
                avg_qoe: stats::mean(&qoes),
                multiplier,
            });
            for s in &samples {
                features.push(policy_features(&s.config, run_scenario.traffic, &self.sla));
                targets.push(s.qoe);
            }
            observations.extend(samples);

            // --- retrain the QoE surrogate -------------------------------
            qoe_model.fit_epochs(&features, &targets, cfg.train_epochs_per_iter, &mut rng);
            fitted = true;
        }

        let best = self
            .best_of(&observations)
            .expect("stage 2 evaluated at least one configuration");
        Stage2Result {
            best_config: best.config,
            best_usage: best.usage,
            best_qoe: best.qoe,
            multiplier,
            history,
            observations,
            qoe_model: Some(qoe_model),
        }
    }

    /// GP-EI/PI/UCB baselines over the scalarised objective.
    fn run_gp_acquisition<E: Environment>(
        &self,
        env: &E,
        scenario: &Scenario,
        seed: u64,
        acquisition: Acquisition,
    ) -> Stage2Result {
        let cfg = &self.config;
        let mut rng: Rng64 = seeded_rng(seed);
        let space = Self::config_space();
        let mut model = PolicyModel::new(SurrogateKind::Gp, SliceConfig::DIM, cfg.bnn, &mut rng);

        let mut observations: Vec<QoeSample> = Vec::new();
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut history = Vec::with_capacity(cfg.iterations);
        let run_scenario = scenario.with_duration(cfg.duration_s);

        let scalarise = |sample: &QoeSample| -> f64 {
            sample.usage + cfg.scalarisation_penalty * (self.sla.qoe_target - sample.qoe).max(0.0)
        };

        for iteration in 0..cfg.iterations {
            let proposals: Vec<SliceConfig> = if iteration < cfg.warmup || xs.is_empty() {
                (0..cfg.parallel)
                    .map(|_| SliceConfig::from_vec(&space.sample(&mut rng)))
                    .collect()
            } else {
                let best_y = ys.iter().copied().fold(f64::INFINITY, f64::min);
                (0..cfg.parallel)
                    .map(|_| {
                        let candidates = space.sample_n(cfg.candidates, &mut rng);
                        // One batched posterior resolve for the whole
                        // candidate set, then acquisition randomness drawn
                        // serially in candidate order.
                        let units: Vec<Vec<f64>> =
                            candidates.iter().map(|c| space.normalize(c)).collect();
                        let preds = model.predict_batch(&units, &mut rng);
                        let mut best_idx = 0;
                        let mut best_score = f64::NEG_INFINITY;
                        for (i, (mean, std)) in preds.into_iter().enumerate() {
                            let score =
                                acquisition.score(mean, std, best_y, iteration + 1, &mut rng);
                            if score > best_score {
                                best_score = score;
                                best_idx = i;
                            }
                        }
                        SliceConfig::from_vec(&candidates[best_idx])
                    })
                    .collect()
            };

            let iteration_seed = derive_seed(seed, 9000 + iteration as u64);
            let samples = query_parallel(env, &proposals, &run_scenario, &self.sla, iteration_seed);

            let usages: Vec<f64> = samples.iter().map(|s| s.usage).collect();
            let qoes: Vec<f64> = samples.iter().map(|s| s.qoe).collect();
            history.push(Stage2Iteration {
                iteration,
                avg_usage: stats::mean(&usages),
                avg_qoe: stats::mean(&qoes),
                multiplier: 0.0,
            });
            let new_from = xs.len();
            for s in &samples {
                xs.push(space.normalize(&s.config.to_vec()));
                ys.push(scalarise(s));
            }
            observations.extend(samples);
            // The GP absorbs the new points incrementally; a degenerate
            // extension falls back to the full refit.
            let absorbed = (new_from..xs.len()).all(|i| model.observe(&xs[i], ys[i]));
            if !absorbed {
                model.fit(&xs, &ys, 1, &mut rng);
            }
        }

        let best = self
            .best_of(&observations)
            .expect("stage 2 evaluated at least one configuration");
        Stage2Result {
            best_config: best.config,
            best_usage: best.usage,
            best_qoe: best.qoe,
            multiplier: 0.0,
            history,
            observations,
            qoe_model: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SimulatorEnv;
    use atlas_netsim::Simulator;

    fn tiny_config(strategy: OfflineStrategy) -> Stage2Config {
        Stage2Config {
            iterations: 14,
            warmup: 5,
            parallel: 2,
            candidates: 300,
            duration_s: 8.0,
            strategy,
            bnn: BnnConfig {
                hidden: [16, 16, 0, 0],
                epochs: 10,
                ..BnnConfig::default()
            },
            train_epochs_per_iter: 3,
            ..Stage2Config::default()
        }
    }

    fn scenario() -> Scenario {
        Scenario::default_with_seed(1).with_duration(8.0)
    }

    #[test]
    fn best_of_prefers_cheapest_feasible_sample() {
        let trainer = OfflineTrainer::new(Stage2Config::default(), Sla::paper_default());
        let mk = |usage: f64, qoe: f64| QoeSample {
            config: SliceConfig::default_generous(),
            usage,
            qoe,
            mean_latency_ms: 100.0,
        };
        let samples = vec![mk(0.5, 0.95), mk(0.2, 0.92), mk(0.1, 0.5)];
        let best = trainer.best_of(&samples).unwrap();
        assert_eq!(best.usage, 0.2);
        // With no feasible sample the highest QoE wins.
        let infeasible = vec![mk(0.5, 0.4), mk(0.2, 0.7)];
        assert_eq!(trainer.best_of(&infeasible).unwrap().qoe, 0.7);
        assert!(trainer.best_of(&[]).is_none());
    }

    #[test]
    fn parallel_thompson_training_finds_a_feasible_cheap_config() {
        let env = SimulatorEnv::new(Simulator::with_original_params());
        let trainer = OfflineTrainer::new(
            tiny_config(OfflineStrategy::ParallelThompson),
            Sla::paper_default(),
        );
        let result = trainer.run(&env, &scenario(), 3);
        assert_eq!(result.history.len(), 14);
        assert_eq!(result.observations.len(), 28);
        assert!(result.qoe_model.is_some());
        assert!(result.best_usage > 0.0 && result.best_usage < 1.0);
        // The best configuration should satisfy the SLA in the simulator
        // (the search space contains plenty of feasible configurations).
        assert!(
            result.best_qoe >= 0.85,
            "best config should be near-feasible, qoe {}",
            result.best_qoe
        );
        // It should not be the most expensive possible configuration.
        assert!(result.best_usage < 0.8, "usage {}", result.best_usage);
    }

    #[test]
    fn multiplier_reacts_to_constraint_violations() {
        let env = SimulatorEnv::new(Simulator::with_original_params());
        // An extremely strict SLA no configuration can satisfy forces the
        // multiplier upward.
        let strict = Sla::new(20.0, 0.99);
        let trainer = OfflineTrainer::new(tiny_config(OfflineStrategy::ParallelThompson), strict);
        let result = trainer.run(&env, &scenario(), 5);
        assert!(
            result.multiplier > 0.05,
            "multiplier {} should grow under persistent violations",
            result.multiplier
        );
        // A very loose SLA keeps the multiplier at (or near) zero.
        let loose = Sla::new(5000.0, 0.1);
        let trainer = OfflineTrainer::new(tiny_config(OfflineStrategy::ParallelThompson), loose);
        let result = trainer.run(&env, &scenario(), 6);
        assert!(result.multiplier < 0.05, "multiplier {}", result.multiplier);
    }

    #[test]
    fn gp_acquisition_strategy_also_produces_a_result() {
        let env = SimulatorEnv::new(Simulator::with_original_params());
        let trainer = OfflineTrainer::new(
            tiny_config(OfflineStrategy::GpAcquisition(
                Acquisition::ExpectedImprovement,
            )),
            Sla::paper_default(),
        );
        let result = trainer.run(&env, &scenario(), 7);
        assert_eq!(result.history.len(), 14);
        assert!(result.qoe_model.is_none());
        assert!(result.best_usage > 0.0);
        assert!((0.0..=1.0).contains(&result.best_qoe));
    }
}
