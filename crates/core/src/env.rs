//! Environments, SLAs and QoE accounting.
//!
//! The Atlas algorithms only ever interact with an [`Environment`]: a black
//! box that measures the slice under a configuration and returns a latency
//! trace. The simulator and the emulated testbed both implement it, so the
//! three stages are written once and run against either.

use atlas_math::stats;
use atlas_netsim::{
    ContentionPolicy, RealNetwork, ResourceBudget, Scenario, SharedTestbed, Simulator, SliceConfig,
    TraceSummary,
};

/// The service-level agreement of a slice: the latency threshold `Y` and
/// the required probability `E` of meeting it (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sla {
    /// Latency threshold `Y` in milliseconds.
    pub latency_threshold_ms: f64,
    /// Required QoE (probability of meeting the threshold) `E` in `[0, 1]`.
    pub qoe_target: f64,
}

impl Sla {
    /// Creates an SLA.
    pub fn new(latency_threshold_ms: f64, qoe_target: f64) -> Self {
        Self {
            latency_threshold_ms,
            qoe_target: qoe_target.clamp(0.0, 1.0),
        }
    }

    /// The paper's evaluation SLA: `Y = 300 ms`, `E = 0.9`.
    pub fn paper_default() -> Self {
        Self::new(300.0, 0.9)
    }

    /// QoE of a measured trace under this SLA.
    pub fn qoe_of(&self, trace: &TraceSummary) -> f64 {
        trace.qoe(self.latency_threshold_ms)
    }

    /// Whether a measured QoE satisfies the SLA.
    pub fn satisfied_by(&self, qoe: f64) -> bool {
        qoe + 1e-9 >= self.qoe_target
    }
}

/// One evaluated configuration: what the policy-learning stages consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QoeSample {
    /// The (floored) configuration that was actually applied.
    pub config: SliceConfig,
    /// Normalised resource usage `F(a)` of the applied configuration.
    pub usage: f64,
    /// Measured QoE under the SLA.
    pub qoe: f64,
    /// Mean end-to-end latency of the trace, in ms.
    pub mean_latency_ms: f64,
}

/// A queryable network environment (simulator or testbed).
pub trait Environment: Sync {
    /// Measures the slice under `config` in `scenario`.
    fn measure(&self, config: &SliceConfig, scenario: &Scenario) -> TraceSummary;

    /// Jointly grants one round of *concurrent* configuration requests:
    /// environments with a finite substrate (a budgeted
    /// [`SharedTestbed`]) scale over-subscribed demands down before any
    /// measurement runs, so co-scheduled sessions observe the resources
    /// they were actually *granted*, not the ones they asked for. Element
    /// `i` of the result answers `requested[i]`.
    ///
    /// The default is the uncontended identity grant, which keeps every
    /// single-slice path — and any testbed with
    /// [`ResourceBudget::unlimited`] — bit-for-bit what it was before
    /// budgets existed.
    fn grant_round(&self, requested: &[SliceConfig]) -> Vec<SliceConfig> {
        requested.to_vec()
    }

    /// The finite resource budget concurrent queries contend for, if the
    /// environment has one (admission policies read occupancy from it).
    /// `None` means the environment is uncontended.
    fn resource_budget(&self) -> Option<ResourceBudget> {
        None
    }

    /// Convenience: measure and reduce to a [`QoeSample`]. The paper's
    /// minimum connectivity allocation (6 UL / 3 DL PRBs) is enforced
    /// before applying the configuration.
    fn query(&self, config: &SliceConfig, scenario: &Scenario, sla: &Sla) -> QoeSample {
        let applied = config.with_connectivity_floor();
        let trace = self.measure(&applied, scenario);
        QoeSample {
            config: applied,
            usage: applied.resource_usage(),
            qoe: sla.qoe_of(&trace),
            mean_latency_ms: trace.mean_latency_ms(),
        }
    }
}

/// The offline environment: the (possibly calibrated) simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatorEnv {
    /// The wrapped simulator.
    pub simulator: Simulator,
}

impl SimulatorEnv {
    /// Wraps a simulator.
    pub fn new(simulator: Simulator) -> Self {
        Self { simulator }
    }
}

impl Environment for SimulatorEnv {
    fn measure(&self, config: &SliceConfig, scenario: &Scenario) -> TraceSummary {
        self.simulator.run(config, scenario)
    }
}

/// The online environment: the emulated testbed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealEnv {
    /// The wrapped testbed.
    pub network: RealNetwork,
}

impl RealEnv {
    /// Wraps a testbed instance.
    pub fn new(network: RealNetwork) -> Self {
        Self { network }
    }
}

impl Environment for RealEnv {
    fn measure(&self, config: &SliceConfig, scenario: &Scenario) -> TraceSummary {
        self.network.run(config, scenario)
    }
}

/// A [`SharedTestbed`] is an environment too: a single measurement is just
/// a run on the wrapped network, identical to [`RealEnv`] over the same
/// [`RealNetwork`]. (Batch fan-out stays the scheduler's job; this impl is
/// what lets orchestrated and sequential runs share one environment value.)
/// Its [`Environment::grant_round`] applies the testbed's budget and
/// contention policy, and [`Environment::resource_budget`] exposes the
/// budget to admission policies.
impl<P: ContentionPolicy> Environment for SharedTestbed<P> {
    fn measure(&self, config: &SliceConfig, scenario: &Scenario) -> TraceSummary {
        self.network().run(config, scenario)
    }

    fn grant_round(&self, requested: &[SliceConfig]) -> Vec<SliceConfig> {
        self.grant(requested)
    }

    fn resource_budget(&self) -> Option<ResourceBudget> {
        Some(*self.budget())
    }
}

/// Queries several configurations in parallel (the paper's "parallel
/// queries with multiprocessing"), one worker thread per configuration.
/// Each query gets its own derived seed so results are reproducible and
/// independent of scheduling order.
pub fn query_parallel<E: Environment>(
    env: &E,
    configs: &[SliceConfig],
    scenario: &Scenario,
    sla: &Sla,
    base_seed: u64,
) -> Vec<QoeSample> {
    if configs.is_empty() {
        return Vec::new();
    }
    let mut results: Vec<Option<QoeSample>> = vec![None; configs.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(configs.len());
        for (i, config) in configs.iter().enumerate() {
            let seed = atlas_math::rng::derive_seed(base_seed, i as u64);
            let run_scenario = scenario.with_seed(seed);
            handles.push(scope.spawn(move || (i, env.query(config, &run_scenario, sla))));
        }
        for handle in handles {
            let (i, sample) = handle.join().expect("simulator query thread panicked");
            results[i] = Some(sample);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// The feature vector the policy surrogates operate on: the unit-cube
/// configuration plus the normalised network state (user traffic) and the
/// normalised latency threshold — matching the paper's BNN inputs
/// ("network state s_t, threshold Y and network configuration a_t").
pub fn policy_features(config: &SliceConfig, traffic: u32, sla: &Sla) -> Vec<f64> {
    let mut f = config.to_unit();
    f.push(f64::from(traffic) / 4.0);
    f.push(sla.latency_threshold_ms / 500.0);
    f
}

/// Dimensionality of [`policy_features`].
pub const POLICY_FEATURE_DIM: usize = SliceConfig::DIM + 2;

/// Collects the "online collection" `D_r` of Sec. 4.1: per-frame latencies
/// logged from the environment under the currently deployed configuration.
pub fn collect_latencies<E: Environment>(
    env: &E,
    config: &SliceConfig,
    scenario: &Scenario,
) -> Vec<f64> {
    env.measure(&config.with_connectivity_floor(), scenario)
        .latencies_ms
}

/// Mean latency convenience wrapper used by motivation experiments.
pub fn mean_latency(latencies: &[f64]) -> f64 {
    stats::mean(latencies)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::default_with_seed(1).with_duration(10.0)
    }

    #[test]
    fn sla_qoe_and_satisfaction() {
        let sla = Sla::paper_default();
        assert_eq!(sla.latency_threshold_ms, 300.0);
        assert!(sla.satisfied_by(0.9));
        assert!(sla.satisfied_by(0.95));
        assert!(!sla.satisfied_by(0.85));
        let clamped = Sla::new(100.0, 2.0);
        assert_eq!(clamped.qoe_target, 1.0);
    }

    #[test]
    fn query_applies_connectivity_floor_and_reports_usage() {
        let env = SimulatorEnv::new(Simulator::with_original_params());
        let tiny = SliceConfig::from_vec(&[0.0, 0.0, 0.0, 0.0, 5.0, 0.5]);
        let sample = env.query(&tiny, &scenario(), &Sla::paper_default());
        assert_eq!(sample.config.bandwidth_ul, 6.0);
        assert_eq!(sample.config.bandwidth_dl, 3.0);
        assert!((0.0..=1.0).contains(&sample.qoe));
        assert!(sample.usage > 0.0 && sample.usage < 1.0);
        assert!(sample.mean_latency_ms > 0.0);
    }

    #[test]
    fn generous_config_meets_the_paper_sla_in_the_simulator() {
        let env = SimulatorEnv::new(Simulator::with_original_params());
        let sample = env.query(
            &SliceConfig::default_generous(),
            &scenario(),
            &Sla::paper_default(),
        );
        assert!(
            sample.qoe > 0.9,
            "a generous allocation should comfortably meet the SLA, got {}",
            sample.qoe
        );
    }

    #[test]
    fn real_env_is_harsher_than_simulator_env() {
        let sim = SimulatorEnv::new(Simulator::with_original_params());
        let real = RealEnv::new(RealNetwork::prototype());
        let cfg = SliceConfig::from_vec(&[8.0, 4.0, 0.0, 0.0, 8.0, 0.55]);
        let sla = Sla::paper_default();
        let a = sim.query(&cfg, &scenario(), &sla);
        let b = real.query(&cfg, &scenario(), &sla);
        assert!(b.qoe <= a.qoe + 0.05, "real qoe {} vs sim {}", b.qoe, a.qoe);
        assert!(b.mean_latency_ms > a.mean_latency_ms);
    }

    #[test]
    fn shared_testbed_env_matches_real_env() {
        let network = RealNetwork::prototype();
        let shared = SharedTestbed::new(network);
        let real = RealEnv::new(network);
        let sla = Sla::paper_default();
        let cfg = SliceConfig::from_vec(&[8.0, 4.0, 0.0, 0.0, 8.0, 0.55]);
        assert_eq!(
            shared.query(&cfg, &scenario(), &sla),
            real.query(&cfg, &scenario(), &sla)
        );
    }

    #[test]
    fn budgeted_testbed_grants_through_the_environment_trait() {
        let network = RealNetwork::prototype();
        // Uncontended environments grant requests verbatim and expose no
        // budget.
        let real = RealEnv::new(network);
        let requested = vec![SliceConfig::default_generous(); 3];
        assert_eq!(real.grant_round(&requested), requested);
        assert!(real.resource_budget().is_none());
        let unlimited = SharedTestbed::new(network);
        assert_eq!(unlimited.grant_round(&requested), requested);
        assert!(unlimited
            .resource_budget()
            .is_some_and(|b| b.is_unlimited()));
        // A finite budget scales over-subscribed rounds.
        let tight = SharedTestbed::new(network)
            .with_budget(atlas_netsim::ResourceBudget::carrier_default().scaled(0.5));
        let granted = tight.grant_round(&requested);
        assert!(granted[0].bandwidth_ul < requested[0].bandwidth_ul);
        assert!(tight.resource_budget().is_some_and(|b| !b.is_unlimited()));
    }

    #[test]
    fn parallel_queries_match_sequential_queries() {
        let env = SimulatorEnv::new(Simulator::with_original_params());
        let sla = Sla::paper_default();
        let configs = vec![
            SliceConfig::from_vec(&[10.0, 5.0, 0.0, 0.0, 10.0, 0.6]),
            SliceConfig::from_vec(&[20.0, 10.0, 0.0, 0.0, 20.0, 0.9]),
            SliceConfig::from_vec(&[6.0, 3.0, 0.0, 0.0, 5.0, 0.3]),
        ];
        let parallel = query_parallel(&env, &configs, &scenario(), &sla, 99);
        assert_eq!(parallel.len(), 3);
        for (i, cfg) in configs.iter().enumerate() {
            let seed = atlas_math::rng::derive_seed(99, i as u64);
            let sequential = env.query(cfg, &scenario().with_seed(seed), &sla);
            assert_eq!(parallel[i], sequential);
        }
    }

    #[test]
    fn parallel_query_of_empty_list_is_empty() {
        let env = SimulatorEnv::new(Simulator::with_original_params());
        assert!(query_parallel(&env, &[], &scenario(), &Sla::paper_default(), 1).is_empty());
    }

    #[test]
    fn policy_features_have_the_documented_layout() {
        let cfg = SliceConfig::from_vec(&[25.0, 25.0, 5.0, 0.0, 50.0, 1.0]);
        let f = policy_features(&cfg, 2, &Sla::paper_default());
        assert_eq!(f.len(), POLICY_FEATURE_DIM);
        assert!((f[0] - 0.5).abs() < 1e-9);
        assert!((f[6] - 0.5).abs() < 1e-9); // traffic 2 of 4
        assert!((f[7] - 0.6).abs() < 1e-9); // 300 / 500
        assert!(f.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn collect_latencies_returns_the_trace() {
        let env = SimulatorEnv::new(Simulator::with_original_params());
        let lat = collect_latencies(&env, &SliceConfig::default_generous(), &scenario());
        assert!(lat.len() > 10);
        assert!(mean_latency(&lat) > 0.0);
    }
}
