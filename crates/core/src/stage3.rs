//! Stage 3 — safe online learning in the real network
//! (Sec. 6, Algorithm 3).
//!
//! Starting from the offline policy of stage 2, the online learner refines
//! the configuration against the real network. A Gaussian process models
//! only the sim-to-real QoE residual `G(ψ) = Q(a) − Q_s(a)` (Eq. 12); the
//! next configuration is selected with the conservative clipped randomised
//! GP-UCB acquisition (Eq. 13) on the combined QoE estimate inside the
//! Lagrangian; and the multiplier is updated many times per online step by
//! querying the augmented simulator ("offline acceleration", Eq. 15).

use crate::env::{policy_features, Environment, QoeSample, SimulatorEnv, Sla};
use crate::stage2::Stage2Result;
use atlas_bayesopt::{Acquisition, SearchSpace};
use atlas_gp::GaussianProcess;
use atlas_math::rng::{derive_seed, seeded_rng, Rng64};
use atlas_netsim::{Scenario, Simulator, SliceConfig};
use atlas_nn::{Bnn, BnnConfig};

/// Which model learns the online information (Fig. 23 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineModel {
    /// A Gaussian process learns only the sim-to-real residual (ours).
    GpResidual,
    /// A (small) Bayesian neural network learns the residual.
    BnnResidual,
    /// The offline BNN keeps training directly on real observations
    /// ("BNN-Cont'd" in the paper); no residual model is used.
    BnnContinued,
}

/// Configuration of the online learning stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage3Config {
    /// Online iterations (paper: 100).
    pub iterations: usize,
    /// Offline multiplier updates per online action (paper: N = 20).
    pub offline_updates: usize,
    /// Random candidates scored per selection.
    pub candidates: usize,
    /// Acquisition function (paper: cRGP-UCB with ρ = 0.1, B = 10).
    pub acquisition: Acquisition,
    /// Dual step size ε (paper: 0.1).
    pub epsilon: f64,
    /// Online model variant.
    pub online_model: OnlineModel,
    /// Whether the offline-acceleration multiplier loop is enabled
    /// ("No Offline Acc." in Fig. 23 disables it).
    pub offline_acceleration: bool,
    /// Simulated/measured seconds per query.
    pub duration_s: f64,
    /// BNN hyper-parameters for the BNN-based online model variants.
    pub bnn: BnnConfig,
}

impl Default for Stage3Config {
    fn default() -> Self {
        Self {
            iterations: 100,
            offline_updates: 20,
            candidates: 1500,
            acquisition: Acquisition::conservative_default(),
            epsilon: 0.1,
            online_model: OnlineModel::GpResidual,
            offline_acceleration: true,
            duration_s: 15.0,
            bnn: BnnConfig {
                hidden: [16, 16, 0, 0],
                epochs: 30,
                ..BnnConfig::default()
            },
        }
    }
}

/// One online iteration's outcome on the real network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineOutcome {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// The applied configuration.
    pub config: SliceConfig,
    /// Resource usage of the applied configuration.
    pub usage: f64,
    /// Measured QoE in the real network.
    pub qoe: f64,
    /// The QoE the augmented simulator predicted for the same action
    /// (used to compute the residual).
    pub simulator_qoe: f64,
}

/// Result of the online learning stage.
#[derive(Debug, Clone)]
pub struct Stage3Result {
    /// Per-iteration outcomes.
    pub history: Vec<OnlineOutcome>,
    /// Final Lagrangian multiplier.
    pub final_multiplier: f64,
    /// Best (lowest-usage SLA-satisfying) online outcome, if any satisfied
    /// the SLA; otherwise the highest-QoE one.
    pub best: OnlineOutcome,
}

impl Stage3Result {
    /// Convenience: `(usage, qoe)` pairs for regret computation.
    pub fn usage_qoe_history(&self) -> Vec<(f64, f64)> {
        self.history.iter().map(|o| (o.usage, o.qoe)).collect()
    }
}

/// The internal residual model.
enum ResidualModel {
    Gp(Box<GaussianProcess>),
    Bnn {
        bnn: Box<Bnn>,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        fitted: bool,
    },
    /// BNN-Cont'd: the offline BNN itself is fine-tuned on real QoE.
    Continued {
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
    },
}

/// The stage-3 online learner.
pub struct OnlineLearner {
    config: Stage3Config,
    sla: Sla,
    /// The augmented simulator (offline environment for acceleration).
    simulator: Simulator,
    /// The offline QoE model and warm-start artefacts from stage 2.
    offline_qoe: Option<Bnn>,
    initial_config: Option<SliceConfig>,
    initial_multiplier: f64,
}

impl OnlineLearner {
    /// Creates an online learner from the stage-2 result and the augmented
    /// simulator.
    pub fn new(
        config: Stage3Config,
        sla: Sla,
        simulator: Simulator,
        offline: &Stage2Result,
    ) -> Self {
        Self {
            config,
            sla,
            simulator,
            offline_qoe: offline.qoe_model.clone(),
            initial_config: Some(offline.best_config),
            initial_multiplier: offline.multiplier,
        }
    }

    /// Creates an online learner with no offline stage at all ("No stage 2"
    /// ablation): the policy is learned online from scratch.
    pub fn without_offline(config: Stage3Config, sla: Sla, simulator: Simulator) -> Self {
        Self {
            config,
            sla,
            simulator,
            offline_qoe: None,
            initial_config: None,
            initial_multiplier: 0.0,
        }
    }

    /// The stage configuration.
    pub fn config(&self) -> &Stage3Config {
        &self.config
    }

    /// Offline QoE estimate `Q_s(a)` from the stage-2 BNN (0.5 when no
    /// offline model exists — maximum ignorance).
    fn offline_qoe_estimate(&self, features: &[f64]) -> f64 {
        match &self.offline_qoe {
            Some(bnn) => bnn.predict_mean(features).clamp(0.0, 1.0),
            None => 0.5,
        }
    }

    /// Residual mean/std from the online model.
    fn residual_estimate(
        &self,
        model: &ResidualModel,
        features: &[f64],
        rng: &mut Rng64,
    ) -> (f64, f64) {
        match model {
            ResidualModel::Gp(gp) => {
                if gp.is_empty() {
                    (0.0, 0.3)
                } else {
                    gp.predict(features)
                }
            }
            ResidualModel::Bnn { bnn, fitted, .. } => {
                if *fitted {
                    bnn.predict_with_uncertainty(features, 8, rng)
                } else {
                    (0.0, 0.3)
                }
            }
            ResidualModel::Continued { .. } => (0.0, 0.05),
        }
    }

    /// Combined QoE estimate of Eq. 12 for the "continued" variant the
    /// fine-tuned BNN is the whole estimate.
    fn combined_qoe(
        &self,
        model: &ResidualModel,
        continued_bnn: Option<&Bnn>,
        features: &[f64],
        rng: &mut Rng64,
    ) -> (f64, f64) {
        match model {
            ResidualModel::Continued { .. } => {
                let bnn = continued_bnn.expect("continued variant keeps a BNN");
                let (m, s) = bnn.predict_with_uncertainty(features, 8, rng);
                (m.clamp(0.0, 1.0), s)
            }
            _ => {
                let base = self.offline_qoe_estimate(features);
                let (rm, rs) = self.residual_estimate(model, features, rng);
                ((base + rm).clamp(0.0, 1.0), rs)
            }
        }
    }

    /// Batched combined-QoE estimate (Eq. 12) for the GP-residual model:
    /// the offline BNN mean per candidate plus the GP residual resolved
    /// with one batched (multi-right-hand-side, thread-parallel) solve.
    /// Element `i` is exactly what `combined_qoe` returns for
    /// `features[i]` — the GP path consumes no RNG, so the batched form is
    /// a drop-in for the per-candidate loop.
    fn combined_qoe_batch_gp(
        &self,
        gp: &GaussianProcess,
        features: &[Vec<f64>],
    ) -> Vec<(f64, f64)> {
        let residuals: Vec<(f64, f64)> = if gp.is_empty() {
            vec![(0.0, 0.3); features.len()]
        } else {
            gp.predict_batch_par(features)
        };
        features
            .iter()
            .zip(residuals)
            .map(|(f, (rm, rs))| {
                let base = self.offline_qoe_estimate(f);
                ((base + rm).clamp(0.0, 1.0), rs)
            })
            .collect()
    }

    /// Minimum-Lagrangian candidate under the GP-residual model, scored in
    /// batch. `beta` enables the optimistic (UCB) QoE of Eq. 13; `None`
    /// scores by the posterior mean (the offline-acceleration loop).
    fn select_min_lagrangian_gp(
        &self,
        gp: &GaussianProcess,
        candidates: &[Vec<f64>],
        traffic: u32,
        multiplier: f64,
        beta: Option<f64>,
    ) -> SliceConfig {
        let configs: Vec<SliceConfig> = candidates
            .iter()
            .map(|c| SliceConfig::from_vec(c))
            .collect();
        let features: Vec<Vec<f64>> = configs
            .iter()
            .map(|c| policy_features(c, traffic, &self.sla))
            .collect();
        let estimates = self.combined_qoe_batch_gp(gp, &features);
        let mut best_cfg = configs[0];
        let mut best_l = f64::INFINITY;
        for (config, (mean_q, std_q)) in configs.iter().zip(estimates) {
            let q = match beta {
                Some(b) => (mean_q + b.sqrt() * std_q).clamp(0.0, 1.0),
                None => mean_q,
            };
            let l = config.resource_usage() - multiplier * (q - self.sla.qoe_target);
            if l < best_l {
                best_l = l;
                best_cfg = *config;
            }
        }
        best_cfg
    }

    /// Sequential counterpart of [`OnlineLearner::select_min_lagrangian_gp`]
    /// for the BNN residual-model variants, whose QoE estimates consume the
    /// RNG per candidate and therefore cannot be batched without changing
    /// the stream.
    #[allow(clippy::too_many_arguments)]
    fn select_min_lagrangian_seq(
        &self,
        model: &ResidualModel,
        continued_bnn: Option<&Bnn>,
        candidates: &[Vec<f64>],
        traffic: u32,
        multiplier: f64,
        beta: Option<f64>,
        rng: &mut Rng64,
    ) -> SliceConfig {
        let mut best_cfg = SliceConfig::from_vec(&candidates[0]);
        let mut best_l = f64::INFINITY;
        for c in candidates {
            let config = SliceConfig::from_vec(c);
            let f = policy_features(&config, traffic, &self.sla);
            let (mean_q, std_q) = self.combined_qoe(model, continued_bnn, &f, rng);
            let q = match beta {
                Some(b) => (mean_q + b.sqrt() * std_q).clamp(0.0, 1.0),
                None => mean_q,
            };
            let l = config.resource_usage() - multiplier * (q - self.sla.qoe_target);
            if l < best_l {
                best_l = l;
                best_cfg = config;
            }
        }
        best_cfg
    }

    /// Runs Algorithm 3 against the real environment.
    pub fn run<E: Environment>(&self, real: &E, scenario: &Scenario, seed: u64) -> Stage3Result {
        let cfg = &self.config;
        let mut rng = seeded_rng(seed);
        let space = SearchSpace::new(SliceConfig::min().to_vec(), SliceConfig::max().to_vec());
        let run_scenario = scenario.with_duration(cfg.duration_s);
        let sim_env = SimulatorEnv::new(self.simulator);

        let mut residual_model = match cfg.online_model {
            OnlineModel::GpResidual => {
                ResidualModel::Gp(Box::new(GaussianProcess::default_matern()))
            }
            OnlineModel::BnnResidual => ResidualModel::Bnn {
                bnn: Box::new(Bnn::new(crate::env::POLICY_FEATURE_DIM, cfg.bnn, &mut rng)),
                xs: Vec::new(),
                ys: Vec::new(),
                fitted: false,
            },
            OnlineModel::BnnContinued => ResidualModel::Continued {
                xs: Vec::new(),
                ys: Vec::new(),
            },
        };
        // The fine-tuned copy of the offline BNN for the continued variant.
        let mut continued_bnn = self
            .offline_qoe
            .clone()
            .or_else(|| Some(Bnn::new(crate::env::POLICY_FEATURE_DIM, cfg.bnn, &mut rng)));

        let mut multiplier = self.initial_multiplier;
        let mut history: Vec<OnlineOutcome> = Vec::with_capacity(cfg.iterations);

        for iteration in 0..cfg.iterations {
            // ---------- offline acceleration: update λ in the simulator ----
            if cfg.offline_acceleration && cfg.offline_updates > 0 {
                for n in 0..cfg.offline_updates {
                    let candidates = space.sample_n(cfg.candidates.min(400), &mut rng);
                    let best_cfg = match &residual_model {
                        // GP residual: batched scoring (no RNG in this path).
                        ResidualModel::Gp(gp) => self.select_min_lagrangian_gp(
                            gp,
                            &candidates,
                            run_scenario.traffic,
                            multiplier,
                            None,
                        ),
                        // BNN variants consume the RNG per candidate; keep
                        // the sequential loop.
                        _ => self.select_min_lagrangian_seq(
                            &residual_model,
                            continued_bnn.as_ref(),
                            &candidates,
                            run_scenario.traffic,
                            multiplier,
                            None,
                            &mut rng,
                        ),
                    };
                    // Query the augmented simulator for Q_s and estimate G.
                    let sim_seed = derive_seed(seed, (iteration * 1000 + n) as u64);
                    let qs = sim_env
                        .query(&best_cfg, &run_scenario.with_seed(sim_seed), &self.sla)
                        .qoe;
                    let f = policy_features(&best_cfg, run_scenario.traffic, &self.sla);
                    let (g, _) = self.residual_estimate(&residual_model, &f, &mut rng);
                    // Eq. 15.
                    multiplier =
                        (multiplier - cfg.epsilon * (qs + g - self.sla.qoe_target)).max(0.0);
                }
            }

            // ---------- select the online action ---------------------------
            let chosen = if iteration == 0 {
                // The very first online action is the offline optimum when
                // available (Sec. 8.3).
                self.initial_config
                    .unwrap_or_else(|| SliceConfig::from_vec(&space.sample(&mut rng)))
            } else {
                let candidates = space.sample_n(cfg.candidates, &mut rng);
                let beta = cfg.acquisition.beta(iteration, &mut rng);
                match &residual_model {
                    // GP residual: batched scoring with the optimistic
                    // (UCB) QoE of Eq. 13 inside the Lagrangian.
                    ResidualModel::Gp(gp) => self.select_min_lagrangian_gp(
                        gp,
                        &candidates,
                        run_scenario.traffic,
                        multiplier,
                        Some(beta),
                    ),
                    // Optimistic (UCB) QoE inside the Lagrangian; β is the
                    // clipped randomised exploration weight.
                    _ => self.select_min_lagrangian_seq(
                        &residual_model,
                        continued_bnn.as_ref(),
                        &candidates,
                        run_scenario.traffic,
                        multiplier,
                        Some(beta),
                        &mut rng,
                    ),
                }
            };

            // ---------- apply to the real network --------------------------
            let real_seed = derive_seed(seed, 70_000 + iteration as u64);
            let real_sample: QoeSample =
                real.query(&chosen, &run_scenario.with_seed(real_seed), &self.sla);
            let sim_sample = sim_env.query(
                &chosen,
                &run_scenario.with_seed(derive_seed(seed, 80_000 + iteration as u64)),
                &self.sla,
            );
            let residual = real_sample.qoe - sim_sample.qoe;
            let features = policy_features(&real_sample.config, run_scenario.traffic, &self.sla);

            // ---------- update the online model ----------------------------
            match &mut residual_model {
                ResidualModel::Gp(gp) => {
                    // O(n²) incremental update — exactly equivalent to the
                    // old full refit on the extended data.
                    let _ = gp.observe(features.clone(), residual);
                }
                ResidualModel::Bnn {
                    bnn,
                    xs,
                    ys,
                    fitted,
                } => {
                    xs.push(features.clone());
                    ys.push(residual);
                    bnn.fit_epochs(xs, ys, 10, &mut rng);
                    *fitted = true;
                }
                ResidualModel::Continued { xs, ys } => {
                    xs.push(features.clone());
                    ys.push(real_sample.qoe);
                    if let Some(bnn) = continued_bnn.as_mut() {
                        bnn.fit_epochs(xs, ys, 10, &mut rng);
                    }
                }
            }

            // Without offline acceleration the multiplier is only updated
            // from the single online observation (Eq. 9 with the real QoE).
            if !cfg.offline_acceleration {
                multiplier =
                    (multiplier - cfg.epsilon * (real_sample.qoe - self.sla.qoe_target)).max(0.0);
            }

            history.push(OnlineOutcome {
                iteration,
                config: real_sample.config,
                usage: real_sample.usage,
                qoe: real_sample.qoe,
                simulator_qoe: sim_sample.qoe,
            });
        }

        let best = best_outcome(&history, &self.sla);
        Stage3Result {
            history,
            final_multiplier: multiplier,
            best,
        }
    }
}

/// Best online outcome: cheapest SLA-satisfying action, or the highest-QoE
/// action if none satisfied the SLA.
pub fn best_outcome(history: &[OnlineOutcome], sla: &Sla) -> OnlineOutcome {
    let feasible: Vec<&OnlineOutcome> =
        history.iter().filter(|o| sla.satisfied_by(o.qoe)).collect();
    if feasible.is_empty() {
        *history
            .iter()
            .max_by(|a, b| {
                a.qoe
                    .partial_cmp(&b.qoe)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty history")
    } else {
        *feasible
            .into_iter()
            .min_by(|a, b| {
                a.usage
                    .partial_cmp(&b.usage)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty feasible set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::RealEnv;
    use crate::stage2::{OfflineTrainer, Stage2Config};
    use atlas_netsim::RealNetwork;

    fn tiny_stage2_result(seed: u64) -> (Stage2Result, Simulator) {
        let sim = Simulator::with_original_params();
        let env = SimulatorEnv::new(sim);
        let trainer = OfflineTrainer::new(
            Stage2Config {
                iterations: 10,
                warmup: 4,
                parallel: 2,
                candidates: 200,
                duration_s: 8.0,
                bnn: BnnConfig {
                    hidden: [12, 12, 0, 0],
                    epochs: 8,
                    ..BnnConfig::default()
                },
                train_epochs_per_iter: 3,
                ..Stage2Config::default()
            },
            Sla::paper_default(),
        );
        let scenario = Scenario::default_with_seed(seed).with_duration(8.0);
        (trainer.run(&env, &scenario, seed), sim)
    }

    fn tiny_stage3() -> Stage3Config {
        Stage3Config {
            iterations: 6,
            offline_updates: 2,
            candidates: 200,
            duration_s: 8.0,
            ..Stage3Config::default()
        }
    }

    #[test]
    fn online_learning_produces_a_full_history_and_first_action_is_offline_best() {
        let (offline, sim) = tiny_stage2_result(1);
        let learner = OnlineLearner::new(tiny_stage3(), Sla::paper_default(), sim, &offline);
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(1).with_duration(8.0);
        let result = learner.run(&real, &scenario, 42);
        assert_eq!(result.history.len(), 6);
        // The first action is the offline best configuration (after the
        // connectivity floor).
        assert_eq!(
            result.history[0].config,
            offline.best_config.with_connectivity_floor()
        );
        for o in &result.history {
            assert!((0.0..=1.0).contains(&o.qoe));
            assert!((0.0..=1.0).contains(&o.usage));
            assert!((0.0..=1.0).contains(&o.simulator_qoe));
        }
        assert!(result.final_multiplier >= 0.0);
        assert_eq!(result.usage_qoe_history().len(), 6);
    }

    #[test]
    fn all_online_model_variants_run() {
        let (offline, sim) = tiny_stage2_result(2);
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(2).with_duration(8.0);
        for model in [
            OnlineModel::GpResidual,
            OnlineModel::BnnResidual,
            OnlineModel::BnnContinued,
        ] {
            let learner = OnlineLearner::new(
                Stage3Config {
                    online_model: model,
                    iterations: 3,
                    ..tiny_stage3()
                },
                Sla::paper_default(),
                sim,
                &offline,
            );
            let result = learner.run(&real, &scenario, 7);
            assert_eq!(result.history.len(), 3, "variant {model:?}");
        }
    }

    #[test]
    fn learner_without_offline_stage_still_runs() {
        let sim = Simulator::with_original_params();
        let learner = OnlineLearner::without_offline(
            Stage3Config {
                iterations: 4,
                ..tiny_stage3()
            },
            Sla::paper_default(),
            sim,
        );
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(3).with_duration(8.0);
        let result = learner.run(&real, &scenario, 11);
        assert_eq!(result.history.len(), 4);
    }

    #[test]
    fn best_outcome_selection_rules() {
        let sla = Sla::paper_default();
        let mk = |usage: f64, qoe: f64| OnlineOutcome {
            iteration: 0,
            config: SliceConfig::default_generous(),
            usage,
            qoe,
            simulator_qoe: qoe,
        };
        let history = vec![mk(0.4, 0.95), mk(0.2, 0.91), mk(0.1, 0.3)];
        assert_eq!(best_outcome(&history, &sla).usage, 0.2);
        let infeasible = vec![mk(0.4, 0.5), mk(0.2, 0.8)];
        assert_eq!(best_outcome(&infeasible, &sla).qoe, 0.8);
    }
}
