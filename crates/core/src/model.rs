//! Surrogate models as used inside the Atlas stages.
//!
//! The stages need slightly more control than the generic
//! [`atlas_bayesopt::Surrogate`] trait offers — in particular warm-started
//! incremental training of the BNN after every batch of new transitions
//! (the paper retrains "with new added transitions" rather than from
//! scratch). [`PolicyModel`] wraps the two model families behind that
//! richer interface.

use atlas_gp::GaussianProcess;
use atlas_math::rng::Rng64;
use atlas_nn::{Bnn, BnnConfig};

/// Which surrogate family a stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateKind {
    /// Bayesian neural network (the paper's choice for stages 1–2).
    Bnn,
    /// Gaussian process (the baseline surrogate and the stage-3 model).
    Gp,
}

/// A surrogate with incremental fitting, mean/std prediction and coherent
/// Thompson draws.
pub enum PolicyModel {
    /// Bayesian-neural-network surrogate.
    Bnn(Box<Bnn>),
    /// Gaussian-process surrogate.
    Gp(Box<GaussianProcess>),
}

impl PolicyModel {
    /// Creates a model of the requested kind for `input_dim` features.
    pub fn new(
        kind: SurrogateKind,
        input_dim: usize,
        bnn_config: BnnConfig,
        rng: &mut Rng64,
    ) -> Self {
        match kind {
            SurrogateKind::Bnn => PolicyModel::Bnn(Box::new(Bnn::new(input_dim, bnn_config, rng))),
            SurrogateKind::Gp => PolicyModel::Gp(Box::new(GaussianProcess::default_matern())),
        }
    }

    /// Which family this model belongs to.
    pub fn kind(&self) -> SurrogateKind {
        match self {
            PolicyModel::Bnn(_) => SurrogateKind::Bnn,
            PolicyModel::Gp(_) => SurrogateKind::Gp,
        }
    }

    /// Fits the model to all observations, running `epochs` passes for the
    /// BNN (warm start) and an exact refit for the GP.
    pub fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64], epochs: usize, rng: &mut Rng64) {
        if inputs.is_empty() {
            return;
        }
        match self {
            PolicyModel::Bnn(bnn) => {
                bnn.fit_epochs(inputs, targets, epochs.max(1), rng);
            }
            PolicyModel::Gp(gp) => {
                let _ = gp.fit(inputs, targets);
            }
        }
    }

    /// Incrementally absorbs one observation, returning `true` if the model
    /// updated itself. The GP extends its factorisation in O(n²) — exactly
    /// equivalent to a full refit on the extended data; the BNN declines
    /// (it warm-starts from the whole dataset), so callers fall back to
    /// [`PolicyModel::fit`].
    pub fn observe(&mut self, x: &[f64], y: f64) -> bool {
        match self {
            PolicyModel::Bnn(_) => false,
            PolicyModel::Gp(gp) => gp.observe(x.to_vec(), y).is_ok(),
        }
    }

    /// Predictive mean and standard deviation for a whole candidate set.
    /// Element `i` equals `predict(&xs[i], rng)` (the GP resolves the batch
    /// with one multi-right-hand-side solve; the BNN consumes its
    /// Monte-Carlo draws in candidate order, exactly as a per-point loop
    /// would).
    pub fn predict_batch(&self, xs: &[Vec<f64>], rng: &mut Rng64) -> Vec<(f64, f64)> {
        match self {
            PolicyModel::Bnn(bnn) => xs
                .iter()
                .map(|x| bnn.predict_with_uncertainty(x, 12, rng))
                .collect(),
            PolicyModel::Gp(gp) => gp.predict_batch_par(xs),
        }
    }

    /// Predictive mean at one point (posterior mean for the BNN, exact
    /// predictive mean for the GP).
    pub fn predict_mean(&self, x: &[f64]) -> f64 {
        match self {
            PolicyModel::Bnn(bnn) => bnn.predict_mean(x),
            PolicyModel::Gp(gp) => gp.predict(x).0,
        }
    }

    /// Predictive mean and standard deviation.
    pub fn predict(&self, x: &[f64], rng: &mut Rng64) -> (f64, f64) {
        match self {
            PolicyModel::Bnn(bnn) => bnn.predict_with_uncertainty(x, 12, rng),
            PolicyModel::Gp(gp) => gp.predict(x),
        }
    }

    /// One coherent Thompson draw evaluated over all candidates.
    pub fn thompson_batch(&self, candidates: &[Vec<f64>], rng: &mut Rng64) -> Vec<f64> {
        match self {
            PolicyModel::Bnn(bnn) => {
                let f = bnn.thompson_sampler(rng);
                candidates.iter().map(|c| f(c)).collect()
            }
            // One batched posterior resolve, then noise draws in candidate
            // order (the same RNG stream as a per-point loop).
            PolicyModel::Gp(gp) => gp
                .predict_batch_par(candidates)
                .into_iter()
                .map(|(mean, std)| mean + std * atlas_math::dist::standard_normal_sample(rng))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;

    fn dataset() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64 / 30.0, 1.0 - i as f64 / 30.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - x[1]).collect();
        (xs, ys)
    }

    #[test]
    fn both_kinds_learn_the_trend() {
        let mut rng = seeded_rng(1);
        let (xs, ys) = dataset();
        for kind in [SurrogateKind::Gp, SurrogateKind::Bnn] {
            let mut model = PolicyModel::new(
                kind,
                2,
                BnnConfig {
                    hidden: [16, 16, 0, 0],
                    epochs: 100,
                    ..BnnConfig::default()
                },
                &mut rng,
            );
            model.fit(&xs, &ys, 100, &mut rng);
            assert_eq!(model.kind(), kind);
            let low = model.predict_mean(&[0.0, 1.0]);
            let high = model.predict_mean(&[1.0, 0.0]);
            assert!(high > low, "{kind:?}: {high} should exceed {low}");
        }
    }

    #[test]
    fn incremental_bnn_fit_improves_with_more_epochs() {
        let mut rng = seeded_rng(2);
        let (xs, ys) = dataset();
        let mut model = PolicyModel::new(
            SurrogateKind::Bnn,
            2,
            BnnConfig {
                hidden: [16, 16, 0, 0],
                ..BnnConfig::default()
            },
            &mut rng,
        );
        let err = |m: &PolicyModel| -> f64 {
            xs.iter()
                .zip(ys.iter())
                .map(|(x, y)| (m.predict_mean(x) - y).abs())
                .sum::<f64>()
                / xs.len() as f64
        };
        model.fit(&xs, &ys, 5, &mut rng);
        let early = err(&model);
        for _ in 0..10 {
            model.fit(&xs, &ys, 20, &mut rng);
        }
        let late = err(&model);
        assert!(
            late <= early,
            "late error {late} should not exceed early error {early}"
        );
    }

    #[test]
    fn thompson_batch_and_predict_are_consistent_in_shape() {
        let mut rng = seeded_rng(3);
        let (xs, ys) = dataset();
        let mut model = PolicyModel::new(SurrogateKind::Gp, 2, BnnConfig::default(), &mut rng);
        model.fit(&xs, &ys, 1, &mut rng);
        let candidates: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0, 0.5]).collect();
        let draws = model.thompson_batch(&candidates, &mut rng);
        assert_eq!(draws.len(), candidates.len());
        let (mean, std) = model.predict(&candidates[3], &mut rng);
        assert!(mean.is_finite() && std >= 0.0);
    }

    #[test]
    fn gp_observe_matches_full_fit_and_batch_matches_per_point() {
        let mut rng = seeded_rng(5);
        let (xs, ys) = dataset();
        let mut inc = PolicyModel::new(SurrogateKind::Gp, 2, BnnConfig::default(), &mut rng);
        let mut full = PolicyModel::new(SurrogateKind::Gp, 2, BnnConfig::default(), &mut rng);
        for k in 0..xs.len() {
            assert!(inc.observe(&xs[k], ys[k]));
            full.fit(&xs[..=k], &ys[..=k], 1, &mut rng);
        }
        let probes: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0, 0.3]).collect();
        let batch = inc.predict_batch(&probes, &mut rng);
        for (p, b) in probes.iter().zip(batch.iter()) {
            assert_eq!(inc.predict(p, &mut rng), *b);
            assert_eq!(full.predict(p, &mut rng), *b);
        }
        // The BNN declines incremental updates (callers refit instead).
        let mut bnn = PolicyModel::new(SurrogateKind::Bnn, 2, BnnConfig::default(), &mut rng);
        assert!(!bnn.observe(&xs[0], ys[0]));
    }

    #[test]
    fn fitting_with_no_data_is_a_noop() {
        let mut rng = seeded_rng(4);
        let mut model = PolicyModel::new(SurrogateKind::Gp, 2, BnnConfig::default(), &mut rng);
        model.fit(&[], &[], 10, &mut rng);
        let (mean, std) = model.predict(&[0.5, 0.5], &mut rng);
        assert!(mean.is_finite() && std > 0.0);
    }
}
