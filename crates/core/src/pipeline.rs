//! The full three-stage Atlas pipeline (Fig. 6).
//!
//! Wires the stages together the way the paper's artifact does: collect the
//! online latency collection `D_r` from the real network under the
//! currently deployed configuration, calibrate the simulator (stage 1),
//! train the offline policy in the augmented simulator (stage 2), then
//! learn online in the real network (stage 3). Any stage can be skipped for
//! the component-ablation experiment (Fig. 24).

use crate::env::{collect_latencies, Environment, RealEnv, SimulatorEnv, Sla};
use crate::stage1::{SimulatorCalibration, Stage1Config, Stage1Result};
use crate::stage2::{OfflineTrainer, Stage2Config, Stage2Result};
use crate::stage3::{OnlineLearner, Stage3Config, Stage3Result};
use atlas_math::rng::derive_seed;
use atlas_netsim::{RealNetwork, Scenario, Simulator, SliceConfig};

/// Configuration of a full Atlas run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtlasConfig {
    /// Stage-1 settings.
    pub stage1: Stage1Config,
    /// Stage-2 settings.
    pub stage2: Stage2Config,
    /// Stage-3 settings.
    pub stage3: Stage3Config,
    /// The slice SLA.
    pub sla: Sla,
    /// Skip the learning-based simulator (use the original parameters).
    pub skip_stage1: bool,
    /// Skip offline training (learn online from scratch).
    pub skip_stage2: bool,
    /// Skip online learning (keep applying the offline best configuration).
    pub skip_stage3: bool,
    /// Configuration deployed while collecting the online collection `D_r`.
    pub deployed_config: SliceConfig,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        Self {
            stage1: Stage1Config::default(),
            stage2: Stage2Config::default(),
            stage3: Stage3Config::default(),
            sla: Sla::paper_default(),
            skip_stage1: false,
            skip_stage2: false,
            skip_stage3: false,
            deployed_config: SliceConfig::default_generous(),
        }
    }
}

/// Outcome of a full Atlas run.
#[derive(Debug, Clone)]
pub struct AtlasOutcome {
    /// Stage-1 result (absent when skipped).
    pub stage1: Option<Stage1Result>,
    /// Stage-2 result (absent when skipped).
    pub stage2: Option<Stage2Result>,
    /// Stage-3 result (always present; when stage 3 is "skipped" the
    /// offline configuration is simply replayed without learning).
    pub stage3: Stage3Result,
    /// The simulator (original or augmented) used by stages 2–3.
    pub simulator: Simulator,
}

/// Runs the full Atlas pipeline against the given real network.
pub fn run_atlas(
    real: &RealNetwork,
    scenario: &Scenario,
    config: &AtlasConfig,
    seed: u64,
) -> AtlasOutcome {
    let real_env = RealEnv::new(*real);

    // ---- online collection D_r -------------------------------------------
    let collection_scenario = scenario
        .with_duration(config.stage1.duration_s)
        .with_seed(derive_seed(seed, 1));
    let real_latencies =
        collect_latencies(&real_env, &config.deployed_config, &collection_scenario);

    // ---- stage 1: learning-based simulator --------------------------------
    let stage1 = if config.skip_stage1 {
        None
    } else {
        let calibration = SimulatorCalibration::new(config.stage1);
        Some(calibration.run(
            &real_latencies,
            &config.deployed_config,
            scenario,
            derive_seed(seed, 2),
        ))
    };
    let simulator = stage1
        .as_ref()
        .map(Stage1Result::augmented_simulator)
        .unwrap_or_else(Simulator::with_original_params);

    // ---- stage 2: offline training ----------------------------------------
    let stage2 = if config.skip_stage2 {
        None
    } else {
        let trainer = OfflineTrainer::new(config.stage2, config.sla);
        let sim_env = SimulatorEnv::new(simulator);
        Some(trainer.run(&sim_env, scenario, derive_seed(seed, 3)))
    };

    // ---- stage 3: online learning -----------------------------------------
    let stage3 = if config.skip_stage3 {
        // Keep applying the offline best configuration without learning.
        replay_offline_config(
            &real_env,
            &simulator,
            stage2.as_ref(),
            scenario,
            config,
            seed,
        )
    } else {
        let learner = match &stage2 {
            Some(offline) => OnlineLearner::new(config.stage3, config.sla, simulator, offline),
            None => OnlineLearner::without_offline(config.stage3, config.sla, simulator),
        };
        learner.run(&real_env, scenario, derive_seed(seed, 4))
    };

    AtlasOutcome {
        stage1,
        stage2,
        stage3,
        simulator,
    }
}

/// "No stage 3": apply the offline best configuration for every online
/// iteration without any learning.
fn replay_offline_config(
    real_env: &RealEnv,
    simulator: &Simulator,
    stage2: Option<&Stage2Result>,
    scenario: &Scenario,
    config: &AtlasConfig,
    seed: u64,
) -> Stage3Result {
    use crate::stage3::{best_outcome, OnlineOutcome};
    let chosen = stage2
        .map(|s| s.best_config)
        .unwrap_or(config.deployed_config);
    let sim_env = SimulatorEnv::new(*simulator);
    let run_scenario = scenario.with_duration(config.stage3.duration_s);
    let mut history = Vec::with_capacity(config.stage3.iterations);
    for iteration in 0..config.stage3.iterations {
        let sample = real_env.query(
            &chosen,
            &run_scenario.with_seed(derive_seed(seed, 90_000 + iteration as u64)),
            &config.sla,
        );
        let sim_sample = sim_env.query(
            &chosen,
            &run_scenario.with_seed(derive_seed(seed, 95_000 + iteration as u64)),
            &config.sla,
        );
        history.push(OnlineOutcome {
            iteration,
            config: sample.config,
            usage: sample.usage,
            qoe: sample.qoe,
            simulator_qoe: sim_sample.qoe,
        });
    }
    let best = best_outcome(&history, &config.sla);
    Stage3Result {
        history,
        final_multiplier: stage2.map(|s| s.multiplier).unwrap_or(0.0),
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SurrogateKind;
    use atlas_nn::BnnConfig;

    fn tiny_atlas_config() -> AtlasConfig {
        AtlasConfig {
            stage1: Stage1Config {
                iterations: 5,
                warmup: 2,
                parallel: 2,
                candidates: 150,
                duration_s: 6.0,
                surrogate: SurrogateKind::Gp,
                train_epochs_per_iter: 2,
                ..Stage1Config::default()
            },
            stage2: Stage2Config {
                iterations: 8,
                warmup: 3,
                parallel: 2,
                candidates: 150,
                duration_s: 6.0,
                bnn: BnnConfig {
                    hidden: [12, 12, 0, 0],
                    epochs: 8,
                    ..BnnConfig::default()
                },
                train_epochs_per_iter: 2,
                ..Stage2Config::default()
            },
            stage3: Stage3Config {
                iterations: 4,
                offline_updates: 1,
                candidates: 150,
                duration_s: 6.0,
                ..Stage3Config::default()
            },
            ..AtlasConfig::default()
        }
    }

    #[test]
    fn full_pipeline_runs_all_three_stages() {
        let real = RealNetwork::prototype();
        let scenario = Scenario::default_with_seed(1).with_duration(6.0);
        let outcome = run_atlas(&real, &scenario, &tiny_atlas_config(), 17);
        assert!(outcome.stage1.is_some());
        assert!(outcome.stage2.is_some());
        assert_eq!(outcome.stage3.history.len(), 4);
        // The augmented simulator uses the stage-1 best parameters.
        assert_eq!(
            *outcome.simulator.params(),
            outcome.stage1.as_ref().unwrap().best_params
        );
    }

    #[test]
    fn stages_can_be_skipped() {
        let real = RealNetwork::prototype();
        let scenario = Scenario::default_with_seed(2).with_duration(6.0);
        let config = AtlasConfig {
            skip_stage1: true,
            skip_stage2: true,
            ..tiny_atlas_config()
        };
        let outcome = run_atlas(&real, &scenario, &config, 3);
        assert!(outcome.stage1.is_none());
        assert!(outcome.stage2.is_none());
        assert_eq!(outcome.stage3.history.len(), 4);
        assert_eq!(
            *outcome.simulator.params(),
            *Simulator::with_original_params().params()
        );
    }

    #[test]
    fn skipping_stage3_replays_the_offline_configuration() {
        let real = RealNetwork::prototype();
        let scenario = Scenario::default_with_seed(3).with_duration(6.0);
        let config = AtlasConfig {
            skip_stage1: true,
            skip_stage3: true,
            ..tiny_atlas_config()
        };
        let outcome = run_atlas(&real, &scenario, &config, 5);
        let offline_best = outcome
            .stage2
            .as_ref()
            .unwrap()
            .best_config
            .with_connectivity_floor();
        for o in &outcome.stage3.history {
            assert_eq!(o.config, offline_best);
        }
    }
}
