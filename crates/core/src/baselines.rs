//! The state-of-the-art baselines the paper compares against (Sec. 8):
//!
//! * **Baseline** — Bayesian optimisation with a GP model and the
//!   expected-improvement acquisition, learning directly in the real
//!   network (no offline stage).
//! * **DLDA** (Shi et al., NSDI'21) — a DNN is trained offline on a
//!   grid-searched dataset from the simulator and fine-tuned online; each
//!   step it samples 10 K configurations and picks the cheapest one whose
//!   predicted QoE meets the requirement.
//! * **VirtualEdge** (Liu & Han, ICDCS'19) — a GP learns the QoE online and
//!   a predictive local-search step updates the current configuration.
//!
//! All baselines produce the same per-iteration history type as stage 3 so
//! regrets and training-progress figures are directly comparable.

use crate::env::{policy_features, Environment, Sla};
use crate::stage3::OnlineOutcome;
use atlas_bayesopt::{Acquisition, SearchSpace};
use atlas_gp::GaussianProcess;
use atlas_math::rng::{derive_seed, seeded_rng};
use atlas_netsim::{Scenario, SliceConfig};
use atlas_nn::{Adam, Mlp};

fn config_space() -> SearchSpace {
    SearchSpace::new(SliceConfig::min().to_vec(), SliceConfig::max().to_vec())
}

/// Shared settings for the online baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Online iterations.
    pub iterations: usize,
    /// Random candidates per selection step.
    pub candidates: usize,
    /// Measured seconds per query.
    pub duration_s: f64,
    /// Penalty coefficient of the scalarised objective used by the GP-EI
    /// baseline.
    pub scalarisation_penalty: f64,
    /// Warm-up iterations with random configurations.
    pub warmup: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            iterations: 100,
            candidates: 1500,
            duration_s: 15.0,
            scalarisation_penalty: 3.0,
            warmup: 5,
        }
    }
}

/// **Baseline**: GP + expected improvement directly on the real network.
/// The constrained problem is scalarised as
/// `J(a) = F(a) + penalty·max(0, E − Q(a))`.
pub fn run_gp_ei_baseline<E: Environment>(
    real: &E,
    sla: &Sla,
    scenario: &Scenario,
    config: &BaselineConfig,
    seed: u64,
) -> Vec<OnlineOutcome> {
    let mut rng = seeded_rng(seed);
    let space = config_space();
    let run_scenario = scenario.with_duration(config.duration_s);
    let mut gp = GaussianProcess::default_matern();
    let mut ys: Vec<f64> = Vec::new();
    let mut history = Vec::with_capacity(config.iterations);
    let acquisition = Acquisition::ExpectedImprovement;

    for iteration in 0..config.iterations {
        let chosen = if iteration < config.warmup || gp.is_empty() {
            SliceConfig::from_vec(&space.sample(&mut rng))
        } else {
            let best_y = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let candidates = space.sample_n(config.candidates, &mut rng);
            // One batched posterior resolve over the candidate set (EI
            // consumes no RNG, so scoring order is immaterial here).
            let units: Vec<Vec<f64>> = candidates.iter().map(|c| space.normalize(c)).collect();
            let preds = gp.predict_batch_par(&units);
            let mut best_cfg = SliceConfig::from_vec(&candidates[0]);
            let mut best_score = f64::NEG_INFINITY;
            for (c, (mean, std)) in candidates.iter().zip(preds) {
                let score = acquisition.score(mean, std, best_y, iteration + 1, &mut rng);
                if score > best_score {
                    best_score = score;
                    best_cfg = SliceConfig::from_vec(c);
                }
            }
            best_cfg
        };
        let sample = real.query(
            &chosen,
            &run_scenario.with_seed(derive_seed(seed, iteration as u64)),
            sla,
        );
        let scalarised =
            sample.usage + config.scalarisation_penalty * (sla.qoe_target - sample.qoe).max(0.0);
        ys.push(scalarised);
        // O(n²) incremental absorption instead of the old full refit.
        let _ = gp.observe(space.normalize(&sample.config.to_vec()), scalarised);
        history.push(OnlineOutcome {
            iteration,
            config: sample.config,
            usage: sample.usage,
            qoe: sample.qoe,
            simulator_qoe: sample.qoe,
        });
    }
    history
}

/// The DLDA baseline: offline grid-trained DNN, online fine-tuning,
/// configuration chosen by sampling the space and filtering on the
/// predicted QoE.
pub struct Dlda {
    model: Mlp,
    optimizer: Adam,
    online_features: Vec<Vec<f64>>,
    online_targets: Vec<f64>,
    /// Number of grid points per dimension used for offline training.
    pub grid_per_dim: usize,
}

impl Dlda {
    /// Trains the teacher model offline from a grid-searched dataset
    /// generated in `offline_env` (the paper grids each dimension at
    /// `[0.0, 0.3, 0.6, 0.9]` of its range).
    pub fn train_offline<E: Environment>(
        offline_env: &E,
        sla: &Sla,
        scenario: &Scenario,
        grid_per_dim: usize,
        duration_s: f64,
        seed: u64,
    ) -> Self {
        let grid_per_dim = grid_per_dim.clamp(2, 6);
        let mut rng = seeded_rng(seed);
        let run_scenario = scenario.with_duration(duration_s);
        // Grid levels as fractions of each dimension's range, matching the
        // paper's [0.0, 0.3, 0.6, 0.9] for 4 levels.
        let levels: Vec<f64> = (0..grid_per_dim)
            .map(|i| i as f64 * (0.9 / (grid_per_dim as f64 - 1.0)))
            .collect();
        let mut features = Vec::new();
        let mut targets = Vec::new();
        let dim = SliceConfig::DIM;
        let total = levels.len().pow(dim as u32);
        for idx in 0..total {
            let mut rest = idx;
            let mut unit = vec![0.0; dim];
            for u in unit.iter_mut() {
                *u = levels[rest % levels.len()];
                rest /= levels.len();
            }
            let config = SliceConfig::from_unit(&unit);
            let sample = offline_env.query(
                &config,
                &run_scenario.with_seed(derive_seed(seed, idx as u64)),
                sla,
            );
            features.push(policy_features(&sample.config, run_scenario.traffic, sla));
            targets.push(sample.qoe);
        }
        let mut model = Mlp::new(&[features[0].len(), 32, 32, 1], &mut rng);
        let mut optimizer = Adam::new(0.01);
        for _ in 0..300 {
            model.train_batch(&features, &targets, &mut optimizer);
        }
        Self {
            model,
            optimizer,
            online_features: Vec::new(),
            online_targets: Vec::new(),
            grid_per_dim,
        }
    }

    /// Predicted QoE of a configuration.
    pub fn predict_qoe(&self, config: &SliceConfig, traffic: u32, sla: &Sla) -> f64 {
        self.model
            .predict(&policy_features(config, traffic, sla))
            .clamp(0.0, 1.0)
    }

    /// Selects the configuration with minimum resource usage among
    /// `samples` random configurations whose predicted QoE meets the SLA
    /// (falls back to the highest predicted QoE when none qualifies).
    pub fn select_config(&self, sla: &Sla, traffic: u32, samples: usize, seed: u64) -> SliceConfig {
        let mut rng = seeded_rng(seed);
        let space = config_space();
        let candidates = space.sample_n(samples.max(10), &mut rng);
        let mut best_feasible: Option<(f64, SliceConfig)> = None;
        let mut best_any: Option<(f64, SliceConfig)> = None;
        for c in candidates {
            let config = SliceConfig::from_vec(&c);
            let qoe = self.predict_qoe(&config, traffic, sla);
            let usage = config.resource_usage();
            if qoe >= sla.qoe_target
                && best_feasible
                    .as_ref()
                    .map(|(u, _)| usage < *u)
                    .unwrap_or(true)
            {
                best_feasible = Some((usage, config));
            }
            if best_any.as_ref().map(|(q, _)| qoe > *q).unwrap_or(true) {
                best_any = Some((qoe, config));
            }
        }
        best_feasible
            .map(|(_, c)| c)
            .or(best_any.map(|(_, c)| c))
            .expect("candidate set is non-empty")
    }

    /// Runs the online fine-tuning loop on the real network.
    pub fn run_online<E: Environment>(
        &mut self,
        real: &E,
        sla: &Sla,
        scenario: &Scenario,
        config: &BaselineConfig,
        seed: u64,
    ) -> Vec<OnlineOutcome> {
        let run_scenario = scenario.with_duration(config.duration_s);
        let mut history = Vec::with_capacity(config.iterations);
        for iteration in 0..config.iterations {
            let chosen = self.select_config(
                sla,
                run_scenario.traffic,
                config.candidates.max(2000),
                derive_seed(seed, 40_000 + iteration as u64),
            );
            let sample = real.query(
                &chosen,
                &run_scenario.with_seed(derive_seed(seed, iteration as u64)),
                sla,
            );
            self.online_features
                .push(policy_features(&sample.config, run_scenario.traffic, sla));
            self.online_targets.push(sample.qoe);
            // Transfer learning: fine-tune the teacher on the online data.
            for _ in 0..20 {
                self.model.train_batch(
                    &self.online_features,
                    &self.online_targets,
                    &mut self.optimizer,
                );
            }
            history.push(OnlineOutcome {
                iteration,
                config: sample.config,
                usage: sample.usage,
                qoe: sample.qoe,
                simulator_qoe: sample.qoe,
            });
        }
        history
    }
}

/// The VirtualEdge baseline: a GP learns the QoE online and the
/// configuration is updated by a predictive local search around the
/// current operating point.
pub fn run_virtual_edge<E: Environment>(
    real: &E,
    sla: &Sla,
    scenario: &Scenario,
    config: &BaselineConfig,
    seed: u64,
) -> Vec<OnlineOutcome> {
    let mut rng = seeded_rng(seed);
    let space = config_space();
    let run_scenario = scenario.with_duration(config.duration_s);
    let mut gp = GaussianProcess::default_matern();
    let mut history = Vec::with_capacity(config.iterations);
    // Start from a mid-scale allocation.
    let mut current = SliceConfig::from_unit(&[0.5; SliceConfig::DIM]);

    for iteration in 0..config.iterations {
        let chosen = if iteration < config.warmup || gp.is_empty() {
            // Initial exploration around the starting point.
            SliceConfig::from_vec(&space.sample_near(&current.to_vec(), 0.4, &mut rng))
        } else {
            // Predictive gradient/local step: evaluate a trust region around
            // the current configuration and move to the cheapest point the
            // GP predicts to be feasible; grow resources if none is. The
            // whole trust region is resolved with one batched solve.
            let candidates: Vec<Vec<f64>> = (0..config.candidates)
                .map(|_| space.sample_near(&current.to_vec(), 0.25, &mut rng))
                .collect();
            let units: Vec<Vec<f64>> = candidates.iter().map(|c| space.normalize(c)).collect();
            let preds = gp.predict_batch_par(&units);
            let mut best: Option<(f64, SliceConfig)> = None;
            for (c, (mean, std)) in candidates.iter().zip(preds) {
                let cfg = SliceConfig::from_vec(c);
                let optimistic = mean + 0.3 * std;
                if optimistic >= sla.qoe_target {
                    let usage = cfg.resource_usage();
                    if best.as_ref().map(|(u, _)| usage < *u).unwrap_or(true) {
                        best = Some((usage, cfg));
                    }
                }
            }
            match best {
                Some((_, cfg)) => cfg,
                None => {
                    // Predicted infeasible everywhere nearby: scale up.
                    let grown: Vec<f64> = current
                        .to_unit()
                        .iter()
                        .map(|u| (u + 0.15).min(1.0))
                        .collect();
                    SliceConfig::from_unit(&grown)
                }
            }
        };
        let sample = real.query(
            &chosen,
            &run_scenario.with_seed(derive_seed(seed, iteration as u64)),
            sla,
        );
        current = sample.config;
        // O(n²) incremental absorption instead of the old full refit.
        let _ = gp.observe(space.normalize(&sample.config.to_vec()), sample.qoe);
        history.push(OnlineOutcome {
            iteration,
            config: sample.config,
            usage: sample.usage,
            qoe: sample.qoe,
            simulator_qoe: sample.qoe,
        });
    }
    history
}

/// Oracle search for the reference policy `φ*` used by the regret metrics:
/// dense random search on the real network, returning the cheapest
/// SLA-satisfying configuration (usage, QoE).
pub fn oracle_reference<E: Environment>(
    real: &E,
    sla: &Sla,
    scenario: &Scenario,
    probes: usize,
    duration_s: f64,
    seed: u64,
) -> (f64, f64) {
    let mut rng = seeded_rng(seed);
    let space = config_space();
    let run_scenario = scenario.with_duration(duration_s);
    let mut best: Option<(f64, f64)> = None;
    let mut best_qoe = (f64::INFINITY, 0.0);
    for i in 0..probes.max(10) {
        let config = SliceConfig::from_vec(&space.sample(&mut rng));
        let sample = real.query(
            &config,
            &run_scenario.with_seed(derive_seed(seed, i as u64)),
            sla,
        );
        if sla.satisfied_by(sample.qoe) && best.map(|(u, _)| sample.usage < u).unwrap_or(true) {
            best = Some((sample.usage, sample.qoe));
        }
        if sample.qoe > best_qoe.1 {
            best_qoe = (sample.usage, sample.qoe);
        }
    }
    best.unwrap_or(best_qoe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{RealEnv, SimulatorEnv};
    use atlas_netsim::{RealNetwork, Simulator};

    fn quick_baseline_config() -> BaselineConfig {
        BaselineConfig {
            iterations: 6,
            candidates: 200,
            duration_s: 8.0,
            warmup: 2,
            ..BaselineConfig::default()
        }
    }

    fn scenario() -> Scenario {
        Scenario::default_with_seed(9).with_duration(8.0)
    }

    #[test]
    fn gp_ei_baseline_produces_valid_history() {
        let real = RealEnv::new(RealNetwork::prototype());
        let history = run_gp_ei_baseline(
            &real,
            &Sla::paper_default(),
            &scenario(),
            &quick_baseline_config(),
            1,
        );
        assert_eq!(history.len(), 6);
        for o in &history {
            assert!((0.0..=1.0).contains(&o.usage));
            assert!((0.0..=1.0).contains(&o.qoe));
        }
    }

    #[test]
    fn dlda_trains_offline_and_runs_online() {
        let sim = SimulatorEnv::new(Simulator::with_original_params());
        let real = RealEnv::new(RealNetwork::prototype());
        let sla = Sla::paper_default();
        let mut dlda = Dlda::train_offline(&sim, &sla, &scenario(), 2, 6.0, 3);
        assert_eq!(dlda.grid_per_dim, 2);
        // The offline model should have learned that generous allocations
        // achieve higher QoE than starved ones.
        let generous = dlda.predict_qoe(&SliceConfig::default_generous(), 1, &sla);
        let starved = dlda.predict_qoe(
            &SliceConfig::from_vec(&[6.0, 3.0, 0.0, 0.0, 1.0, 0.1]),
            1,
            &sla,
        );
        assert!(
            generous >= starved - 0.05,
            "generous {generous} vs starved {starved}"
        );
        let history = dlda.run_online(&real, &sla, &scenario(), &quick_baseline_config(), 4);
        assert_eq!(history.len(), 6);
    }

    #[test]
    fn virtual_edge_produces_valid_history() {
        let real = RealEnv::new(RealNetwork::prototype());
        let history = run_virtual_edge(
            &real,
            &Sla::paper_default(),
            &scenario(),
            &quick_baseline_config(),
            5,
        );
        assert_eq!(history.len(), 6);
        for o in &history {
            assert!(o.usage > 0.0);
        }
    }

    #[test]
    fn oracle_reference_finds_a_feasible_point_when_one_exists() {
        let real = RealEnv::new(RealNetwork::prototype());
        let sla = Sla::new(600.0, 0.8); // easily satisfiable
        let (usage, qoe) = oracle_reference(&real, &sla, &scenario(), 25, 8.0, 6);
        assert!(qoe >= 0.8, "oracle qoe {qoe}");
        assert!((0.0..=1.0).contains(&usage));
    }
}
