//! # atlas
//!
//! A from-scratch Rust reproduction of **Atlas: Automate Online Service
//! Configuration in Network Slicing** (Liu, Choi, Han — CoNEXT 2022).
//!
//! Atlas automates the service configuration of an end-to-end network
//! slice (RAN + transport + core + edge) so that resource usage is
//! minimised while the slice's QoE requirement is met, in three
//! interrelated stages:
//!
//! 1. [`stage1`] — the **learning-based simulator**: Bayesian optimisation
//!    (BNN surrogate + parallel Thompson sampling) over the simulator's
//!    parameters to minimise the sim-to-real KL divergence.
//! 2. [`stage2`] — **offline training**: learn the configuration policy in
//!    the augmented simulator under an adaptive Lagrangian penalisation of
//!    the SLA constraint.
//! 3. [`stage3`] — **online learning**: refine the policy safely on the
//!    real network with a Gaussian process that models only the sim-to-real
//!    QoE residual and a conservative (clipped randomised GP-UCB)
//!    acquisition.
//!
//! The [`baselines`] module re-implements the paper's comparison methods
//! (GP-EI baseline, DLDA, VirtualEdge), [`regret`] implements the Eq. 10/11
//! regret metrics, and [`pipeline`] wires everything into a single
//! `run_atlas` call. The network substrate itself (the NS-3 stand-in and
//! the emulated testbed) lives in the `atlas-netsim` crate.
//!
//! ## Quick start
//!
//! ```no_run
//! use atlas::pipeline::{run_atlas, AtlasConfig};
//! use atlas_netsim::{RealNetwork, Scenario};
//!
//! let real = RealNetwork::prototype();
//! let scenario = Scenario::default_with_seed(7);
//! let outcome = run_atlas(&real, &scenario, &AtlasConfig::default(), 42);
//! println!(
//!     "online best: usage {:.1}% at QoE {:.2}",
//!     outcome.stage3.best.usage * 100.0,
//!     outcome.stage3.best.qoe
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod env;
pub mod model;
pub mod pipeline;
pub mod regret;
pub mod stage1;
pub mod stage2;
pub mod stage3;

pub use env::{Environment, QoeSample, RealEnv, SimulatorEnv, Sla};
pub use model::SurrogateKind;
pub use pipeline::{run_atlas, AtlasConfig, AtlasOutcome};
pub use regret::RegretTracker;
pub use stage1::{SimulatorCalibration, Stage1Config, Stage1Result};
pub use stage2::{OfflineStrategy, OfflineTrainer, Stage2Config, Stage2Result};
pub use stage3::{
    OnlineLearner, OnlineModel, OnlineOutcome, SliceQuery, SliceSession, Stage3Config, Stage3Result,
};

// Re-export the substrate types users need to drive the library.
pub use atlas_bayesopt::Acquisition;
pub use atlas_gp::{
    GridMaintenance, InducingSelection, ScoringPrecision, SurrogateBasis, WindowPolicy,
};
pub use atlas_netsim::{
    ContentionPolicy, MaxMinFair, Mobility, ProportionalFair, RealNetwork, ResourceBudget,
    Scenario, SimCachePolicy, SimParams, Simulator, SliceConfig,
};
