//! The steppable online-learning state machine.
//!
//! [`SliceSession`] externalises the control flow of Algorithm 3: instead
//! of one monolithic loop that owns the real-network queries, a session
//! exposes explicit [`SliceSession::suggest`] / [`SliceSession::observe`]
//! transitions. Whoever drives the session — the single-slice
//! [`super::OnlineLearner::run`] wrapper, or a multi-slice orchestrator
//! batching queries across many sessions — performs the (expensive)
//! environment measurement between the two calls.
//!
//! The split is exact: every random draw, simulator query and model update
//! happens in the same order as the former monolithic loop, so driving a
//! session step by step produces byte-identical results. Crucially, the
//! real-network measurement itself never touches the session RNG (its seed
//! is derived from the session seed), so *where* the measurement runs — a
//! worker thread, another process — cannot perturb the learner state.

use super::policy::{OnlinePolicy, ResidualModel};
use super::{best_outcome, OnlineModel, OnlineOutcome, Stage3Config, Stage3Result};
use crate::env::{policy_features, Environment, QoeSample, SimulatorEnv, Sla};
use atlas_bayesopt::SearchSpace;
use atlas_gp::{GaussianProcess, GpConfig};
use atlas_math::rng::{derive_seed, seeded_rng, Rng64};
use atlas_netsim::{Scenario, SliceConfig};
use atlas_nn::Bnn;

/// Base of the offline-acceleration seed stream. The three per-iteration
/// query kinds derive their simulator/testbed seeds from disjoint ranges —
/// acceleration at `ACCEL_STREAM_BASE + iteration·1000 + n`, real
/// measurements at `70_000 + iteration`, observe-side simulator queries at
/// `80_000 + iteration` — so the streams stay disjoint for any run
/// shorter than 920 000 online iterations (previously the acceleration
/// stream `iteration·1000 + n` collided with both measurement streams
/// from iteration 70 on, replaying channel-trace RNG sequences).
const ACCEL_STREAM_BASE: u64 = 1_000_000;

/// One pending real-network query suggested by a [`SliceSession`].
///
/// Everything an evaluator needs is embedded: the configuration to apply,
/// the scenario (with the per-query derived seed already set) and the SLA
/// to score the trace under — so a batch of queries from many sessions can
/// be fanned out without consulting the sessions again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceQuery {
    /// The configuration to apply to the real network.
    pub config: SliceConfig,
    /// The scenario to measure under (duration and seed already applied).
    pub scenario: Scenario,
    /// The SLA the measurement is scored under.
    pub sla: Sla,
    /// Online iteration this query belongs to (0-based).
    pub iteration: usize,
}

/// A steppable stage-3 online-learning session for one slice.
///
/// Created by [`super::OnlineLearner::begin`]; alternate
/// [`SliceSession::suggest`] and [`SliceSession::observe`] until `suggest`
/// returns `None`, then call [`SliceSession::finish`].
pub struct SliceSession {
    config: Stage3Config,
    policy: OnlinePolicy,
    sim_env: SimulatorEnv,
    space: SearchSpace,
    run_scenario: Scenario,
    seed: u64,
    rng: Rng64,
    residual_model: ResidualModel,
    continued_bnn: Option<Bnn>,
    multiplier: f64,
    initial_config: Option<SliceConfig>,
    history: Vec<OnlineOutcome>,
    /// The suggestion awaiting its measurement, if any.
    pending: Option<SliceQuery>,
    /// Offline-acceleration updates already applied for the upcoming
    /// iteration (reset each time a real suggestion is issued).
    accel_done: usize,
    /// Features of the outstanding acceleration query, if any.
    accel_pending: Option<Vec<f64>>,
}

impl SliceSession {
    /// Builds a session. Internal — use [`super::OnlineLearner::begin`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        config: Stage3Config,
        sla: Sla,
        sim_env: SimulatorEnv,
        offline_qoe: Option<Bnn>,
        initial_config: Option<SliceConfig>,
        initial_multiplier: f64,
        scenario: &Scenario,
        seed: u64,
    ) -> Self {
        let mut rng = seeded_rng(seed);
        let space = SearchSpace::new(SliceConfig::min().to_vec(), SliceConfig::max().to_vec());
        let run_scenario = scenario.with_duration(config.duration_s);
        let residual_model = match config.online_model {
            // The configured window policy bounds the residual GP for
            // long-horizon sessions, the scoring precision selects the
            // candidate-ranking path, the grid maintenance caps the
            // resident factor set and the basis picks the posterior
            // formulation (`Unbounded` + `Exact` + `Full` + `Exact` — the
            // defaults — make this construction identical to
            // `GaussianProcess::default_matern()`).
            OnlineModel::GpResidual => {
                ResidualModel::Gp(Box::new(GaussianProcess::new(GpConfig {
                    window: config.gp_window,
                    scoring_precision: config.gp_scoring,
                    grid_maintenance: config.gp_grid,
                    basis: config.gp_basis,
                    ..GpConfig::default()
                })))
            }
            OnlineModel::BnnResidual => ResidualModel::Bnn {
                bnn: Box::new(Bnn::new(
                    crate::env::POLICY_FEATURE_DIM,
                    config.bnn,
                    &mut rng,
                )),
                xs: Vec::new(),
                ys: Vec::new(),
                fitted: false,
            },
            OnlineModel::BnnContinued => ResidualModel::Continued {
                xs: Vec::new(),
                ys: Vec::new(),
            },
        };
        // The fine-tuned copy of the offline BNN for the continued variant.
        let continued_bnn = offline_qoe.clone().or_else(|| {
            Some(Bnn::new(
                crate::env::POLICY_FEATURE_DIM,
                config.bnn,
                &mut rng,
            ))
        });
        let capacity = config.iterations;
        Self {
            policy: OnlinePolicy { sla, offline_qoe },
            config,
            sim_env,
            space,
            run_scenario,
            seed,
            rng,
            residual_model,
            continued_bnn,
            multiplier: initial_multiplier,
            initial_config,
            history: Vec::with_capacity(capacity),
            pending: None,
            accel_done: 0,
            accel_pending: None,
        }
    }

    /// The next online iteration to run (0-based); equals the number of
    /// completed observations.
    pub fn iteration(&self) -> usize {
        self.history.len()
    }

    /// Whether every configured online iteration has been observed.
    pub fn is_done(&self) -> bool {
        self.history.len() >= self.config.iterations
    }

    /// The outcomes observed so far.
    pub fn history(&self) -> &[OnlineOutcome] {
        &self.history
    }

    /// The current Lagrangian multiplier.
    pub fn multiplier(&self) -> f64 {
        self.multiplier
    }

    /// The SLA this session learns under.
    pub fn sla(&self) -> &Sla {
        &self.policy.sla
    }

    /// The scenario queries run under (duration already applied).
    pub fn scenario(&self) -> &Scenario {
        &self.run_scenario
    }

    /// The stage configuration.
    pub fn config(&self) -> &Stage3Config {
        &self.config
    }

    /// Observations currently retained by the online residual model. Under
    /// [`Stage3Config::gp_window`]'s bounded policies this plateaus at the
    /// window capacity however long the session runs — the signal a
    /// long-horizon driver watches to confirm the model's footprint (and
    /// per-round cost) stopped growing.
    pub fn residual_observations(&self) -> usize {
        match &self.residual_model {
            ResidualModel::Gp(gp) => gp.len(),
            ResidualModel::Bnn { xs, .. } | ResidualModel::Continued { xs, .. } => xs.len(),
        }
    }

    /// Bytes resident in the online residual model's posterior factors.
    /// For the GP this is [`GaussianProcess::factor_bytes`] — the figure
    /// that plateaus under bounded windows, shrinks under the elastic grid
    /// and collapses to two m×m triangles per live candidate under the
    /// inducing basis. The BNN variants keep no per-observation factors
    /// and report 0.
    pub fn surrogate_bytes(&self) -> usize {
        match &self.residual_model {
            ResidualModel::Gp(gp) => gp.factor_bytes(),
            ResidualModel::Bnn { .. } | ResidualModel::Continued { .. } => 0,
        }
    }

    /// The session's augmented-simulator environment: what the queries
    /// returned by [`SliceSession::accel_suggest`] must be evaluated
    /// against (each session may carry its own calibrated simulator).
    pub fn sim_env(&self) -> &SimulatorEnv {
        &self.sim_env
    }

    /// Offline-acceleration simulator updates still owed before the next
    /// real suggestion (0 when acceleration is disabled, the iteration's
    /// updates are exhausted, or the session is done).
    pub fn accel_remaining(&self) -> usize {
        if !self.config.offline_acceleration || self.is_done() || self.pending.is_some() {
            return 0;
        }
        self.config.offline_updates.saturating_sub(self.accel_done)
    }

    /// Selects the candidate for the next offline-acceleration multiplier
    /// update (Eq. 15) and returns the **simulator** query that must be
    /// evaluated — against this session's own [`SliceSession::sim_env`] —
    /// before [`SliceSession::accel_observe`] can apply the update.
    /// Returns `None` when no acceleration updates remain; callers then
    /// move on to [`SliceSession::suggest`], which also drains any
    /// remaining updates itself, so single-slice drivers never need this
    /// API. A multi-slice orchestrator uses it to batch the per-round
    /// simulator queries of many sessions (they outnumber real-network
    /// queries `offline_updates`-to-1) over worker threads; the split is
    /// exact because the simulator query consumes no session RNG.
    ///
    /// # Panics
    ///
    /// Panics if an acceleration query or a real suggestion is already
    /// outstanding.
    pub fn accel_suggest(&mut self) -> Option<SliceQuery> {
        assert!(
            self.accel_pending.is_none(),
            "SliceSession::accel_suggest called with an acceleration \
             observation outstanding; feed the simulator QoE to \
             accel_observe() first"
        );
        assert!(
            self.pending.is_none(),
            "SliceSession::accel_suggest called with a real observation \
             outstanding; feed the previous SliceQuery's measurement to \
             observe() first"
        );
        if self.accel_remaining() == 0 {
            return None;
        }
        let iteration = self.history.len();
        let cfg = &self.config;
        let candidates = self.space.sample_n(cfg.candidates.min(400), &mut self.rng);
        let best_cfg = match &self.residual_model {
            // GP residual: batched scoring (no RNG in this path).
            ResidualModel::Gp(gp) => self.policy.select_min_lagrangian_gp(
                gp,
                &candidates,
                self.run_scenario.traffic,
                self.multiplier,
                None,
            ),
            // BNN variants consume the RNG per candidate; keep
            // the sequential loop.
            _ => self.policy.select_min_lagrangian_seq(
                &self.residual_model,
                self.continued_bnn.as_ref(),
                &candidates,
                self.run_scenario.traffic,
                self.multiplier,
                None,
                &mut self.rng,
            ),
        };
        // The acceleration stream lives in [ACCEL_STREAM_BASE, …),
        // disjoint from the real-measurement (70 000 + i) and
        // observe-side simulator (80 000 + i) streams, so no
        // channel-trace RNG sequence is ever replayed across the
        // three query kinds within a run.
        let sim_seed = derive_seed(
            self.seed,
            ACCEL_STREAM_BASE + (iteration * 1000 + self.accel_done) as u64,
        );
        self.accel_pending = Some(policy_features(
            &best_cfg,
            self.run_scenario.traffic,
            &self.policy.sla,
        ));
        Some(SliceQuery {
            config: best_cfg,
            scenario: self.run_scenario.with_seed(sim_seed),
            sla: self.policy.sla,
            iteration,
        })
    }

    /// Applies the multiplier update (Eq. 15) for the outstanding
    /// acceleration query. `sim_qoe` must be the QoE of
    /// `sim_env().query(...)` for the query returned by
    /// [`SliceSession::accel_suggest`].
    ///
    /// # Panics
    ///
    /// Panics if no acceleration query is outstanding.
    pub fn accel_observe(&mut self, sim_qoe: f64) {
        let features = self
            .accel_pending
            .take()
            .expect("SliceSession::accel_observe called without an outstanding acceleration query");
        let (g, _) = self
            .policy
            .residual_estimate(&self.residual_model, &features, &mut self.rng);
        // Eq. 15.
        self.multiplier = (self.multiplier
            - self.config.epsilon * (sim_qoe + g - self.policy.sla.qoe_target))
            .max(0.0);
        self.accel_done += 1;
    }

    /// Runs the offline-acceleration multiplier loop and selects the next
    /// online action (Algorithm 3 up to the real-network query). Returns
    /// `None` once all configured iterations have been observed.
    ///
    /// Acceleration updates already applied through the
    /// [`SliceSession::accel_suggest`] / [`SliceSession::accel_observe`]
    /// split are not repeated: this method only drains whatever updates
    /// remain, so both driving styles produce byte-identical sessions.
    ///
    /// # Panics
    ///
    /// Panics if a previous suggestion has not been fed back through
    /// [`SliceSession::observe`] — the session is a strict
    /// suggest → observe alternation — or if an acceleration query is
    /// awaiting its [`SliceSession::accel_observe`].
    pub fn suggest(&mut self) -> Option<SliceQuery> {
        assert!(
            self.pending.is_none(),
            "SliceSession::suggest called with an observation outstanding; \
             feed the previous SliceQuery's measurement to observe() first"
        );
        assert!(
            self.accel_pending.is_none(),
            "SliceSession::suggest called with an acceleration observation \
             outstanding; feed the simulator QoE to accel_observe() first"
        );
        if self.is_done() {
            return None;
        }
        let iteration = self.history.len();

        // ---------- offline acceleration: update λ in the simulator ----
        // (Drains whatever updates an external driver has not already
        // applied through the accel_suggest/accel_observe split.)
        while let Some(query) = self.accel_suggest() {
            let qs = self
                .sim_env
                .query(&query.config, &query.scenario, &query.sla)
                .qoe;
            self.accel_observe(qs);
        }
        self.accel_done = 0;
        let cfg = &self.config;

        // ---------- select the online action ---------------------------
        let chosen = if iteration == 0 {
            // The very first online action is the offline optimum when
            // available (Sec. 8.3).
            self.initial_config
                .unwrap_or_else(|| SliceConfig::from_vec(&self.space.sample(&mut self.rng)))
        } else {
            let candidates = self.space.sample_n(cfg.candidates, &mut self.rng);
            let beta = cfg.acquisition.beta(iteration, &mut self.rng);
            match &self.residual_model {
                // GP residual: batched scoring with the optimistic
                // (UCB) QoE of Eq. 13 inside the Lagrangian.
                ResidualModel::Gp(gp) => self.policy.select_min_lagrangian_gp(
                    gp,
                    &candidates,
                    self.run_scenario.traffic,
                    self.multiplier,
                    Some(beta),
                ),
                // Optimistic (UCB) QoE inside the Lagrangian; β is the
                // clipped randomised exploration weight.
                _ => self.policy.select_min_lagrangian_seq(
                    &self.residual_model,
                    self.continued_bnn.as_ref(),
                    &candidates,
                    self.run_scenario.traffic,
                    self.multiplier,
                    Some(beta),
                    &mut self.rng,
                ),
            }
        };

        let real_seed = derive_seed(self.seed, 70_000 + iteration as u64);
        let query = SliceQuery {
            config: chosen,
            scenario: self.run_scenario.with_seed(real_seed),
            sla: self.policy.sla,
            iteration,
        };
        self.pending = Some(query);
        Some(query)
    }

    /// Absorbs the real-network measurement of the outstanding suggestion:
    /// queries the augmented simulator for the matching prediction, updates
    /// the residual model and (without offline acceleration) the
    /// multiplier, and appends the outcome to the history.
    ///
    /// `sample` must be the result of `Environment::query` for the pending
    /// [`SliceQuery`]'s config/scenario/SLA.
    ///
    /// # Panics
    ///
    /// Panics if no suggestion is outstanding.
    pub fn observe(&mut self, sample: QoeSample) -> OnlineOutcome {
        let pending = self
            .pending
            .take()
            .expect("SliceSession::observe called without an outstanding suggestion");
        let iteration = pending.iteration;
        let cfg = &self.config;
        let sim_sample = self.sim_env.query(
            &pending.config,
            &self
                .run_scenario
                .with_seed(derive_seed(self.seed, 80_000 + iteration as u64)),
            &self.policy.sla,
        );
        let residual = sample.qoe - sim_sample.qoe;
        let features = policy_features(&sample.config, self.run_scenario.traffic, &self.policy.sla);

        // ---------- update the online model ----------------------------
        match &mut self.residual_model {
            ResidualModel::Gp(gp) => {
                // O(n²) incremental update — exactly equivalent to the
                // old full refit on the extended data.
                let _ = gp.observe(features.clone(), residual);
            }
            ResidualModel::Bnn {
                bnn,
                xs,
                ys,
                fitted,
            } => {
                xs.push(features.clone());
                ys.push(residual);
                bnn.fit_epochs(xs, ys, 10, &mut self.rng);
                *fitted = true;
            }
            ResidualModel::Continued { xs, ys } => {
                xs.push(features.clone());
                ys.push(sample.qoe);
                if let Some(bnn) = self.continued_bnn.as_mut() {
                    bnn.fit_epochs(xs, ys, 10, &mut self.rng);
                }
            }
        }

        // Without offline acceleration the multiplier is only updated
        // from the single online observation (Eq. 9 with the real QoE).
        if !cfg.offline_acceleration {
            self.multiplier = (self.multiplier
                - cfg.epsilon * (sample.qoe - self.policy.sla.qoe_target))
                .max(0.0);
        }

        let outcome = OnlineOutcome {
            iteration,
            config: sample.config,
            usage: sample.usage,
            qoe: sample.qoe,
            simulator_qoe: sim_sample.qoe,
        };
        self.history.push(outcome);
        outcome
    }

    /// Convenience transition: suggest, measure against `real`, observe.
    /// Returns `None` when the session is done.
    pub fn step<E: Environment>(&mut self, real: &E) -> Option<OnlineOutcome> {
        let query = self.suggest()?;
        let sample = real.query(&query.config, &query.scenario, &query.sla);
        Some(self.observe(sample))
    }

    /// Finalises the session into a [`Stage3Result`].
    ///
    /// # Panics
    ///
    /// Panics if no iteration was observed (an empty history has no best
    /// outcome), matching the monolithic loop's behaviour.
    pub fn finish(self) -> Stage3Result {
        let best = best_outcome(&self.history, &self.policy.sla);
        Stage3Result {
            history: self.history,
            final_multiplier: self.multiplier,
            best,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::env::{Environment, RealEnv};
    use crate::stage2::{OfflineTrainer, Stage2Config};
    use crate::stage3::{OnlineLearner, Stage3Config};
    use crate::{SimulatorEnv, Sla};
    use atlas_netsim::{RealNetwork, Scenario, Simulator};
    use atlas_nn::BnnConfig;

    fn tiny_learner(seed: u64) -> OnlineLearner {
        let sim = Simulator::with_original_params();
        let env = SimulatorEnv::new(sim);
        let trainer = OfflineTrainer::new(
            Stage2Config {
                iterations: 8,
                warmup: 4,
                parallel: 2,
                candidates: 150,
                duration_s: 6.0,
                bnn: BnnConfig {
                    hidden: [10, 10, 0, 0],
                    epochs: 6,
                    ..BnnConfig::default()
                },
                train_epochs_per_iter: 2,
                ..Stage2Config::default()
            },
            Sla::paper_default(),
        );
        let scenario = Scenario::default_with_seed(seed).with_duration(6.0);
        let offline = trainer.run(&env, &scenario, seed);
        OnlineLearner::new(
            Stage3Config {
                iterations: 4,
                offline_updates: 2,
                candidates: 150,
                duration_s: 6.0,
                ..Stage3Config::default()
            },
            Sla::paper_default(),
            sim,
            &offline,
        )
    }

    #[test]
    fn stepped_session_matches_monolithic_run_exactly() {
        let learner = tiny_learner(5);
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(5).with_duration(6.0);
        let via_run = learner.run(&real, &scenario, 21);

        let mut session = learner.begin(&scenario, 21);
        assert_eq!(session.iteration(), 0);
        while let Some(query) = session.suggest() {
            assert_eq!(query.sla, Sla::paper_default());
            let sample = real.query(&query.config, &query.scenario, &query.sla);
            let outcome = session.observe(sample);
            assert_eq!(outcome.iteration + 1, session.iteration());
        }
        assert!(session.is_done());
        assert_eq!(session.history(), via_run.history.as_slice());
        let via_session = session.finish();
        assert_eq!(via_session, via_run);
    }

    #[test]
    fn externally_driven_acceleration_matches_monolithic_suggest_exactly() {
        let learner = tiny_learner(5);
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(5).with_duration(6.0);
        let monolithic = learner.run(&real, &scenario, 37);

        // Drive the acceleration loop externally, evaluating each simulator
        // query ourselves — the way the orchestrator batches them across
        // slices — and the session must not notice the difference.
        let mut session = learner.begin(&scenario, 37);
        let updates = session.config().offline_updates;
        loop {
            assert_eq!(session.accel_remaining(), updates.min(1) * updates);
            let mut drained = 0;
            while let Some(q) = session.accel_suggest() {
                let qs = session.sim_env().query(&q.config, &q.scenario, &q.sla).qoe;
                session.accel_observe(qs);
                drained += 1;
            }
            assert_eq!(drained, updates);
            assert_eq!(session.accel_remaining(), 0);
            let Some(query) = session.suggest() else {
                unreachable!("drained sessions still owe a real suggestion")
            };
            let sample = real.query(&query.config, &query.scenario, &query.sla);
            session.observe(sample);
            if session.is_done() {
                break;
            }
        }
        assert!(session.suggest().is_none());
        assert_eq!(session.finish(), monolithic);
    }

    #[test]
    #[should_panic(expected = "without an outstanding acceleration query")]
    fn accel_observe_without_accel_suggest_panics() {
        let learner = tiny_learner(6);
        let scenario = Scenario::default_with_seed(6).with_duration(6.0);
        let mut session = learner.begin(&scenario, 3);
        session.accel_observe(0.5);
    }

    #[test]
    #[should_panic(expected = "acceleration observation outstanding")]
    fn suggest_with_accel_outstanding_panics() {
        let learner = tiny_learner(7);
        let scenario = Scenario::default_with_seed(7).with_duration(6.0);
        let mut session = learner.begin(&scenario, 3);
        let _ = session.accel_suggest().expect("acceleration is on");
        let _ = session.suggest();
    }

    #[test]
    fn windowed_session_plateaus_and_unbounded_stays_bit_identical() {
        use atlas_gp::WindowPolicy;
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(11).with_duration(2.0);
        let config = Stage3Config {
            iterations: 12,
            offline_updates: 1,
            candidates: 40,
            duration_s: 2.0,
            ..Stage3Config::default()
        };
        let learner = |window| {
            crate::stage3::OnlineLearner::without_offline(
                config,
                Sla::paper_default(),
                Simulator::with_original_params(),
            )
            .with_gp_window(window)
        };
        // An explicit Unbounded learner reproduces the default bit for bit.
        let baseline = learner(WindowPolicy::Unbounded).run(&real, &scenario, 77);
        let default = crate::stage3::OnlineLearner::without_offline(
            config,
            Sla::paper_default(),
            Simulator::with_original_params(),
        )
        .run(&real, &scenario, 77);
        assert_eq!(baseline, default);

        // A bounded window plateaus the residual model while the history
        // keeps growing round by round.
        let bounded = learner(WindowPolicy::SlidingWindow { capacity: 4 });
        let mut session = bounded.begin(&scenario, 77);
        let mut peak = 0;
        while let Some(query) = session.suggest() {
            let sample = real.query(&query.config, &query.scenario, &query.sla);
            session.observe(sample);
            peak = peak.max(session.residual_observations());
        }
        assert_eq!(peak, 4, "residual GP must plateau at the window");
        assert_eq!(session.history().len(), 12);
    }

    #[test]
    fn scoring_precision_defaults_to_exact_and_mixed_runs_end_to_end() {
        use atlas_gp::ScoringPrecision;
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(13).with_duration(2.0);
        let config = Stage3Config {
            iterations: 10,
            offline_updates: 1,
            candidates: 40,
            duration_s: 2.0,
            ..Stage3Config::default()
        };
        let learner = |scoring| {
            crate::stage3::OnlineLearner::without_offline(
                config,
                Sla::paper_default(),
                Simulator::with_original_params(),
            )
            .with_gp_scoring(scoring)
        };
        // Explicit Exact scoring reproduces the default bit for bit.
        let baseline = learner(ScoringPrecision::Exact).run(&real, &scenario, 31);
        let default = crate::stage3::OnlineLearner::without_offline(
            config,
            Sla::paper_default(),
            Simulator::with_original_params(),
        )
        .run(&real, &scenario, 31);
        assert_eq!(baseline, default);
        // Mixed-precision scoring completes the same horizon with sane
        // outcomes (observes/refits stay f64; only ranking is approximate).
        let mixed = learner(ScoringPrecision::MixedF32 {
            recheck_every: 4,
            top_k: 5,
        })
        .run(&real, &scenario, 31);
        assert_eq!(mixed.history.len(), baseline.history.len());
        for o in &mixed.history {
            assert!(o.qoe.is_finite() && (0.0..=1.0).contains(&o.qoe));
            assert!(o.usage.is_finite());
        }
    }

    #[test]
    fn grid_maintenance_defaults_to_full_and_elastic_runs_end_to_end() {
        use atlas_gp::GridMaintenance;
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(17).with_duration(2.0);
        let config = Stage3Config {
            iterations: 10,
            offline_updates: 1,
            candidates: 40,
            duration_s: 2.0,
            ..Stage3Config::default()
        };
        let learner = |grid| {
            crate::stage3::OnlineLearner::without_offline(
                config,
                Sla::paper_default(),
                Simulator::with_original_params(),
            )
            .with_gp_grid(grid)
        };
        // Explicit Full maintenance reproduces the default bit for bit, and
        // so does an elastic grid whose hot set spans the whole grid
        // (nothing ever goes cold).
        let baseline = learner(GridMaintenance::Full).run(&real, &scenario, 41);
        let default = crate::stage3::OnlineLearner::without_offline(
            config,
            Sla::paper_default(),
            Simulator::with_original_params(),
        )
        .run(&real, &scenario, 41);
        assert_eq!(baseline, default);
        let wide = learner(GridMaintenance::Elastic {
            hot_set: 35,
            refresh_every: 4,
        })
        .run(&real, &scenario, 41);
        assert_eq!(wide, baseline);
        // A genuinely elastic grid completes the same horizon with sane
        // outcomes (selection only deviates between tournament refreshes).
        let elastic = learner(GridMaintenance::Elastic {
            hot_set: 6,
            refresh_every: 4,
        })
        .run(&real, &scenario, 41);
        assert_eq!(elastic.history.len(), baseline.history.len());
        for o in &elastic.history {
            assert!(o.qoe.is_finite() && (0.0..=1.0).contains(&o.qoe));
            assert!(o.usage.is_finite());
        }
    }

    #[test]
    fn basis_defaults_to_exact_and_inducing_runs_end_to_end() {
        use atlas_gp::{InducingSelection, SurrogateBasis};
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(19).with_duration(2.0);
        let config = Stage3Config {
            iterations: 12,
            offline_updates: 1,
            candidates: 40,
            duration_s: 2.0,
            ..Stage3Config::default()
        };
        let learner = |basis| {
            crate::stage3::OnlineLearner::without_offline(
                config,
                Sla::paper_default(),
                Simulator::with_original_params(),
            )
            .with_gp_basis(basis)
        };
        // An explicit Exact basis reproduces the default bit for bit, and
        // so does an Inducing basis the 12-point horizon never outgrows.
        let baseline = learner(SurrogateBasis::Exact).run(&real, &scenario, 43);
        let default = crate::stage3::OnlineLearner::without_offline(
            config,
            Sla::paper_default(),
            Simulator::with_original_params(),
        )
        .run(&real, &scenario, 43);
        assert_eq!(baseline, default);
        let roomy = learner(SurrogateBasis::Inducing {
            m: 64,
            selection: InducingSelection::GreedyVariance,
            refresh_every: 8,
        })
        .run(&real, &scenario, 43);
        assert_eq!(roomy, baseline);
        // A genuinely sparse basis completes the same horizon with sane
        // outcomes, and the session's factor footprint plateaus at two
        // m×m triangles per live candidate.
        let sparse = learner(SurrogateBasis::Inducing {
            m: 5,
            selection: InducingSelection::GreedyVariance,
            refresh_every: 8,
        });
        let mut session = sparse.begin(&scenario, 43);
        while let Some(query) = session.suggest() {
            let sample = real.query(&query.config, &query.scenario, &query.sla);
            session.observe(sample);
        }
        assert_eq!(session.history().len(), 12);
        assert_eq!(session.residual_observations(), 12);
        assert!(session.surrogate_bytes() <= 35 * 2 * (5 * 6 / 2) * 8);
        for o in session.history() {
            assert!(o.qoe.is_finite() && (0.0..=1.0).contains(&o.qoe));
            assert!(o.usage.is_finite());
        }
    }

    #[test]
    fn step_convenience_matches_suggest_observe() {
        let learner = tiny_learner(6);
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(6).with_duration(6.0);
        let mut manual = learner.begin(&scenario, 9);
        while let Some(q) = manual.suggest() {
            let sample = real.query(&q.config, &q.scenario, &q.sla);
            manual.observe(sample);
        }
        let mut stepped = learner.begin(&scenario, 9);
        while stepped.step(&real).is_some() {}
        assert_eq!(manual.finish(), stepped.finish());
    }

    #[test]
    #[should_panic(expected = "observation outstanding")]
    fn double_suggest_panics() {
        let learner = tiny_learner(7);
        let scenario = Scenario::default_with_seed(7).with_duration(6.0);
        let mut session = learner.begin(&scenario, 3);
        let _ = session.suggest();
        let _ = session.suggest();
    }

    #[test]
    #[should_panic(expected = "without an outstanding suggestion")]
    fn observe_without_suggest_panics() {
        let learner = tiny_learner(8);
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(8).with_duration(6.0);
        let mut session = learner.begin(&scenario, 3);
        let query = session.suggest().expect("first suggestion");
        let sample = real.query(&query.config, &query.scenario, &query.sla);
        session.observe(sample);
        session.observe(sample);
    }

    #[test]
    fn suggest_returns_none_after_the_last_iteration() {
        let learner = tiny_learner(9);
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(9).with_duration(6.0);
        let mut session = learner.begin(&scenario, 4);
        let mut steps = 0;
        while session.step(&real).is_some() {
            steps += 1;
        }
        assert_eq!(steps, session.config().iterations);
        assert!(session.suggest().is_none());
        assert!(session.multiplier() >= 0.0);
        assert_eq!(session.scenario().duration_s, 6.0);
    }
}
