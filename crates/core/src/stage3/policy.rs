//! The online configuration policy: residual models and Lagrangian
//! candidate selection (Eqs. 12–13).
//!
//! [`OnlinePolicy`] bundles everything the selection math needs — the SLA
//! and the (optional) offline QoE model — so the steppable
//! [`super::session::SliceSession`] owns its policy outright and can be
//! driven by an external control loop (the single-slice
//! [`super::OnlineLearner::run`] wrapper or a multi-slice orchestrator)
//! without borrowing the learner.

use crate::env::{policy_features, Sla};
use atlas_gp::GaussianProcess;
use atlas_math::rng::Rng64;
use atlas_netsim::SliceConfig;
use atlas_nn::Bnn;

/// The internal residual model (one per slice session).
pub(crate) enum ResidualModel {
    Gp(Box<GaussianProcess>),
    Bnn {
        bnn: Box<Bnn>,
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        fitted: bool,
    },
    /// BNN-Cont'd: the offline BNN itself is fine-tuned on real QoE.
    Continued {
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
    },
}

/// The stateless part of the online policy: the SLA plus the offline QoE
/// model, with all candidate-scoring math.
pub(crate) struct OnlinePolicy {
    pub(crate) sla: Sla,
    /// The offline QoE model from stage 2 (`None` for the "No stage 2"
    /// ablation).
    pub(crate) offline_qoe: Option<Bnn>,
}

impl OnlinePolicy {
    /// Offline QoE estimate `Q_s(a)` from the stage-2 BNN (0.5 when no
    /// offline model exists — maximum ignorance).
    pub(crate) fn offline_qoe_estimate(&self, features: &[f64]) -> f64 {
        match &self.offline_qoe {
            Some(bnn) => bnn.predict_mean(features).clamp(0.0, 1.0),
            None => 0.5,
        }
    }

    /// Residual mean/std from the online model.
    pub(crate) fn residual_estimate(
        &self,
        model: &ResidualModel,
        features: &[f64],
        rng: &mut Rng64,
    ) -> (f64, f64) {
        match model {
            ResidualModel::Gp(gp) => {
                if gp.is_empty() {
                    (0.0, 0.3)
                } else {
                    gp.predict(features)
                }
            }
            ResidualModel::Bnn { bnn, fitted, .. } => {
                if *fitted {
                    bnn.predict_with_uncertainty(features, 8, rng)
                } else {
                    (0.0, 0.3)
                }
            }
            ResidualModel::Continued { .. } => (0.0, 0.05),
        }
    }

    /// Combined QoE estimate of Eq. 12; for the "continued" variant the
    /// fine-tuned BNN is the whole estimate.
    pub(crate) fn combined_qoe(
        &self,
        model: &ResidualModel,
        continued_bnn: Option<&Bnn>,
        features: &[f64],
        rng: &mut Rng64,
    ) -> (f64, f64) {
        match model {
            ResidualModel::Continued { .. } => {
                let bnn = continued_bnn.expect("continued variant keeps a BNN");
                let (m, s) = bnn.predict_with_uncertainty(features, 8, rng);
                (m.clamp(0.0, 1.0), s)
            }
            _ => {
                let base = self.offline_qoe_estimate(features);
                let (rm, rs) = self.residual_estimate(model, features, rng);
                ((base + rm).clamp(0.0, 1.0), rs)
            }
        }
    }

    /// Batched combined-QoE estimate (Eq. 12) for the GP-residual model:
    /// the offline BNN mean per candidate plus the GP residual resolved
    /// with one batched (multi-right-hand-side, thread-parallel) solve.
    /// Under the default exact scoring precision, element `i` is exactly
    /// what `combined_qoe` returns for `features[i]` — the GP path
    /// consumes no RNG, so the batched form is a drop-in for the
    /// per-candidate loop. Under `ScoringPrecision::MixedF32` the
    /// residuals come from the GP's f32 ranking shadow — appropriate here
    /// because the caller only takes an argmin over the scored candidates.
    fn combined_qoe_batch_gp(
        &self,
        gp: &GaussianProcess,
        features: &[Vec<f64>],
    ) -> Vec<(f64, f64)> {
        let residuals: Vec<(f64, f64)> = if gp.is_empty() {
            vec![(0.0, 0.3); features.len()]
        } else {
            gp.predict_batch_ranking(features)
        };
        features
            .iter()
            .zip(residuals)
            .map(|(f, (rm, rs))| {
                let base = self.offline_qoe_estimate(f);
                ((base + rm).clamp(0.0, 1.0), rs)
            })
            .collect()
    }

    /// Minimum-Lagrangian candidate under the GP-residual model, scored in
    /// batch. `beta` enables the optimistic (UCB) QoE of Eq. 13; `None`
    /// scores by the posterior mean (the offline-acceleration loop).
    pub(crate) fn select_min_lagrangian_gp(
        &self,
        gp: &GaussianProcess,
        candidates: &[Vec<f64>],
        traffic: u32,
        multiplier: f64,
        beta: Option<f64>,
    ) -> SliceConfig {
        let configs: Vec<SliceConfig> = candidates
            .iter()
            .map(|c| SliceConfig::from_vec(c))
            .collect();
        let features: Vec<Vec<f64>> = configs
            .iter()
            .map(|c| policy_features(c, traffic, &self.sla))
            .collect();
        let estimates = self.combined_qoe_batch_gp(gp, &features);
        let mut best_cfg = configs[0];
        let mut best_l = f64::INFINITY;
        for (config, (mean_q, std_q)) in configs.iter().zip(estimates) {
            let q = match beta {
                Some(b) => (mean_q + b.sqrt() * std_q).clamp(0.0, 1.0),
                None => mean_q,
            };
            let l = config.resource_usage() - multiplier * (q - self.sla.qoe_target);
            if l < best_l {
                best_l = l;
                best_cfg = *config;
            }
        }
        best_cfg
    }

    /// Sequential counterpart of [`OnlinePolicy::select_min_lagrangian_gp`]
    /// for the BNN residual-model variants, whose QoE estimates consume the
    /// RNG per candidate and therefore cannot be batched without changing
    /// the stream.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn select_min_lagrangian_seq(
        &self,
        model: &ResidualModel,
        continued_bnn: Option<&Bnn>,
        candidates: &[Vec<f64>],
        traffic: u32,
        multiplier: f64,
        beta: Option<f64>,
        rng: &mut Rng64,
    ) -> SliceConfig {
        let mut best_cfg = SliceConfig::from_vec(&candidates[0]);
        let mut best_l = f64::INFINITY;
        for c in candidates {
            let config = SliceConfig::from_vec(c);
            let f = policy_features(&config, traffic, &self.sla);
            let (mean_q, std_q) = self.combined_qoe(model, continued_bnn, &f, rng);
            let q = match beta {
                Some(b) => (mean_q + b.sqrt() * std_q).clamp(0.0, 1.0),
                None => mean_q,
            };
            let l = config.resource_usage() - multiplier * (q - self.sla.qoe_target);
            if l < best_l {
                best_l = l;
                best_cfg = config;
            }
        }
        best_cfg
    }
}
