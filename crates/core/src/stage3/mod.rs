//! Stage 3 — safe online learning in the real network
//! (Sec. 6, Algorithm 3).
//!
//! Starting from the offline policy of stage 2, the online learner refines
//! the configuration against the real network. A Gaussian process models
//! only the sim-to-real QoE residual `G(ψ) = Q(a) − Q_s(a)` (Eq. 12); the
//! next configuration is selected with the conservative clipped randomised
//! GP-UCB acquisition (Eq. 13) on the combined QoE estimate inside the
//! Lagrangian; and the multiplier is updated many times per online step by
//! querying the augmented simulator ("offline acceleration", Eq. 15).
//!
//! ## Steppable sessions
//!
//! The stage is organised as a state machine rather than a monolithic
//! loop: [`OnlineLearner::begin`] yields a [`SliceSession`] whose
//! [`SliceSession::suggest`] / [`SliceSession::observe`] transitions
//! expose the points where the real network must be measured. The
//! [`OnlineLearner::run`] convenience drives one session to completion
//! against a single environment; a multi-slice orchestrator (the
//! `atlas-orchestrator` crate) instead collects each round's suggestions
//! across many sessions and fans the measurements out over a shared
//! testbed. Both drivers produce byte-identical results for the same
//! seeds: the session consumes randomness and simulator queries in
//! exactly the order of the former monolithic loop, and the real-network
//! measurement never touches the session RNG. The selection math itself
//! lives in [`policy`].

pub mod policy;
pub mod session;

pub use session::{SliceQuery, SliceSession};

use crate::env::{Environment, SimulatorEnv, Sla};
use crate::stage2::Stage2Result;
use atlas_bayesopt::Acquisition;
use atlas_gp::{GridMaintenance, ScoringPrecision, SurrogateBasis, WindowPolicy};
use atlas_netsim::{Scenario, SimCachePolicy, Simulator, SliceConfig};
use atlas_nn::{Bnn, BnnConfig};

/// Which model learns the online information (Fig. 23 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineModel {
    /// A Gaussian process learns only the sim-to-real residual (ours).
    GpResidual,
    /// A (small) Bayesian neural network learns the residual.
    BnnResidual,
    /// The offline BNN keeps training directly on real observations
    /// ("BNN-Cont'd" in the paper); no residual model is used.
    BnnContinued,
}

/// Configuration of the online learning stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage3Config {
    /// Online iterations (paper: 100).
    pub iterations: usize,
    /// Offline multiplier updates per online action (paper: N = 20).
    pub offline_updates: usize,
    /// Random candidates scored per selection.
    pub candidates: usize,
    /// Acquisition function (paper: cRGP-UCB with ρ = 0.1, B = 10).
    pub acquisition: Acquisition,
    /// Dual step size ε (paper: 0.1).
    pub epsilon: f64,
    /// Online model variant.
    pub online_model: OnlineModel,
    /// Whether the offline-acceleration multiplier loop is enabled
    /// ("No Offline Acc." in Fig. 23 disables it).
    pub offline_acceleration: bool,
    /// Simulated/measured seconds per query.
    pub duration_s: f64,
    /// BNN hyper-parameters for the BNN-based online model variants.
    pub bnn: BnnConfig,
    /// How the GP residual model bounds its training window. The default
    /// ([`WindowPolicy::Unbounded`]) keeps every observation — bit-for-bit
    /// the historical behaviour — but long-horizon slices (sessions that
    /// run for the lifetime of a slice rather than a fixed budget) should
    /// use a bounded window so per-round model cost and memory plateau at
    /// the capacity instead of growing with slice age.
    pub gp_window: WindowPolicy,
    /// Numeric precision of the GP residual model's candidate scoring. The
    /// default ([`ScoringPrecision::Exact`]) keeps every prediction in f64
    /// — bit-for-bit the historical behaviour.
    /// [`ScoringPrecision::MixedF32`] scores the per-round candidate sets
    /// through an f32 shadow of the factor (the f64 factors remain the
    /// source of truth for every observe/refit) with a periodic f64
    /// drift recheck — a throughput knob for large fleets where candidate
    /// scoring dominates the round.
    pub gp_scoring: ScoringPrecision,
    /// How the GP residual model maintains its hyper-parameter grid
    /// factors. The default ([`GridMaintenance::Full`]) keeps every grid
    /// candidate's Cholesky factor live — bit-for-bit the historical
    /// behaviour. [`GridMaintenance::Elastic`] keeps live factors only for
    /// the top-`hot_set` candidates with periodic tournament refreshes
    /// over the full grid — the fleet-scale knob that cuts the per-observe
    /// grid multiplier and the resident factor memory.
    pub gp_grid: GridMaintenance,
    /// How the GP residual model represents its posterior. The default
    /// ([`SurrogateBasis::Exact`]) keeps the full-rank formulation —
    /// bit-for-bit the historical behaviour.
    /// [`SurrogateBasis::Inducing`] compresses the retained history
    /// through `m` pseudo-inputs once the window outgrows the budget, so
    /// per-round model cost plateaus at O(m²) — the beyond-window
    /// capacity knob for slices that live for days.
    pub gp_basis: SurrogateBasis,
}

impl Default for Stage3Config {
    fn default() -> Self {
        Self {
            iterations: 100,
            offline_updates: 20,
            candidates: 1500,
            acquisition: Acquisition::conservative_default(),
            epsilon: 0.1,
            online_model: OnlineModel::GpResidual,
            offline_acceleration: true,
            duration_s: 15.0,
            bnn: BnnConfig {
                hidden: [16, 16, 0, 0],
                epochs: 30,
                ..BnnConfig::default()
            },
            gp_window: WindowPolicy::Unbounded,
            gp_scoring: ScoringPrecision::Exact,
            gp_grid: GridMaintenance::Full,
            gp_basis: SurrogateBasis::Exact,
        }
    }
}

/// One online iteration's outcome on the real network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineOutcome {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// The applied configuration.
    pub config: SliceConfig,
    /// Resource usage of the applied configuration.
    pub usage: f64,
    /// Measured QoE in the real network.
    pub qoe: f64,
    /// The QoE the augmented simulator predicted for the same action
    /// (used to compute the residual).
    pub simulator_qoe: f64,
}

/// Result of the online learning stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage3Result {
    /// Per-iteration outcomes.
    pub history: Vec<OnlineOutcome>,
    /// Final Lagrangian multiplier.
    pub final_multiplier: f64,
    /// Best (lowest-usage SLA-satisfying) online outcome, if any satisfied
    /// the SLA; otherwise the highest-QoE one.
    pub best: OnlineOutcome,
}

impl Stage3Result {
    /// Convenience: `(usage, qoe)` pairs for regret computation.
    pub fn usage_qoe_history(&self) -> Vec<(f64, f64)> {
        self.history.iter().map(|o| (o.usage, o.qoe)).collect()
    }
}

/// The stage-3 online learner: configuration plus warm-start artefacts.
///
/// The learner itself is immutable; all mutable online state lives in the
/// [`SliceSession`]s it creates, so one learner can seed many concurrent
/// sessions (one per slice).
#[derive(Clone)]
pub struct OnlineLearner {
    config: Stage3Config,
    sla: Sla,
    /// The augmented simulator (offline environment for acceleration).
    simulator: Simulator,
    /// The offline QoE model and warm-start artefacts from stage 2.
    offline_qoe: Option<Bnn>,
    initial_config: Option<SliceConfig>,
    initial_multiplier: f64,
}

impl OnlineLearner {
    /// Creates an online learner from the stage-2 result and the augmented
    /// simulator.
    pub fn new(
        config: Stage3Config,
        sla: Sla,
        simulator: Simulator,
        offline: &Stage2Result,
    ) -> Self {
        Self {
            config,
            sla,
            simulator,
            offline_qoe: offline.qoe_model.clone(),
            initial_config: Some(offline.best_config),
            initial_multiplier: offline.multiplier,
        }
    }

    /// Creates an online learner with no offline stage at all ("No stage 2"
    /// ablation): the policy is learned online from scratch.
    pub fn without_offline(config: Stage3Config, sla: Sla, simulator: Simulator) -> Self {
        Self {
            config,
            sla,
            simulator,
            offline_qoe: None,
            initial_config: None,
            initial_multiplier: 0.0,
        }
    }

    /// The stage configuration.
    pub fn config(&self) -> &Stage3Config {
        &self.config
    }

    /// Returns the learner with its GP residual window policy replaced —
    /// the long-horizon knob: sessions begun afterwards bound their
    /// residual model's memory and per-round cost at the window capacity.
    /// [`WindowPolicy::Unbounded`] restores the historical behaviour bit
    /// for bit. Only sessions created after the call are affected.
    pub fn with_gp_window(mut self, window: WindowPolicy) -> Self {
        self.config.gp_window = window;
        self
    }

    /// Returns the learner with its GP residual scoring precision replaced
    /// — the candidate-scoring throughput knob.
    /// [`ScoringPrecision::Exact`] (the default) keeps the historical f64
    /// path bit for bit; [`ScoringPrecision::MixedF32`] ranks candidates
    /// through an f32 shadow with a periodic f64 drift recheck. Only
    /// sessions created after the call are affected.
    pub fn with_gp_scoring(mut self, scoring: ScoringPrecision) -> Self {
        self.config.gp_scoring = scoring;
        self
    }

    /// Returns the learner with its GP residual grid maintenance replaced
    /// — the fleet-scale factor-memory knob. [`GridMaintenance::Full`]
    /// (the default) keeps every hyper-parameter candidate's factor live,
    /// bit for bit the historical behaviour;
    /// [`GridMaintenance::Elastic`] keeps only the top-`hot_set` factors
    /// live with periodic full-grid tournament refreshes. Only sessions
    /// created after the call are affected.
    pub fn with_gp_grid(mut self, grid: GridMaintenance) -> Self {
        self.config.gp_grid = grid;
        self
    }

    /// Returns the learner with its GP residual posterior basis replaced
    /// — the beyond-window capacity knob. [`SurrogateBasis::Exact`] (the
    /// default) keeps the full-rank posterior, bit for bit the historical
    /// behaviour; [`SurrogateBasis::Inducing`] summarises the retained
    /// history through `m` pseudo-inputs once the window outgrows the
    /// budget, bounding per-round model cost at O(m²). Only sessions
    /// created after the call are affected.
    pub fn with_gp_basis(mut self, basis: SurrogateBasis) -> Self {
        self.config.gp_basis = basis;
        self
    }

    /// Returns the learner with its offline simulator's
    /// [`SimCachePolicy`] replaced — the evaluate-phase fast-path knob.
    /// Every policy produces bit-identical traces;
    /// [`SimCachePolicy::Off`] pins the historical uncached path, e.g.
    /// to benchmark the caches or to rule them out when bisecting. Only
    /// sessions created after the call are affected.
    pub fn with_sim_cache_policy(mut self, cache: SimCachePolicy) -> Self {
        self.simulator = self.simulator.with_cache_policy(cache);
        self
    }

    /// The SLA the learner optimises under.
    pub fn sla(&self) -> &Sla {
        &self.sla
    }

    /// Starts a steppable online-learning session for one slice. The
    /// session owns all mutable state (RNG, residual model, multiplier,
    /// history), so many sessions from one learner can run concurrently.
    pub fn begin(&self, scenario: &Scenario, seed: u64) -> SliceSession {
        SliceSession::new(
            self.config,
            self.sla,
            SimulatorEnv::new(self.simulator),
            self.offline_qoe.clone(),
            self.initial_config,
            self.initial_multiplier,
            scenario,
            seed,
        )
    }

    /// Runs Algorithm 3 against the real environment: a thin wrapper that
    /// drives one [`SliceSession`] to completion. Byte-identical to the
    /// former monolithic loop.
    pub fn run<E: Environment>(&self, real: &E, scenario: &Scenario, seed: u64) -> Stage3Result {
        let mut session = self.begin(scenario, seed);
        while session.step(real).is_some() {}
        session.finish()
    }
}

/// Best online outcome: cheapest SLA-satisfying action, or the highest-QoE
/// action if none satisfied the SLA.
pub fn best_outcome(history: &[OnlineOutcome], sla: &Sla) -> OnlineOutcome {
    let feasible: Vec<&OnlineOutcome> =
        history.iter().filter(|o| sla.satisfied_by(o.qoe)).collect();
    if feasible.is_empty() {
        *history
            .iter()
            .max_by(|a, b| {
                a.qoe
                    .partial_cmp(&b.qoe)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty history")
    } else {
        *feasible
            .into_iter()
            .min_by(|a, b| {
                a.usage
                    .partial_cmp(&b.usage)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty feasible set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::RealEnv;
    use crate::stage2::{OfflineTrainer, Stage2Config};
    use atlas_netsim::RealNetwork;

    fn tiny_stage2_result(seed: u64) -> (Stage2Result, Simulator) {
        let sim = Simulator::with_original_params();
        let env = SimulatorEnv::new(sim);
        let trainer = OfflineTrainer::new(
            Stage2Config {
                iterations: 10,
                warmup: 4,
                parallel: 2,
                candidates: 200,
                duration_s: 8.0,
                bnn: BnnConfig {
                    hidden: [12, 12, 0, 0],
                    epochs: 8,
                    ..BnnConfig::default()
                },
                train_epochs_per_iter: 3,
                ..Stage2Config::default()
            },
            Sla::paper_default(),
        );
        let scenario = Scenario::default_with_seed(seed).with_duration(8.0);
        (trainer.run(&env, &scenario, seed), sim)
    }

    fn tiny_stage3() -> Stage3Config {
        Stage3Config {
            iterations: 6,
            offline_updates: 2,
            candidates: 200,
            duration_s: 8.0,
            ..Stage3Config::default()
        }
    }

    #[test]
    fn online_learning_produces_a_full_history_and_first_action_is_offline_best() {
        let (offline, sim) = tiny_stage2_result(1);
        let learner = OnlineLearner::new(tiny_stage3(), Sla::paper_default(), sim, &offline);
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(1).with_duration(8.0);
        let result = learner.run(&real, &scenario, 42);
        assert_eq!(result.history.len(), 6);
        // The first action is the offline best configuration (after the
        // connectivity floor).
        assert_eq!(
            result.history[0].config,
            offline.best_config.with_connectivity_floor()
        );
        for o in &result.history {
            assert!((0.0..=1.0).contains(&o.qoe));
            assert!((0.0..=1.0).contains(&o.usage));
            assert!((0.0..=1.0).contains(&o.simulator_qoe));
        }
        assert!(result.final_multiplier >= 0.0);
        assert_eq!(result.usage_qoe_history().len(), 6);
    }

    #[test]
    fn all_online_model_variants_run() {
        let (offline, sim) = tiny_stage2_result(2);
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(2).with_duration(8.0);
        for model in [
            OnlineModel::GpResidual,
            OnlineModel::BnnResidual,
            OnlineModel::BnnContinued,
        ] {
            let learner = OnlineLearner::new(
                Stage3Config {
                    online_model: model,
                    iterations: 3,
                    ..tiny_stage3()
                },
                Sla::paper_default(),
                sim,
                &offline,
            );
            let result = learner.run(&real, &scenario, 7);
            assert_eq!(result.history.len(), 3, "variant {model:?}");
        }
    }

    #[test]
    fn learner_without_offline_stage_still_runs() {
        let sim = Simulator::with_original_params();
        let learner = OnlineLearner::without_offline(
            Stage3Config {
                iterations: 4,
                ..tiny_stage3()
            },
            Sla::paper_default(),
            sim,
        );
        let real = RealEnv::new(RealNetwork::prototype());
        let scenario = Scenario::default_with_seed(3).with_duration(8.0);
        let result = learner.run(&real, &scenario, 11);
        assert_eq!(result.history.len(), 4);
    }

    #[test]
    fn best_outcome_selection_rules() {
        let sla = Sla::paper_default();
        let mk = |usage: f64, qoe: f64| OnlineOutcome {
            iteration: 0,
            config: SliceConfig::default_generous(),
            usage,
            qoe,
            simulator_qoe: qoe,
        };
        let history = vec![mk(0.4, 0.95), mk(0.2, 0.91), mk(0.1, 0.3)];
        assert_eq!(best_outcome(&history, &sla).usage, 0.2);
        let infeasible = vec![mk(0.4, 0.5), mk(0.2, 0.8)];
        assert_eq!(best_outcome(&infeasible, &sla).qoe, 0.8);
    }
}
