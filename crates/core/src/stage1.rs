//! Stage 1 — the learning-based simulator (Sec. 4, Algorithm 1).
//!
//! Searches the 7-dimensional simulation-parameter space of Table 3 for
//! the vector `x` that minimises the *weighted sim-to-real discrepancy*
//! `KL(D_r ‖ D_s(x)) + α·|x − x̂|₂`, subject to the trust region
//! `|x − x̂|₂ ≤ H`, using a BNN surrogate with parallel Thompson sampling
//! (or a GP surrogate, for the paper's stage-1 baseline comparison).

use crate::env::{Environment, SimulatorEnv};
use crate::model::{PolicyModel, SurrogateKind};
use atlas_bayesopt::SearchSpace;
use atlas_math::rng::{derive_seed, seeded_rng};
use atlas_math::stats;
use atlas_netsim::{Scenario, SimParams, Simulator, SliceConfig};
use atlas_nn::BnnConfig;

/// Configuration of the stage-1 parameter search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage1Config {
    /// Number of optimisation iterations (the paper runs 500 for Fig. 8).
    pub iterations: usize,
    /// Purely random exploration iterations at the start (paper: 100).
    pub warmup: usize,
    /// Parallel simulator queries per iteration (paper: up to 16).
    pub parallel: usize,
    /// Random candidates scored per Thompson draw.
    pub candidates: usize,
    /// Weight `α` of the parameter distance in the objective (paper: 7).
    pub alpha: f64,
    /// Trust-region radius `H` on the parameter distance (Eq. 2), in the
    /// per-dimension-averaged metric of [`SimParams::distance_from`]
    /// (maximum possible value ≈ 0.38).
    pub max_distance: f64,
    /// Surrogate family (BNN = "ours", GP = the baseline of Fig. 8).
    pub surrogate: SurrogateKind,
    /// BNN hyper-parameters (ignored for the GP surrogate).
    pub bnn: BnnConfig,
    /// Warm-start training epochs after each iteration's new transitions.
    pub train_epochs_per_iter: usize,
    /// Simulated seconds per query (the paper uses 60 s).
    pub duration_s: f64,
}

impl Default for Stage1Config {
    fn default() -> Self {
        Self {
            iterations: 120,
            warmup: 25,
            parallel: 4,
            candidates: 1500,
            alpha: 7.0,
            max_distance: 0.25,
            surrogate: SurrogateKind::Bnn,
            bnn: BnnConfig {
                hidden: [32, 32, 0, 0],
                epochs: 40,
                ..BnnConfig::default()
            },
            train_epochs_per_iter: 8,
            duration_s: 15.0,
        }
    }
}

/// Per-iteration progress record (one point of Fig. 8 / Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage1Iteration {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Mean weighted discrepancy of this iteration's parallel queries.
    pub avg_weighted_discrepancy: f64,
    /// Best (lowest) weighted discrepancy observed so far.
    pub best_weighted_so_far: f64,
}

/// One evaluated simulation-parameter vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage1Observation {
    /// The evaluated parameters.
    pub params: SimParams,
    /// The measured sim-to-real discrepancy `KL(D_r ‖ D_s(x))`.
    pub discrepancy: f64,
    /// The normalised parameter distance `|x − x̂|₂`.
    pub distance: f64,
}

impl Stage1Observation {
    /// The weighted objective `KL + α·distance`.
    pub fn weighted(&self, alpha: f64) -> f64 {
        self.discrepancy + alpha * self.distance
    }
}

/// Result of a stage-1 run.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage1Result {
    /// The best simulation parameters found.
    pub best_params: SimParams,
    /// Sim-to-real discrepancy of the best parameters.
    pub best_discrepancy: f64,
    /// Parameter distance of the best parameters.
    pub best_distance: f64,
    /// Weighted objective of the best parameters.
    pub best_weighted: f64,
    /// Per-iteration search progress.
    pub history: Vec<Stage1Iteration>,
    /// Every evaluated parameter vector (for Pareto analysis, Fig. 12).
    pub observations: Vec<Stage1Observation>,
}

impl Stage1Result {
    /// A simulator configured with the best parameters found (the
    /// "augmented simulator" of the paper).
    pub fn augmented_simulator(&self) -> Simulator {
        Simulator::new(self.best_params)
    }
}

/// The stage-1 parameter-searching algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatorCalibration {
    config: Stage1Config,
}

impl SimulatorCalibration {
    /// Creates the calibration stage.
    pub fn new(config: Stage1Config) -> Self {
        Self { config }
    }

    /// The stage configuration.
    pub fn config(&self) -> &Stage1Config {
        &self.config
    }

    /// Evaluates one simulation-parameter vector: runs the simulator under
    /// the same configuration/scenario that produced the real collection
    /// and measures the KL-divergence of the two latency distributions.
    pub fn evaluate(
        &self,
        params: &SimParams,
        real_latencies: &[f64],
        slice_config: &SliceConfig,
        scenario: &Scenario,
        seed: u64,
    ) -> Stage1Observation {
        let simulator = Simulator::new(*params);
        let env = SimulatorEnv::new(simulator);
        let run_scenario = scenario
            .with_seed(seed)
            .with_duration(self.config.duration_s);
        let trace = env.measure(&slice_config.with_connectivity_floor(), &run_scenario);
        let discrepancy = if trace.latencies_ms.is_empty() {
            10.0
        } else {
            stats::kl_divergence(real_latencies, &trace.latencies_ms).unwrap_or(10.0)
        };
        Stage1Observation {
            params: *params,
            discrepancy,
            distance: params.distance_from(&SimParams::original()),
        }
    }

    /// Runs Algorithm 1: returns the best simulation parameters together
    /// with the full search history.
    pub fn run(
        &self,
        real_latencies: &[f64],
        slice_config: &SliceConfig,
        scenario: &Scenario,
        seed: u64,
    ) -> Stage1Result {
        assert!(
            !real_latencies.is_empty(),
            "stage 1 needs a non-empty online collection D_r"
        );
        let cfg = &self.config;
        let mut rng = seeded_rng(seed);
        let space = SearchSpace::new(
            SimParams::lower_bounds().to_vec(),
            SimParams::upper_bounds().to_vec(),
        );
        let reference = SimParams::original();
        let mut model = PolicyModel::new(cfg.surrogate, SimParams::DIM, cfg.bnn, &mut rng);

        // Samples a parameter vector inside the trust region of Eq. 2 by
        // contracting uniform draws towards the reference until the
        // per-dimension distance metric is satisfied.
        let sample_in_trust_region = |rng: &mut atlas_math::rng::Rng64| -> Vec<f64> {
            let mut candidate = space.sample(rng);
            let reference_vec = reference.to_vec();
            for _ in 0..32 {
                if SimParams::from_vec(&candidate).distance_from(&reference) <= cfg.max_distance {
                    break;
                }
                candidate = candidate
                    .iter()
                    .zip(reference_vec.iter())
                    .map(|(c, r)| r + (c - r) * 0.7)
                    .collect();
            }
            candidate
        };

        let mut observations: Vec<Stage1Observation> = Vec::new();
        let mut history = Vec::with_capacity(cfg.iterations);
        let mut best_weighted = f64::INFINITY;

        for iteration in 0..cfg.iterations {
            // --- propose `parallel` parameter vectors -------------------
            let mut proposals: Vec<SimParams> = if iteration < cfg.warmup || observations.is_empty()
            {
                (0..cfg.parallel)
                    .map(|_| SimParams::from_vec(&sample_in_trust_region(&mut rng)))
                    .collect()
            } else {
                (0..cfg.parallel)
                    .map(|_| {
                        let candidates: Vec<Vec<f64>> = (0..cfg.candidates)
                            .map(|_| sample_in_trust_region(&mut rng))
                            .collect();
                        let draws = model.thompson_batch(&candidates, &mut rng);
                        let mut best_idx = 0;
                        let mut best_val = f64::INFINITY;
                        for (i, (c, d)) in candidates.iter().zip(draws.iter()).enumerate() {
                            let dist = SimParams::from_vec(c).distance_from(&reference);
                            let weighted = d + cfg.alpha * dist;
                            if weighted < best_val {
                                best_val = weighted;
                                best_idx = i;
                            }
                        }
                        SimParams::from_vec(&candidates[best_idx])
                    })
                    .collect()
            };
            if iteration == 0 {
                // Always evaluate the original (specification-derived)
                // parameters first: the search must never end up worse than
                // the simulator it started from.
                proposals[0] = SimParams::original();
            }

            // --- evaluate the proposals in parallel ----------------------
            let iteration_seed = derive_seed(seed, 1000 + iteration as u64);
            let mut results: Vec<Option<Stage1Observation>> = vec![None; proposals.len()];
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (i, params) in proposals.iter().enumerate() {
                    let query_seed = derive_seed(iteration_seed, i as u64);
                    handles.push(scope.spawn(move || {
                        (
                            i,
                            self.evaluate(
                                params,
                                real_latencies,
                                slice_config,
                                scenario,
                                query_seed,
                            ),
                        )
                    }));
                }
                for h in handles {
                    let (i, obs) = h.join().expect("stage-1 query thread panicked");
                    results[i] = Some(obs);
                }
            });
            let new_obs: Vec<Stage1Observation> = results
                .into_iter()
                .map(|o| o.expect("all slots filled"))
                .collect();

            // --- bookkeeping --------------------------------------------
            let weighted: Vec<f64> = new_obs.iter().map(|o| o.weighted(cfg.alpha)).collect();
            for w in &weighted {
                if *w < best_weighted {
                    best_weighted = *w;
                }
            }
            history.push(Stage1Iteration {
                iteration,
                avg_weighted_discrepancy: stats::mean(&weighted),
                best_weighted_so_far: best_weighted,
            });
            let new_from = observations.len();
            observations.extend(new_obs);

            // --- retrain the surrogate on the discrepancy only ----------
            // The GP absorbs the iteration's new points incrementally
            // (O(n²) each, equivalent to a full refit on all data); the BNN
            // declines and warm-starts from the whole history as before.
            let absorbed = observations[new_from..]
                .iter()
                .all(|o| model.observe(&o.params.to_vec(), o.discrepancy));
            if !absorbed {
                let xs: Vec<Vec<f64>> = observations.iter().map(|o| o.params.to_vec()).collect();
                let ys: Vec<f64> = observations.iter().map(|o| o.discrepancy).collect();
                model.fit(&xs, &ys, cfg.train_epochs_per_iter, &mut rng);
            }
        }

        let best = observations
            .iter()
            .min_by(|a, b| {
                a.weighted(cfg.alpha)
                    .partial_cmp(&b.weighted(cfg.alpha))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one observation")
            .clone();

        Stage1Result {
            best_params: best.params,
            best_discrepancy: best.discrepancy,
            best_distance: best.distance,
            best_weighted: best.weighted(cfg.alpha),
            history,
            observations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_netsim::RealNetwork;

    fn collection_config() -> SliceConfig {
        SliceConfig::from_vec(&[10.0, 5.0, 0.0, 0.0, 10.0, 0.8])
    }

    fn tiny_stage1() -> Stage1Config {
        Stage1Config {
            iterations: 10,
            warmup: 4,
            parallel: 2,
            candidates: 200,
            duration_s: 8.0,
            surrogate: SurrogateKind::Gp,
            train_epochs_per_iter: 2,
            ..Stage1Config::default()
        }
    }

    fn real_collection(scenario: &Scenario) -> Vec<f64> {
        RealNetwork::prototype()
            .run(&collection_config().with_connectivity_floor(), scenario)
            .latencies_ms
    }

    #[test]
    fn evaluate_reports_zero_distance_for_original_params() {
        let scenario = Scenario::default_with_seed(3).with_duration(8.0);
        let real = real_collection(&scenario);
        let calib = SimulatorCalibration::new(tiny_stage1());
        let obs = calib.evaluate(
            &SimParams::original(),
            &real,
            &collection_config(),
            &scenario,
            7,
        );
        assert_eq!(obs.distance, 0.0);
        assert!(obs.discrepancy > 0.0, "original simulator must show a gap");
        assert!((obs.weighted(7.0) - obs.discrepancy).abs() < 1e-12);
    }

    #[test]
    fn calibration_reduces_the_weighted_discrepancy() {
        let scenario = Scenario::default_with_seed(11).with_duration(8.0);
        let real = real_collection(&scenario);
        let calib = SimulatorCalibration::new(tiny_stage1());
        let result = calib.run(&real, &collection_config(), &scenario, 21);
        assert_eq!(result.history.len(), 10);
        assert_eq!(result.observations.len(), 20);
        // The search always evaluates the original parameters first, so the
        // final best can never be worse than that in-run measurement.
        let original_in_run = result
            .observations
            .iter()
            .find(|o| o.distance == 0.0)
            .expect("the original parameters are evaluated in iteration 0");
        assert!(
            result.best_weighted <= original_in_run.weighted(7.0) + 1e-9,
            "search best {} should not exceed the original simulator's {}",
            result.best_weighted,
            original_in_run.weighted(7.0)
        );
        assert!(result.best_distance <= tiny_stage1().max_distance + 1e-6);
        // History's running best is monotone non-increasing.
        for w in result.history.windows(2) {
            assert!(w[1].best_weighted_so_far <= w[0].best_weighted_so_far + 1e-12);
        }
    }

    #[test]
    fn augmented_simulator_uses_the_best_parameters() {
        let scenario = Scenario::default_with_seed(5).with_duration(8.0);
        let real = real_collection(&scenario);
        let calib = SimulatorCalibration::new(Stage1Config {
            iterations: 4,
            warmup: 2,
            ..tiny_stage1()
        });
        let result = calib.run(&real, &collection_config(), &scenario, 2);
        assert_eq!(*result.augmented_simulator().params(), result.best_params);
    }

    #[test]
    #[should_panic(expected = "non-empty online collection")]
    fn empty_real_collection_is_rejected() {
        let calib = SimulatorCalibration::new(tiny_stage1());
        let scenario = Scenario::default_with_seed(1);
        let _ = calib.run(&[], &collection_config(), &scenario, 1);
    }
}
