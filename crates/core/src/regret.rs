//! Regret accounting for the online learning stage.
//!
//! Implements the two regret definitions of Sec. 6.1:
//!
//! * usage regret `g_u(n) = Σ_j (F(φ_j) − F(φ*))`  (Eq. 10)
//! * QoE regret  `g_p(n) = Σ_j max(Q(φ*) − Q(φ_j), 0)`  (Eq. 11)
//!
//! where `φ*` is a reference (oracle-best) policy. Table 5 and Figs. 20–26
//! report the *average* regret, i.e. the cumulative regret divided by the
//! number of online iterations.

/// Tracks cumulative and average regret against a reference policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegretTracker {
    reference_usage: f64,
    reference_qoe: f64,
    cumulative_usage: f64,
    cumulative_qoe: f64,
    iterations: usize,
}

impl RegretTracker {
    /// Creates a tracker for a reference policy with the given resource
    /// usage and QoE.
    pub fn new(reference_usage: f64, reference_qoe: f64) -> Self {
        Self {
            reference_usage,
            reference_qoe,
            cumulative_usage: 0.0,
            cumulative_qoe: 0.0,
            iterations: 0,
        }
    }

    /// Records one online iteration.
    pub fn update(&mut self, usage: f64, qoe: f64) {
        self.cumulative_usage += usage - self.reference_usage;
        self.cumulative_qoe += (self.reference_qoe - qoe).max(0.0);
        self.iterations += 1;
    }

    /// Number of recorded iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Cumulative usage regret `g_u(n)` (Eq. 10). Can be negative when the
    /// learner spends less than the reference on average.
    pub fn cumulative_usage_regret(&self) -> f64 {
        self.cumulative_usage
    }

    /// Cumulative QoE regret `g_p(n)` (Eq. 11); non-negative by definition.
    pub fn cumulative_qoe_regret(&self) -> f64 {
        self.cumulative_qoe
    }

    /// Average usage regret (what Table 5 reports, in the same normalised
    /// units as the resource usage `F`).
    pub fn avg_usage_regret(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.cumulative_usage / self.iterations as f64
        }
    }

    /// Average QoE regret.
    pub fn avg_qoe_regret(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.cumulative_qoe / self.iterations as f64
        }
    }

    /// Reference usage.
    pub fn reference_usage(&self) -> f64 {
        self.reference_usage
    }

    /// Reference QoE.
    pub fn reference_qoe(&self) -> f64 {
        self.reference_qoe
    }
}

/// Computes `(avg usage regret, avg QoE regret)` for a history of
/// `(usage, qoe)` outcomes against a reference policy.
pub fn average_regret(
    history: &[(f64, f64)],
    reference_usage: f64,
    reference_qoe: f64,
) -> (f64, f64) {
    let mut tracker = RegretTracker::new(reference_usage, reference_qoe);
    for (usage, qoe) in history {
        tracker.update(*usage, *qoe);
    }
    (tracker.avg_usage_regret(), tracker.avg_qoe_regret())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_iterations_give_zero_regret() {
        let t = RegretTracker::new(0.2, 0.9);
        assert_eq!(t.avg_usage_regret(), 0.0);
        assert_eq!(t.avg_qoe_regret(), 0.0);
        assert_eq!(t.iterations(), 0);
    }

    #[test]
    fn matching_the_reference_gives_zero_regret() {
        let mut t = RegretTracker::new(0.2, 0.9);
        for _ in 0..10 {
            t.update(0.2, 0.9);
        }
        assert!(t.avg_usage_regret().abs() < 1e-12);
        assert!(t.avg_qoe_regret().abs() < 1e-12);
    }

    #[test]
    fn usage_regret_accumulates_linearly() {
        let mut t = RegretTracker::new(0.2, 0.9);
        t.update(0.3, 0.9); // +0.1
        t.update(0.4, 0.9); // +0.2
        assert!((t.cumulative_usage_regret() - 0.3).abs() < 1e-12);
        assert!((t.avg_usage_regret() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn qoe_regret_is_one_sided() {
        let mut t = RegretTracker::new(0.2, 0.9);
        t.update(0.2, 1.0); // better QoE than reference: no regret
        t.update(0.2, 0.7); // 0.2 below
        assert!((t.cumulative_qoe_regret() - 0.2).abs() < 1e-12);
        assert!((t.avg_qoe_regret() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn usage_regret_can_be_negative() {
        let mut t = RegretTracker::new(0.5, 0.9);
        t.update(0.3, 0.95);
        assert!(t.avg_usage_regret() < 0.0);
    }

    #[test]
    fn average_regret_helper_matches_tracker() {
        let history = vec![(0.3, 0.8), (0.25, 0.95), (0.4, 0.9)];
        let (u, q) = average_regret(&history, 0.2, 0.9);
        let mut t = RegretTracker::new(0.2, 0.9);
        for (usage, qoe) in &history {
            t.update(*usage, *qoe);
        }
        assert!((u - t.avg_usage_regret()).abs() < 1e-12);
        assert!((q - t.avg_qoe_regret()).abs() < 1e-12);
        assert_eq!(t.reference_usage(), 0.2);
        assert_eq!(t.reference_qoe(), 0.9);
    }
}
