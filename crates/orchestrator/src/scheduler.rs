//! The shared query scheduler.
//!
//! One round of orchestration produces a batch of [`SliceQuery`]s — one
//! per active slice — that are independent by construction: each embeds
//! its own configuration, scenario (with a seed derived from the owning
//! slice's stream) and SLA. The scheduler fans such a batch out over the
//! deterministic scoped-thread pool of `atlas-math::parallel` and returns
//! the measurements in query order, so the outcome is bit-for-bit
//! identical for every thread count — including one.

use atlas::env::{Environment, QoeSample};
use atlas::SliceQuery;

/// Fans batches of independent slice queries out over worker threads.
///
/// A performance knob only: element `i` of every result equals
/// `env.query(&queries[i].config, &queries[i].scenario, &queries[i].sla)`
/// regardless of the configured thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryScheduler {
    threads: Option<usize>,
}

impl QueryScheduler {
    /// A scheduler using the machine-default worker count (available
    /// parallelism, capped at 8).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker-thread count (at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The pinned thread count, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Evaluates a batch of queries against the shared environment,
    /// returning samples in query order.
    pub fn evaluate<E: Environment>(&self, env: &E, queries: &[SliceQuery]) -> Vec<QoeSample> {
        atlas_math::parallel::par_chunks_map(queries, 1, self.threads, |_, chunk| {
            chunk
                .iter()
                .map(|q| env.query(&q.config, &q.scenario, &q.sla))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::env::{RealEnv, Sla};
    use atlas::{OnlineLearner, Scenario, Simulator, Stage3Config};
    use atlas_netsim::RealNetwork;

    /// Queries harvested from real sessions, so they carry per-slice seeds.
    fn sample_queries(n: u64) -> Vec<SliceQuery> {
        let quick = Stage3Config {
            iterations: 1,
            offline_updates: 0,
            candidates: 30,
            duration_s: 2.0,
            ..Stage3Config::default()
        };
        (0..n)
            .map(|i| {
                let learner = OnlineLearner::without_offline(
                    quick,
                    Sla::paper_default(),
                    Simulator::with_original_params(),
                );
                let scenario = Scenario::default_with_seed(i).with_duration(2.0);
                let mut session = learner.begin(&scenario, 1000 + i);
                session.suggest().expect("fresh session suggests")
            })
            .collect()
    }

    #[test]
    fn evaluate_matches_sequential_queries_for_every_thread_count() {
        let env = RealEnv::new(RealNetwork::prototype());
        let queries = sample_queries(5);
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| env.query(&q.config, &q.scenario, &q.sla))
            .collect();
        for threads in [1, 2, 3, 8] {
            let scheduler = QueryScheduler::new().with_threads(threads);
            assert_eq!(scheduler.evaluate(&env, &queries), sequential);
        }
        assert_eq!(QueryScheduler::new().evaluate(&env, &queries), sequential);
        assert_eq!(QueryScheduler::new().threads(), None);
        assert_eq!(QueryScheduler::new().with_threads(0).threads(), Some(1));
        assert!(QueryScheduler::new().evaluate(&env, &[]).is_empty());
    }
}
