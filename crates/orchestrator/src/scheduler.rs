//! The shared query scheduler.
//!
//! One round of orchestration produces a batch of [`SliceQuery`]s — one
//! per active slice — that are independent by construction: each embeds
//! its own configuration, scenario (with a seed derived from the owning
//! slice's stream) and SLA. The scheduler first grants the whole batch
//! against the environment's resource budget (a sequential, thread-count
//! independent step; uncontended environments grant verbatim), then fans
//! the granted measurements out over the deterministic scoped-thread pool
//! of `atlas-math::parallel` and returns them in query order, so the
//! outcome is bit-for-bit identical for every thread count — including
//! one.

use atlas::env::{Environment, QoeSample};
use atlas::{SliceConfig, SliceQuery};

/// Minimum queries per worker chunk when fanning an evaluation batch over
/// scoped threads — the scheduler's analogue of the bench-calibrated
/// fan-out thresholds in `atlas-math`/`atlas-gp`. The sharded fleet loop
/// reuses it as the per-shard activation floor (a shard fan-out only pays
/// when every shard has at least this many sessions). Calibrated by the
/// `sharding.min_chunk_sweep` section of `BENCH_orchestrator.json`: real
/// testbed queries are millisecond-scale, so even a single query per
/// worker amortises the spawn cost — 1 is optimal on the reference
/// container and re-sweeping on wider machines is a bench re-run away.
pub const EVAL_PAR_MIN_CHUNK: usize = 1;

/// Fans batches of independent slice queries out over worker threads.
///
/// A performance knob only: for an uncontended environment, element `i` of
/// every result equals
/// `env.query(&queries[i].config, &queries[i].scenario, &queries[i].sla)`
/// regardless of the configured thread count. Under a finite budget the
/// batch is first granted jointly (see [`Environment::grant_round`]), and
/// element `i` equals the query of the *granted* configuration — still
/// identical for every thread count, because granting happens once,
/// sequentially, before any fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryScheduler {
    threads: Option<usize>,
}

impl QueryScheduler {
    /// A scheduler using the machine-default worker count (available
    /// parallelism, capped at 8).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker-thread count (at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The pinned thread count, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Evaluates a batch of concurrent queries against the shared
    /// environment, returning samples in query order.
    ///
    /// The batch's (connectivity-floored) configurations are granted
    /// jointly against the environment's budget before evaluation, so
    /// sessions observe the resources they were actually granted. The
    /// connectivity floor itself is never scaled away: `Environment::query`
    /// re-applies it to the granted configuration, so a pathologically
    /// tight budget can be overshot by the floors (by design — a slice
    /// below the floor has no connectivity at all).
    pub fn evaluate<E: Environment>(&self, env: &E, queries: &[SliceQuery]) -> Vec<QoeSample> {
        let jobs = Self::grant(env, queries);
        self.evaluate_granted(env, &jobs)
    }

    /// Grants a batch of queries jointly against the environment's budget,
    /// pairing each query with its granted (connectivity-floored, possibly
    /// scaled-down) configuration. Sequential and thread-count independent
    /// — callers that need per-phase timings (grant vs evaluation) run this
    /// separately and hand the jobs to
    /// [`QueryScheduler::evaluate_granted`]; the composition is exactly
    /// [`QueryScheduler::evaluate`].
    pub fn grant<E: Environment>(
        env: &E,
        queries: &[SliceQuery],
    ) -> Vec<(SliceConfig, SliceQuery)> {
        let requested: Vec<SliceConfig> = queries
            .iter()
            .map(|q| q.config.with_connectivity_floor())
            .collect();
        let granted = env.grant_round(&requested);
        granted.into_iter().zip(queries.iter().copied()).collect()
    }

    /// Fans an already-granted batch (see [`QueryScheduler::grant`]) out
    /// over the worker pool, returning samples in job order — identical
    /// for every thread count.
    pub fn evaluate_granted<E: Environment>(
        &self,
        env: &E,
        jobs: &[(SliceConfig, SliceQuery)],
    ) -> Vec<QoeSample> {
        atlas_math::parallel::par_chunks_map(jobs, EVAL_PAR_MIN_CHUNK, self.threads, |_, chunk| {
            chunk
                .iter()
                .map(|(config, q)| env.query(config, &q.scenario, &q.sla))
                .collect()
        })
    }

    /// Evaluates each query against its *own* environment — the batch path
    /// for the offline-acceleration simulator queries, where every session
    /// owns its (possibly individually calibrated) augmented simulator.
    /// No granting is applied: simulator queries model the offline world
    /// and never contend for the testbed substrate. Element `i` equals
    /// `jobs[i].0.query(&jobs[i].1.config, ...)` for every thread count.
    pub fn evaluate_each<E: Environment>(&self, jobs: &[(E, SliceQuery)]) -> Vec<QoeSample> {
        atlas_math::parallel::par_chunks_map(jobs, EVAL_PAR_MIN_CHUNK, self.threads, |_, chunk| {
            chunk
                .iter()
                .map(|(env, q)| env.query(&q.config, &q.scenario, &q.sla))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::env::{RealEnv, Sla};
    use atlas::{OnlineLearner, Scenario, Simulator, Stage3Config};
    use atlas_netsim::RealNetwork;

    /// Queries harvested from real sessions, so they carry per-slice seeds.
    fn sample_queries(n: u64) -> Vec<SliceQuery> {
        let quick = Stage3Config {
            iterations: 1,
            offline_updates: 0,
            candidates: 30,
            duration_s: 2.0,
            ..Stage3Config::default()
        };
        (0..n)
            .map(|i| {
                let learner = OnlineLearner::without_offline(
                    quick,
                    Sla::paper_default(),
                    Simulator::with_original_params(),
                );
                let scenario = Scenario::default_with_seed(i).with_duration(2.0);
                let mut session = learner.begin(&scenario, 1000 + i);
                session.suggest().expect("fresh session suggests")
            })
            .collect()
    }

    #[test]
    fn evaluate_matches_sequential_queries_for_every_thread_count() {
        let env = RealEnv::new(RealNetwork::prototype());
        let queries = sample_queries(5);
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| env.query(&q.config, &q.scenario, &q.sla))
            .collect();
        for threads in [1, 2, 3, 8] {
            let scheduler = QueryScheduler::new().with_threads(threads);
            assert_eq!(scheduler.evaluate(&env, &queries), sequential);
        }
        assert_eq!(QueryScheduler::new().evaluate(&env, &queries), sequential);
        assert_eq!(QueryScheduler::new().threads(), None);
        assert_eq!(QueryScheduler::new().with_threads(0).threads(), Some(1));
        assert!(QueryScheduler::new().evaluate(&env, &[]).is_empty());
    }

    #[test]
    fn evaluate_each_matches_per_environment_queries() {
        use atlas::env::SimulatorEnv;
        use atlas::{SimParams, Simulator};
        // Each job carries its own (differently calibrated) simulator, the
        // way each slice session owns its augmented simulator.
        let jobs: Vec<(SimulatorEnv, SliceQuery)> = sample_queries(4)
            .into_iter()
            .enumerate()
            .map(|(i, q)| {
                let mut params = SimParams::original();
                params.compute_time = 2.0 * i as f64;
                (SimulatorEnv::new(Simulator::new(params)), q)
            })
            .collect();
        let sequential: Vec<_> = jobs
            .iter()
            .map(|(env, q)| env.query(&q.config, &q.scenario, &q.sla))
            .collect();
        for threads in [1, 2, 3, 8] {
            let scheduler = QueryScheduler::new().with_threads(threads);
            assert_eq!(scheduler.evaluate_each(&jobs), sequential);
        }
        assert!(QueryScheduler::new()
            .evaluate_each(&[] as &[(SimulatorEnv, SliceQuery)])
            .is_empty());
    }

    #[test]
    fn evaluate_grants_contended_batches_before_measuring() {
        use atlas_netsim::{ResourceBudget, SharedTestbed};
        let queries = sample_queries(6);
        let tight = SharedTestbed::new(RealNetwork::prototype())
            .with_budget(ResourceBudget::carrier_default().scaled(0.25));
        let samples = QueryScheduler::new().evaluate(&tight, &queries);
        // The granted usage must be below the requested usage for at least
        // one query (6 floored slices cannot all fit a quarter carrier).
        let requested: f64 = queries
            .iter()
            .map(|q| q.config.with_connectivity_floor().resource_usage())
            .sum();
        let granted: f64 = samples.iter().map(|s| s.usage).sum();
        assert!(
            granted < requested - 1e-9,
            "granted {granted} should be scaled below requested {requested}"
        );
        // Contended evaluation stays thread-count independent.
        for threads in [1, 2, 4, 8] {
            let again = QueryScheduler::new()
                .with_threads(threads)
                .evaluate(&tight, &queries);
            assert_eq!(again, samples, "threads = {threads}");
        }
    }
}
