//! The orchestrator proper: a round-driven fleet event loop over a
//! contended testbed.
//!
//! PR 3's orchestrator ran a fixed `Vec<SliceSpec>` to completion. This
//! module replaces that batch job with a steppable [`FleetRun`]: slices
//! are **admitted** (subject to validation and an
//! [`crate::AdmissionPolicy`]) and **retired** between rounds, every round
//! emits an incremental [`RoundReport`], and the whole run folds into the
//! same [`FleetReport`] as before — with lifecycle spans and
//! rejected-admission counts on top. [`Orchestrator::run`] survives as a
//! thin wrapper (admit everything up front, step until drained) that is
//! bit-for-bit identical to the PR 3 behaviour on an uncontended testbed.

use crate::admission::{
    validate_spec, AcceptAll, AdmissionError, AdmissionPolicy, Occupancy, RetireError,
};
use crate::report::{mean_per_query, FleetReport, LifecycleSpan, RoundReport, SliceReport};
use crate::scheduler::{QueryScheduler, EVAL_PAR_MIN_CHUNK};
use crate::shard::ShardPlan;
use atlas::env::{Environment, QoeSample};
use atlas::{
    GridMaintenance, OnlineLearner, Scenario, ScoringPrecision, SliceConfig, SliceQuery,
    SliceSession, SurrogateBasis, WindowPolicy,
};
use atlas_math::parallel::par_map_tasks;
use atlas_netsim::{ContentionPolicy, SimCacheStats};
use std::time::Instant;

/// One slice to orchestrate: a configured learner plus the slice's
/// workload scenario, seed and nominal resource demand.
#[derive(Clone)]
pub struct SliceSpec {
    /// Display/lookup name of the slice. Unique per fleet run — admission
    /// rejects duplicates.
    pub name: String,
    /// The stage-3 learner (immutable warm-start state; the orchestrator
    /// creates the mutable session).
    pub learner: OnlineLearner,
    /// The slice's workload scenario.
    pub scenario: Scenario,
    /// The slice's online-learning seed. Per-query testbed seeds are
    /// derived from it, so two slices never share an RNG stream.
    pub seed: u64,
    /// Optional `(usage, qoe)` reference policy for regret reporting;
    /// defaults to the slice's own best online outcome.
    pub reference: Option<(f64, f64)>,
    /// The slice's nominal resource demand: what admission policies count
    /// against the testbed budget while the slice is active. Defaults to
    /// [`SliceConfig::default_generous`] (a conservative peak estimate).
    pub demand: SliceConfig,
}

impl SliceSpec {
    /// Creates a slice spec.
    pub fn new(
        name: impl Into<String>,
        learner: OnlineLearner,
        scenario: Scenario,
        seed: u64,
    ) -> Self {
        Self {
            name: name.into(),
            learner,
            scenario,
            seed,
            reference: None,
            demand: SliceConfig::default_generous(),
        }
    }

    /// Pins the regret reference policy (e.g. an oracle search result).
    pub fn with_reference(mut self, usage: f64, qoe: f64) -> Self {
        self.reference = Some((usage, qoe));
        self
    }

    /// Sets the nominal resource demand admission policies account for.
    pub fn with_demand(mut self, demand: SliceConfig) -> Self {
        self.demand = demand;
        self
    }

    /// Bounds this slice's GP residual model with a [`WindowPolicy`] —
    /// the per-slice long-horizon knob. Windows are per slice, so one
    /// fleet can mix churning short-lived slices (unbounded: they never
    /// live long enough to care) with effectively-infinite-horizon slices
    /// whose per-round model cost and memory must plateau.
    pub fn with_gp_window(mut self, window: WindowPolicy) -> Self {
        self.learner = self.learner.with_gp_window(window);
        self
    }

    /// Selects this slice's GP candidate-scoring precision — the per-slice
    /// throughput knob. [`ScoringPrecision::Exact`] (the default) keeps
    /// the historical f64 scoring bit for bit;
    /// [`ScoringPrecision::MixedF32`] ranks each round's candidate set
    /// through an f32 shadow of the factor (observes and refits stay f64)
    /// with a periodic f64 drift recheck, trading a bounded ranking
    /// approximation for cheaper rounds on scoring-dominated fleets.
    pub fn with_gp_scoring(mut self, scoring: ScoringPrecision) -> Self {
        self.learner = self.learner.with_gp_scoring(scoring);
        self
    }

    /// Selects this slice's GP hyper-parameter grid maintenance — the
    /// per-slice factor-memory knob. [`GridMaintenance::Full`] (the
    /// default) keeps every grid candidate's Cholesky factor live, bit for
    /// bit the historical behaviour; [`GridMaintenance::Elastic`] keeps
    /// only the top-`hot_set` factors live between periodic full-grid
    /// tournament refreshes, cutting the per-observe grid multiplier and
    /// the resident factor memory — the knob that makes thousand-slice
    /// fleets fit.
    pub fn with_gp_grid(mut self, grid: GridMaintenance) -> Self {
        self.learner = self.learner.with_gp_grid(grid);
        self
    }

    /// Selects this slice's GP posterior basis — the per-slice
    /// beyond-window capacity knob. [`SurrogateBasis::Exact`] (the
    /// default) keeps the full-rank posterior, bit for bit the historical
    /// behaviour; [`SurrogateBasis::Inducing`] summarises the retained
    /// history through `m` pseudo-inputs once the window outgrows the
    /// budget, so the slice's per-round model cost and factor memory
    /// plateau at O(m²) however long it lives — the knob for slices whose
    /// tenancy is measured in days rather than rounds.
    pub fn with_gp_basis(mut self, basis: SurrogateBasis) -> Self {
        self.learner = self.learner.with_gp_basis(basis);
        self
    }

    /// Selects this slice's offline-simulator cache policy — the
    /// evaluate-phase fast-path knob. Every policy produces bit-identical
    /// results; [`atlas_netsim::SimCachePolicy::Off`] pins the historical
    /// uncached path (used by the bench and the cached-vs-uncached
    /// identity properties).
    pub fn with_sim_cache_policy(mut self, cache: atlas_netsim::SimCachePolicy) -> Self {
        self.learner = self.learner.with_sim_cache_policy(cache);
        self
    }
}

/// Cumulative time spent in each phase of the fleet's round loop, exposed
/// by [`FleetRun::phase_breakdown`] and reported by the orchestrator
/// bench. The suggest phase covers the model-side work (the
/// offline-acceleration waves, candidate scoring and `suggest()`); the
/// grant phase is the single sequential budget grant; the evaluate phase
/// covers the testbed queries; the observe phase covers the `observe`
/// model fits.
///
/// The sharded round interleaves evaluation and observation per query
/// (shard *k* fits while shard *k+1* still evaluates), so two views of its
/// two interleaved phases are kept: `evaluate_ms`/`observe_ms` record the
/// **critical path** — the maximum per-shard span per round, an honest
/// estimate of the wall clock the phase contributes — while
/// `evaluate_cpu_ms`/`observe_cpu_ms` record the **sum across shard
/// workers**, the total CPU time spent in the phase (which can exceed the
/// wall clock whenever shards overlap). On the unsharded path the two
/// views are identical by construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Milliseconds in acceleration waves + candidate scoring + suggest.
    pub suggest_ms: f64,
    /// Milliseconds in the sequential budget grant.
    pub grant_ms: f64,
    /// Critical-path milliseconds evaluating granted queries on the
    /// testbed (max across shard workers per round).
    pub evaluate_ms: f64,
    /// Critical-path milliseconds observing the measurements into the
    /// online models (max across shard workers per round).
    pub observe_ms: f64,
    /// Total CPU milliseconds evaluating granted queries, summed across
    /// shard workers.
    pub evaluate_cpu_ms: f64,
    /// Total CPU milliseconds observing measurements, summed across shard
    /// workers.
    pub observe_cpu_ms: f64,
    /// Rounds folded into the accumulators.
    pub rounds: usize,
}

impl PhaseBreakdown {
    /// Total critical-path milliseconds across the four phases.
    pub fn total_ms(&self) -> f64 {
        self.suggest_ms + self.grant_ms + self.evaluate_ms + self.observe_ms
    }
}

/// Runs N slices' online loops concurrently against a shared environment.
///
/// Each round, every unfinished session contributes its suggested
/// configuration; the batch is granted against the environment's resource
/// budget and evaluated by the [`QueryScheduler`] over scoped worker
/// threads; and the measurements are fed back in admission order. Results
/// on an uncontended environment are bit-for-bit identical to running
/// every slice sequentially with `OnlineLearner::run` on the same seeds,
/// for every scheduler thread count.
///
/// [`Orchestrator::run`] drives a fixed fleet to completion;
/// [`Orchestrator::begin`] opens a steppable [`FleetRun`] that supports
/// admission and retirement between rounds.
pub struct Orchestrator<E: Environment> {
    env: E,
    scheduler: QueryScheduler,
    batch_sim: bool,
    shards: usize,
}

impl<P: ContentionPolicy> Orchestrator<atlas_netsim::SharedTestbed<P>> {
    /// Creates an orchestrator over a [`atlas_netsim::SharedTestbed`],
    /// adopting the testbed's pinned evaluation thread count and fleet
    /// shard count (if any) — so
    /// `Orchestrator::over_testbed(SharedTestbed::new(net).with_threads(8).with_shards(4))`
    /// actually evaluates with 8 workers over 4 session shards.
    pub fn over_testbed(testbed: atlas_netsim::SharedTestbed<P>) -> Self {
        let threads = testbed.threads();
        let shards = testbed.shards();
        let mut orchestrator = Self::new(testbed);
        if let Some(t) = threads {
            orchestrator = orchestrator.with_threads(t);
        }
        if let Some(s) = shards {
            orchestrator = orchestrator.with_shards(s);
        }
        orchestrator
    }
}

impl<E: Environment> Orchestrator<E> {
    /// Creates an orchestrator over a shared environment (typically an
    /// `atlas_netsim::SharedTestbed` — see [`Orchestrator::over_testbed`],
    /// which also adopts the testbed's thread pin).
    pub fn new(env: E) -> Self {
        Self {
            env,
            scheduler: QueryScheduler::new(),
            batch_sim: true,
            shards: 1,
        }
    }

    /// Pins the scheduler's worker-thread count (performance knob only).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.scheduler = self.scheduler.with_threads(threads);
        self
    }

    /// Partitions fleet sessions across `shards` fixed worker shards (at
    /// least 1; 1 — the default — is the unsharded round loop). Each shard
    /// runs its sessions' model updates, offline-acceleration waves and
    /// `suggest()` on its own scoped thread, and evaluates/observes its
    /// own granted queries pipeline-parallel with the other shards. A
    /// performance knob only: fixed hash-free assignment at admission and
    /// the ordered merge of per-shard batches (see [`ShardPlan`]) keep
    /// every run bit-for-bit identical across shard counts.
    ///
    /// When sharded, the cross-slice simulator batching of
    /// [`Orchestrator::with_sim_batching`] is superseded: each shard
    /// drains its sessions' acceleration loops locally (inline in
    /// `suggest`), which consumes the per-session RNG in exactly the same
    /// order — batching waves across shards would serialise the very work
    /// sharding distributes.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Enables or disables cross-slice batching of the offline-acceleration
    /// simulator queries (on by default; superseded when
    /// [`Orchestrator::with_shards`] installs more than one shard). A
    /// performance knob only: both settings produce bit-identical fleets —
    /// the batched path drives each session's
    /// `accel_suggest`/`accel_observe` split, which consumes the
    /// per-session RNG in exactly the monolithic order.
    pub fn with_sim_batching(mut self, enabled: bool) -> Self {
        self.batch_sim = enabled;
        self
    }

    /// The configured fleet shard count (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shared query scheduler.
    pub fn scheduler(&self) -> &QueryScheduler {
        &self.scheduler
    }

    /// The shared environment.
    pub fn env(&self) -> &E {
        &self.env
    }

    /// Opens a steppable fleet run with the [`AcceptAll`] admission policy
    /// (use [`FleetRun::with_admission`] to install another).
    pub fn begin(&self) -> FleetRun<'_, E> {
        FleetRun {
            env: &self.env,
            scheduler: &self.scheduler,
            batch_sim: self.batch_sim,
            plan: ShardPlan::new(self.shards),
            admission: Box::new(AcceptAll),
            active: Vec::new(),
            finished: Vec::new(),
            seen_names: Vec::new(),
            completed_names: Vec::new(),
            admitted_total: 0,
            rounds: 0,
            rejected_admissions: 0,
            requested_usage_sum: 0.0,
            granted_usage_sum: 0.0,
            total_queries: 0,
            events: RoundEvents::default(),
            phases: PhaseBreakdown::default(),
            cache_origin: atlas_netsim::sim_cache_stats(),
        }
    }

    /// Drives every slice's online loop to completion and reduces the
    /// outcomes to a [`FleetReport`] — sugar for admitting the whole fleet
    /// into a [`FleetRun`] and stepping until drained.
    ///
    /// # Panics
    ///
    /// Panics if admission validation rejects a spec — zero online
    /// iterations (such a session would never suggest anything),
    /// duplicate name, zero/NaN resource demand. Use
    /// [`Orchestrator::begin`] and [`FleetRun::admit`] to handle
    /// [`AdmissionError`]s gracefully.
    pub fn run(&self, slices: Vec<SliceSpec>) -> FleetReport {
        let mut fleet = self.begin();
        for spec in slices {
            let name = spec.name.clone();
            if let Err(e) = fleet.admit(spec) {
                panic!("slice {name:?} was not admitted: {e}");
            }
        }
        while fleet.step().is_some() {}
        fleet.finish()
    }
}

/// Elapsed milliseconds between two instants (phase-timing helper).
fn ms_between(start: Instant, end: Instant) -> f64 {
    end.duration_since(start).as_secs_f64() * 1e3
}

/// One admitted, still-running slice.
struct ActiveSlice {
    /// Admission order (fixes the final report order).
    index: usize,
    name: String,
    demand: SliceConfig,
    reference: Option<(f64, f64)>,
    session: SliceSession,
    admitted_round: usize,
    /// The worker shard owning this slice's session, fixed at admission
    /// ([`ShardPlan::assign`] on the admission index) for the slice's
    /// whole lifetime.
    shard: usize,
}

/// Names buffered between rounds for the next [`RoundReport`].
#[derive(Default)]
struct RoundEvents {
    admitted: Vec<String>,
    rejected: Vec<String>,
    retired: Vec<String>,
}

/// A steppable fleet run: the round-driven event loop behind
/// [`Orchestrator::run`], opened with [`Orchestrator::begin`].
///
/// Between rounds, slices can be [`FleetRun::admit`]ted (validated, then
/// decided by the installed [`AdmissionPolicy`] against the budget
/// occupancy) and [`FleetRun::retire`]d (finalising whatever history they
/// accumulated). [`FleetRun::step`] executes one round — the batched
/// offline-acceleration waves, the granted real-network queries, the
/// observe transitions — and returns an incremental [`RoundReport`];
/// [`FleetRun::finish`] folds everything into the final [`FleetReport`].
///
/// Every mutation is deterministic and happens outside the evaluation
/// fan-out, so a fleet run — churn, contention and all — is bit-for-bit
/// identical for every scheduler thread count.
pub struct FleetRun<'a, E: Environment> {
    env: &'a E,
    scheduler: &'a QueryScheduler,
    batch_sim: bool,
    plan: ShardPlan,
    admission: Box<dyn AdmissionPolicy + 'a>,
    active: Vec<ActiveSlice>,
    finished: Vec<(usize, SliceReport)>,
    /// Every name ever admitted (drives duplicate rejection).
    seen_names: Vec<String>,
    /// Names that completed their iteration budget naturally (drives the
    /// [`RetireError::AlreadyCompleted`] distinction in [`FleetRun::retire`]).
    completed_names: Vec<String>,
    admitted_total: usize,
    rounds: usize,
    rejected_admissions: usize,
    requested_usage_sum: f64,
    granted_usage_sum: f64,
    total_queries: usize,
    events: RoundEvents,
    phases: PhaseBreakdown,
    /// Process-wide simulation-cache counters at [`Orchestrator::begin`],
    /// so [`FleetRun::sim_cache_stats`] can report this run's share.
    cache_origin: SimCacheStats,
}

impl<'a, E: Environment> FleetRun<'a, E> {
    /// Installs an admission policy (replacing [`AcceptAll`]). Call before
    /// the first [`FleetRun::admit`].
    pub fn with_admission(mut self, policy: Box<dyn AdmissionPolicy + 'a>) -> Self {
        self.admission = policy;
        self
    }

    /// Admits a slice into the fleet: the spec is validated (unique name,
    /// nonzero iterations, usable resource demand), then the admission
    /// policy decides against the post-admission budget occupancy. On
    /// success the slice's session starts contributing from the next
    /// [`FleetRun::step`]. Policy rejections are counted into the final
    /// report's `rejected_admissions`.
    pub fn admit(&mut self, spec: SliceSpec) -> Result<(), AdmissionError> {
        validate_spec(&spec)?;
        if self.seen_names.contains(&spec.name) {
            return Err(AdmissionError::DuplicateName(spec.name));
        }
        let occupancy = self.occupancy_with(Some(&spec.demand));
        if !self.admission.admit(&spec, &occupancy) {
            self.rejected_admissions += 1;
            self.events.rejected.push(spec.name.clone());
            return Err(AdmissionError::Rejected {
                name: spec.name,
                occupancy: occupancy.max(),
            });
        }
        let session = spec.learner.begin(&spec.scenario, spec.seed);
        self.seen_names.push(spec.name.clone());
        self.events.admitted.push(spec.name.clone());
        self.active.push(ActiveSlice {
            index: self.admitted_total,
            name: spec.name,
            demand: spec.demand,
            reference: spec.reference,
            session,
            admitted_round: self.rounds,
            shard: self.plan.assign(self.admitted_total),
        });
        self.admitted_total += 1;
        Ok(())
    }

    /// Retires an active slice between rounds, finalising whatever online
    /// history it accumulated into a [`SliceReport`] (with
    /// `span.retired_early = true`). Returns `None` when the slice never
    /// observed a round — such a slice leaves no report (an empty history
    /// has no best outcome). Slices that already completed their iteration
    /// budget are no longer active and cannot be retired: they yield
    /// [`RetireError::AlreadyCompleted`] (a benign race for churn drivers
    /// whose tenancy expired in the round the session drained), distinct
    /// from [`RetireError::UnknownSlice`] for names that were never
    /// admitted or already retired early.
    pub fn retire(&mut self, name: &str) -> Result<Option<SliceReport>, RetireError> {
        let Some(position) = self.active.iter().position(|s| s.name == name) else {
            return Err(if self.completed_names.iter().any(|n| n == name) {
                RetireError::AlreadyCompleted(name.to_string())
            } else {
                RetireError::UnknownSlice(name.to_string())
            });
        };
        let slice = self.active.remove(position);
        self.events.retired.push(slice.name.clone());
        Ok(self.finalize(slice, true))
    }

    /// Executes one fleet round: drains the active sessions'
    /// offline-acceleration simulator queries, grants and evaluates their
    /// real-network queries, feeds the measurements back, finalises
    /// naturally completed sessions, and returns the round's incremental
    /// report. Returns `None` without executing anything when no slice is
    /// active (more slices can still be admitted afterwards).
    ///
    /// With more than one shard installed
    /// ([`Orchestrator::with_shards`]), the per-session work fans out over
    /// the fixed shard partition; the result is bit-for-bit identical to
    /// the unsharded round for every shard and thread count.
    pub fn step(&mut self) -> Option<RoundReport> {
        if self.active.is_empty() {
            return None;
        }
        let outcomes = if self.plan.is_sharded() {
            self.sharded_round()
        } else {
            self.unsharded_round()
        };
        self.rounds += 1;

        // ---- fold the round's statistics on this thread, in global slot
        // order: f64 accumulation order must not depend on the shard or
        // thread count.
        let queries_run = outcomes.len();
        let mut requested_usage = 0.0;
        let mut granted_usage = 0.0;
        let mut sla_violations = 0;
        for (_, query, sample) in &outcomes {
            requested_usage += query.config.with_connectivity_floor().resource_usage();
            granted_usage += sample.usage;
            if !query.sla.satisfied_by(sample.qoe) {
                sla_violations += 1;
            }
        }
        self.total_queries += queries_run;
        self.requested_usage_sum += requested_usage;
        self.granted_usage_sum += granted_usage;

        // ---- finalise sessions that just completed their budget.
        let mut completed = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].session.is_done() {
                let slice = self.active.remove(i);
                completed.push(slice.name.clone());
                self.completed_names.push(slice.name.clone());
                self.finalize(slice, false);
            } else {
                i += 1;
            }
        }

        let events = std::mem::take(&mut self.events);
        Some(RoundReport {
            round: self.rounds,
            queries: queries_run,
            admitted: events.admitted,
            rejected: events.rejected,
            retired: events.retired,
            completed,
            // A round where every session declines to suggest must report
            // finite (zero) means, not NaN — this is a real guard, not a
            // debug assert: NaN here would silently poison the fold into
            // `FleetReport`.
            mean_requested_usage: mean_per_query(requested_usage, queries_run),
            mean_granted_usage: mean_per_query(granted_usage, queries_run),
            sla_violations,
            occupancy: self.occupancy().max(),
        })
    }

    /// The single-threaded round path: batch the fleet's
    /// offline-acceleration waves over the shared scheduler, collect every
    /// session's suggestion, evaluate the granted batch over the
    /// scheduler's thread pool and feed the measurements back in slot
    /// order.
    fn unsharded_round(&mut self) -> Vec<(usize, SliceQuery, QoeSample)> {
        let round_start = Instant::now();
        // ---- offline acceleration: batch the simulator queries of all
        // sessions, wave by wave, over the shared scheduler. Sessions with
        // fewer remaining updates simply drop out of later waves.
        if self.batch_sim {
            loop {
                let mut slots = Vec::new();
                let mut jobs = Vec::new();
                for (i, slice) in self.active.iter_mut().enumerate() {
                    if let Some(query) = slice.session.accel_suggest() {
                        slots.push(i);
                        jobs.push((*slice.session.sim_env(), query));
                    }
                }
                if jobs.is_empty() {
                    break;
                }
                let samples = self.scheduler.evaluate_each(&jobs);
                for (i, sample) in slots.into_iter().zip(samples) {
                    self.active[i].session.accel_observe(sample.qoe);
                }
            }
        }

        // ---- real-network queries: collect, grant, evaluate, observe.
        // (Without sim batching, `suggest` runs each session's remaining
        // acceleration loop inline — the monolithic PR 3 path.)
        let round: Vec<(usize, SliceQuery)> = self
            .active
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slice)| slice.session.suggest().map(|q| (i, q)))
            .collect();
        let queries: Vec<SliceQuery> = round.iter().map(|(_, q)| *q).collect();
        let suggested = Instant::now();
        let jobs = QueryScheduler::grant(self.env, &queries);
        let granted = Instant::now();
        let samples = self.scheduler.evaluate_granted(self.env, &jobs);
        let evaluated = Instant::now();
        let outcomes: Vec<_> = round
            .into_iter()
            .zip(samples)
            .map(|((slot, query), sample)| {
                self.active[slot].session.observe(sample);
                (slot, query, sample)
            })
            .collect();
        self.phases.suggest_ms += ms_between(round_start, suggested);
        self.phases.grant_ms += ms_between(suggested, granted);
        // One worker: the critical path and the CPU sum are the same span.
        let eval_ms = ms_between(granted, evaluated);
        let obs_ms = ms_between(evaluated, Instant::now());
        self.phases.evaluate_ms += eval_ms;
        self.phases.evaluate_cpu_ms += eval_ms;
        self.phases.observe_ms += obs_ms;
        self.phases.observe_cpu_ms += obs_ms;
        self.phases.rounds += 1;
        outcomes
    }

    /// The sharded round path: each shard drains its own sessions'
    /// acceleration loops and suggestions on its own scoped thread, the
    /// per-shard batches are merged back into global slot order for the
    /// single shared grant, and each shard then evaluates **and observes**
    /// its own granted queries pipeline-parallel — shard *k* observes/fits
    /// while shard *k+1* still evaluates, with no barrier between a
    /// query's evaluation and its model fit. Bit-identical to
    /// [`FleetRun::unsharded_round`]: see [`ShardPlan`] for the
    /// determinism contract.
    fn sharded_round(&mut self) -> Vec<(usize, SliceQuery, QoeSample)> {
        let round_start = Instant::now();
        // Fan out only when every shard can hold a worthwhile chunk of
        // sessions; tiny fleets run the same code inline.
        let parallel = self.active.len() >= self.plan.shards() * EVAL_PAR_MIN_CHUNK;

        // ---- fan-out 1: per-shard acceleration waves + suggestions.
        // `suggest` drains each session's remaining acceleration loop
        // inline, shard-locally — cross-shard sim batching would serialise
        // exactly the work sharding distributes (see
        // `Orchestrator::with_shards`).
        let suggested = par_map_tasks(self.shard_buckets(), parallel, |_, bucket| {
            bucket
                .into_iter()
                .filter_map(|(slot, slice): (usize, &mut ActiveSlice)| {
                    slice.session.suggest().map(|q| (slot, q))
                })
                .collect::<Vec<_>>()
        });
        let round = ShardPlan::merge_round(suggested);
        let suggest_done = Instant::now();

        // ---- the single shared grant, sequential on this thread: the
        // merged batch is in the exact order the unsharded path produces,
        // so every contention policy grants identically.
        let requested: Vec<SliceConfig> = round
            .iter()
            .map(|(_, q)| q.config.with_connectivity_floor())
            .collect();
        let granted = self.env.grant_round(&requested);
        let grant_done = Instant::now();

        // ---- fan-out 2: route each granted query back to its owning
        // shard and let the shard evaluate + observe it, interleaved per
        // query.
        let mut jobs: Vec<Vec<(usize, SliceQuery, SliceConfig)>> =
            (0..self.plan.shards()).map(|_| Vec::new()).collect();
        let slot_shard: Vec<usize> = self.active.iter().map(|s| s.shard).collect();
        for ((slot, query), config) in round.into_iter().zip(granted) {
            jobs[slot_shard[slot]].push((slot, query, config));
        }
        let env = self.env;
        let tasks: Vec<_> = jobs.into_iter().zip(self.shard_buckets()).collect();
        let shard_results = par_map_tasks(tasks, parallel, |_, (jobs, mut bucket)| {
            let mut out = Vec::with_capacity(jobs.len());
            // Per-shard evaluate/observe spans, summed per query so the
            // interleaved pipeline still attributes testbed time and
            // model-fit time to the right phase bucket.
            let (mut eval_ms, mut obs_ms) = (0.0, 0.0);
            // Jobs and the bucket are both in slot order, so a cursor
            // suffices to line each job up with its session.
            let mut cursor = 0;
            for (slot, query, config) in jobs {
                while bucket[cursor].0 != slot {
                    cursor += 1;
                }
                let eval_start = Instant::now();
                let sample = env.query(&config, &query.scenario, &query.sla);
                let observe_start = Instant::now();
                bucket[cursor].1.session.observe(sample);
                eval_ms += ms_between(eval_start, observe_start);
                obs_ms += ms_between(observe_start, Instant::now());
                out.push((slot, (query, sample)));
            }
            (out, eval_ms, obs_ms)
        });
        // Fold the per-shard phase spans in shard order (deterministic
        // f64 accumulation): the max across shards is the round's critical
        // path, the sum is the round's CPU time. Summing the maxima into
        // the wall-clock bucket is what made the old 8-shard bench report
        // 1452 ms/round of "evaluate" against a 191 ms unsharded round.
        let mut outcomes = Vec::with_capacity(shard_results.len());
        let (mut round_eval_max, mut round_obs_max) = (0.0f64, 0.0f64);
        for (out, eval_ms, obs_ms) in shard_results {
            round_eval_max = round_eval_max.max(eval_ms);
            round_obs_max = round_obs_max.max(obs_ms);
            self.phases.evaluate_cpu_ms += eval_ms;
            self.phases.observe_cpu_ms += obs_ms;
            outcomes.push(out);
        }
        self.phases.evaluate_ms += round_eval_max;
        self.phases.observe_ms += round_obs_max;
        let merged: Vec<_> = ShardPlan::merge_round(outcomes)
            .into_iter()
            .map(|(slot, (query, sample))| (slot, query, sample))
            .collect();
        self.phases.suggest_ms += ms_between(round_start, suggest_done);
        self.phases.grant_ms += ms_between(suggest_done, grant_done);
        self.phases.rounds += 1;
        merged
    }

    /// Partitions the active slices into per-shard buckets of
    /// `(slot, session)` pairs; slots stay in ascending order within each
    /// bucket.
    fn shard_buckets(&mut self) -> Vec<Vec<(usize, &mut ActiveSlice)>> {
        let mut buckets: Vec<Vec<(usize, &mut ActiveSlice)>> =
            (0..self.plan.shards()).map(|_| Vec::new()).collect();
        for (slot, slice) in self.active.iter_mut().enumerate() {
            buckets[slice.shard].push((slot, slice));
        }
        buckets
    }

    /// Finalises the run: still-active slices are folded in with
    /// `retired_early = true` (those that never observed a round leave no
    /// report), and everything reduces to the [`FleetReport`].
    pub fn finish(mut self) -> FleetReport {
        let leftovers = std::mem::take(&mut self.active);
        for slice in leftovers {
            self.finalize(slice, true);
        }
        self.finished.sort_by_key(|(index, _)| *index);
        let slices: Vec<SliceReport> = self.finished.drain(..).map(|(_, report)| report).collect();
        let mean_grant_gap = if self.total_queries > 0 {
            (self.requested_usage_sum - self.granted_usage_sum) / self.total_queries as f64
        } else {
            0.0
        };
        FleetReport::build(
            slices,
            self.rounds,
            self.rejected_admissions,
            mean_grant_gap,
        )
    }

    /// Number of rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Cumulative per-phase wall-clock of the rounds executed so far —
    /// suggest (model-side work) vs grant vs evaluate+observe. Pure
    /// observability: the timings never feed back into scheduling, so
    /// results stay bit-identical whether or not anyone reads them. The
    /// orchestrator bench divides these by [`PhaseBreakdown::rounds`] for
    /// its per-round phase breakdown.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        self.phases
    }

    /// Process-wide simulation-cache activity since this run began. The
    /// counters are shared by every simulator in the process, so under a
    /// parallel test runner the delta may include other runs' traffic; a
    /// single-workload process (the orchestrator bench) reads exact
    /// per-run figures. Pure observability — cache hits never change
    /// simulation results, only how fast they are produced.
    pub fn sim_cache_stats(&self) -> SimCacheStats {
        atlas_netsim::sim_cache_stats().delta_since(&self.cache_origin)
    }

    /// Number of currently active (admitted, unfinished) slices.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Names of the currently active slices, in admission order.
    pub fn active_names(&self) -> Vec<&str> {
        self.active.iter().map(|s| s.name.as_str()).collect()
    }

    /// Admission attempts the policy has declined so far.
    pub fn rejected_admissions(&self) -> usize {
        self.rejected_admissions
    }

    /// The fleet's fixed worker-shard count (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    /// The worker shard owning an **active** slice's session (`None` for
    /// unknown or no-longer-active slices). Fixed at admission —
    /// [`ShardPlan::assign`] on the slice's admission index — so it never
    /// changes while the slice lives.
    pub fn shard_of(&self, name: &str) -> Option<usize> {
        self.active.iter().find(|s| s.name == name).map(|s| s.shard)
    }

    /// Observations currently retained by an active slice's online
    /// residual model (`None` for unknown or no-longer-active slices).
    /// Long-horizon drivers poll this between rounds to confirm a
    /// window-bounded slice's model footprint plateaued at its capacity.
    pub fn residual_observations(&self, name: &str) -> Option<usize> {
        self.active
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.session.residual_observations())
    }

    /// Bytes resident in an active slice's online-model posterior factors
    /// (`None` for unknown or no-longer-active slices) — the live view of
    /// the figure [`SliceReport::surrogate_bytes`] freezes at departure.
    pub fn surrogate_bytes(&self, name: &str) -> Option<usize> {
        self.active
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.session.surrogate_bytes())
    }

    /// Current budget occupancy of the active fleet (all zeros for
    /// environments without a finite budget).
    pub fn occupancy(&self) -> Occupancy {
        self.occupancy_with(None)
    }

    fn occupancy_with(&self, candidate: Option<&SliceConfig>) -> Occupancy {
        match self.env.resource_budget() {
            None => Occupancy::default(),
            Some(budget) => {
                let mut demands: Vec<SliceConfig> = self.active.iter().map(|s| s.demand).collect();
                if let Some(demand) = candidate {
                    demands.push(*demand);
                }
                Occupancy {
                    dims: budget.occupancy(&demands),
                }
            }
        }
    }

    /// Reduces a departing slice to its report (if it ever observed a
    /// round) and records it under its admission index.
    fn finalize(&mut self, slice: ActiveSlice, retired_early: bool) -> Option<SliceReport> {
        if slice.session.history().is_empty() {
            return None;
        }
        let sla = *slice.session.sla();
        let span = LifecycleSpan {
            admitted_round: slice.admitted_round,
            final_round: self.rounds,
            retired_early,
        };
        // Captured before `finish()` consumes the session: the departing
        // model's resident factor footprint, frozen into the report.
        let surrogate_bytes = slice.session.surrogate_bytes();
        let report = SliceReport::build(
            slice.name,
            &sla,
            slice.session.finish(),
            slice.reference,
            span,
            surrogate_bytes,
        );
        self.finished.push((slice.index, report.clone()));
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::env::Sla;
    use atlas::{Scenario, Simulator, Stage3Config};
    use atlas_netsim::{RealNetwork, ResourceBudget, SharedTestbed};

    fn quick_config(iterations: usize) -> Stage3Config {
        Stage3Config {
            iterations,
            offline_updates: 1,
            candidates: 40,
            duration_s: 2.0,
            ..Stage3Config::default()
        }
    }

    fn spec(i: u64, iterations: usize) -> SliceSpec {
        let learner = OnlineLearner::without_offline(
            quick_config(iterations),
            Sla::paper_default(),
            Simulator::with_original_params(),
        );
        SliceSpec::new(
            format!("slice-{i}"),
            learner,
            Scenario::default_with_seed(i).with_duration(2.0),
            500 + i,
        )
    }

    #[test]
    fn mixed_iteration_budgets_drain_cleanly() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let report = Orchestrator::new(testbed).with_threads(2).run(vec![
            spec(0, 1),
            spec(1, 3),
            spec(2, 2),
        ]);
        assert_eq!(report.rounds, 3, "rounds follow the longest slice");
        assert_eq!(report.total_queries, 6);
        let iters: Vec<usize> = report.slices.iter().map(SliceReport::iterations).collect();
        assert_eq!(iters, vec![1, 3, 2]);
        // Lifecycle spans record natural completion.
        assert!(report.slices.iter().all(|s| !s.span.retired_early));
        assert_eq!(report.slices[1].span.final_round, 3);
        assert_eq!(report.slices[0].span.final_round, 1);
        assert_eq!(report.rejected_admissions, 0);
        assert_eq!(report.mean_grant_gap, 0.0);
    }

    #[test]
    fn reference_pinning_flows_into_the_report() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let report = Orchestrator::new(testbed).run(vec![spec(3, 1).with_reference(0.25, 0.9)]);
        assert_eq!(report.slices[0].reference, (0.25, 0.9));
        assert!(report.slice("slice-3").is_some());
    }

    #[test]
    fn over_testbed_adopts_the_testbed_thread_pin() {
        let pinned = SharedTestbed::new(RealNetwork::prototype()).with_threads(3);
        let orchestrator = Orchestrator::over_testbed(pinned);
        assert_eq!(orchestrator.scheduler().threads(), Some(3));
        // And the results are the usual bit-identical ones.
        let report = orchestrator.run(vec![spec(4, 2)]);
        let unpinned = Orchestrator::over_testbed(SharedTestbed::new(RealNetwork::prototype()));
        assert_eq!(unpinned.scheduler().threads(), None);
        assert_eq!(unpinned.run(vec![spec(4, 2)]), report);
    }

    #[test]
    #[should_panic(expected = "zero online iterations")]
    fn zero_iteration_slice_is_rejected_up_front() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let _ = Orchestrator::new(testbed).run(vec![spec(5, 0)]);
    }

    #[test]
    #[should_panic(expected = "already admitted")]
    fn duplicate_slice_names_panic_in_run() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let _ = Orchestrator::new(testbed).run(vec![spec(6, 1), spec(6, 1)]);
    }

    #[test]
    fn empty_fleet_is_a_clean_noop() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let report = Orchestrator::new(testbed).run(Vec::new());
        assert_eq!(report.rounds, 0);
        assert_eq!(report.total_queries, 0);
        assert!(report.slices.is_empty());
        assert_eq!(report.sla_violation_rate, 0.0);
    }

    #[test]
    fn admission_validation_returns_typed_errors() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let orchestrator = Orchestrator::new(testbed);
        let mut fleet = orchestrator.begin();
        fleet.admit(spec(7, 1)).expect("valid slice admits");
        // Duplicate id.
        assert_eq!(
            fleet.admit(spec(7, 1)),
            Err(AdmissionError::DuplicateName("slice-7".into()))
        );
        // Zero iterations.
        assert_eq!(
            fleet.admit(spec(8, 0)),
            Err(AdmissionError::ZeroIterations("slice-8".into()))
        );
        // NaN demand.
        let mut nan = spec(9, 1);
        nan.demand.bandwidth_ul = f64::NAN;
        assert!(matches!(
            fleet.admit(nan),
            Err(AdmissionError::InvalidDemand { .. })
        ));
        // Rejections by *validation* do not count as policy rejections.
        assert_eq!(fleet.rejected_admissions(), 0);
        assert_eq!(fleet.active_count(), 1);
        assert_eq!(fleet.active_names(), vec!["slice-7"]);
    }

    #[test]
    fn retire_mid_flight_yields_a_partial_report() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let orchestrator = Orchestrator::new(testbed);
        let mut fleet = orchestrator.begin();
        fleet.admit(spec(10, 5)).unwrap();
        fleet.admit(spec(11, 5)).unwrap();
        // Retiring before any round leaves no report.
        fleet.admit(spec(12, 5)).unwrap();
        assert_eq!(fleet.retire("slice-12"), Ok(None));
        assert_eq!(
            fleet.retire("slice-12"),
            Err(RetireError::UnknownSlice("slice-12".into()))
        );
        // Two rounds, then retire one slice mid-flight.
        let r1 = fleet.step().expect("round 1 runs");
        assert_eq!(r1.round, 1);
        assert_eq!(r1.queries, 2);
        assert_eq!(r1.admitted.len(), 3);
        assert_eq!(r1.retired, vec!["slice-12".to_string()]);
        let _r2 = fleet.step().expect("round 2 runs");
        let partial = fleet
            .retire("slice-10")
            .expect("active slice retires")
            .expect("two rounds of history");
        assert_eq!(partial.iterations(), 2);
        assert!(partial.span.retired_early);
        assert_eq!(partial.span.final_round, 2);
        assert_eq!(fleet.active_count(), 1);
        // The survivor drains naturally; the report holds both lifecycles.
        while fleet.step().is_some() {}
        let report = fleet.finish();
        assert_eq!(report.slices.len(), 2);
        assert_eq!(report.rounds, 5);
        assert_eq!(report.slice("slice-10").unwrap().iterations(), 2);
        assert_eq!(report.slice("slice-11").unwrap().iterations(), 5);
        assert!(!report.slice("slice-11").unwrap().span.retired_early);
        assert!(report.slice("slice-12").is_none());
        assert_eq!(report.total_queries, 7);
    }

    #[test]
    fn sharded_run_is_bit_identical_to_unsharded() {
        let slices = |n: u64| (0..n).map(|i| spec(i, 2)).collect::<Vec<_>>();
        let reference =
            Orchestrator::new(SharedTestbed::new(RealNetwork::prototype())).run(slices(6));
        // More shards than slices, non-dividing counts — all bit-identical.
        for shards in [2, 3, 8] {
            let testbed = SharedTestbed::new(RealNetwork::prototype());
            let report = Orchestrator::new(testbed)
                .with_shards(shards)
                .run(slices(6));
            assert_eq!(report, reference, "shards = {shards}");
        }
    }

    #[test]
    fn over_testbed_adopts_the_testbed_shard_pin() {
        let pinned = SharedTestbed::new(RealNetwork::prototype())
            .with_threads(2)
            .with_shards(4);
        assert_eq!(pinned.shards(), Some(4));
        let orchestrator = Orchestrator::over_testbed(pinned);
        assert_eq!(orchestrator.shards(), 4);
        assert_eq!(orchestrator.scheduler().threads(), Some(2));
        // Unpinned testbeds leave the default; with_shards clamps to >= 1.
        let unpinned = Orchestrator::over_testbed(SharedTestbed::new(RealNetwork::prototype()));
        assert_eq!(unpinned.shards(), 1);
        assert_eq!(unpinned.with_shards(0).shards(), 1);
    }

    #[test]
    fn shard_assignment_is_fixed_at_admission() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let orchestrator = Orchestrator::new(testbed).with_shards(3);
        let mut fleet = orchestrator.begin();
        assert_eq!(fleet.shards(), 3);
        for i in 0..5 {
            fleet.admit(spec(30 + i, 2)).unwrap();
        }
        // Round-robin on the admission index.
        assert_eq!(fleet.shard_of("slice-30"), Some(0));
        assert_eq!(fleet.shard_of("slice-31"), Some(1));
        assert_eq!(fleet.shard_of("slice-32"), Some(2));
        assert_eq!(fleet.shard_of("slice-33"), Some(0));
        assert_eq!(fleet.shard_of("slice-34"), Some(1));
        assert_eq!(fleet.shard_of("never-admitted"), None);
        // Survivors never migrate when a neighbour retires, and a later
        // admission takes the next admission index, not the freed slot.
        fleet.retire("slice-31").unwrap();
        assert_eq!(fleet.shard_of("slice-34"), Some(1));
        fleet.admit(spec(35, 2)).unwrap();
        assert_eq!(fleet.shard_of("slice-35"), Some(2));
        while fleet.step().is_some() {}
        assert_eq!(fleet.shard_of("slice-35"), None, "completed slices left");
    }

    #[test]
    fn retire_after_natural_completion_is_distinguished() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let orchestrator = Orchestrator::new(testbed);
        let mut fleet = orchestrator.begin();
        fleet.admit(spec(40, 1)).unwrap();
        let round = fleet.step().expect("one round");
        assert_eq!(round.completed, vec!["slice-40".to_string()]);
        // The doc'd contract: completed ≠ unknown.
        assert_eq!(
            fleet.retire("slice-40"),
            Err(RetireError::AlreadyCompleted("slice-40".into()))
        );
        assert_eq!(
            fleet.retire("ghost"),
            Err(RetireError::UnknownSlice("ghost".into()))
        );
        let report = fleet.finish();
        assert_eq!(report.slices.len(), 1);
        assert!(!report.slices[0].span.retired_early);
    }

    #[test]
    fn elastic_gp_grid_threads_through_slice_specs() {
        let slices = |grid: Option<GridMaintenance>| {
            (0..3u64)
                .map(|i| {
                    let s = spec(50 + i, 3);
                    match grid {
                        Some(g) => s.with_gp_grid(g),
                        None => s,
                    }
                })
                .collect::<Vec<_>>()
        };
        let run =
            |fleet| Orchestrator::new(SharedTestbed::new(RealNetwork::prototype())).run(fleet);
        let reference = run(slices(None));
        // Explicit Full and a grid-wide hot set are both bit-identical to
        // the default fleet.
        assert_eq!(run(slices(Some(GridMaintenance::Full))), reference);
        assert_eq!(
            run(slices(Some(GridMaintenance::Elastic {
                hot_set: 35,
                refresh_every: 4,
            }))),
            reference
        );
        // A genuinely elastic fleet drains the same horizon and stays
        // deterministic across shard counts.
        let elastic = GridMaintenance::Elastic {
            hot_set: 6,
            refresh_every: 4,
        };
        let capped = run(slices(Some(elastic)));
        assert_eq!(capped.rounds, reference.rounds);
        assert_eq!(capped.total_queries, reference.total_queries);
        let sharded = Orchestrator::new(SharedTestbed::new(RealNetwork::prototype()))
            .with_shards(2)
            .run(slices(Some(elastic)));
        assert_eq!(sharded, capped);
    }

    #[test]
    fn inducing_gp_basis_threads_through_slice_specs() {
        use atlas::InducingSelection;
        let slices = |basis: Option<SurrogateBasis>| {
            (0..3u64)
                .map(|i| {
                    let s = spec(70 + i, 4);
                    match basis {
                        Some(b) => s.with_gp_basis(b),
                        None => s,
                    }
                })
                .collect::<Vec<_>>()
        };
        let run =
            |fleet| Orchestrator::new(SharedTestbed::new(RealNetwork::prototype())).run(fleet);
        let reference = run(slices(None));
        // Explicit Exact and an Inducing budget the 4-iteration horizon
        // never outgrows are both bit-identical to the default fleet.
        assert_eq!(run(slices(Some(SurrogateBasis::Exact))), reference);
        assert_eq!(
            run(slices(Some(SurrogateBasis::Inducing {
                m: 64,
                selection: InducingSelection::GreedyVariance,
                refresh_every: 8,
            }))),
            reference
        );
        // A genuinely sparse fleet drains the same horizon, freezes its
        // collapsed factor footprint into the report, and stays
        // deterministic across shard counts.
        let sparse = SurrogateBasis::Inducing {
            m: 2,
            selection: InducingSelection::GreedyVariance,
            refresh_every: 8,
        };
        let compressed = run(slices(Some(sparse)));
        assert_eq!(compressed.rounds, reference.rounds);
        assert_eq!(compressed.total_queries, reference.total_queries);
        for s in &compressed.slices {
            assert!(s.surrogate_bytes <= 35 * 2 * (2 * 3 / 2) * 8);
        }
        assert!(compressed.total_surrogate_bytes < reference.total_surrogate_bytes);
        let sharded = Orchestrator::new(SharedTestbed::new(RealNetwork::prototype()))
            .with_shards(2)
            .run(slices(Some(sparse)));
        assert_eq!(sharded, compressed);
    }

    #[test]
    fn phase_breakdown_accumulates_on_both_round_paths() {
        for shards in [1, 3] {
            let testbed = SharedTestbed::new(RealNetwork::prototype());
            let orchestrator = Orchestrator::new(testbed).with_shards(shards);
            let mut fleet = orchestrator.begin();
            assert_eq!(fleet.phase_breakdown(), PhaseBreakdown::default());
            for i in 0..3 {
                fleet.admit(spec(60 + i, 2)).unwrap();
            }
            while fleet.step().is_some() {}
            let phases = fleet.phase_breakdown();
            assert_eq!(phases.rounds, fleet.rounds(), "shards = {shards}");
            assert_eq!(phases.rounds, 2);
            assert!(phases.suggest_ms > 0.0, "shards = {shards}");
            assert!(phases.evaluate_ms > 0.0, "shards = {shards}");
            assert!(phases.grant_ms >= 0.0, "shards = {shards}");
            // The observe bucket is timed on both round paths; model fits
            // always cost *something*, but stay well below evaluation.
            assert!(phases.observe_ms > 0.0, "shards = {shards}");
            assert!(
                phases.total_ms() >= phases.suggest_ms + phases.evaluate_ms + phases.observe_ms
            );
        }
    }

    #[test]
    fn sharded_phase_breakdown_records_critical_path_not_sum() {
        // One slice per shard: every shard does real work each round, so
        // the per-shard CPU sum strictly exceeds the max-across-shards
        // critical path the wall fields now record. Before the fix the
        // wall fields *were* the sum, inflating evaluate_ms ~8x here.
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let orchestrator = Orchestrator::new(testbed).with_shards(8);
        let mut fleet = orchestrator.begin();
        for i in 0..8 {
            fleet.admit(spec(70 + i, 2)).unwrap();
        }
        while fleet.step().is_some() {}
        let phases = fleet.phase_breakdown();
        assert!(phases.evaluate_ms > 0.0);
        assert!(phases.evaluate_cpu_ms > phases.evaluate_ms);
        assert!(phases.evaluate_ms <= phases.evaluate_cpu_ms + 1e-9);
        assert!(phases.observe_cpu_ms >= phases.observe_ms);

        // Unsharded, wall and CPU views are the same measurement.
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let orchestrator = Orchestrator::new(testbed).with_shards(1);
        let mut fleet = orchestrator.begin();
        for i in 0..8 {
            fleet.admit(spec(70 + i, 2)).unwrap();
        }
        while fleet.step().is_some() {}
        let phases = fleet.phase_breakdown();
        assert_eq!(phases.evaluate_ms, phases.evaluate_cpu_ms);
        assert_eq!(phases.observe_ms, phases.observe_cpu_ms);
    }

    #[test]
    fn headroom_admission_rejects_over_budget_slices() {
        use crate::admission::HeadroomThreshold;
        let testbed = SharedTestbed::new(RealNetwork::prototype())
            .with_budget(ResourceBudget::carrier_default());
        let orchestrator = Orchestrator::new(testbed);
        let mut fleet = orchestrator
            .begin()
            .with_admission(Box::new(HeadroomThreshold::no_oversubscription()));
        // default_generous demands 25/25 UL/DL PRBs: two fit a 50-PRB
        // carrier, the third does not.
        fleet.admit(spec(20, 1)).unwrap();
        fleet.admit(spec(21, 1)).unwrap();
        let rejected = fleet.admit(spec(22, 1));
        assert!(matches!(
            rejected,
            Err(AdmissionError::Rejected { occupancy, .. }) if occupancy > 1.0
        ));
        assert_eq!(fleet.rejected_admissions(), 1);
        assert!((fleet.occupancy().max() - 1.0).abs() < 1e-12);
        while fleet.step().is_some() {}
        let report = fleet.finish();
        assert_eq!(report.slices.len(), 2);
        assert_eq!(report.rejected_admissions, 1);
    }
}
