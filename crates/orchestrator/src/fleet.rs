//! The orchestrator proper: round-based co-scheduling of many slice
//! sessions over one shared environment.

use crate::report::{FleetReport, SliceReport};
use crate::scheduler::QueryScheduler;
use atlas::env::Environment;
use atlas::{OnlineLearner, Scenario, SliceQuery};

/// One slice to orchestrate: a configured learner plus the slice's
/// workload scenario and seed.
#[derive(Clone)]
pub struct SliceSpec {
    /// Display/lookup name of the slice.
    pub name: String,
    /// The stage-3 learner (immutable warm-start state; the orchestrator
    /// creates the mutable session).
    pub learner: OnlineLearner,
    /// The slice's workload scenario.
    pub scenario: Scenario,
    /// The slice's online-learning seed. Per-query testbed seeds are
    /// derived from it, so two slices never share an RNG stream.
    pub seed: u64,
    /// Optional `(usage, qoe)` reference policy for regret reporting;
    /// defaults to the slice's own best online outcome.
    pub reference: Option<(f64, f64)>,
}

impl SliceSpec {
    /// Creates a slice spec.
    pub fn new(
        name: impl Into<String>,
        learner: OnlineLearner,
        scenario: Scenario,
        seed: u64,
    ) -> Self {
        Self {
            name: name.into(),
            learner,
            scenario,
            seed,
            reference: None,
        }
    }

    /// Pins the regret reference policy (e.g. an oracle search result).
    pub fn with_reference(mut self, usage: f64, qoe: f64) -> Self {
        self.reference = Some((usage, qoe));
        self
    }
}

/// Runs N slices' online loops concurrently against a shared environment.
///
/// Each round, every unfinished session contributes its suggested
/// configuration; the batch is evaluated by the [`QueryScheduler`] over
/// scoped worker threads; and the measurements are fed back in submission
/// order. Slices may have different iteration budgets — finished sessions
/// simply stop contributing. Results are bit-for-bit identical to running
/// every slice sequentially with `OnlineLearner::run` on the same seeds,
/// for every scheduler thread count.
pub struct Orchestrator<E: Environment> {
    env: E,
    scheduler: QueryScheduler,
}

impl Orchestrator<atlas_netsim::SharedTestbed> {
    /// Creates an orchestrator over a [`atlas_netsim::SharedTestbed`],
    /// adopting the testbed's pinned evaluation thread count (if any) for
    /// the query scheduler — so
    /// `Orchestrator::over_testbed(SharedTestbed::new(net).with_threads(8))`
    /// actually evaluates with 8 workers.
    pub fn over_testbed(testbed: atlas_netsim::SharedTestbed) -> Self {
        let threads = testbed.threads();
        let orchestrator = Self::new(testbed);
        match threads {
            Some(t) => orchestrator.with_threads(t),
            None => orchestrator,
        }
    }
}

impl<E: Environment> Orchestrator<E> {
    /// Creates an orchestrator over a shared environment (typically an
    /// `atlas_netsim::SharedTestbed` — see [`Orchestrator::over_testbed`],
    /// which also adopts the testbed's thread pin).
    pub fn new(env: E) -> Self {
        Self {
            env,
            scheduler: QueryScheduler::new(),
        }
    }

    /// Pins the scheduler's worker-thread count (performance knob only).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.scheduler = self.scheduler.with_threads(threads);
        self
    }

    /// The shared query scheduler.
    pub fn scheduler(&self) -> &QueryScheduler {
        &self.scheduler
    }

    /// The shared environment.
    pub fn env(&self) -> &E {
        &self.env
    }

    /// Drives every slice's online loop to completion and reduces the
    /// outcomes to a [`FleetReport`].
    ///
    /// # Panics
    ///
    /// Panics up front if any slice is configured with zero online
    /// iterations: such a session would never suggest anything and has no
    /// best outcome to report (the same configuration makes the
    /// single-slice `OnlineLearner::run` panic, just deeper in).
    pub fn run(&self, slices: Vec<SliceSpec>) -> FleetReport {
        for spec in &slices {
            assert!(
                spec.learner.config().iterations > 0,
                "slice {:?} is configured with zero online iterations; \
                 orchestrated slices must run at least one",
                spec.name
            );
        }
        let mut sessions: Vec<_> = slices
            .iter()
            .map(|spec| spec.learner.begin(&spec.scenario, spec.seed))
            .collect();
        let mut rounds = 0;
        loop {
            // Collect this round's suggestions from the unfinished slices.
            // `suggest` runs the slice's offline-acceleration loop and
            // candidate scoring, so this is the learning half of the round.
            let round: Vec<(usize, SliceQuery)> = sessions
                .iter_mut()
                .enumerate()
                .filter_map(|(i, session)| session.suggest().map(|q| (i, q)))
                .collect();
            if round.is_empty() {
                break;
            }
            rounds += 1;
            // Fan the independent measurements out over the shared
            // scheduler, then feed them back in submission order.
            let queries: Vec<SliceQuery> = round.iter().map(|(_, q)| *q).collect();
            let samples = self.scheduler.evaluate(&self.env, &queries);
            for ((i, _), sample) in round.iter().zip(samples) {
                sessions[*i].observe(sample);
            }
        }
        let reports: Vec<SliceReport> = slices
            .into_iter()
            .zip(sessions)
            .map(|(spec, session)| {
                let sla = *session.sla();
                SliceReport::build(spec.name, &sla, session.finish(), spec.reference)
            })
            .collect();
        FleetReport::build(reports, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::env::Sla;
    use atlas::{Scenario, Simulator, Stage3Config};
    use atlas_netsim::{RealNetwork, SharedTestbed};

    fn quick_config(iterations: usize) -> Stage3Config {
        Stage3Config {
            iterations,
            offline_updates: 1,
            candidates: 40,
            duration_s: 2.0,
            ..Stage3Config::default()
        }
    }

    fn spec(i: u64, iterations: usize) -> SliceSpec {
        let learner = OnlineLearner::without_offline(
            quick_config(iterations),
            Sla::paper_default(),
            Simulator::with_original_params(),
        );
        SliceSpec::new(
            format!("slice-{i}"),
            learner,
            Scenario::default_with_seed(i).with_duration(2.0),
            500 + i,
        )
    }

    #[test]
    fn mixed_iteration_budgets_drain_cleanly() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let report = Orchestrator::new(testbed).with_threads(2).run(vec![
            spec(0, 1),
            spec(1, 3),
            spec(2, 2),
        ]);
        assert_eq!(report.rounds, 3, "rounds follow the longest slice");
        assert_eq!(report.total_queries, 6);
        let iters: Vec<usize> = report.slices.iter().map(SliceReport::iterations).collect();
        assert_eq!(iters, vec![1, 3, 2]);
    }

    #[test]
    fn reference_pinning_flows_into_the_report() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let report = Orchestrator::new(testbed).run(vec![spec(3, 1).with_reference(0.25, 0.9)]);
        assert_eq!(report.slices[0].reference, (0.25, 0.9));
        assert!(report.slice("slice-3").is_some());
    }

    #[test]
    fn over_testbed_adopts_the_testbed_thread_pin() {
        let pinned = SharedTestbed::new(RealNetwork::prototype()).with_threads(3);
        let orchestrator = Orchestrator::over_testbed(pinned);
        assert_eq!(orchestrator.scheduler().threads(), Some(3));
        // And the results are the usual bit-identical ones.
        let report = orchestrator.run(vec![spec(4, 2)]);
        let unpinned = Orchestrator::over_testbed(SharedTestbed::new(RealNetwork::prototype()));
        assert_eq!(unpinned.scheduler().threads(), None);
        assert_eq!(unpinned.run(vec![spec(4, 2)]), report);
    }

    #[test]
    #[should_panic(expected = "zero online iterations")]
    fn zero_iteration_slice_is_rejected_up_front() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let _ = Orchestrator::new(testbed).run(vec![spec(5, 0)]);
    }

    #[test]
    fn empty_fleet_is_a_clean_noop() {
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let report = Orchestrator::new(testbed).run(Vec::new());
        assert_eq!(report.rounds, 0);
        assert_eq!(report.total_queries, 0);
        assert!(report.slices.is_empty());
        assert_eq!(report.sla_violation_rate, 0.0);
    }
}
