//! Fleet sharding: fixed, hash-free partitioning of slice sessions across
//! worker shards.
//!
//! At operator scale (hundreds-to-thousands of concurrent slices) the
//! dominant per-round cost is no longer the shared grant step but the
//! per-session work around it: model fits, offline-acceleration waves and
//! candidate scoring inside `suggest()`. A [`ShardPlan`] splits that work
//! into fixed shards — each slice is pinned to `admission_index % shards`
//! at admission and never migrates — so every shard can run its sessions
//! on its own scoped thread with zero synchronisation until the join.
//!
//! Determinism contract (enforced by the property tests in
//! `tests/properties.rs`):
//!
//! 1. **Fixed, hash-free assignment.** The shard of a slice depends only
//!    on its admission index and the shard count — never on hashes,
//!    thread ids or timing — so the same admission sequence always yields
//!    the same partition.
//! 2. **Ordered merge.** Per-shard round batches are merged
//!    shard-then-index via [`ShardPlan::merge_round`], which restores the
//!    global admission (slot) order before the single shared
//!    `grant_round`. Every contention policy therefore sees the batch it
//!    would have seen unsharded, bit for bit.
//! 3. **Mutation outside the fan-out.** Shared state (budgets, round
//!    statistics, lifecycle events) is only touched on the driving thread,
//!    in slot order; shard threads own their sessions outright.

/// A fixed partition of fleet slots across `shards` worker shards.
///
/// The plan is pure arithmetic — it holds no session state — so it can be
/// copied freely and consulted from any thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
}

impl ShardPlan {
    /// A plan over `shards` worker shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
        }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether the plan actually partitions work (more than one shard).
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }

    /// The shard owning the slice admitted at `admission_index`: a plain
    /// round-robin `admission_index % shards`. Hash-free and stable for
    /// the lifetime of the run, so a slice never migrates between shards.
    pub fn assign(&self, admission_index: usize) -> usize {
        admission_index % self.shards
    }

    /// Merges per-shard round batches back into global slot order: the
    /// shard-then-index k-way merge. Each entry is `(slot, payload)` where
    /// `slot` is the item's position in the fleet's active list; slots are
    /// unique within a round, so the sort is a deterministic permutation
    /// that restores exactly the order an unsharded round would have
    /// produced — which is what makes the downstream `grant_round` (and
    /// every f64 accumulation after it) bit-identical across shard counts.
    pub fn merge_round<T>(batches: Vec<Vec<(usize, T)>>) -> Vec<(usize, T)> {
        let mut merged: Vec<(usize, T)> = batches.into_iter().flatten().collect();
        merged.sort_unstable_by_key(|(slot, _)| *slot);
        merged
    }
}

impl Default for ShardPlan {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_clamp_assign_and_report_sharding() {
        let single = ShardPlan::new(0);
        assert_eq!(single.shards(), 1);
        assert!(!single.is_sharded());
        assert_eq!(ShardPlan::default(), ShardPlan::new(1));
        let plan = ShardPlan::new(4);
        assert!(plan.is_sharded());
        assert_eq!(plan.shards(), 4);
        // Fixed round-robin, stable under repetition.
        let assigned: Vec<usize> = (0..10).map(|i| plan.assign(i)).collect();
        assert_eq!(assigned, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
        assert_eq!(
            assigned,
            (0..10).map(|i| plan.assign(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_round_restores_global_slot_order() {
        // Simulate 3 shards' batches for slots 0..=7 assigned round-robin.
        let plan = ShardPlan::new(3);
        let mut batches: Vec<Vec<(usize, char)>> = vec![Vec::new(); 3];
        let payload = ['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'];
        for (slot, p) in payload.iter().enumerate() {
            batches[plan.assign(slot)].push((slot, *p));
        }
        let merged = ShardPlan::merge_round(batches);
        let slots: Vec<usize> = merged.iter().map(|(s, _)| *s).collect();
        assert_eq!(slots, (0..8).collect::<Vec<_>>());
        let chars: Vec<char> = merged.iter().map(|(_, p)| *p).collect();
        assert_eq!(chars, payload);
        // Gaps (sessions that declined to suggest) are preserved in order.
        let sparse = ShardPlan::merge_round(vec![vec![(5, 'x')], vec![(1, 'y')], Vec::new()]);
        assert_eq!(sparse, vec![(1, 'y'), (5, 'x')]);
        assert!(ShardPlan::merge_round(Vec::<Vec<(usize, u8)>>::new()).is_empty());
    }
}
