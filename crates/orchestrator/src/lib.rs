//! # atlas-orchestrator
//!
//! Multi-slice orchestration for the Atlas reproduction: run the stage-3
//! online loops of **many network slices concurrently** against one shared
//! (emulated) testbed, the way an operator's slice-management plane runs
//! fleets of slices against shared infrastructure.
//!
//! The crate builds on the steppable session API of `atlas::stage3`:
//!
//! * every slice is a [`SliceSpec`] — an `OnlineLearner` plus its scenario
//!   and seed — whose `SliceSession` owns all mutable learner state (GP
//!   residual model, Lagrangian multiplier, history);
//! * each round, the [`Orchestrator`] collects every active session's
//!   suggested configuration and hands the batch to the shared
//!   [`QueryScheduler`], which fans the testbed measurements out over the
//!   deterministic thread pool of `atlas-math::parallel`;
//! * the measurements are fed back through the sessions' `observe`
//!   transitions, and the run is reduced to a [`FleetReport`] with
//!   per-slice and fleet-wide SLA-violation rate, resource usage and
//!   regret.
//!
//! Because the sessions consume randomness in exactly the order of the
//! single-slice loop and every testbed measurement derives its RNG stream
//! from the owning slice's seed, an N-slice orchestrated run is
//! **bit-for-bit identical** to N sequential `OnlineLearner::run` calls on
//! the same seeds — for every scheduler thread count.
//!
//! ## Quick start
//!
//! ```
//! use atlas::{OnlineLearner, Scenario, Simulator, Sla, Stage3Config};
//! use atlas_netsim::{RealNetwork, SharedTestbed};
//! use atlas_orchestrator::{Orchestrator, SliceSpec};
//!
//! // Two (tiny) slices sharing one emulated testbed.
//! let simulator = Simulator::with_original_params();
//! let quick = Stage3Config {
//!     iterations: 2,
//!     offline_updates: 1,
//!     candidates: 40,
//!     duration_s: 2.0,
//!     ..Stage3Config::default()
//! };
//! let slices: Vec<SliceSpec> = (0..2u64)
//!     .map(|i| {
//!         let learner = OnlineLearner::without_offline(quick, Sla::paper_default(), simulator);
//!         let scenario = Scenario::default_with_seed(i).with_duration(2.0);
//!         SliceSpec::new(format!("slice-{i}"), learner, scenario, 100 + i)
//!     })
//!     .collect();
//!
//! let testbed = SharedTestbed::new(RealNetwork::prototype());
//! let report = Orchestrator::new(testbed).with_threads(2).run(slices);
//! assert_eq!(report.slices.len(), 2);
//! assert_eq!(report.total_queries, 4); // 2 slices × 2 online iterations
//! assert!(report.sla_violation_rate >= 0.0 && report.sla_violation_rate <= 1.0);
//! println!("{}", report.summary());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod report;
pub mod scheduler;

pub use fleet::{Orchestrator, SliceSpec};
pub use report::{FleetReport, SliceReport};
pub use scheduler::QueryScheduler;
