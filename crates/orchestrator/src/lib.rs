//! # atlas-orchestrator
//!
//! Multi-slice orchestration for the Atlas reproduction: run the stage-3
//! online loops of **many network slices concurrently** against one shared
//! (emulated) testbed, the way an operator's slice-management plane runs
//! elastic fleets of slices against shared, *finite* infrastructure.
//!
//! The crate builds on the steppable session API of `atlas::stage3`:
//!
//! * every slice is a [`SliceSpec`] — an `OnlineLearner` plus its scenario,
//!   seed and nominal resource demand — whose `SliceSession` owns all
//!   mutable learner state (GP residual model, Lagrangian multiplier,
//!   history);
//! * a [`FleetRun`] (opened with [`Orchestrator::begin`]) is a round-driven
//!   event loop: slices are [`FleetRun::admit`]ted — validated, then decided
//!   by an [`AdmissionPolicy`] against the testbed budget's [`Occupancy`] —
//!   and [`FleetRun::retire`]d between rounds, and every
//!   [`FleetRun::step`] emits an incremental [`RoundReport`];
//! * each round, the fleet's offline-acceleration **simulator** queries are
//!   batched across sessions (they outnumber testbed queries
//!   `offline_updates`-to-1) and the real-network queries are **granted**
//!   against the testbed's `ResourceBudget` — over-subscribed rounds are
//!   scaled by its contention policy, so sessions learn from the resources
//!   they actually received — before the [`QueryScheduler`] fans the
//!   measurements out over the deterministic thread pool of
//!   `atlas-math::parallel`;
//! * [`FleetRun::finish`] folds everything into a [`FleetReport`] with
//!   per-slice lifecycle spans, rejected-admission counts and the fleet's
//!   granted-vs-requested usage gap. [`churn::ChurnWorkload`] generates
//!   deterministic Poisson-ish arrival/departure schedules for elastic
//!   fleet experiments.
//!
//! Because the sessions consume randomness in exactly the order of the
//! single-slice loop and every testbed measurement derives its RNG stream
//! from the owning slice's seed, an N-slice orchestrated run over an
//! **uncontended** testbed is bit-for-bit identical to N sequential
//! `OnlineLearner::run` calls on the same seeds — for every scheduler
//! thread count. Contended and churned runs are equally deterministic:
//! granting and admission happen sequentially between rounds, never inside
//! the evaluation fan-out.
//!
//! ## Quick start: a fixed fleet
//!
//! ```
//! use atlas::{OnlineLearner, Scenario, Simulator, Sla, Stage3Config};
//! use atlas_netsim::{RealNetwork, SharedTestbed};
//! use atlas_orchestrator::{Orchestrator, SliceSpec};
//!
//! // Two (tiny) slices sharing one emulated testbed.
//! let simulator = Simulator::with_original_params();
//! let quick = Stage3Config {
//!     iterations: 2,
//!     offline_updates: 1,
//!     candidates: 40,
//!     duration_s: 2.0,
//!     ..Stage3Config::default()
//! };
//! let slices: Vec<SliceSpec> = (0..2u64)
//!     .map(|i| {
//!         let learner = OnlineLearner::without_offline(quick, Sla::paper_default(), simulator);
//!         let scenario = Scenario::default_with_seed(i).with_duration(2.0);
//!         SliceSpec::new(format!("slice-{i}"), learner, scenario, 100 + i)
//!     })
//!     .collect();
//!
//! let testbed = SharedTestbed::new(RealNetwork::prototype());
//! let report = Orchestrator::new(testbed).with_threads(2).run(slices);
//! assert_eq!(report.slices.len(), 2);
//! assert_eq!(report.total_queries, 4); // 2 slices × 2 online iterations
//! assert!(report.sla_violation_rate >= 0.0 && report.sla_violation_rate <= 1.0);
//! println!("{}", report.summary());
//! ```
//!
//! ## Elastic fleets over a contended testbed
//!
//! ```
//! use atlas::{OnlineLearner, Scenario, Simulator, Sla, Stage3Config};
//! use atlas_netsim::{RealNetwork, ResourceBudget, SharedTestbed};
//! use atlas_orchestrator::{HeadroomThreshold, Orchestrator, SliceSpec};
//!
//! let spec = |i: u64| {
//!     let quick = Stage3Config {
//!         iterations: 2,
//!         offline_updates: 1,
//!         candidates: 40,
//!         duration_s: 2.0,
//!         ..Stage3Config::default()
//!     };
//!     let learner = OnlineLearner::without_offline(
//!         quick,
//!         Sla::paper_default(),
//!         Simulator::with_original_params(),
//!     );
//!     let scenario = Scenario::default_with_seed(i).with_duration(2.0);
//!     SliceSpec::new(format!("slice-{i}"), learner, scenario, 100 + i)
//! };
//!
//! // A finite substrate: one 10 MHz carrier, 100 Mbps backhaul, 4 CPUs.
//! let testbed = SharedTestbed::new(RealNetwork::prototype())
//!     .with_budget(ResourceBudget::carrier_default());
//! let orchestrator = Orchestrator::new(testbed).with_threads(2);
//!
//! // Admit while no budget dimension is over-subscribed: the default
//! // demand asks for half the carrier, so the third slice is rejected.
//! let mut fleet = orchestrator
//!     .begin()
//!     .with_admission(Box::new(HeadroomThreshold::no_oversubscription()));
//! assert!(fleet.admit(spec(0)).is_ok());
//! assert!(fleet.admit(spec(1)).is_ok());
//! assert!(fleet.admit(spec(2)).is_err());
//!
//! // Round-driven: step, retire, admit more, step again.
//! let round = fleet.step().expect("two active slices");
//! assert_eq!(round.queries, 2);
//! let _partial = fleet.retire("slice-0").expect("slice-0 is active");
//! while fleet.step().is_some() {}
//! let report = fleet.finish();
//! assert_eq!(report.rejected_admissions, 1);
//! assert_eq!(report.slices.len(), 2);
//! assert!(report.slice("slice-0").unwrap().span.retired_early);
//! ```
//!
//! ## Sharded fleets
//!
//! At operator scale (hundreds-to-thousands of slices) the per-round
//! bottleneck is the per-session work — model fits, acceleration waves,
//! candidate scoring — not the shared grant. [`Orchestrator::with_shards`]
//! partitions the sessions across fixed worker shards: each slice is
//! pinned to `admission_index % shards` when admitted
//! ([`shard::ShardPlan::assign`] — fixed and hash-free), each shard runs
//! its sessions on its own scoped thread, and the per-shard batches are
//! merged back into admission order before the single shared grant, so
//! **every shard count produces the bit-identical run**:
//!
//! ```
//! use atlas::{OnlineLearner, Scenario, Simulator, Sla, Stage3Config};
//! use atlas_netsim::{RealNetwork, SharedTestbed};
//! use atlas_orchestrator::{Orchestrator, SliceSpec};
//!
//! let slices = |n: u64| -> Vec<SliceSpec> {
//!     (0..n)
//!         .map(|i| {
//!             let quick = Stage3Config {
//!                 iterations: 2,
//!                 offline_updates: 1,
//!                 candidates: 40,
//!                 duration_s: 2.0,
//!                 ..Stage3Config::default()
//!             };
//!             let learner = OnlineLearner::without_offline(
//!                 quick,
//!                 Sla::paper_default(),
//!                 Simulator::with_original_params(),
//!             );
//!             let scenario = Scenario::default_with_seed(i).with_duration(2.0);
//!             SliceSpec::new(format!("slice-{i}"), learner, scenario, 100 + i)
//!         })
//!         .collect()
//! };
//!
//! // 4 shards; `over_testbed` also adopts a testbed-pinned shard count.
//! let testbed = SharedTestbed::new(RealNetwork::prototype()).with_shards(4);
//! let sharded = Orchestrator::over_testbed(testbed).run(slices(8));
//!
//! // The determinism contract: sharded ≡ unsharded, bit for bit.
//! let unsharded =
//!     Orchestrator::new(SharedTestbed::new(RealNetwork::prototype())).run(slices(8));
//! assert_eq!(sharded, unsharded);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod churn;
pub mod fleet;
pub mod report;
pub mod scheduler;
pub mod shard;

pub use admission::{
    AcceptAll, AdmissionError, AdmissionPolicy, HeadroomThreshold, Occupancy, RetireError,
};
pub use churn::{ChurnArrival, ChurnConfig, ChurnWorkload};
pub use fleet::{FleetRun, Orchestrator, PhaseBreakdown, SliceSpec};
pub use report::{FleetReport, LifecycleSpan, RoundReport, SliceReport};
pub use scheduler::{QueryScheduler, EVAL_PAR_MIN_CHUNK};
pub use shard::ShardPlan;
