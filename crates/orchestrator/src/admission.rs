//! Slice admission: spec validation and admission-control policies.
//!
//! Real slice management is an order → admit → operate pipeline
//! (arXiv:1804.09642): an operator does not run a fixed fleet to
//! completion, it decides — against the substrate's current occupancy —
//! whether each arriving slice order can be honoured. This module is that
//! decision point for [`crate::FleetRun`]:
//!
//! * [`validate_spec`] rejects malformed orders (duplicate slice ids,
//!   zero-iteration learners, zero/NaN resource demands) with a typed
//!   [`AdmissionError`] instead of letting them misbehave mid-run;
//! * [`AdmissionPolicy`] decides whether a *valid* order fits, given the
//!   post-admission [`Occupancy`] of the environment's resource budget —
//!   [`AcceptAll`] (the default, and the uncontended PR 3 behaviour) and
//!   [`HeadroomThreshold`] (admit while every budget dimension stays under
//!   a configured occupancy) ship in-tree.

use crate::fleet::SliceSpec;
use atlas_netsim::{ResourceBudget, RESOURCE_DIMS};
use std::fmt;

/// Budget-occupancy snapshot an admission decision is made against: the
/// fraction of each resource dimension (UL PRBs, DL PRBs, backhaul Mbps,
/// CPU shares) demanded by the already-admitted slices *plus the
/// candidate*. All zeros when the environment has no finite budget.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Occupancy {
    /// Per-dimension demand-over-capacity fractions, in
    /// [`ResourceBudget::capacities`] order.
    pub dims: [f64; RESOURCE_DIMS],
}

impl Occupancy {
    /// The most-occupied dimension's fraction (values above 1 mean the
    /// dimension would be over-subscribed after admission).
    pub fn max(&self) -> f64 {
        self.dims.into_iter().fold(0.0f64, f64::max)
    }
}

/// Why a [`crate::FleetRun::admit`] call did not admit the slice.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// A slice with this name was already admitted to the run (slice ids
    /// must be unique for the whole lifetime of a fleet run).
    DuplicateName(String),
    /// The spec's learner is configured with zero online iterations, so
    /// its session could never suggest anything.
    ZeroIterations(String),
    /// The spec's nominal resource demand is unusable: a NaN/negative
    /// field, or no resources demanded at all.
    InvalidDemand {
        /// The offending slice's name.
        name: String,
        /// Human-readable description of the defect.
        reason: &'static str,
    },
    /// The admission policy declined the (valid) slice.
    Rejected {
        /// The declined slice's name.
        name: String,
        /// The post-admission max-dimension occupancy the decision saw.
        occupancy: f64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateName(name) => {
                write!(f, "slice {name:?} was already admitted to this fleet run")
            }
            Self::ZeroIterations(name) => write!(
                f,
                "slice {name:?} is configured with zero online iterations"
            ),
            Self::InvalidDemand { name, reason } => {
                write!(f, "slice {name:?} has an invalid resource demand: {reason}")
            }
            Self::Rejected { name, occupancy } => write!(
                f,
                "slice {name:?} was rejected by the admission policy \
                 (post-admission occupancy {occupancy:.2})"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a [`crate::FleetRun::retire`] call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RetireError {
    /// No active slice has this name (never admitted, or already retired
    /// before it observed a round).
    UnknownSlice(String),
    /// The slice already completed its iteration budget and was finalised
    /// naturally — a benign race for churn drivers (the tenancy expired in
    /// the same round the session drained), distinct from the operator
    /// error of retiring a name that was never admitted.
    AlreadyCompleted(String),
}

impl fmt::Display for RetireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownSlice(name) => {
                write!(f, "no active slice named {name:?} to retire")
            }
            Self::AlreadyCompleted(name) => write!(
                f,
                "slice {name:?} already completed its iteration budget and \
                 cannot be retired"
            ),
        }
    }
}

impl std::error::Error for RetireError {}

/// Validates a slice order before any admission decision: zero-iteration
/// learners and zero/NaN/negative resource demands are structural defects
/// that would otherwise surface as silent misbehaviour mid-run.
pub(crate) fn validate_spec(spec: &SliceSpec) -> Result<(), AdmissionError> {
    if spec.learner.config().iterations == 0 {
        return Err(AdmissionError::ZeroIterations(spec.name.clone()));
    }
    let demand = ResourceBudget::demand_of(&spec.demand);
    if demand.iter().any(|d| d.is_nan()) {
        return Err(AdmissionError::InvalidDemand {
            name: spec.name.clone(),
            reason: "a resource dimension is NaN",
        });
    }
    if demand.iter().any(|d| *d < 0.0) {
        return Err(AdmissionError::InvalidDemand {
            name: spec.name.clone(),
            reason: "a resource dimension is negative",
        });
    }
    if demand.iter().sum::<f64>() <= 0.0 {
        return Err(AdmissionError::InvalidDemand {
            name: spec.name.clone(),
            reason: "no resources demanded at all",
        });
    }
    Ok(())
}

/// Decides whether a validated slice order is admitted, given the budget
/// occupancy the fleet would have *after* admitting it.
///
/// Policies must be deterministic: the same candidate against the same
/// occupancy must always produce the same decision, so fleet runs stay
/// reproducible across scheduler thread counts.
pub trait AdmissionPolicy {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Whether to admit `candidate` at `occupancy` (which already includes
    /// the candidate's own demand).
    fn admit(&self, candidate: &SliceSpec, occupancy: &Occupancy) -> bool;
}

/// Admits every valid slice regardless of occupancy — the uncontended
/// PR 3 behaviour, and the default of [`crate::Orchestrator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AcceptAll;

impl AdmissionPolicy for AcceptAll {
    fn name(&self) -> &'static str {
        "accept-all"
    }

    fn admit(&self, _candidate: &SliceSpec, _occupancy: &Occupancy) -> bool {
        true
    }
}

/// Admits while every budget dimension's post-admission occupancy stays at
/// or below `max_occupancy` (1.0 = never over-subscribe; values above 1
/// tolerate bounded over-subscription, trusting the testbed's contention
/// policy to scale grants). Environments without a finite budget report
/// zero occupancy, so this policy degenerates to [`AcceptAll`] there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadroomThreshold {
    /// Highest tolerated post-admission occupancy in any dimension.
    pub max_occupancy: f64,
}

impl HeadroomThreshold {
    /// A policy that never over-subscribes any budget dimension.
    pub fn no_oversubscription() -> Self {
        Self { max_occupancy: 1.0 }
    }
}

impl AdmissionPolicy for HeadroomThreshold {
    fn name(&self) -> &'static str {
        "budget-headroom"
    }

    fn admit(&self, _candidate: &SliceSpec, occupancy: &Occupancy) -> bool {
        occupancy.max() <= self.max_occupancy + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::env::Sla;
    use atlas::{OnlineLearner, Scenario, Simulator, SliceConfig, Stage3Config};

    fn spec(name: &str, iterations: usize) -> SliceSpec {
        let learner = OnlineLearner::without_offline(
            Stage3Config {
                iterations,
                ..Stage3Config::default()
            },
            Sla::paper_default(),
            Simulator::with_original_params(),
        );
        SliceSpec::new(name, learner, Scenario::default_with_seed(1), 1)
    }

    #[test]
    fn validation_catches_structural_defects() {
        assert_eq!(validate_spec(&spec("ok", 3)), Ok(()));
        assert_eq!(
            validate_spec(&spec("none", 0)),
            Err(AdmissionError::ZeroIterations("none".into()))
        );
        let mut nan = spec("nan", 3);
        nan.demand.cpu_ratio = f64::NAN;
        assert!(matches!(
            validate_spec(&nan),
            Err(AdmissionError::InvalidDemand { reason, .. }) if reason.contains("NaN")
        ));
        let mut neg = spec("neg", 3);
        neg.demand.backhaul_bw = -1.0;
        assert!(matches!(
            validate_spec(&neg),
            Err(AdmissionError::InvalidDemand { reason, .. }) if reason.contains("negative")
        ));
        let mut zero = spec("zero", 3);
        zero.demand = SliceConfig::from_vec(&[0.0; 6]);
        assert!(matches!(
            validate_spec(&zero),
            Err(AdmissionError::InvalidDemand { reason, .. }) if reason.contains("no resources")
        ));
    }

    #[test]
    fn headroom_threshold_reads_the_occupancy() {
        let policy = HeadroomThreshold::no_oversubscription();
        let candidate = spec("c", 3);
        let fits = Occupancy {
            dims: [0.9, 0.5, 0.2, 1.0],
        };
        let over = Occupancy {
            dims: [0.9, 1.2, 0.2, 0.4],
        };
        assert!(policy.admit(&candidate, &fits));
        assert!(!policy.admit(&candidate, &over));
        assert!((over.max() - 1.2).abs() < 1e-12);
        assert!(AcceptAll.admit(&candidate, &over));
        assert_eq!(AcceptAll.name(), "accept-all");
        assert_eq!(policy.name(), "budget-headroom");
        // Errors render usefully.
        let err = AdmissionError::Rejected {
            name: "c".into(),
            occupancy: 1.2,
        };
        assert!(err.to_string().contains("rejected"));
        assert!(RetireError::UnknownSlice("c".into())
            .to_string()
            .contains("retire"));
    }
}
