//! Aggregate SLA/usage/regret reporting for a fleet of slices.

use atlas::env::Sla;
use atlas::regret::average_regret;
use atlas::Stage3Result;
use std::fmt::Write as _;

/// When a slice entered and left the fleet, in fleet-round coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifecycleSpan {
    /// Fleet round count at admission (the slice first queries in round
    /// `admitted_round + 1`).
    pub admitted_round: usize,
    /// Fleet round in which the slice observed its last outcome.
    pub final_round: usize,
    /// Whether the slice left before completing its configured iteration
    /// budget (explicit [`crate::FleetRun::retire`], or the run was
    /// finished while the slice was still active).
    pub retired_early: bool,
}

/// One fleet round's incremental outcome, emitted by
/// [`crate::FleetRun::step`] and folded into the final [`FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// 1-based round index.
    pub round: usize,
    /// Real-network queries issued this round (one per active slice).
    pub queries: usize,
    /// Slices admitted since the previous round.
    pub admitted: Vec<String>,
    /// Slices the admission policy rejected since the previous round.
    pub rejected: Vec<String>,
    /// Slices explicitly retired since the previous round.
    pub retired: Vec<String>,
    /// Slices that completed their iteration budget in this round.
    pub completed: Vec<String>,
    /// Mean resource usage the slices *requested* this round (after the
    /// connectivity floor).
    pub mean_requested_usage: f64,
    /// Mean resource usage the testbed actually *granted* this round
    /// (equals `mean_requested_usage` when uncontended).
    pub mean_granted_usage: f64,
    /// How many of this round's measurements violated their slice's SLA.
    pub sla_violations: usize,
    /// Max-dimension budget occupancy of the still-active fleet after the
    /// round (0 for environments without a finite budget).
    pub occupancy: f64,
}

impl RoundReport {
    /// The round's granted-vs-requested usage gap (0 when uncontended).
    pub fn grant_gap(&self) -> f64 {
        self.mean_requested_usage - self.mean_granted_usage
    }
}

/// Per-query mean that stays finite when a round ran zero queries. This is
/// a real release-build guard, not a debug assert: a round where every
/// session declines to suggest must report 0.0 means — a NaN here would
/// silently poison every downstream fold of the [`FleetReport`].
pub(crate) fn mean_per_query(sum: f64, queries: usize) -> f64 {
    if queries == 0 {
        0.0
    } else {
        sum / queries as f64
    }
}

/// Per-slice outcome of an orchestrated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceReport {
    /// The slice's name (from its [`crate::SliceSpec`]).
    pub name: String,
    /// When the slice entered and left the fleet.
    pub span: LifecycleSpan,
    /// The full stage-3 result — bit-for-bit what a sequential
    /// `OnlineLearner::run` with the same seed produces.
    pub result: Stage3Result,
    /// Fraction of online iterations whose measured QoE violated the SLA.
    pub sla_violation_rate: f64,
    /// Mean resource usage over the online iterations.
    pub mean_usage: f64,
    /// Mean measured QoE over the online iterations.
    pub mean_qoe: f64,
    /// The reference `(usage, qoe)` the regret is computed against.
    pub reference: (f64, f64),
    /// Average usage regret against the reference (Eq. 10 / iterations).
    pub avg_usage_regret: f64,
    /// Average QoE regret against the reference (Eq. 11 / iterations).
    pub avg_qoe_regret: f64,
    /// Bytes resident in the slice's online-model posterior factors at
    /// departure — the figure that plateaus under bounded windows,
    /// shrinks under the elastic grid and collapses to two m×m packed
    /// triangles per live candidate under the inducing basis (0 for the
    /// BNN online models, which keep no per-observation factors). Makes
    /// fleet memory plateaus observable without a bench run.
    pub surrogate_bytes: usize,
}

impl SliceReport {
    /// Builds the report for one finished slice. `reference` defaults to
    /// the slice's own best outcome when the spec did not pin one.
    pub(crate) fn build(
        name: String,
        sla: &Sla,
        result: Stage3Result,
        reference: Option<(f64, f64)>,
        span: LifecycleSpan,
        surrogate_bytes: usize,
    ) -> Self {
        let n = result.history.len().max(1) as f64;
        let violations = result
            .history
            .iter()
            .filter(|o| !sla.satisfied_by(o.qoe))
            .count() as f64;
        let mean_usage = result.history.iter().map(|o| o.usage).sum::<f64>() / n;
        let mean_qoe = result.history.iter().map(|o| o.qoe).sum::<f64>() / n;
        let reference = reference.unwrap_or((result.best.usage, result.best.qoe));
        let (avg_usage_regret, avg_qoe_regret) =
            average_regret(&result.usage_qoe_history(), reference.0, reference.1);
        Self {
            name,
            span,
            sla_violation_rate: violations / n,
            mean_usage,
            mean_qoe,
            reference,
            avg_usage_regret,
            avg_qoe_regret,
            surrogate_bytes,
            result,
        }
    }

    /// Number of online iterations the slice completed.
    pub fn iterations(&self) -> usize {
        self.result.history.len()
    }
}

/// Fleet-wide outcome of an orchestrated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-slice reports, in admission order.
    pub slices: Vec<SliceReport>,
    /// Number of scheduling rounds the fleet executed.
    pub rounds: usize,
    /// Total real-network queries issued across all slices.
    pub total_queries: usize,
    /// Fraction of all slice-iterations that violated their slice's SLA.
    pub sla_violation_rate: f64,
    /// Mean resource usage across all slice-iterations (granted usage —
    /// what the slices actually observed).
    pub mean_usage: f64,
    /// Mean measured QoE across all slice-iterations.
    pub mean_qoe: f64,
    /// Admission attempts the admission policy declined over the run.
    pub rejected_admissions: usize,
    /// Mean requested-minus-granted usage gap per query (0 when the run
    /// was uncontended; positive when a finite budget scaled grants down).
    pub mean_grant_gap: f64,
    /// Sum of the per-slice [`SliceReport::surrogate_bytes`] — the
    /// fleet's total resident online-model factor footprint at departure.
    pub total_surrogate_bytes: usize,
}

impl FleetReport {
    /// Reduces per-slice reports to the fleet aggregates. Slice-iterations
    /// are weighted equally, so slices with more iterations weigh more —
    /// the fleet rate is "violations per query", not "per slice".
    pub(crate) fn build(
        slices: Vec<SliceReport>,
        rounds: usize,
        rejected_admissions: usize,
        mean_grant_gap: f64,
    ) -> Self {
        let total_queries: usize = slices.iter().map(SliceReport::iterations).sum();
        let total_surrogate_bytes: usize = slices.iter().map(|s| s.surrogate_bytes).sum();
        let n = total_queries.max(1) as f64;
        let weighted = |f: &dyn Fn(&SliceReport) -> f64| -> f64 {
            slices
                .iter()
                .map(|s| f(s) * s.iterations() as f64)
                .sum::<f64>()
                / n
        };
        Self {
            sla_violation_rate: weighted(&|s| s.sla_violation_rate),
            mean_usage: weighted(&|s| s.mean_usage),
            mean_qoe: weighted(&|s| s.mean_qoe),
            slices,
            rounds,
            total_queries,
            rejected_admissions,
            mean_grant_gap,
            total_surrogate_bytes,
        }
    }

    /// Looks a slice report up by name.
    pub fn slice(&self, name: &str) -> Option<&SliceReport> {
        self.slices.iter().find(|s| s.name == name)
    }

    /// A human-readable multi-line summary (one line per slice plus the
    /// fleet totals).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in &self.slices {
            let _ = writeln!(
                out,
                "{:<12} iters {:>3}  SLA-viol {:>5.1}%  usage {:>5.1}%  QoE {:.3}  \
                 regret (usage {:+.3}, qoe {:.3})  best usage {:>5.1}% @ QoE {:.3}  \
                 model {:>7} B",
                s.name,
                s.iterations(),
                s.sla_violation_rate * 100.0,
                s.mean_usage * 100.0,
                s.mean_qoe,
                s.avg_usage_regret,
                s.avg_qoe_regret,
                s.result.best.usage * 100.0,
                s.result.best.qoe,
                s.surrogate_bytes,
            );
        }
        let _ = writeln!(
            out,
            "fleet: {} slices, {} rounds, {} queries  SLA-viol {:.1}%  usage {:.1}%  QoE {:.3}  \
             rejected {}  grant gap {:.2}%  model {} B",
            self.slices.len(),
            self.rounds,
            self.total_queries,
            self.sla_violation_rate * 100.0,
            self.mean_usage * 100.0,
            self.mean_qoe,
            self.rejected_admissions,
            self.mean_grant_gap * 100.0,
            self.total_surrogate_bytes,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::stage3::OnlineOutcome;
    use atlas_netsim::SliceConfig;

    fn outcome(iteration: usize, usage: f64, qoe: f64) -> OnlineOutcome {
        OnlineOutcome {
            iteration,
            config: SliceConfig::default_generous(),
            usage,
            qoe,
            simulator_qoe: qoe,
        }
    }

    fn result(samples: &[(f64, f64)]) -> Stage3Result {
        let history: Vec<OnlineOutcome> = samples
            .iter()
            .enumerate()
            .map(|(i, (u, q))| outcome(i, *u, *q))
            .collect();
        let best = atlas::stage3::best_outcome(&history, &Sla::paper_default());
        Stage3Result {
            history,
            final_multiplier: 0.0,
            best,
        }
    }

    #[test]
    fn slice_report_statistics() {
        let sla = Sla::paper_default();
        let r = result(&[(0.4, 0.95), (0.2, 0.92), (0.3, 0.5)]);
        let report = SliceReport::build("s".into(), &sla, r, None, LifecycleSpan::default(), 4096);
        assert!((report.sla_violation_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.mean_usage - 0.3).abs() < 1e-12);
        assert!((report.mean_qoe - (0.95 + 0.92 + 0.5) / 3.0).abs() < 1e-12);
        // Default reference: the best (cheapest feasible) outcome.
        assert_eq!(report.reference, (0.2, 0.92));
        assert_eq!(report.iterations(), 3);
        // Pinned reference is respected, and the lifecycle span rides along.
        let r2 = result(&[(0.4, 0.95)]);
        let span = LifecycleSpan {
            admitted_round: 2,
            final_round: 3,
            retired_early: true,
        };
        let pinned = SliceReport::build("p".into(), &sla, r2, Some((0.1, 0.9)), span, 0);
        assert_eq!(pinned.reference, (0.1, 0.9));
        assert!((pinned.avg_usage_regret - 0.3).abs() < 1e-12);
        assert_eq!(pinned.span, span);
        assert_eq!(pinned.surrogate_bytes, 0);
        assert_eq!(report.surrogate_bytes, 4096);
    }

    #[test]
    fn fleet_report_weights_by_iterations_and_finds_slices() {
        let sla = Sla::paper_default();
        let span = LifecycleSpan::default();
        let a = SliceReport::build(
            "a".into(),
            &sla,
            result(&[(0.2, 0.95), (0.4, 0.5)]),
            None,
            span,
            3000,
        );
        let b = SliceReport::build("b".into(), &sla, result(&[(0.6, 0.95)]), None, span, 1500);
        let fleet = FleetReport::build(vec![a, b], 2, 1, 0.05);
        assert_eq!(fleet.total_queries, 3);
        assert_eq!(fleet.rounds, 2);
        assert_eq!(fleet.rejected_admissions, 1);
        assert!((fleet.mean_grant_gap - 0.05).abs() < 1e-12);
        assert_eq!(fleet.total_surrogate_bytes, 4500);
        // 1 violation of 3 slice-iterations.
        assert!((fleet.sla_violation_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((fleet.mean_usage - (0.2 + 0.4 + 0.6) / 3.0).abs() < 1e-12);
        assert!(fleet.slice("b").is_some());
        assert!(fleet.slice("missing").is_none());
        let text = fleet.summary();
        assert!(text.contains("fleet: 2 slices"));
        assert!(text.contains("rejected 1"));
        assert!(text.contains('a') && text.contains('b'));
    }

    #[test]
    fn zero_query_rounds_keep_every_statistic_finite() {
        // The release-build guard behind RoundReport's means: a round that
        // ran zero queries must fold to 0.0, never NaN.
        assert_eq!(mean_per_query(0.0, 0), 0.0);
        assert_eq!(mean_per_query(123.4, 0), 0.0);
        assert!((mean_per_query(1.5, 3) - 0.5).abs() < 1e-12);
        let empty_round = RoundReport {
            round: 1,
            queries: 0,
            admitted: Vec::new(),
            rejected: Vec::new(),
            retired: Vec::new(),
            completed: Vec::new(),
            mean_requested_usage: mean_per_query(0.0, 0),
            mean_granted_usage: mean_per_query(0.0, 0),
            sla_violations: 0,
            occupancy: 0.0,
        };
        assert!(empty_round.mean_requested_usage.is_finite());
        assert!(empty_round.mean_granted_usage.is_finite());
        assert!(empty_round.grant_gap().is_finite());
        // And an empty fleet folds to finite aggregates as well.
        let fleet = FleetReport::build(Vec::new(), 0, 0, 0.0);
        assert!(fleet.sla_violation_rate.is_finite());
        assert!(fleet.mean_usage.is_finite());
        assert!(fleet.mean_qoe.is_finite());
        assert!(fleet.mean_grant_gap.is_finite());
    }

    #[test]
    fn round_report_grant_gap() {
        let round = RoundReport {
            round: 3,
            queries: 4,
            admitted: vec!["x".into()],
            rejected: Vec::new(),
            retired: Vec::new(),
            completed: vec!["y".into()],
            mean_requested_usage: 0.5,
            mean_granted_usage: 0.4,
            sla_violations: 1,
            occupancy: 1.3,
        };
        assert!((round.grant_gap() - 0.1).abs() < 1e-12);
    }
}
