//! Aggregate SLA/usage/regret reporting for a fleet of slices.

use atlas::env::Sla;
use atlas::regret::average_regret;
use atlas::Stage3Result;
use std::fmt::Write as _;

/// Per-slice outcome of an orchestrated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceReport {
    /// The slice's name (from its [`crate::SliceSpec`]).
    pub name: String,
    /// The full stage-3 result — bit-for-bit what a sequential
    /// `OnlineLearner::run` with the same seed produces.
    pub result: Stage3Result,
    /// Fraction of online iterations whose measured QoE violated the SLA.
    pub sla_violation_rate: f64,
    /// Mean resource usage over the online iterations.
    pub mean_usage: f64,
    /// Mean measured QoE over the online iterations.
    pub mean_qoe: f64,
    /// The reference `(usage, qoe)` the regret is computed against.
    pub reference: (f64, f64),
    /// Average usage regret against the reference (Eq. 10 / iterations).
    pub avg_usage_regret: f64,
    /// Average QoE regret against the reference (Eq. 11 / iterations).
    pub avg_qoe_regret: f64,
}

impl SliceReport {
    /// Builds the report for one finished slice. `reference` defaults to
    /// the slice's own best outcome when the spec did not pin one.
    pub(crate) fn build(
        name: String,
        sla: &Sla,
        result: Stage3Result,
        reference: Option<(f64, f64)>,
    ) -> Self {
        let n = result.history.len().max(1) as f64;
        let violations = result
            .history
            .iter()
            .filter(|o| !sla.satisfied_by(o.qoe))
            .count() as f64;
        let mean_usage = result.history.iter().map(|o| o.usage).sum::<f64>() / n;
        let mean_qoe = result.history.iter().map(|o| o.qoe).sum::<f64>() / n;
        let reference = reference.unwrap_or((result.best.usage, result.best.qoe));
        let (avg_usage_regret, avg_qoe_regret) =
            average_regret(&result.usage_qoe_history(), reference.0, reference.1);
        Self {
            name,
            sla_violation_rate: violations / n,
            mean_usage,
            mean_qoe,
            reference,
            avg_usage_regret,
            avg_qoe_regret,
            result,
        }
    }

    /// Number of online iterations the slice completed.
    pub fn iterations(&self) -> usize {
        self.result.history.len()
    }
}

/// Fleet-wide outcome of an orchestrated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-slice reports, in the order the slices were submitted.
    pub slices: Vec<SliceReport>,
    /// Number of scheduling rounds (the longest slice's iteration count).
    pub rounds: usize,
    /// Total real-network queries issued across all slices.
    pub total_queries: usize,
    /// Fraction of all slice-iterations that violated their slice's SLA.
    pub sla_violation_rate: f64,
    /// Mean resource usage across all slice-iterations.
    pub mean_usage: f64,
    /// Mean measured QoE across all slice-iterations.
    pub mean_qoe: f64,
}

impl FleetReport {
    /// Reduces per-slice reports to the fleet aggregates. Slice-iterations
    /// are weighted equally, so slices with more iterations weigh more —
    /// the fleet rate is "violations per query", not "per slice".
    pub(crate) fn build(slices: Vec<SliceReport>, rounds: usize) -> Self {
        let total_queries: usize = slices.iter().map(SliceReport::iterations).sum();
        let n = total_queries.max(1) as f64;
        let weighted = |f: &dyn Fn(&SliceReport) -> f64| -> f64 {
            slices
                .iter()
                .map(|s| f(s) * s.iterations() as f64)
                .sum::<f64>()
                / n
        };
        Self {
            sla_violation_rate: weighted(&|s| s.sla_violation_rate),
            mean_usage: weighted(&|s| s.mean_usage),
            mean_qoe: weighted(&|s| s.mean_qoe),
            slices,
            rounds,
            total_queries,
        }
    }

    /// Looks a slice report up by name.
    pub fn slice(&self, name: &str) -> Option<&SliceReport> {
        self.slices.iter().find(|s| s.name == name)
    }

    /// A human-readable multi-line summary (one line per slice plus the
    /// fleet totals).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in &self.slices {
            let _ = writeln!(
                out,
                "{:<12} iters {:>3}  SLA-viol {:>5.1}%  usage {:>5.1}%  QoE {:.3}  \
                 regret (usage {:+.3}, qoe {:.3})  best usage {:>5.1}% @ QoE {:.3}",
                s.name,
                s.iterations(),
                s.sla_violation_rate * 100.0,
                s.mean_usage * 100.0,
                s.mean_qoe,
                s.avg_usage_regret,
                s.avg_qoe_regret,
                s.result.best.usage * 100.0,
                s.result.best.qoe,
            );
        }
        let _ = writeln!(
            out,
            "fleet: {} slices, {} rounds, {} queries  SLA-viol {:.1}%  usage {:.1}%  QoE {:.3}",
            self.slices.len(),
            self.rounds,
            self.total_queries,
            self.sla_violation_rate * 100.0,
            self.mean_usage * 100.0,
            self.mean_qoe,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas::stage3::OnlineOutcome;
    use atlas_netsim::SliceConfig;

    fn outcome(iteration: usize, usage: f64, qoe: f64) -> OnlineOutcome {
        OnlineOutcome {
            iteration,
            config: SliceConfig::default_generous(),
            usage,
            qoe,
            simulator_qoe: qoe,
        }
    }

    fn result(samples: &[(f64, f64)]) -> Stage3Result {
        let history: Vec<OnlineOutcome> = samples
            .iter()
            .enumerate()
            .map(|(i, (u, q))| outcome(i, *u, *q))
            .collect();
        let best = atlas::stage3::best_outcome(&history, &Sla::paper_default());
        Stage3Result {
            history,
            final_multiplier: 0.0,
            best,
        }
    }

    #[test]
    fn slice_report_statistics() {
        let sla = Sla::paper_default();
        let r = result(&[(0.4, 0.95), (0.2, 0.92), (0.3, 0.5)]);
        let report = SliceReport::build("s".into(), &sla, r, None);
        assert!((report.sla_violation_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.mean_usage - 0.3).abs() < 1e-12);
        assert!((report.mean_qoe - (0.95 + 0.92 + 0.5) / 3.0).abs() < 1e-12);
        // Default reference: the best (cheapest feasible) outcome.
        assert_eq!(report.reference, (0.2, 0.92));
        assert_eq!(report.iterations(), 3);
        // Pinned reference is respected.
        let r2 = result(&[(0.4, 0.95)]);
        let pinned = SliceReport::build("p".into(), &sla, r2, Some((0.1, 0.9)));
        assert_eq!(pinned.reference, (0.1, 0.9));
        assert!((pinned.avg_usage_regret - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fleet_report_weights_by_iterations_and_finds_slices() {
        let sla = Sla::paper_default();
        let a = SliceReport::build("a".into(), &sla, result(&[(0.2, 0.95), (0.4, 0.5)]), None);
        let b = SliceReport::build("b".into(), &sla, result(&[(0.6, 0.95)]), None);
        let fleet = FleetReport::build(vec![a, b], 2);
        assert_eq!(fleet.total_queries, 3);
        assert_eq!(fleet.rounds, 2);
        // 1 violation of 3 slice-iterations.
        assert!((fleet.sla_violation_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((fleet.mean_usage - (0.2 + 0.4 + 0.6) / 3.0).abs() < 1e-12);
        assert!(fleet.slice("b").is_some());
        assert!(fleet.slice("missing").is_none());
        let text = fleet.summary();
        assert!(text.contains("fleet: 2 slices"));
        assert!(text.contains('a') && text.contains('b'));
    }
}
