//! Deterministic slice-churn workloads.
//!
//! Real fleets are elastic: slice orders arrive over time and slices are
//! torn down when their tenancy ends (cf. ONAP 5G slice deployment,
//! arXiv:1907.02278). This module generates a **deterministic,
//! Poisson-ish** arrival/departure schedule — a seeded Bernoulli coin per
//! round for arrivals (geometric inter-arrival times, the discrete
//! analogue of a Poisson process) and per-slice lifetimes drawn from the
//! same stream — and drives it over a [`FleetRun`]. Everything derives
//! from the workload seed, so the same workload over the same testbed is
//! bit-for-bit reproducible for every scheduler thread count.

use crate::admission::AdmissionPolicy;
use crate::fleet::{Orchestrator, SliceSpec};
use crate::report::{FleetReport, RoundReport};
use atlas::env::{Environment, Sla};
use atlas::{
    GridMaintenance, OnlineLearner, Scenario, Simulator, SliceConfig, Stage3Config, SurrogateBasis,
    WindowPolicy,
};
use atlas_math::rng::seeded_rng;
use rand::Rng;

/// Parameters of a deterministic churn workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Seed of the arrival/lifetime stream (and base of the per-slice
    /// learner seeds).
    pub seed: u64,
    /// Slices present when the run starts.
    pub initial_slices: usize,
    /// Rounds during which new slices may arrive.
    pub horizon_rounds: usize,
    /// Per-round arrival probability (geometric inter-arrivals).
    pub arrival_probability: f64,
    /// Hard cap on concurrently active slices (the workload skips
    /// arrivals that would exceed it, before any admission decision).
    pub max_concurrent: usize,
    /// Shortest tenancy, in rounds.
    pub min_lifetime_rounds: usize,
    /// Longest tenancy, in rounds.
    pub max_lifetime_rounds: usize,
    /// Online iterations per slice (a slice departs at the earlier of its
    /// lifetime expiry and its iteration budget).
    pub iterations: usize,
    /// Offline-acceleration updates per online iteration.
    pub offline_updates: usize,
    /// Candidates scored per selection.
    pub candidates: usize,
    /// Measured seconds per query.
    pub duration_s: f64,
    /// GP-residual window policy applied to every generated slice
    /// ([`WindowPolicy::Unbounded`] reproduces the historical workloads
    /// bit for bit). Mixed fleets — churners unbounded, a long-horizon
    /// slice windowed — admit the long-horizon [`SliceSpec`]s alongside
    /// the driven workload via [`SliceSpec::with_gp_window`].
    pub gp_window: WindowPolicy,
    /// GP-residual grid maintenance applied to every generated slice
    /// ([`GridMaintenance::Full`] reproduces the historical workloads bit
    /// for bit; [`GridMaintenance::Elastic`] caps each slice's resident
    /// factor memory for large fleets). Mixed fleets admit differently
    /// configured [`SliceSpec`]s via [`SliceSpec::with_gp_grid`].
    pub gp_grid: GridMaintenance,
    /// GP-residual posterior basis applied to every generated slice
    /// ([`SurrogateBasis::Exact`] reproduces the historical workloads bit
    /// for bit; [`SurrogateBasis::Inducing`] caps each slice's per-round
    /// model cost at O(m²) once its window outgrows the budget). Mixed
    /// fleets admit differently configured [`SliceSpec`]s via
    /// [`SliceSpec::with_gp_basis`].
    pub gp_basis: SurrogateBasis,
}

impl ChurnConfig {
    /// A CI-sized workload: a handful of short slices, 2-second queries.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            initial_slices: 3,
            horizon_rounds: 6,
            arrival_probability: 0.6,
            max_concurrent: 8,
            min_lifetime_rounds: 2,
            max_lifetime_rounds: 4,
            iterations: 3,
            offline_updates: 1,
            candidates: 40,
            duration_s: 2.0,
            gp_window: WindowPolicy::Unbounded,
            gp_grid: GridMaintenance::Full,
            gp_basis: SurrogateBasis::Exact,
        }
    }

    /// A benchmark-sized workload (2–16 concurrent slices, longer
    /// tenancies).
    pub fn bench(seed: u64, max_concurrent: usize) -> Self {
        Self {
            seed,
            initial_slices: (max_concurrent / 2).max(2),
            horizon_rounds: 12,
            arrival_probability: 0.7,
            max_concurrent,
            min_lifetime_rounds: 3,
            max_lifetime_rounds: 8,
            iterations: 5,
            offline_updates: 2,
            candidates: 200,
            duration_s: 5.0,
            gp_window: WindowPolicy::Unbounded,
            gp_grid: GridMaintenance::Full,
            gp_basis: SurrogateBasis::Exact,
        }
    }
}

/// One scheduled slice arrival.
#[derive(Clone)]
pub struct ChurnArrival {
    /// Round the slice arrives at (0 = before the first round).
    pub round: usize,
    /// The slice order itself.
    pub spec: SliceSpec,
    /// Rounds after admission at which the slice is retired (if it has
    /// not completed its iteration budget first).
    pub lifetime_rounds: usize,
}

/// A fully materialised, deterministic churn schedule.
pub struct ChurnWorkload {
    /// Scheduled arrivals, in round order.
    pub arrivals: Vec<ChurnArrival>,
    /// The workload's concurrency cap.
    pub max_concurrent: usize,
}

impl ChurnWorkload {
    /// Materialises the schedule from the config: everything — arrival
    /// rounds, lifetimes, per-slice scenarios, demands and seeds — is a
    /// pure function of `config`.
    pub fn generate(config: &ChurnConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let mut arrivals = Vec::new();
        let mut k = 0u64;
        // Guard against inverted bounds (the fields are public).
        let max_lifetime = config.max_lifetime_rounds.max(config.min_lifetime_rounds);
        let schedule = |round: usize, rng: &mut atlas_math::rng::Rng64, k: &mut u64| {
            let lifetime = config.min_lifetime_rounds
                + (rng.random::<u64>() % (max_lifetime - config.min_lifetime_rounds + 1) as u64)
                    as usize;
            let spec = churn_spec(config, *k);
            *k += 1;
            ChurnArrival {
                round,
                spec,
                lifetime_rounds: lifetime,
            }
        };
        for _ in 0..config.initial_slices {
            arrivals.push(schedule(0, &mut rng, &mut k));
        }
        for round in 1..=config.horizon_rounds {
            if rng.random::<f64>() < config.arrival_probability {
                arrivals.push(schedule(round, &mut rng, &mut k));
            }
        }
        Self {
            arrivals,
            max_concurrent: config.max_concurrent,
        }
    }

    /// Drives the schedule over a fleet run with the given admission
    /// policy: per round — retire expired tenancies, admit the round's
    /// arrivals (policy rejections are counted by the run), execute the
    /// round. Returns the folded [`FleetReport`] and every incremental
    /// [`RoundReport`].
    pub fn drive<'a, E: Environment>(
        &self,
        orchestrator: &'a Orchestrator<E>,
        policy: Box<dyn AdmissionPolicy + 'a>,
    ) -> (FleetReport, Vec<RoundReport>) {
        let mut fleet = orchestrator.begin().with_admission(policy);
        let mut rounds_out = Vec::new();
        let mut expiries: Vec<(usize, String)> = Vec::new();
        let mut cursor = 0;
        let mut round = 0;
        while cursor < self.arrivals.len() || fleet.active_count() > 0 {
            // Tenancy expiries scheduled for this round (slices that
            // completed their budget already left; ignore those).
            let due: Vec<String> = expiries
                .iter()
                .filter(|(expiry, _)| *expiry <= round)
                .map(|(_, name)| name.clone())
                .collect();
            expiries.retain(|(expiry, _)| *expiry > round);
            for name in due {
                // A tenancy expiring in the round its session drained is a
                // benign race; anything else here is a driver bug.
                if let Err(e) = fleet.retire(&name) {
                    debug_assert!(
                        matches!(e, crate::admission::RetireError::AlreadyCompleted(_)),
                        "churn retire of {name:?} failed unexpectedly: {e}"
                    );
                }
            }
            // This round's arrivals, subject to the concurrency cap and
            // the admission policy.
            while cursor < self.arrivals.len() && self.arrivals[cursor].round <= round {
                let arrival = &self.arrivals[cursor];
                cursor += 1;
                if fleet.active_count() >= self.max_concurrent {
                    continue;
                }
                let name = arrival.spec.name.clone();
                if fleet.admit(arrival.spec.clone()).is_ok() {
                    expiries.push((round + arrival.lifetime_rounds, name));
                }
            }
            if let Some(report) = fleet.step() {
                rounds_out.push(report);
            }
            round += 1;
        }
        (fleet.finish(), rounds_out)
    }
}

/// Builds the `k`-th arriving slice: heterogeneous traffic, distance,
/// demand and seed, all derived from the arrival index so the workload is
/// reproducible.
fn churn_spec(config: &ChurnConfig, k: u64) -> SliceSpec {
    let traffic = 1 + (k as u32) % 3;
    let stage3 = Stage3Config {
        iterations: config.iterations,
        offline_updates: config.offline_updates,
        candidates: config.candidates,
        duration_s: config.duration_s,
        gp_window: config.gp_window,
        gp_grid: config.gp_grid,
        gp_basis: config.gp_basis,
        ..Stage3Config::default()
    };
    let learner = OnlineLearner::without_offline(
        stage3,
        Sla::new(250.0 + 25.0 * (k % 3) as f64, 0.85 + 0.02 * (k % 2) as f64),
        Simulator::with_original_params(),
    );
    let scenario = Scenario::default_with_seed(config.seed ^ k)
        .with_duration(config.duration_s)
        .with_traffic(traffic)
        .with_distance(1.0 + 2.0 * (k % 4) as f64);
    // Sizable, heterogeneous demands so finite budgets actually contend.
    let demand = SliceConfig {
        bandwidth_ul: 15.0 + 5.0 * (k % 4) as f64,
        bandwidth_dl: 10.0 + 5.0 * (k % 3) as f64,
        mcs_offset_ul: 0.0,
        mcs_offset_dl: 0.0,
        backhaul_bw: 20.0 + 10.0 * (k % 3) as f64,
        cpu_ratio: 0.5 + 0.15 * (k % 3) as f64,
    };
    SliceSpec::new(
        format!("churn-{k}"),
        learner,
        scenario,
        config.seed.wrapping_mul(31).wrapping_add(1000 + 13 * k),
    )
    .with_demand(demand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AcceptAll, HeadroomThreshold};
    use atlas_netsim::{RealNetwork, ResourceBudget, SharedTestbed};

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let config = ChurnConfig::quick(42);
        let a = ChurnWorkload::generate(&config);
        let b = ChurnWorkload::generate(&config);
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        assert!(a.arrivals.len() >= config.initial_slices);
        for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!(x.round, y.round);
            assert_eq!(x.spec.name, y.spec.name);
            assert_eq!(x.spec.seed, y.spec.seed);
            assert_eq!(x.lifetime_rounds, y.lifetime_rounds);
            assert!(x.lifetime_rounds >= config.min_lifetime_rounds);
            assert!(x.lifetime_rounds <= config.max_lifetime_rounds);
        }
        // Inverted lifetime bounds are clamped, not an underflow panic.
        let mut inverted = ChurnConfig::quick(1);
        inverted.min_lifetime_rounds = 5;
        inverted.max_lifetime_rounds = 2;
        let clamped = ChurnWorkload::generate(&inverted);
        assert!(clamped.arrivals.iter().all(|a| a.lifetime_rounds == 5));
        // A different seed reshuffles the schedule.
        let c = ChurnWorkload::generate(&ChurnConfig::quick(43));
        assert!(
            c.arrivals.len() != a.arrivals.len()
                || c.arrivals
                    .iter()
                    .zip(&a.arrivals)
                    .any(|(x, y)| x.round != y.round || x.lifetime_rounds != y.lifetime_rounds)
        );
    }

    #[test]
    fn churn_over_a_tight_budget_is_deterministic_across_threads() {
        let config = ChurnConfig::quick(7);
        let workload = ChurnWorkload::generate(&config);
        let budget = ResourceBudget::carrier_default().scaled(0.5);
        let run = |threads: usize| {
            let testbed = SharedTestbed::new(RealNetwork::prototype()).with_budget(budget);
            let orchestrator = Orchestrator::new(testbed).with_threads(threads);
            workload.drive(
                &orchestrator,
                Box::new(HeadroomThreshold {
                    max_occupancy: 1.25,
                }),
            )
        };
        let (report1, rounds1) = run(1);
        for threads in [2, 4] {
            let (report, rounds) = run(threads);
            assert_eq!(report, report1, "threads = {threads}");
            assert_eq!(rounds, rounds1, "threads = {threads}");
        }
        // The tight budget actually bites: grants were scaled somewhere.
        assert!(report1.mean_grant_gap > 0.0, "expected a grant gap");
        // Slices arrived and departed across rounds.
        assert!(report1.slices.len() >= config.initial_slices);
        assert!(rounds1.iter().any(|r| !r.admitted.is_empty()));
    }

    #[test]
    fn unlimited_budget_churn_never_scales_grants() {
        let config = ChurnConfig::quick(11);
        let workload = ChurnWorkload::generate(&config);
        let testbed = SharedTestbed::new(RealNetwork::prototype());
        let orchestrator = Orchestrator::new(testbed).with_threads(2);
        let (report, rounds) = workload.drive(&orchestrator, Box::new(AcceptAll));
        assert_eq!(report.mean_grant_gap, 0.0);
        assert_eq!(report.rejected_admissions, 0);
        for round in &rounds {
            assert_eq!(round.grant_gap(), 0.0);
            assert_eq!(round.occupancy, 0.0);
        }
    }
}
