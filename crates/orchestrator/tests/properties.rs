//! Fleet-level determinism properties: an orchestrated N-slice run must be
//! indistinguishable from N sequential single-slice runs — bit for bit —
//! and independent of the scheduler's thread count.

use atlas::env::{RealEnv, Sla};
use atlas::{OnlineLearner, OnlineModel, Scenario, Simulator, Stage3Config, WindowPolicy};
use atlas_netsim::{RealNetwork, SharedTestbed};
use atlas_nn::BnnConfig;
use atlas_orchestrator::{Orchestrator, SliceSpec};
use proptest::prelude::*;

/// A heterogeneous fleet: slices differ in scenario (traffic, distance),
/// SLA, iteration budget, online model and seed — nothing is shared but
/// the testbed.
fn fleet(n: u64) -> Vec<SliceSpec> {
    (0..n)
        .map(|i| {
            let sla = Sla::new(250.0 + 25.0 * (i % 3) as f64, 0.85 + 0.02 * (i % 2) as f64);
            let model = if i % 4 == 3 {
                OnlineModel::BnnResidual
            } else {
                OnlineModel::GpResidual
            };
            let config = Stage3Config {
                iterations: 2 + (i as usize % 2),
                offline_updates: 1,
                candidates: 40,
                duration_s: 2.0,
                online_model: model,
                bnn: BnnConfig {
                    hidden: [8, 8, 0, 0],
                    epochs: 4,
                    ..BnnConfig::default()
                },
                ..Stage3Config::default()
            };
            let learner =
                OnlineLearner::without_offline(config, sla, Simulator::with_original_params());
            let scenario = Scenario::default_with_seed(i)
                .with_duration(2.0)
                .with_traffic(1 + (i as u32) % 3)
                .with_distance(1.0 + 3.0 * (i % 4) as f64);
            SliceSpec::new(format!("slice-{i}"), learner, scenario, 9000 + 13 * i)
        })
        .collect()
}

#[test]
fn eight_slice_orchestration_equals_sequential_runs_bit_for_bit() {
    let network = RealNetwork::prototype();
    let slices = fleet(8);
    // Sequential ground truth: one OnlineLearner::run per slice against a
    // plain single-slice environment.
    let real = RealEnv::new(network);
    let sequential: Vec<_> = slices
        .iter()
        .map(|s| s.learner.run(&real, &s.scenario, s.seed))
        .collect();

    let report = Orchestrator::new(SharedTestbed::new(network))
        .with_threads(4)
        .run(slices);
    assert_eq!(report.slices.len(), 8);
    assert_eq!(
        report.total_queries,
        sequential.iter().map(|r| r.history.len()).sum::<usize>()
    );
    for (slice, expected) in report.slices.iter().zip(&sequential) {
        assert_eq!(
            &slice.result, expected,
            "slice {} diverged from its sequential run",
            slice.name
        );
    }
}

#[test]
fn orchestrated_fleet_is_identical_across_thread_counts() {
    let network = RealNetwork::prototype();
    let reference = Orchestrator::new(SharedTestbed::new(network))
        .with_threads(1)
        .run(fleet(8));
    for threads in [2, 3, 4, 8] {
        let report = Orchestrator::new(SharedTestbed::new(network))
            .with_threads(threads)
            .run(fleet(8));
        assert_eq!(report, reference, "threads = {threads}");
    }
    // Machine-default thread count as well.
    let default_threads = Orchestrator::new(SharedTestbed::new(network)).run(fleet(8));
    assert_eq!(default_threads, reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // Randomised fleet sizes and thread counts: the orchestrator must
    // track the sequential ground truth for any N, not just 8.
    #[test]
    fn any_fleet_size_equals_sequential(n in 1u64..5, threads in 1usize..5) {
        let network = RealNetwork::prototype();
        let slices = fleet(n);
        let real = RealEnv::new(network);
        let sequential: Vec<_> = slices
            .iter()
            .map(|s| s.learner.run(&real, &s.scenario, s.seed))
            .collect();
        let report = Orchestrator::new(SharedTestbed::new(network))
            .with_threads(threads)
            .run(slices);
        for (slice, expected) in report.slices.iter().zip(&sequential) {
            prop_assert_eq!(&slice.result, expected);
        }
    }
}

#[test]
fn unlimited_budget_fleet_run_matches_run_and_sequential_bit_for_bit() {
    // Satellite property: with `ResourceBudget::unlimited()` and no churn,
    // an 8-slice fleet driven through the steppable FleetRun API is
    // bit-for-bit identical to `Orchestrator::run` (the PR 3 surface), to
    // 8 sequential single-slice runs, and to itself across scheduler
    // thread counts and sim-batching modes.
    let network = RealNetwork::prototype();
    let real = RealEnv::new(network);
    let sequential: Vec<_> = fleet(8)
        .iter()
        .map(|s| s.learner.run(&real, &s.scenario, s.seed))
        .collect();

    // Reference: the wrapper, unlimited budget (the default), 1 thread.
    let testbed =
        SharedTestbed::new(network).with_budget(atlas_netsim::ResourceBudget::unlimited());
    let reference = Orchestrator::new(testbed).with_threads(1).run(fleet(8));
    for (slice, expected) in reference.slices.iter().zip(&sequential) {
        assert_eq!(&slice.result, expected, "run() diverged from sequential");
    }
    assert_eq!(reference.mean_grant_gap, 0.0);
    assert_eq!(reference.rejected_admissions, 0);

    for threads in [1, 2, 4, 8] {
        for batch_sim in [true, false] {
            let orchestrator = Orchestrator::new(SharedTestbed::new(network))
                .with_threads(threads)
                .with_sim_batching(batch_sim);
            // Manual FleetRun driving: admit everything, step until drained.
            let mut run = orchestrator.begin();
            for spec in fleet(8) {
                run.admit(spec).expect("accept-all admits valid slices");
            }
            let mut rounds = 0;
            while let Some(round) = run.step() {
                rounds += 1;
                assert_eq!(round.round, rounds);
                assert_eq!(round.grant_gap(), 0.0, "uncontended rounds have no gap");
            }
            let stepped = run.finish();
            assert_eq!(
                stepped, reference,
                "threads = {threads}, batch_sim = {batch_sim}"
            );
            // And the wrapper agrees with itself at this configuration.
            let wrapped = orchestrator.run(fleet(8));
            assert_eq!(wrapped, reference, "run() at threads = {threads}");
        }
    }
}

#[test]
fn explicit_unbounded_windows_reproduce_the_default_fleet_bit_for_bit() {
    // Satellite property: `WindowPolicy::Unbounded` threaded through every
    // layer (GpConfig → Stage3Config → SliceSpec) must be bit-for-bit
    // identical to the historical default on the 8-slice suite, across
    // thread counts.
    let network = RealNetwork::prototype();
    let reference = Orchestrator::new(SharedTestbed::new(network))
        .with_threads(1)
        .run(fleet(8));
    for threads in [1, 4] {
        let windowed_fleet: Vec<SliceSpec> = fleet(8)
            .into_iter()
            .map(|s| s.with_gp_window(WindowPolicy::Unbounded))
            .collect();
        let report = Orchestrator::new(SharedTestbed::new(network))
            .with_threads(threads)
            .run(windowed_fleet);
        assert_eq!(report, reference, "threads = {threads}");
    }
}

#[test]
fn mixed_window_fleets_are_deterministic_and_plateau_the_windowed_slice() {
    // A fleet mixing unbounded churn-style slices with one long-horizon
    // sliding-window slice: the windowed slice's residual model plateaus
    // at its capacity while the run stays bit-identical across scheduler
    // thread counts.
    let network = RealNetwork::prototype();
    let cap = 5;
    let run_at = |threads: usize| {
        let orchestrator = Orchestrator::new(SharedTestbed::new(network)).with_threads(threads);
        let mut run = orchestrator.begin();
        for spec in fleet(4) {
            run.admit(spec).unwrap();
        }
        let long = SliceSpec::new(
            "long-horizon",
            OnlineLearner::without_offline(
                Stage3Config {
                    iterations: 16,
                    offline_updates: 1,
                    candidates: 40,
                    duration_s: 2.0,
                    ..Stage3Config::default()
                },
                Sla::paper_default(),
                Simulator::with_original_params(),
            ),
            Scenario::default_with_seed(99).with_duration(2.0),
            4242,
        )
        .with_gp_window(WindowPolicy::SlidingWindow { capacity: cap });
        run.admit(long).unwrap();
        let mut peak = 0;
        while run.step().is_some() {
            if let Some(n) = run.residual_observations("long-horizon") {
                peak = peak.max(n);
            }
        }
        (run.finish(), peak)
    };
    let (report, peak) = run_at(1);
    assert_eq!(
        peak, cap,
        "the windowed slice's residual model must plateau at its capacity"
    );
    assert_eq!(
        report.slice("long-horizon").unwrap().iterations(),
        16,
        "the plateau must not cost the slice any iterations"
    );
    for threads in [2, 4] {
        assert_eq!(
            run_at(threads),
            (report.clone(), peak),
            "threads = {threads}"
        );
    }
}

#[test]
fn sharded_fleet_matches_unsharded_and_sequential_bit_for_bit() {
    // Tentpole property, fixed fleet: a sharded FleetRun must equal the
    // unsharded run AND the PR 3 sequential ground truth, bit for bit,
    // over the full shards × threads grid.
    let network = RealNetwork::prototype();
    let real = RealEnv::new(network);
    let sequential: Vec<_> = fleet(8)
        .iter()
        .map(|s| s.learner.run(&real, &s.scenario, s.seed))
        .collect();
    let reference = Orchestrator::new(SharedTestbed::new(network))
        .with_threads(1)
        .run(fleet(8));
    for (slice, expected) in reference.slices.iter().zip(&sequential) {
        assert_eq!(
            &slice.result, expected,
            "unsharded reference diverged from sequential"
        );
    }
    for shards in [1, 2, 4, 8] {
        for threads in [1, 2, 4, 8] {
            let report = Orchestrator::new(SharedTestbed::new(network))
                .with_shards(shards)
                .with_threads(threads)
                .run(fleet(8));
            assert_eq!(report, reference, "shards = {shards}, threads = {threads}");
        }
    }
}

#[test]
fn sparse_basis_fleets_are_bit_identical_across_shards_and_threads() {
    // Tentpole property: a fleet whose GP slices run the inducing-point
    // sparse basis — genuinely active, the 8-iteration horizon outgrows
    // the m = 3 budget — must stay bit-identical across every shard ×
    // thread combination, and its sparse slices' factor footprints must
    // plateau at two m×m packed triangles per live candidate.
    use atlas::{InducingSelection, SurrogateBasis};
    let network = RealNetwork::prototype();
    let sparse_fleet = || {
        (0..6u64)
            .map(|i| {
                let sla = Sla::new(250.0 + 25.0 * (i % 3) as f64, 0.85 + 0.02 * (i % 2) as f64);
                let model = if i % 4 == 3 {
                    OnlineModel::BnnResidual
                } else {
                    OnlineModel::GpResidual
                };
                let config = Stage3Config {
                    iterations: 8,
                    offline_updates: 1,
                    candidates: 40,
                    duration_s: 2.0,
                    online_model: model,
                    bnn: BnnConfig {
                        hidden: [8, 8, 0, 0],
                        epochs: 4,
                        ..BnnConfig::default()
                    },
                    ..Stage3Config::default()
                };
                let learner =
                    OnlineLearner::without_offline(config, sla, Simulator::with_original_params());
                let scenario = Scenario::default_with_seed(i)
                    .with_duration(2.0)
                    .with_traffic(1 + (i as u32) % 3);
                SliceSpec::new(format!("sparse-{i}"), learner, scenario, 7000 + 13 * i)
                    .with_gp_basis(SurrogateBasis::Inducing {
                        m: 3,
                        selection: InducingSelection::GreedyVariance,
                        refresh_every: 4,
                    })
            })
            .collect::<Vec<_>>()
    };
    let reference = Orchestrator::new(SharedTestbed::new(network))
        .with_threads(1)
        .run(sparse_fleet());
    for slice in &reference.slices {
        // GP slices (i % 4 != 3 in `fleet`) carry collapsed factors; the
        // BNN slice reports 0.
        assert!(
            slice.surrogate_bytes <= 35 * 2 * (3 * 4 / 2) * 8,
            "slice {} footprint {} exceeds the sparse plateau",
            slice.name,
            slice.surrogate_bytes
        );
    }
    assert!(reference.total_surrogate_bytes > 0);
    for shards in [1, 2, 4, 8] {
        for threads in [1, 2, 4] {
            let report = Orchestrator::new(SharedTestbed::new(network))
                .with_shards(shards)
                .with_threads(threads)
                .run(sparse_fleet());
            assert_eq!(report, reference, "shards = {shards}, threads = {threads}");
        }
    }
}

#[test]
fn sharded_churn_is_bit_identical_across_the_full_grid() {
    // Tentpole property, elastic fleet: churn (admissions, retirements,
    // tenancy expiries) over unlimited and half-carrier budgets must be
    // bit-identical across every shard count × thread count combination.
    use atlas_netsim::ResourceBudget;
    use atlas_orchestrator::{
        AcceptAll, AdmissionPolicy, ChurnConfig, ChurnWorkload, HeadroomThreshold,
    };
    let network = RealNetwork::prototype();
    let workload = ChurnWorkload::generate(&ChurnConfig::quick(21));
    let budgets: [Option<ResourceBudget>; 2] =
        [None, Some(ResourceBudget::carrier_default().scaled(0.5))];
    for budget in budgets {
        let run = |shards: usize, threads: usize| {
            let testbed = match budget {
                Some(b) => SharedTestbed::new(network).with_budget(b),
                None => SharedTestbed::new(network),
            };
            let orchestrator = Orchestrator::new(testbed)
                .with_shards(shards)
                .with_threads(threads);
            let policy: Box<dyn AdmissionPolicy> = match budget {
                Some(_) => Box::new(HeadroomThreshold {
                    max_occupancy: 1.25,
                }),
                None => Box::new(AcceptAll),
            };
            workload.drive(&orchestrator, policy)
        };
        let tight = budget.is_some();
        let (reference, reference_rounds) = run(1, 1);
        if tight {
            assert!(
                reference.mean_grant_gap > 0.0,
                "the half-carrier level must actually contend"
            );
        }
        for shards in [1, 2, 4, 8] {
            for threads in [1, 2, 4, 8] {
                let (report, rounds) = run(shards, threads);
                assert_eq!(
                    report, reference,
                    "shards = {shards}, threads = {threads}, tight = {tight}"
                );
                assert_eq!(
                    rounds, reference_rounds,
                    "shards = {shards}, threads = {threads}, tight = {tight}"
                );
            }
        }
    }
}

#[test]
fn cached_churn_fleets_equal_the_uncached_path_bit_for_bit() {
    // Tentpole property: the evaluate-phase fast path (measurement cache,
    // workspace reuse, memoization, batch dedup) is a pure performance
    // transform. A churning fleet with every cache disabled — the
    // historical code path — must produce byte-identical FleetReports and
    // RoundReports to the cached default, across shard counts, thread
    // counts and budget tightness.
    use atlas_netsim::{ResourceBudget, SimCachePolicy};
    use atlas_orchestrator::{
        AcceptAll, AdmissionPolicy, ChurnArrival, ChurnConfig, ChurnWorkload, HeadroomThreshold,
    };
    let workload = ChurnWorkload::generate(&ChurnConfig::quick(33));
    // The same schedule with every slice's offline simulator pinned to the
    // uncached path.
    let uncached_workload = ChurnWorkload {
        arrivals: workload
            .arrivals
            .iter()
            .map(|a| ChurnArrival {
                round: a.round,
                spec: a.spec.clone().with_sim_cache_policy(SimCachePolicy::Off),
                lifetime_rounds: a.lifetime_rounds,
            })
            .collect(),
        max_concurrent: workload.max_concurrent,
    };
    let budgets: [Option<ResourceBudget>; 2] =
        [None, Some(ResourceBudget::carrier_default().scaled(0.5))];
    for budget in budgets {
        let drive = |workload: &ChurnWorkload, cached: bool, shards: usize, threads: usize| {
            let network = if cached {
                RealNetwork::prototype()
            } else {
                RealNetwork::prototype().with_cache_policy(SimCachePolicy::Off)
            };
            let testbed = match budget {
                Some(b) => SharedTestbed::new(network).with_budget(b),
                None => SharedTestbed::new(network),
            };
            let orchestrator = Orchestrator::new(testbed)
                .with_shards(shards)
                .with_threads(threads);
            let policy: Box<dyn AdmissionPolicy> = match budget {
                Some(_) => Box::new(HeadroomThreshold {
                    max_occupancy: 1.25,
                }),
                None => Box::new(AcceptAll),
            };
            workload.drive(&orchestrator, policy)
        };
        let tight = budget.is_some();
        let reference = drive(&uncached_workload, false, 1, 1);
        // Every cached run after the first replays the identical workload
        // against warm process-wide caches, so the grid exercises both the
        // cold and the memo-served paths.
        for shards in [1, 2, 4, 8] {
            for threads in [1, 2, 4, 8] {
                let cached = drive(&workload, true, shards, threads);
                assert_eq!(
                    cached, reference,
                    "shards = {shards}, threads = {threads}, tight = {tight}"
                );
            }
        }
    }
}

#[test]
fn mid_pipeline_churn_lands_on_fixed_shards() {
    // Satellite coverage: admitting and retiring slices between sharded
    // rounds keeps shard assignments fixed (admission-index round-robin,
    // survivors never migrate) and the lifecycle events land in the same
    // rounds as the unsharded replay.
    let network = RealNetwork::prototype();
    let all = fleet(7);
    let drive = |shards: usize| {
        let orchestrator = Orchestrator::new(SharedTestbed::new(network))
            .with_shards(shards)
            .with_threads(2);
        let mut run = orchestrator.begin();
        for spec in all[..5].iter().cloned() {
            run.admit(spec).unwrap();
        }
        if shards == 4 {
            // Round-robin over the admission index.
            assert_eq!(run.shard_of("slice-0"), Some(0));
            assert_eq!(run.shard_of("slice-3"), Some(3));
            assert_eq!(run.shard_of("slice-4"), Some(0));
        }
        let mut rounds = vec![run.step().expect("round 1 runs")];
        // Mid-pipeline churn: one arrival, one retirement, between rounds.
        run.admit(all[5].clone()).unwrap();
        run.retire("slice-2").unwrap();
        if shards == 4 {
            assert_eq!(run.shard_of("slice-5"), Some(1), "5 % 4");
            assert_eq!(run.shard_of("slice-2"), None, "retired slices left");
            assert_eq!(run.shard_of("slice-4"), Some(0), "survivors never migrate");
        }
        rounds.push(run.step().expect("round 2 runs"));
        run.admit(all[6].clone()).unwrap();
        if shards == 4 {
            assert_eq!(run.shard_of("slice-6"), Some(2), "6 % 4");
        }
        while let Some(round) = run.step() {
            rounds.push(round);
        }
        (run.finish(), rounds)
    };
    let (reference, reference_rounds) = drive(1);
    assert_eq!(reference_rounds[1].admitted, vec!["slice-5".to_string()]);
    assert_eq!(reference_rounds[1].retired, vec!["slice-2".to_string()]);
    assert_eq!(reference_rounds[2].admitted, vec!["slice-6".to_string()]);
    for shards in [2, 4, 8] {
        assert_eq!(
            drive(shards),
            (reference.clone(), reference_rounds.clone()),
            "shards = {shards}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // Randomised shard/thread/fleet-size combinations beyond the fixed
    // grid: sharding must stay invisible for any N.
    #[test]
    fn any_sharding_equals_the_unsharded_run(
        n in 1u64..6,
        shards in 1usize..6,
        threads in 1usize..5,
    ) {
        let network = RealNetwork::prototype();
        let reference = Orchestrator::new(SharedTestbed::new(network))
            .with_threads(1)
            .run(fleet(n));
        let report = Orchestrator::new(SharedTestbed::new(network))
            .with_shards(shards)
            .with_threads(threads)
            .run(fleet(n));
        prop_assert_eq!(report, reference);
    }
}

#[test]
fn oversubscribed_fleet_scales_grants_and_rejects_admissions() {
    // Acceptance criterion: with a finite budget, an over-subscribed
    // 8-slice fleet shows scaled grants and nonzero rejected admissions.
    use atlas_orchestrator::HeadroomThreshold;
    let network = RealNetwork::prototype();
    let budget = atlas_netsim::ResourceBudget::carrier_default().scaled(0.5);
    let run_at = |threads: usize| {
        let testbed = SharedTestbed::new(network).with_budget(budget);
        let orchestrator = Orchestrator::new(testbed).with_threads(threads);
        let mut run = orchestrator
            .begin()
            .with_admission(Box::new(HeadroomThreshold { max_occupancy: 2.0 }));
        for spec in fleet(8) {
            let _ = run.admit(spec); // rejections are counted by the run
        }
        let mut round_reports = Vec::new();
        while let Some(round) = run.step() {
            round_reports.push(round);
        }
        (run.finish(), round_reports)
    };
    let (report, rounds) = run_at(1);
    assert!(
        report.rejected_admissions > 0,
        "a half carrier cannot hold all 8 generous demands under a 2.0 occupancy cap"
    );
    assert!(!report.slices.is_empty());
    assert!(
        report.mean_grant_gap > 0.0,
        "concurrent demands over a half carrier must be scaled"
    );
    assert!(rounds
        .iter()
        .any(|r| r.mean_granted_usage < r.mean_requested_usage - 1e-12));
    assert!(rounds.iter().all(|r| r.occupancy >= 0.0));
    // Contended, admission-limited fleets stay deterministic across
    // scheduler thread counts.
    for threads in [2, 4] {
        let (again, rounds_again) = run_at(threads);
        assert_eq!(again, report, "threads = {threads}");
        assert_eq!(rounds_again, rounds, "threads = {threads}");
    }
}
