//! Acquisition functions.
//!
//! All acquisitions are written for **minimisation** of the underlying
//! objective and return a utility where *larger is better* (the optimiser
//! picks the candidate with the maximum utility). Besides the classic EI /
//! PI / (GP-)UCB family, this module implements the paper's conservative
//! acquisition: the clipped randomised GP-UCB (cRGP-UCB) of Sec. 6.2, whose
//! exploration weight `β_t` is drawn from a Gamma distribution with the
//! iteration-dependent shape of Eq. 13 and clipped to `[0, B]`.

use atlas_math::dist::{std_normal_cdf, std_normal_pdf, Gamma};
use rand::Rng;

/// The acquisition functions supported by the optimiser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Expected improvement over the incumbent best (minimisation form).
    ExpectedImprovement,
    /// Probability of improvement over the incumbent best.
    ProbabilityOfImprovement,
    /// Lower confidence bound with a fixed exploration weight `beta`.
    LowerConfidenceBound {
        /// Exploration weight multiplying the standard deviation.
        beta: f64,
    },
    /// GP-UCB (Srinivas et al.): `β_t = 2·ln(d·t²·π²/(6δ))`, growing with
    /// the iteration count to guarantee the sub-linear regret bound.
    GpUcb {
        /// Confidence parameter δ ∈ (0, 1).
        delta: f64,
        /// Input dimensionality `d`.
        dim: usize,
    },
    /// Clipped randomised GP-UCB (the paper's conservative acquisition):
    /// `β_t ~ Γ(κ_t, ρ)` with `κ_t = ln((n²+1)/√(2π)) / ln(1 + ρ/2)`,
    /// clipped into `[0, clip]`.
    ClippedRandomizedGpUcb {
        /// Scale parameter ρ of the Gamma distribution (paper: 0.1).
        rho: f64,
        /// Upper clip `B` on the sampled β (paper: 10).
        clip: f64,
    },
}

impl Acquisition {
    /// The paper's conservative acquisition with its published defaults
    /// (ρ = 0.1, B = 10).
    pub fn conservative_default() -> Self {
        Acquisition::ClippedRandomizedGpUcb {
            rho: 0.1,
            clip: 10.0,
        }
    }

    /// Samples (or computes) the exploration weight β for iteration
    /// `iteration` (1-based).
    pub fn beta<R: Rng + ?Sized>(&self, iteration: usize, rng: &mut R) -> f64 {
        match *self {
            Acquisition::LowerConfidenceBound { beta } => beta,
            Acquisition::GpUcb { delta, dim } => {
                let t = iteration.max(1) as f64;
                let d = dim.max(1) as f64;
                (2.0 * (d * t * t * std::f64::consts::PI.powi(2) / (6.0 * delta)).ln()).max(0.0)
            }
            Acquisition::ClippedRandomizedGpUcb { rho, clip } => {
                let kappa = kappa_t(iteration, rho);
                let beta = match Gamma::new(kappa.max(1e-6), rho) {
                    Ok(g) => g.sample(rng),
                    Err(_) => 0.0,
                };
                beta.clamp(0.0, clip)
            }
            _ => 0.0,
        }
    }

    /// Scores a candidate with predictive mean/std against the incumbent
    /// best observed objective (for minimisation). Larger is better.
    pub fn score<R: Rng + ?Sized>(
        &self,
        mean: f64,
        std: f64,
        best: f64,
        iteration: usize,
        rng: &mut R,
    ) -> f64 {
        let std = std.max(1e-12);
        match self {
            Acquisition::ExpectedImprovement => {
                let z = (best - mean) / std;
                (best - mean) * std_normal_cdf(z) + std * std_normal_pdf(z)
            }
            Acquisition::ProbabilityOfImprovement => {
                let z = (best - mean) / std;
                std_normal_cdf(z)
            }
            Acquisition::LowerConfidenceBound { .. }
            | Acquisition::GpUcb { .. }
            | Acquisition::ClippedRandomizedGpUcb { .. } => {
                let beta = self.beta(iteration, rng);
                -(mean - beta.sqrt() * std)
            }
        }
    }
}

/// The iteration-dependent Gamma shape of Eq. 13:
/// `κ_t = ln((n² + 1)/√(2π)) / ln(1 + ρ/2)`.
pub fn kappa_t(iteration: usize, rho: f64) -> f64 {
    let n = iteration.max(1) as f64;
    ((n * n + 1.0) / (2.0 * std::f64::consts::PI).sqrt()).ln() / (1.0 + rho / 2.0).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;
    use atlas_math::stats;

    #[test]
    fn ei_prefers_lower_mean_and_higher_uncertainty() {
        let mut rng = seeded_rng(1);
        let ei = Acquisition::ExpectedImprovement;
        let better_mean = ei.score(0.2, 0.1, 1.0, 1, &mut rng);
        let worse_mean = ei.score(0.8, 0.1, 1.0, 1, &mut rng);
        assert!(better_mean > worse_mean);
        let low_std = ei.score(1.5, 0.01, 1.0, 1, &mut rng);
        let high_std = ei.score(1.5, 1.0, 1.0, 1, &mut rng);
        assert!(
            high_std > low_std,
            "uncertainty should add EI above the incumbent"
        );
        assert!(ei.score(5.0, 1e-9, 1.0, 1, &mut rng) >= 0.0);
    }

    #[test]
    fn pi_is_a_probability() {
        let mut rng = seeded_rng(2);
        let pi = Acquisition::ProbabilityOfImprovement;
        for (mean, std) in [(0.0, 1.0), (2.0, 0.5), (-3.0, 0.1)] {
            let p = pi.score(mean, std, 1.0, 1, &mut rng);
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(pi.score(0.0, 0.1, 1.0, 1, &mut rng) > 0.99);
    }

    #[test]
    fn lcb_trades_off_mean_and_std() {
        let mut rng = seeded_rng(3);
        let lcb = Acquisition::LowerConfidenceBound { beta: 4.0 };
        // mean 1.0, std 0.5 => score -(1 - 2*0.5) = 0
        assert!((lcb.score(1.0, 0.5, 0.0, 1, &mut rng) - 0.0).abs() < 1e-9);
        // Larger std should increase the score (more optimistic).
        assert!(lcb.score(1.0, 1.0, 0.0, 1, &mut rng) > lcb.score(1.0, 0.1, 0.0, 1, &mut rng));
    }

    #[test]
    fn gp_ucb_beta_grows_with_iterations() {
        let mut rng = seeded_rng(4);
        let acq = Acquisition::GpUcb { delta: 0.1, dim: 6 };
        let b1 = acq.beta(1, &mut rng);
        let b100 = acq.beta(100, &mut rng);
        assert!(b100 > b1);
        assert!(b1 > 0.0);
    }

    #[test]
    fn kappa_t_matches_eq13_shape() {
        // κ grows logarithmically in n and is positive for n >= 2.
        assert!(kappa_t(2, 0.1) > 0.0);
        assert!(kappa_t(100, 0.1) > kappa_t(10, 0.1));
        // Smaller ρ gives a larger shape (so the product κ·ρ stays moderate).
        assert!(kappa_t(10, 0.05) > kappa_t(10, 0.2));
    }

    #[test]
    fn crgp_ucb_beta_is_clipped_and_usually_smaller_than_gp_ucb() {
        let mut rng = seeded_rng(5);
        let conservative = Acquisition::conservative_default();
        let gp_ucb = Acquisition::GpUcb { delta: 0.1, dim: 6 };
        let betas: Vec<f64> = (0..500).map(|_| conservative.beta(50, &mut rng)).collect();
        assert!(betas.iter().all(|b| (0.0..=10.0).contains(b)));
        let mean_conservative = stats::mean(&betas);
        let fixed = gp_ucb.beta(50, &mut rng);
        assert!(
            mean_conservative < fixed,
            "conservative mean beta {mean_conservative} should be below GP-UCB beta {fixed}"
        );
    }

    #[test]
    fn conservative_scores_are_finite_across_iterations() {
        let mut rng = seeded_rng(6);
        let acq = Acquisition::conservative_default();
        for it in [1usize, 2, 10, 100, 1000] {
            let s = acq.score(0.4, 0.2, 0.3, it, &mut rng);
            assert!(s.is_finite());
        }
    }
}
