//! Surrogate models for Bayesian optimisation.
//!
//! A [`Surrogate`] regresses the black-box objective from the observations
//! collected so far and provides (a) a predictive mean/std for
//! acquisition-function scoring and (b) coherent Thompson draws evaluated
//! over a whole candidate set at once. Two implementations are provided,
//! matching the paper: a Gaussian process (sample-efficient, `O(n³)` in the
//! number of observations) and a Bayesian neural network (scalable to the
//! thousands of offline queries of stages 1–2).

use atlas_gp::{GaussianProcess, GpConfig, GridMaintenance, SurrogateBasis, WindowPolicy};
use atlas_math::dist::standard_normal_sample;
use atlas_math::rng::Rng64;
use atlas_nn::{Bnn, BnnConfig};

/// A probabilistic regression model usable inside the BO loop.
///
/// `Send + Sync` is required so the optimiser can score candidate sets from
/// scoped worker threads; every implementation here is plain data.
pub trait Surrogate: Send + Sync {
    /// Fits (or refits) the model to all observations.
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64], rng: &mut Rng64);
    /// Predictive mean and standard deviation at one point.
    fn predict(&self, x: &[f64]) -> (f64, f64);
    /// Predicts a whole candidate set.
    ///
    /// Implementations must keep this **point-wise** — element `i` must be
    /// exactly what `predict(&xs[i])` returns — so the optimiser may split
    /// a batch across threads without changing any result. The default
    /// simply maps `predict`; the GP overrides it with a single
    /// multi-right-hand-side triangular solve.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
    /// Scores a candidate set for acquisition *ranking* — the caller takes
    /// an argmax over the results, so only the induced ordering matters.
    ///
    /// The default is [`Surrogate::predict_batch`] (exact values). The GP
    /// overrides it to route through its opt-in mixed-precision scoring
    /// path (`GpConfig::scoring_precision`), which is bit-identical to
    /// `predict_batch` under the default exact precision.
    fn predict_batch_ranking(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        self.predict_batch(xs)
    }
    /// Whether [`Surrogate::predict_batch_ranking`] should be handed the
    /// *whole* candidate set in one call (the surrogate does its own
    /// batching/threading) instead of being chunked across the optimiser's
    /// scoring threads. Chunking a guarded ranking path from many threads
    /// would multiply its drift-recheck cadence per suggestion, so
    /// fast-ranking surrogates manage the batch themselves.
    fn fast_ranking(&self) -> bool {
        false
    }
    /// Incrementally absorbs one observation, returning `true` if the model
    /// updated itself (so no full refit is needed for it).
    ///
    /// The default returns `false`, which makes [`crate::BayesOpt`] fall
    /// back to a full [`Surrogate::fit`] on the next refit — surrogates
    /// without an incremental path (the BNN) need no changes.
    fn observe_one(&mut self, _x: &[f64], _y: f64, _rng: &mut Rng64) -> bool {
        false
    }
    /// Incrementally absorbs a whole round of observations, returning
    /// `true` if the model updated itself for **every** one of them.
    ///
    /// The default feeds [`Surrogate::observe_one`] per observation without
    /// short-circuiting (every point must reach the model even after one
    /// declines, or the later ones would be silently lost). The GP
    /// overrides it with a batched bordering update that amortises the
    /// triangular solves across the round.
    fn observe_many(&mut self, batch: Vec<(Vec<f64>, f64)>, rng: &mut Rng64) -> bool {
        let mut all_updated = true;
        for (x, y) in batch {
            all_updated &= self.observe_one(&x, y, rng);
        }
        all_updated
    }
    /// Bounds the surrogate's *internal* training window, if it keeps one,
    /// returning `true` when the surrogate fully re-established its own
    /// state under the new policy. Called by
    /// [`crate::BayesOpt::with_window`] so the optimiser's history
    /// eviction and the surrogate's retained state can never disagree.
    ///
    /// The default returns `false`: a surrogate without internal
    /// incremental history (the BNN) relies on the optimiser to refit it
    /// from the — already windowed — history buffers. Those buffers only
    /// enforce the *capacity*, though: policy extras such as
    /// [`WindowPolicy::Decayed`]'s age weighting need surrogate support
    /// and otherwise degrade to plain sliding-window semantics. The GP
    /// overrides this to evict, downdate and re-weight in place.
    fn set_window(&mut self, _window: WindowPolicy) -> bool {
        false
    }
    /// Switches how the surrogate maintains its hyper-parameter grid
    /// factors, if it keeps such a grid, returning `true` when the
    /// surrogate fully re-established its own state under the new policy.
    /// Called by [`crate::BayesOpt::with_grid_maintenance`].
    ///
    /// The default returns `false`: a surrogate without a per-candidate
    /// factor grid (the BNN) has nothing to maintain elastically and is
    /// simply refit by the optimiser when needed. The GP overrides this to
    /// rebuild its grid under the new policy in place.
    fn set_grid_maintenance(&mut self, _grid_maintenance: GridMaintenance) -> bool {
        false
    }
    /// Switches the surrogate's posterior basis between the exact
    /// formulation and an inducing-point (sparse) one, returning `true`
    /// when the surrogate fully re-established its own state under the new
    /// basis. Called by [`crate::BayesOpt::with_basis`].
    ///
    /// The default returns `false`: a surrogate without a kernel-matrix
    /// posterior (the BNN) already scales past a few thousand points and
    /// has no basis to compress; the optimiser simply refits it when
    /// needed. The GP overrides this to rebuild (or release) its sparse
    /// information state in place.
    fn set_basis(&mut self, _basis: SurrogateBasis) -> bool {
        false
    }
    /// Evaluates **one** coherent draw from the posterior over functions at
    /// every candidate (Thompson sampling). Candidates are scored by the
    /// drawn values directly.
    fn thompson_batch(&self, candidates: &[Vec<f64>], rng: &mut Rng64) -> Vec<f64>;
    /// Human-readable name (for experiment logs).
    fn name(&self) -> &'static str;
}

/// Gaussian-process surrogate (the paper's online model and the stage-1
/// baseline it compares its BNN against).
#[derive(Debug, Clone)]
pub struct GpSurrogate {
    gp: GaussianProcess,
}

impl GpSurrogate {
    /// Creates a GP surrogate with the default Matérn-2.5 configuration.
    pub fn new() -> Self {
        Self {
            gp: GaussianProcess::default_matern(),
        }
    }

    /// Creates a GP surrogate with an explicit configuration.
    pub fn with_config(config: GpConfig) -> Self {
        Self {
            gp: GaussianProcess::new(config),
        }
    }

    /// Creates a GP surrogate whose training set is bounded by `window` —
    /// the long-horizon configuration: per-observation cost and resident
    /// factor memory plateau at the window capacity instead of growing
    /// with the loop's age. Both the incremental
    /// ([`Surrogate::observe_one`]) and full-refit ([`Surrogate::fit`])
    /// paths honour the window, so pairing it with
    /// [`crate::BayesOpt::with_window`] at the same capacity keeps the two
    /// refit routes equivalent.
    pub fn windowed(window: WindowPolicy) -> Self {
        Self::with_config(GpConfig {
            window,
            ..GpConfig::default()
        })
    }

    /// Access to the underlying Gaussian process.
    pub fn gp(&self) -> &GaussianProcess {
        &self.gp
    }
}

impl Default for GpSurrogate {
    fn default() -> Self {
        Self::new()
    }
}

impl Surrogate for GpSurrogate {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64], _rng: &mut Rng64) {
        if !inputs.is_empty() {
            // A non-positive-definite kernel matrix can only arise from
            // degenerate duplicated data; the jitter inside `fit` makes this
            // effectively unreachable, but degrade gracefully if it happens.
            let _ = self.gp.fit(inputs, targets);
        }
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        self.gp.predict(x)
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        self.gp.predict_batch(xs)
    }

    fn predict_batch_ranking(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        self.gp.predict_batch_ranking(xs)
    }

    fn fast_ranking(&self) -> bool {
        // The GP threads its own batches (and its mixed-precision drift
        // guard counts whole ranking calls), so hand it the full set.
        true
    }

    fn observe_one(&mut self, x: &[f64], y: f64, _rng: &mut Rng64) -> bool {
        // The GP absorbs a point in O(n²); a degenerate extension reports
        // `false` so the optimiser schedules a full refit instead.
        self.gp.observe(x.to_vec(), y).is_ok()
    }

    fn observe_many(&mut self, batch: Vec<(Vec<f64>, f64)>, _rng: &mut Rng64) -> bool {
        // One batched bordering update per grid factor — bit-identical to
        // the sequential observes, with the triangular solves amortised.
        self.gp.observe_batch(batch).is_ok()
    }

    fn set_window(&mut self, window: WindowPolicy) -> bool {
        // A degenerate re-selection (every factor retired) reports false
        // so the optimiser schedules a full refit instead.
        self.gp.set_window(window).is_ok()
    }

    fn set_grid_maintenance(&mut self, grid_maintenance: GridMaintenance) -> bool {
        // The switch rebuilds the grid from the retained window; a
        // degenerate rebuild reports false so the optimiser refits.
        self.gp.set_grid_maintenance(grid_maintenance).is_ok()
    }

    fn set_basis(&mut self, basis: SurrogateBasis) -> bool {
        // The switch rebuilds the posterior state under the new basis; a
        // degenerate rebuild reports false so the optimiser refits.
        self.gp.set_basis(basis).is_ok()
    }

    fn thompson_batch(&self, candidates: &[Vec<f64>], rng: &mut Rng64) -> Vec<f64> {
        // Marginal Thompson sampling: each candidate's value is drawn from
        // its marginal posterior. This ignores cross-covariances (a
        // standard, cheap approximation that avoids an O(m³) joint draw
        // over tens of thousands of candidates). The posterior is resolved
        // with one batched solve; the noise draws consume the RNG in
        // candidate order, exactly as per-point prediction would.
        self.gp
            .predict_batch_par(candidates)
            .into_iter()
            .map(|(mean, std)| mean + std * standard_normal_sample(rng))
            .collect()
    }

    fn name(&self) -> &'static str {
        "gp"
    }
}

/// Bayesian-neural-network surrogate (Bayes-by-Backprop + single-draw
/// Thompson sampling — the paper's offline surrogate).
pub struct BnnSurrogate {
    bnn: Bnn,
    config: BnnConfig,
    input_dim: usize,
    fitted: bool,
}

impl BnnSurrogate {
    /// Creates a BNN surrogate for `input_dim`-dimensional inputs.
    pub fn new(input_dim: usize, config: BnnConfig, rng: &mut Rng64) -> Self {
        Self {
            bnn: Bnn::new(input_dim, config, rng),
            config,
            input_dim,
            fitted: false,
        }
    }

    /// Number of Monte-Carlo draws used for mean/std prediction.
    const PREDICT_SAMPLES: usize = 16;
}

impl Surrogate for BnnSurrogate {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64], rng: &mut Rng64) {
        if inputs.is_empty() {
            return;
        }
        // Refit from scratch: cheaper than it sounds at the network sizes
        // used here, and avoids pathological drift when the observation set
        // changes distribution (e.g. after the exploration phase).
        self.bnn = Bnn::new(self.input_dim, self.config, rng);
        self.bnn.fit(inputs, targets, rng);
        self.fitted = true;
    }

    fn predict(&self, x: &[f64]) -> (f64, f64) {
        if !self.fitted {
            return (0.0, 1.0);
        }
        // Deterministic seed derived from the input so `predict` stays a
        // pure function (callers that need reproducible uncertainty use
        // `thompson_batch` with their own RNG).
        let mut rng = atlas_math::rng::seeded_rng(0xBEEF);
        self.bnn
            .predict_with_uncertainty(x, Self::PREDICT_SAMPLES, &mut rng)
    }

    fn thompson_batch(&self, candidates: &[Vec<f64>], rng: &mut Rng64) -> Vec<f64> {
        if !self.fitted {
            return candidates
                .iter()
                .map(|_| standard_normal_sample(rng))
                .collect();
        }
        let draw = self.bnn.thompson_sampler(rng);
        candidates.iter().map(|x| draw(x)).collect()
    }

    fn name(&self) -> &'static str {
        "bnn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_math::rng::seeded_rng;

    fn dataset() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.3).powi(2) * 10.0).collect();
        (xs, ys)
    }

    #[test]
    fn gp_surrogate_learns_the_objective() {
        let mut rng = seeded_rng(1);
        let (xs, ys) = dataset();
        let mut s = GpSurrogate::new();
        s.fit(&xs, &ys, &mut rng);
        let (mean_at_min, _) = s.predict(&[0.3]);
        let (mean_far, _) = s.predict(&[0.95]);
        assert!(mean_at_min < mean_far);
        assert_eq!(s.name(), "gp");
    }

    #[test]
    fn gp_thompson_batch_tracks_the_posterior() {
        let mut rng = seeded_rng(2);
        let (xs, ys) = dataset();
        let mut s = GpSurrogate::new();
        s.fit(&xs, &ys, &mut rng);
        let candidates: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
        let draw = s.thompson_batch(&candidates, &mut rng);
        assert_eq!(draw.len(), 50);
        // The best candidate under the draw should be near the true
        // minimiser x = 0.3 most of the time.
        let best = (0..50)
            .min_by(|a, b| draw[*a].partial_cmp(&draw[*b]).unwrap())
            .unwrap();
        assert!((candidates[best][0] - 0.3).abs() < 0.25);
    }

    #[test]
    fn bnn_surrogate_learns_the_objective() {
        let mut rng = seeded_rng(3);
        let (xs, ys) = dataset();
        let mut s = BnnSurrogate::new(
            1,
            BnnConfig {
                hidden: [16, 16, 0, 0],
                epochs: 120,
                ..BnnConfig::default()
            },
            &mut rng,
        );
        s.fit(&xs, &ys, &mut rng);
        let (mean_at_min, _) = s.predict(&[0.3]);
        let (mean_far, _) = s.predict(&[0.95]);
        assert!(mean_at_min < mean_far);
        assert_eq!(s.name(), "bnn");
    }

    #[test]
    fn unfitted_surrogates_degrade_gracefully() {
        let mut rng = seeded_rng(4);
        let gp = GpSurrogate::new();
        let (m, s) = gp.predict(&[0.5]);
        assert!(m.is_finite() && s > 0.0);
        let bnn = BnnSurrogate::new(1, BnnConfig::default(), &mut rng);
        let (m, s) = bnn.predict(&[0.5]);
        assert!(m.is_finite() && s > 0.0);
        let draw = bnn.thompson_batch(&[vec![0.1], vec![0.9]], &mut rng);
        assert_eq!(draw.len(), 2);
    }

    #[test]
    fn bnn_thompson_draws_are_coherent_within_a_draw() {
        let mut rng = seeded_rng(5);
        let (xs, ys) = dataset();
        let mut s = BnnSurrogate::new(
            1,
            BnnConfig {
                hidden: [8, 8, 0, 0],
                epochs: 60,
                ..BnnConfig::default()
            },
            &mut rng,
        );
        s.fit(&xs, &ys, &mut rng);
        // Evaluating the same candidate twice within one batch must give
        // the same value (one network draw, deterministic evaluation).
        let batch = vec![vec![0.42], vec![0.42]];
        let vals = s.thompson_batch(&batch, &mut rng);
        assert!((vals[0] - vals[1]).abs() < 1e-12);
    }
}
