//! # atlas-bayesopt
//!
//! The Bayesian-optimisation framework used by every stage of the Atlas
//! reproduction:
//!
//! * [`space::SearchSpace`] — box-constrained continuous search spaces with
//!   normalisation, trust-region sampling (Eq. 2) and distance metrics.
//! * [`surrogate`] — the [`surrogate::Surrogate`] trait with Gaussian-process
//!   and Bayesian-neural-network implementations.
//! * [`acquisition::Acquisition`] — EI, PI, fixed-β LCB, GP-UCB, and the
//!   paper's clipped randomised GP-UCB (cRGP-UCB, Eq. 13).
//! * [`optimizer::BayesOpt`] — the suggest/observe loop with random warm-up
//!   and (parallel) Thompson-sampling batch proposals.
//!
//! Objective evaluation stays with the caller so that expensive simulator
//! queries can be parallelised (the Atlas core uses std scoped threads for
//! the paper's "parallel queries").
//!
//! The observe→fit→suggest loop is incremental and batched:
//! [`optimizer::BayesOpt::observe_and_update`] feeds an observation
//! straight into the surrogate via [`surrogate::Surrogate::observe_one`]
//! (O(n²) for the GP; surrogates without an incremental path fall back to
//! a full refit on the next `fit`), and suggestion scores candidates with
//! batched predictions fanned over scoped threads, merged
//! deterministically — results are byte-for-byte identical for every
//! thread count.
//!
//! ## Quick start
//!
//! ```
//! use atlas_bayesopt::{Acquisition, BayesOpt, GpSurrogate, SearchSpace};
//! use atlas_math::rng::seeded_rng;
//!
//! let mut rng = seeded_rng(3);
//! let space = SearchSpace::unit(2);
//! let mut bo = BayesOpt::new(space.clone(), GpSurrogate::new()).with_initial_random(4);
//! for _ in 0..8 {
//!     let x = bo.suggest(Acquisition::ExpectedImprovement, &mut rng);
//!     let y = (x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2); // minimise
//!     // Records the observation and updates the GP incrementally.
//!     bo.observe_and_update(x, y, &mut rng);
//! }
//! let best = bo.best().unwrap();
//! assert!(best.y.is_finite() && space.contains(&best.x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod optimizer;
pub mod space;
pub mod surrogate;

pub use acquisition::Acquisition;
pub use optimizer::{BayesOpt, Observation};
pub use space::SearchSpace;
pub use surrogate::{BnnSurrogate, GpSurrogate, Surrogate};

// Long-horizon loops bound the surrogate's training window, elastic
// grids bound its factor maintenance and the inducing basis compresses
// beyond-window history; re-exported so optimiser users configure all
// three without a direct atlas-gp dependency.
pub use atlas_gp::{GridMaintenance, InducingSelection, SurrogateBasis, WindowPolicy};
