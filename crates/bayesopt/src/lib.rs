//! # atlas-bayesopt
//!
//! The Bayesian-optimisation framework used by every stage of the Atlas
//! reproduction:
//!
//! * [`space::SearchSpace`] — box-constrained continuous search spaces with
//!   normalisation, trust-region sampling (Eq. 2) and distance metrics.
//! * [`surrogate`] — the [`surrogate::Surrogate`] trait with Gaussian-process
//!   and Bayesian-neural-network implementations.
//! * [`acquisition::Acquisition`] — EI, PI, fixed-β LCB, GP-UCB, and the
//!   paper's clipped randomised GP-UCB (cRGP-UCB, Eq. 13).
//! * [`optimizer::BayesOpt`] — the suggest/observe loop with random warm-up
//!   and (parallel) Thompson-sampling batch proposals.
//!
//! Objective evaluation stays with the caller so that expensive simulator
//! queries can be parallelised (the Atlas core uses crossbeam scoped
//! threads for the paper's "parallel queries").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod optimizer;
pub mod space;
pub mod surrogate;

pub use acquisition::Acquisition;
pub use optimizer::{BayesOpt, Observation};
pub use space::SearchSpace;
pub use surrogate::{BnnSurrogate, GpSurrogate, Surrogate};
